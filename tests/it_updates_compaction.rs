//! Multi-version updates and compaction (Fig. 6): visibility of new
//! versions, masking of old ones, compaction convergence, and search
//! correctness throughout.

use blendhouse::{Database, Value};

fn setup(n: u64) -> Database {
    let db = Database::in_memory();
    db.execute(
        "CREATE TABLE docs (id UInt64, rev Int64, emb Array(Float32), \
         INDEX i emb TYPE HNSW('DIM=4')) ORDER BY id",
    )
    .unwrap();
    let values: Vec<String> = (0..n)
        .map(|i| {
            let c = (i % 3) as f32 * 7.0 + i as f32 * 1e-4;
            format!("({i}, 0, [{c}, {c}, {c}, {c}])")
        })
        .collect();
    db.execute(&format!("INSERT INTO docs VALUES {}", values.join(", "))).unwrap();
    db
}

#[test]
fn update_changes_search_results_immediately() {
    let db = setup(300);
    // Row 7 starts in cluster 1 (center 7.0); move it to the origin.
    db.execute("UPDATE docs SET emb = [0.1, 0.1, 0.1, 0.1], rev = 1 WHERE id = 7").unwrap();
    let rs = db
        .execute("SELECT id, rev FROM docs ORDER BY L2Distance(emb, [0.1, 0.1, 0.1, 0.1]) LIMIT 1")
        .unwrap()
        .rows();
    assert_eq!(rs.rows[0][0], Value::UInt64(7), "updated vector must be findable");
    assert_eq!(rs.rows[0][1], Value::Int64(1), "new version visible");
    // The old version must NOT appear near its previous location's top spot
    // with rev 0.
    let rs = db
        .execute("SELECT id, rev FROM docs WHERE id = 7 LIMIT 10")
        .unwrap()
        .rows();
    assert_eq!(rs.len(), 1, "exactly one visible version");
}

#[test]
fn repeated_updates_keep_single_visible_version() {
    let db = setup(100);
    for rev in 1..=5 {
        db.execute(&format!("UPDATE docs SET rev = {rev} WHERE id = 42")).unwrap();
        let rs = db.execute("SELECT rev FROM docs WHERE id = 42 LIMIT 10").unwrap().rows();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int64(rev));
    }
    let table = db.table("docs").unwrap();
    assert_eq!(table.visible_rows(), 100);
    assert!(table.delete_map().total_deleted() >= 5);
}

#[test]
fn compaction_drops_dead_versions_and_preserves_results() {
    let db = setup(400);
    db.execute("UPDATE docs SET rev = 1 WHERE id < 100").unwrap();
    db.execute("DELETE FROM docs WHERE id >= 350").unwrap();
    let table = db.table("docs").unwrap();
    assert_eq!(table.visible_rows(), 350);
    let before = db
        .execute("SELECT id FROM docs ORDER BY L2Distance(emb, [7.0, 7.0, 7.0, 7.0]) LIMIT 10")
        .unwrap()
        .rows();

    let report = db.compact("docs").unwrap();
    assert_eq!(report.rows_dropped, 150, "100 superseded + 50 deleted");
    assert_eq!(table.delete_map().total_deleted(), 0);
    assert_eq!(table.visible_rows(), 350);

    let after = db
        .execute("SELECT id FROM docs ORDER BY L2Distance(emb, [7.0, 7.0, 7.0, 7.0]) LIMIT 10")
        .unwrap()
        .rows();
    assert_eq!(before.rows, after.rows, "compaction must not change results");
    // Compacted segments carry fresh indexes.
    for meta in table.segments() {
        assert!(meta.level >= 1);
        assert!(meta.index_kind.is_some());
    }
}

#[test]
fn delete_everything_then_reuse_table() {
    let db = setup(50);
    assert_eq!(db.execute("DELETE FROM docs").unwrap().affected(), 50);
    let rs = db
        .execute("SELECT id FROM docs ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) LIMIT 5")
        .unwrap()
        .rows();
    assert!(rs.is_empty());
    db.compact("docs").unwrap();
    assert_eq!(db.table("docs").unwrap().segment_count(), 0);
    // Table accepts new data afterwards.
    db.execute("INSERT INTO docs VALUES (1000, 0, [1.0, 2.0, 3.0, 4.0])").unwrap();
    let rs = db
        .execute("SELECT id FROM docs ORDER BY L2Distance(emb, [1.0, 2.0, 3.0, 4.0]) LIMIT 1")
        .unwrap()
        .rows();
    assert_eq!(rs.rows[0][0], Value::UInt64(1000));
}

#[test]
fn updates_visible_under_every_strategy() {
    let db = setup(200);
    db.execute("UPDATE docs SET emb = [0.2, 0.2, 0.2, 0.2], rev = 9 WHERE id = 13").unwrap();
    for strategy in [
        blendhouse::Strategy::BruteForce,
        blendhouse::Strategy::PreFilter,
        blendhouse::Strategy::PostFilter,
        blendhouse::Strategy::FilteredTraversal,
    ] {
        let opts = blendhouse::QueryOptions {
            forced_strategy: Some(strategy),
            ..db.default_options()
        };
        let rs = db
            .execute_with(
                "SELECT id FROM docs WHERE rev = 9 \
                 ORDER BY L2Distance(emb, [0.2, 0.2, 0.2, 0.2]) LIMIT 3",
                &opts,
            )
            .unwrap()
            .rows();
        assert_eq!(rs.len(), 1, "{strategy:?}");
        assert_eq!(rs.rows[0][0], Value::UInt64(13), "{strategy:?}");
    }
}

#[test]
fn catalog_reload_after_compaction() {
    let db = setup(120);
    db.execute("DELETE FROM docs WHERE id < 20").unwrap();
    db.compact("docs").unwrap();
    let table = db.table("docs").unwrap();
    let reloaded = table.reload_from_store().unwrap();
    assert_eq!(reloaded, table.segment_count());
    assert_eq!(table.visible_rows(), 100);
}
