//! End-to-end integration: the full Example-1 lifecycle through the SQL
//! front door — DDL with every clause, CSV and VALUES ingest, hybrid
//! queries, EXPLAIN-able plans, and result correctness across the stack.

use blendhouse::{Database, QueryOutput, Value};

fn setup() -> Database {
    let db = Database::in_memory();
    db.execute(
        "CREATE TABLE images (
           id UInt64,
           label String,
           published_time DateTime,
           embedding Array(Float32),
           INDEX ann_idx embedding TYPE HNSW('DIM=8', 'M=16')
         )
         ORDER BY published_time
         PARTITION BY label
         CLUSTER BY embedding INTO 4 BUCKETS",
    )
    .unwrap();
    let mut values = Vec::new();
    for i in 0..1200u64 {
        let label = ["animal", "plant", "city"][i as usize % 3];
        let c = (i % 4) as f32 * 5.0 + (i as f32) * 1e-4;
        let emb: Vec<String> = (0..8).map(|d| format!("{}", c + d as f32 * 0.01)).collect();
        values.push(format!(
            "({i}, '{label}', {}, [{}])",
            1_700_000_000 + i * 3_600,
            emb.join(", ")
        ));
    }
    db.execute(&format!("INSERT INTO images VALUES {}", values.join(", "))).unwrap();
    db
}

#[test]
fn full_lifecycle_create_insert_query() {
    let db = setup();
    let table = db.table("images").unwrap();
    assert_eq!(table.visible_rows(), 1200);
    assert!(table.segment_count() >= 3, "partitioned into multiple segments");
    assert!(table.clusterer().is_some(), "CLUSTER BY trained a clusterer");

    // Pure vector top-k.
    let rs = db
        .execute(
            "SELECT id, dist FROM images \
             ORDER BY L2Distance(embedding, [5.0, 5.01, 5.02, 5.03, 5.04, 5.05, 5.06, 5.07]) \
             AS dist LIMIT 7",
        )
        .unwrap()
        .rows();
    assert_eq!(rs.len(), 7);
    for row in &rs.rows {
        let Value::UInt64(id) = row[0] else { panic!() };
        assert_eq!(id % 4, 1, "nearest rows come from cluster 1");
    }
    // Distances ascending.
    let d = rs.column_values("dist").unwrap();
    for w in d.windows(2) {
        assert!(w[0].as_f64().unwrap() <= w[1].as_f64().unwrap());
    }
}

#[test]
fn hybrid_query_with_datetime_and_label() {
    let db = setup();
    let rs = db
        .execute(
            "SELECT id, label, published_time FROM images \
             WHERE label = 'animal' AND published_time >= '2023-11-15 00:00:00' \
             ORDER BY L2Distance(embedding, [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]) \
             LIMIT 10",
        )
        .unwrap()
        .rows();
    assert!(!rs.is_empty());
    let cutoff = 1_700_006_400; // 2023-11-15 00:00:00 UTC
    for row in &rs.rows {
        assert_eq!(row[1], Value::Str("animal".into()));
        let Value::DateTime(ts) = row[2] else { panic!() };
        assert!(ts >= cutoff, "datetime filter violated: {ts}");
    }
}

#[test]
fn csv_ingest_matches_values_ingest() {
    let db = Database::in_memory();
    db.execute(
        "CREATE TABLE t (id UInt64, name String, emb Array(Float32), \
         INDEX i emb TYPE FLAT('DIM=2'))",
    )
    .unwrap();
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("rows.csv");
    std::fs::write(&path, "1,alpha,[1.0, 0.0]\n2,beta,[0.0, 1.0]\n3,gamma,[1.0, 1.0]\n")
        .unwrap();
    let out = db.execute(&format!("INSERT INTO t CSV INFILE '{}'", path.display())).unwrap();
    assert_eq!(out, QueryOutput::Affected(3));
    let rs = db
        .execute("SELECT name FROM t ORDER BY L2Distance(emb, [0.1, 0.9]) LIMIT 1")
        .unwrap()
        .rows();
    assert_eq!(rs.rows[0][0], Value::Str("beta".into()));
}

#[test]
fn distance_range_queries_through_sql() {
    let db = setup();
    // All of cluster 0 (300 rows, jittered) lies within ~0.5 of its center.
    let rs = db
        .execute(
            "SELECT id FROM images \
             WHERE L2Distance(embedding, [0.0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07]) < 1.0 \
             ORDER BY L2Distance(embedding, [0.0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07]) \
             LIMIT 1000",
        )
        .unwrap()
        .rows();
    assert_eq!(rs.len(), 300);
    for row in &rs.rows {
        let Value::UInt64(id) = row[0] else { panic!() };
        assert_eq!(id % 4, 0);
    }
}

#[test]
fn error_paths_are_clean() {
    let db = setup();
    // Unknown table / column / bad dimension / missing limit.
    assert!(db.execute("SELECT * FROM missing LIMIT 1").is_err());
    assert!(db.execute("SELECT nope FROM images LIMIT 1").is_err());
    assert!(db
        .execute("SELECT id FROM images ORDER BY L2Distance(embedding, [1.0]) LIMIT 1")
        .is_err());
    assert!(db
        .execute("SELECT id FROM images ORDER BY L2Distance(embedding, [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])")
        .is_err());
    // The database stays usable after errors.
    assert!(db.execute("SELECT id FROM images LIMIT 1").is_ok());
}

#[test]
fn concurrent_reads_and_writes_are_safe() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let db = Arc::new(setup());
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    // Readers hammer hybrid queries while a writer streams inserts and a
    // third thread updates + compacts — every operation must stay correct
    // and panic-free under concurrency.
    for r in 0..3 {
        let db = db.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut n = 0;
            while !stop.load(Ordering::Relaxed) {
                let c = (r % 4) as f32 * 5.0;
                let rs = db
                    .execute(&format!(
                        "SELECT id FROM images WHERE label = 'animal' \
                         ORDER BY L2Distance(embedding, [{c}, {c}, {c}, {c}, {c}, {c}, {c}, {c}]) \
                         LIMIT 5"
                    ))
                    .unwrap()
                    .rows();
                assert!(rs.len() <= 5);
                n += 1;
            }
            n
        }));
    }
    {
        let db = db.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut id = 1_000_000u64;
            while !stop.load(Ordering::Relaxed) {
                db.execute(&format!(
                    "INSERT INTO images VALUES ({id}, 'animal', 1700000000, \
                     [9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0])"
                ))
                .unwrap();
                id += 1;
            }
            (id - 1_000_000) as usize
        }));
    }
    {
        let db = db.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut n = 0;
            while !stop.load(Ordering::Relaxed) {
                db.execute("UPDATE images SET label = 'city' WHERE id = 3").unwrap();
                db.compact("images").unwrap();
                n += 1;
            }
            n
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(500));
    stop.store(true, Ordering::Relaxed);
    let work: usize = handles.into_iter().map(|h| h.join().expect("no panics")).sum();
    assert!(work > 0, "threads made progress");
    // The table is consistent afterwards.
    let table = db.table("images").unwrap();
    let rs = db.execute("SELECT id FROM images WHERE id = 3 LIMIT 10").unwrap().rows();
    assert_eq!(rs.len(), 1, "exactly one visible version of the updated row");
    assert!(table.visible_rows() >= 1200);
}

#[test]
fn results_consistent_across_strategies_and_vws() {
    let db = setup();
    db.create_vw("reader", 3);
    db.preload("images", "reader").unwrap();
    let sql = "SELECT id FROM images WHERE label = 'plant' \
               ORDER BY L2Distance(embedding, [10.0, 10.01, 10.02, 10.03, 10.04, 10.05, 10.06, 10.07]) \
               LIMIT 6";
    let default_rows = db.execute(sql).unwrap().rows();
    let reader_rows = db.query_on_vw("reader", sql, &db.default_options()).unwrap();
    assert_eq!(default_rows.rows, reader_rows.rows, "VW choice must not change results");
    for strategy in [
        blendhouse::Strategy::BruteForce,
        blendhouse::Strategy::PreFilter,
        blendhouse::Strategy::PostFilter,
        blendhouse::Strategy::FilteredTraversal,
    ] {
        let opts = blendhouse::QueryOptions {
            forced_strategy: Some(strategy),
            ..db.default_options()
        };
        let rs = db.execute_with(sql, &opts).unwrap().rows();
        assert_eq!(rs.rows, default_rows.rows, "{strategy:?} differs");
    }
}
