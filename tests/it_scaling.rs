//! Scaling integration: consistent-hash stability, cache-aware preload,
//! vector search serving across topology changes (Fig. 4), and result
//! stability through an entire scale-out/scale-in cycle.

use bh_bench::datasets::DatasetSpec;
use bh_bench::setup::{build_database, TableOptions};
use bh_bench::workloads::vector_search;
use blendhouse::DatabaseConfig;

fn db_with_segments() -> (blendhouse::Database, Vec<String>) {
    let data = DatasetSpec::tiny().generate();
    let mut cfg = DatabaseConfig { default_workers: 1, ..Default::default() };
    cfg.table.segment_max_rows = 50;
    let db = build_database(&data, cfg, &TableOptions::default());
    let sqls = vector_search(&data, 4, 8, 1)
        .iter()
        .map(|q| q.to_sql("bench", "emb"))
        .collect();
    (db, sqls)
}

#[test]
fn results_stable_across_scale_out_and_in() {
    let (db, sqls) = db_with_segments();
    let vw = db.default_vw();
    db.preload("bench", "default").unwrap();
    let baselines: Vec<_> = sqls.iter().map(|s| db.execute(s).unwrap().rows()).collect();

    let segments = db.table("bench").unwrap().segments();
    for _ in 0..5 {
        vw.scale_up(&segments);
    }
    assert_eq!(vw.worker_count(), 6);
    for (sql, base) in sqls.iter().zip(&baselines) {
        assert_eq!(db.execute(sql).unwrap().rows().rows, base.rows, "scale-out changed results");
    }

    // Scale back down to 2 workers.
    while vw.worker_count() > 2 {
        let victim = vw.worker_ids()[0];
        vw.scale_down(victim, &segments).unwrap();
    }
    for (sql, base) in sqls.iter().zip(&baselines) {
        assert_eq!(db.execute(sql).unwrap().rows().rows, base.rows, "scale-in changed results");
    }
}

#[test]
fn serving_avoids_brute_force_on_moved_segments() {
    let (db, sqls) = db_with_segments();
    let vw = db.default_vw();
    db.preload("bench", "default").unwrap();
    // Warm queries on 1 worker.
    for s in &sqls {
        db.execute(s).unwrap();
    }
    let bf_before = db.metrics().counter_value("worker.brute_force");

    // Scale up step by step, querying between steps (the previous-owner map
    // reflects the topology before the latest change, as in Fig. 4); moved
    // segments are served via RPC and warmed, never brute-forced.
    let segments = db.table("bench").unwrap().segments();
    for _ in 0..4 {
        vw.scale_up(&segments);
        for s in &sqls {
            db.execute(s).unwrap();
        }
    }
    let bf_after = db.metrics().counter_value("worker.brute_force");
    assert_eq!(bf_after, bf_before, "serving must absorb the cache misses");
    assert!(
        db.metrics().counter_value("vw.serving_calls") > 0,
        "scale-up should trigger serving calls"
    );
}

#[test]
fn preload_follows_the_query_schedulers_hash() {
    let (db, _) = db_with_segments();
    db.create_vw("readers", 4);
    let loaded = db.preload("bench", "readers").unwrap();
    let table = db.table("bench").unwrap();
    assert_eq!(loaded, table.segment_count());
    // Every segment is resident exactly where the ring points queries.
    let vw = db.vw("readers").unwrap();
    for (wid, segs) in vw.assign(&table.segments()) {
        let w = vw.worker(wid).unwrap();
        for meta in segs {
            assert!(w.index_resident(&meta), "{wid} missing {}", meta.id);
        }
    }
}

#[test]
fn minimal_movement_on_membership_change() {
    let (db, _) = db_with_segments();
    let vw = db.default_vw();
    let segments = db.table("bench").unwrap().segments();
    for _ in 0..3 {
        vw.scale_up(&segments);
    }
    let before = vw.assign(&segments);
    let new_worker = vw.scale_up(&segments);
    let after = vw.assign(&segments);
    // Every moved segment moved TO the new worker.
    for (wid, segs) in &before {
        for meta in segs {
            let now = after
                .iter()
                .find(|(_, g)| g.iter().any(|m| m.id == meta.id))
                .map(|(w, _)| *w)
                .unwrap();
            assert!(
                now == *wid || now == new_worker,
                "{} moved between pre-existing workers",
                meta.id
            );
        }
    }
}

#[test]
fn separate_vws_have_independent_caches() {
    let (db, sqls) = db_with_segments();
    db.create_vw("a", 2);
    db.create_vw("b", 2);
    db.preload("bench", "a").unwrap();
    // VW a answers from cache; VW b has never loaded anything.
    let opts = db.default_options();
    let ra = db.query_on_vw("a", &sqls[0], &opts).unwrap();
    let local_before = db.metrics().counter_value("worker.brute_force");
    let rb = db.query_on_vw("b", &sqls[0], &opts).unwrap();
    assert_eq!(ra.rows, rb.rows);
    // b's first pass fell back (cold) at least once — physically isolated
    // caches, matching the multi-tenancy design.
    assert!(db.metrics().counter_value("worker.brute_force") >= local_before);
}
