//! Baseline-system behaviour contracts: the strategy restrictions that the
//! paper's comparisons rest on must hold in the simulators, and BlendHouse
//! must not share the baselines' failure modes.

use bh_baselines::{BaselineSystem, MilvusSim, PgvectorSim, SimFilter};
use bh_bench::datasets::DatasetSpec;
use bh_bench::setup::{
    build_database, loaded_milvus, loaded_pgvector, recall_of, result_ids, to_sim_filter,
    TableOptions,
};
use bh_bench::workloads::{filtered_search, ground_truth};
use bh_vector::SearchParams;

#[test]
fn all_three_systems_agree_on_easy_queries() {
    let data = DatasetSpec::tiny().generate();
    let db = build_database(
        &data,
        blendhouse::DatabaseConfig::default(),
        &TableOptions::default(),
    );
    let milvus = loaded_milvus(&data);
    let pg = loaded_pgvector(&data);
    let params = SearchParams::default().with_ef(128);
    for q in &filtered_search(&data, 6, 5, 0.9, 1) {
        let truth = ground_truth(&data, q, None);
        let bh = {
            let rs = db.execute(&q.to_sql("bench", "emb")).unwrap().rows();
            recall_of(&result_ids(&rs), &truth)
        };
        let f = to_sim_filter(q);
        let mv = {
            let ids: Vec<u64> = milvus
                .search(&q.vector, q.k, &params, f.as_ref())
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            recall_of(&ids, &truth)
        };
        let pv = {
            let ids: Vec<u64> = pg
                .search(&q.vector, q.k, &params, f.as_ref())
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            recall_of(&ids, &truth)
        };
        assert!(bh >= 0.8 && mv >= 0.8 && pv >= 0.8, "bh {bh} mv {mv} pv {pv}");
    }
}

#[test]
fn pgvector_collapses_where_blendhouse_does_not() {
    // The central Fig. 9 contrast: a filter passing ~1% of rows.
    let data = DatasetSpec::tiny().generate();
    let db = build_database(
        &data,
        blendhouse::DatabaseConfig::default(),
        &TableOptions::default(),
    );
    let pg = loaded_pgvector(&data);
    let params = SearchParams::default().with_ef(64);
    let mut bh_total = 0.0;
    let mut pg_total = 0.0;
    let queries = filtered_search(&data, 6, 5, 0.02, 2);
    for q in &queries {
        let truth = ground_truth(&data, q, None);
        if truth.is_empty() {
            continue;
        }
        let rs = db.execute(&q.to_sql("bench", "emb")).unwrap().rows();
        bh_total += recall_of(&result_ids(&rs), &truth);
        let ids: Vec<u64> = pg
            .search(&q.vector, q.k, &params, to_sim_filter(q).as_ref())
            .unwrap()
            .iter()
            .map(|n| n.id)
            .collect();
        pg_total += recall_of(&ids, &truth);
    }
    let n = queries.len() as f64;
    assert!(bh_total / n >= 0.95, "BlendHouse recall {}", bh_total / n);
    assert!(
        pg_total / n < 0.6,
        "pgvector's single-shot post-filter should collapse, got {}",
        pg_total / n
    );
}

#[test]
fn milvus_must_load_before_fast_serving() {
    let data = DatasetSpec::tiny().generate();
    let mut m = MilvusSim::with_defaults(data.dim());
    bh_bench::setup::load_baseline(&mut m, &data);
    // Without finalize (= flush + build + load) searches still answer, via
    // brute force over raw data.
    let q = data.queries(1, 3).remove(0);
    let before = m.search(&q, 5, &SearchParams::default(), None).unwrap();
    assert_eq!(before.len(), 5);
    m.finalize().unwrap();
    let after = m.search(&q, 5, &SearchParams::default(), None).unwrap();
    // Indexed results track the exact ones.
    let before_ids: std::collections::HashSet<u64> = before.iter().map(|n| n.id).collect();
    let overlap = after.iter().filter(|n| before_ids.contains(&n.id)).count();
    assert!(overlap >= 4, "index vs exact overlap too low: {overlap}");
}

#[test]
fn milvus_brute_force_rule_gives_exact_results_on_tiny_candidate_sets() {
    let data = DatasetSpec::tiny().generate();
    let milvus = loaded_milvus(&data);
    // Filter passing only a handful of rows → the rule-based fallback.
    let f = SimFilter::range("x", 0.0, 20_000.0); // ~2% of uniform [0, 1e6)
    let q = data.queries(1, 4).remove(0);
    let got = milvus.search(&q, 10, &SearchParams::default().with_ef(16), Some(&f)).unwrap();
    // Verify exactness against manual scan.
    let mut expect: Vec<(f32, u64)> = (0..data.n())
        .filter(|&i| (0.0..=20_000.0).contains(&(data.rand_int[i] as f64)))
        .map(|i| (bh_vector::distance::l2_sq(&q, data.vector(i)), i as u64))
        .collect();
    expect.sort_by(|a, b| a.0.total_cmp(&b.0));
    let expect_ids: Vec<u64> = expect.iter().take(10).map(|&(_, i)| i).collect();
    let got_ids: Vec<u64> = got.iter().map(|n| n.id).collect();
    assert_eq!(got_ids, expect_ids);
}

#[test]
fn baseline_ingest_invariants() {
    let data = DatasetSpec::tiny().generate();
    let m = loaded_milvus(&data);
    let p = loaded_pgvector(&data);
    assert_eq!(m.len(), data.n());
    assert_eq!(p.len(), data.n());
    assert!(!m.is_empty() && !p.is_empty());
    assert!(m.segment_count() >= 1);
    assert!(p.has_index());
}

#[test]
fn pgvector_overhead_constant_is_configurable() {
    // The modeled client-server overhead can be zeroed for microbenchmarks.
    let data = DatasetSpec::tiny().generate();
    let mut p = PgvectorSim::new(
        data.dim(),
        bh_baselines::pgvector::PgvectorConfig {
            per_query_overhead: std::time::Duration::ZERO,
            ..Default::default()
        },
    );
    bh_bench::setup::load_baseline(&mut p, &data);
    p.finalize().unwrap();
    let q = data.queries(1, 5).remove(0);
    let t = std::time::Instant::now();
    for _ in 0..50 {
        p.search(&q, 5, &SearchParams::default(), None).unwrap();
    }
    // 50 queries without the 250µs sleep each complete far faster than the
    // 12.5ms the overhead alone would cost.
    assert!(t.elapsed() < std::time::Duration::from_millis(60));
}
