//! Model-based test of the multi-version storage semantics (Fig. 6):
//! random sequences of INSERT / UPDATE / DELETE / COMPACT are applied both
//! to a BlendHouse table and to a plain `HashMap` reference model; after
//! every step the visible contents must match the model exactly — the
//! strongest statement that delete bitmaps, version masking, and compaction
//! never lose or resurrect a row.

use bh_storage::predicate::Predicate;
use bh_storage::value::Value;
use blendhouse::Database;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    /// Insert `count` fresh rows.
    Insert { count: u8 },
    /// Update score of ids in `[lo, lo+span]`.
    Update { lo: u8, span: u8, score: u16 },
    /// Delete ids in `[lo, lo+span]`.
    Delete { lo: u8, span: u8 },
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..30).prop_map(|count| Op::Insert { count }),
        (0u8..120, 0u8..40, 0u16..1000)
            .prop_map(|(lo, span, score)| Op::Update { lo, span, score }),
        (0u8..120, 0u8..20).prop_map(|(lo, span)| Op::Delete { lo, span }),
        Just(Op::Compact),
    ]
}

fn fresh_db() -> Database {
    let db = Database::in_memory();
    db.execute(
        "CREATE TABLE t (id UInt64, score Int64, emb Array(Float32), \
         INDEX i emb TYPE FLAT('DIM=2')) ORDER BY id",
    )
    .unwrap();
    db
}

/// Read the full visible table state as id → score.
fn visible_state(db: &Database) -> HashMap<u64, i64> {
    let table = db.table("t").unwrap();
    let mut out = HashMap::new();
    for meta in table.segments() {
        let seg = table.load_segment(&meta).unwrap();
        let vis = table.visibility(&meta);
        for o in vis.iter() {
            let Value::UInt64(id) = seg.columns["id"].get(o) else { panic!() };
            let Value::Int64(score) = seg.columns["score"].get(o) else { panic!() };
            let prev = out.insert(id, score);
            assert!(prev.is_none(), "two visible versions of id {id}");
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..Default::default() })]

    #[test]
    fn random_op_sequences_match_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..14)
    ) {
        let db = fresh_db();
        let table = db.table("t").unwrap();
        let mut model: HashMap<u64, i64> = HashMap::new();
        let mut next_id: u64 = 0;

        for op in ops {
            match op {
                Op::Insert { count } => {
                    let mut values = Vec::new();
                    for _ in 0..count {
                        let id = next_id;
                        next_id += 1;
                        model.insert(id, 0);
                        values.push(format!("({id}, 0, [{}.0, 1.0])", id % 7));
                    }
                    db.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
                        .unwrap();
                }
                Op::Update { lo, span, score } => {
                    let (lo, hi) = (lo as u64, lo as u64 + span as u64);
                    let n = db
                        .execute(&format!(
                            "UPDATE t SET score = {score} WHERE id BETWEEN {lo} AND {hi}"
                        ))
                        .unwrap()
                        .affected();
                    let mut expected = 0;
                    for (id, s) in model.iter_mut() {
                        if (lo..=hi).contains(id) {
                            *s = score as i64;
                            expected += 1;
                        }
                    }
                    prop_assert_eq!(n, expected, "update count mismatch");
                }
                Op::Delete { lo, span } => {
                    let (lo, hi) = (lo as u64, lo as u64 + span as u64);
                    let n = db
                        .execute(&format!("DELETE FROM t WHERE id BETWEEN {lo} AND {hi}"))
                        .unwrap()
                        .affected();
                    let before = model.len();
                    model.retain(|id, _| !(lo..=hi).contains(id));
                    prop_assert_eq!(n, before - model.len(), "delete count mismatch");
                }
                Op::Compact => {
                    db.compact("t").unwrap();
                    prop_assert_eq!(
                        table.delete_map().total_deleted(),
                        0,
                        "compaction must clear delete bitmaps"
                    );
                }
            }
            // Invariant: visible state == model after every operation.
            let state = visible_state(&db);
            prop_assert_eq!(&state, &model, "visible state diverged from model");
            prop_assert_eq!(table.visible_rows(), model.len());
        }

        // Final: queries see exactly the model too (through the SQL path).
        let rs = db
            .execute(&format!("SELECT id, score FROM t LIMIT {}", model.len() + 10))
            .unwrap()
            .rows();
        prop_assert_eq!(rs.len(), model.len());
        for row in &rs.rows {
            let Value::UInt64(id) = row[0] else { panic!() };
            let Value::Int64(score) = row[1] else { panic!() };
            prop_assert_eq!(model.get(&id), Some(&score));
        }
    }
}
