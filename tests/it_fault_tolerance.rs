//! Fault tolerance (§II-E): query-level retry on worker failure, recovery
//! with cold caches, physical isolation between VWs, and data durability in
//! the disaggregated store.

use bh_bench::datasets::DatasetSpec;
use bh_bench::setup::{build_database, TableOptions};
use bh_bench::workloads::vector_search;
use blendhouse::DatabaseConfig;

fn setup(workers: usize) -> (blendhouse::Database, Vec<String>) {
    let data = DatasetSpec::tiny().generate();
    let mut cfg = DatabaseConfig { default_workers: workers, ..Default::default() };
    cfg.table.segment_max_rows = 60;
    let db = build_database(&data, cfg, &TableOptions::default());
    let sqls = vector_search(&data, 3, 6, 2)
        .iter()
        .map(|q| q.to_sql("bench", "emb"))
        .collect();
    (db, sqls)
}

#[test]
fn single_worker_failure_is_absorbed() {
    let (db, sqls) = setup(3);
    db.preload("bench", "default").unwrap();
    let expected: Vec<_> = sqls.iter().map(|s| db.execute(s).unwrap().rows()).collect();

    let vw = db.default_vw();
    let victim = vw.worker_ids()[1];
    vw.inject_failure(victim).unwrap();

    for (s, e) in sqls.iter().zip(&expected) {
        let rs = db.execute(s).unwrap().rows();
        assert_eq!(rs.rows, e.rows, "failure changed results");
    }
    assert_eq!(vw.worker_count(), 2, "dead worker evicted by retry");
    assert!(db.metrics().counter_value("vw.query_retries") >= 1);
}

#[test]
fn cascading_failures_until_one_worker_remains() {
    let (db, sqls) = setup(4);
    let vw = db.default_vw();
    let expected = db.execute(&sqls[0]).unwrap().rows();
    while vw.worker_count() > 1 {
        let victim = vw.worker_ids()[0];
        vw.inject_failure(victim).unwrap();
        let rs = db.execute(&sqls[0]).unwrap().rows();
        assert_eq!(rs.rows, expected.rows, "results drifted during failures");
    }
}

#[test]
fn recovered_worker_serves_again_with_cold_cache() {
    let (db, sqls) = setup(2);
    db.preload("bench", "default").unwrap();
    let vw = db.default_vw();
    let wid = vw.worker_ids()[0];
    let worker = vw.worker(wid).unwrap();
    worker.kill();
    assert!(!worker.is_alive());
    worker.recover();
    assert!(worker.is_alive());
    // Cold after recovery — but queries still answer (brute force/serving
    // fill in) and rewarm the cache.
    let rs = db.execute(&sqls[0]).unwrap().rows();
    assert_eq!(rs.len(), 6);
}

#[test]
fn vw_failure_does_not_cascade_to_other_vws() {
    let (db, sqls) = setup(2);
    db.create_vw("critical", 2);
    db.preload("bench", "critical").unwrap();
    // Kill every worker in the default VW.
    let vw = db.default_vw();
    for wid in vw.worker_ids() {
        vw.inject_failure(wid).unwrap();
    }
    assert!(db.execute(&sqls[0]).is_err(), "default VW is fully down");
    // The critical VW is physically isolated and keeps serving.
    let rs = db.query_on_vw("critical", &sqls[0], &db.default_options()).unwrap();
    assert_eq!(rs.len(), 6);
}

#[test]
fn data_survives_compute_loss_entirely() {
    let (db, sqls) = setup(2);
    let expected = db.execute(&sqls[0]).unwrap().rows();
    // Lose all compute: kill + evict every worker, then "reprovision".
    let vw = db.default_vw();
    let segments = db.table("bench").unwrap().segments();
    for wid in vw.worker_ids() {
        vw.scale_down(wid, &segments).unwrap();
    }
    assert!(db.execute(&sqls[0]).is_err());
    vw.scale_up(&segments);
    vw.scale_up(&segments);
    // Fresh stateless workers reconstruct everything from the remote store.
    let rs = db.execute(&sqls[0]).unwrap().rows();
    assert_eq!(rs.rows, expected.rows, "disaggregated state fully recovered");
}
