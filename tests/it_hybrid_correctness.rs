//! Hybrid-query correctness against a brute-force oracle: every strategy,
//! every index type, filtered and unfiltered, must agree with (or closely
//! track) exhaustive ground truth on clustered data.

use bh_bench::datasets::DatasetSpec;
use bh_bench::setup::{build_database, recall_of, result_ids, second_attr, TableOptions};
use bh_bench::workloads::{filtered_search, ground_truth, laion_search, vector_search};
use blendhouse::{QueryOptions, Strategy};

#[test]
fn every_strategy_tracks_ground_truth_on_filtered_search() {
    let data = DatasetSpec::tiny().generate();
    let db = build_database(
        &data,
        blendhouse::DatabaseConfig::default(),
        &TableOptions::default(),
    );
    let queries = filtered_search(&data, 8, 10, 0.5, 1);
    for strategy in [
        Strategy::BruteForce,
        Strategy::PreFilter,
        Strategy::PostFilter,
        Strategy::FilteredTraversal,
    ] {
        let opts = QueryOptions {
            forced_strategy: Some(strategy),
            search: bh_vector::SearchParams::default().with_ef(128),
            ..db.default_options()
        };
        let mut total = 0.0;
        for q in &queries {
            let rs = db.execute_with(&q.to_sql("bench", "emb"), &opts).unwrap().rows();
            let truth = ground_truth(&data, q, None);
            total += recall_of(&result_ids(&rs), &truth);
        }
        let recall = total / queries.len() as f64;
        assert!(recall >= 0.9, "{strategy:?} recall {recall} below floor");
    }
}

#[test]
fn brute_force_strategy_is_exact() {
    let data = DatasetSpec::tiny().generate();
    let db = build_database(
        &data,
        blendhouse::DatabaseConfig::default(),
        &TableOptions::default(),
    );
    let opts = QueryOptions {
        forced_strategy: Some(Strategy::BruteForce),
        ..db.default_options()
    };
    for q in &filtered_search(&data, 10, 8, 0.3, 2) {
        let rs = db.execute_with(&q.to_sql("bench", "emb"), &opts).unwrap().rows();
        let truth = ground_truth(&data, q, None);
        assert_eq!(
            recall_of(&result_ids(&rs), &truth),
            1.0,
            "brute force must be exact for {q:?}"
        );
    }
}

#[test]
fn all_index_kinds_answer_hybrid_queries() {
    let data = DatasetSpec::tiny().generate();
    for kind in ["FLAT", "HNSW", "HNSWSQ", "IVFFLAT", "IVFPQ", "IVFPQFS", "DISKANN"] {
        let db = build_database(
            &data,
            blendhouse::DatabaseConfig::default(),
            &TableOptions {
                index_clause: Some(format!("{kind}('DIM={}')", data.dim())),
                ..Default::default()
            },
        );
        let opts = QueryOptions {
            search: bh_vector::SearchParams::default().with_ef(128).with_nprobe(16),
            ..db.default_options()
        };
        let q = &filtered_search(&data, 1, 5, 0.6, 3)[0];
        let rs = db.execute_with(&q.to_sql("bench", "emb"), &opts).unwrap().rows();
        let truth = ground_truth(&data, q, None);
        let recall = recall_of(&result_ids(&rs), &truth);
        assert!(recall >= 0.6, "{kind}: recall {recall} unreasonably low");
        // Filter semantics must hold exactly regardless of index.
        let (_, lo, hi) = &q.ranges[0];
        for id in result_ids(&rs) {
            let x = data.rand_int[id as usize];
            assert!(x >= *lo && x <= *hi, "{kind} returned row outside filter");
        }
    }
}

#[test]
fn multi_predicate_laion_style_queries() {
    let data = DatasetSpec::tiny().generate().with_captions();
    let db = build_database(
        &data,
        blendhouse::DatabaseConfig::default(),
        &TableOptions::default(),
    );
    let queries = laion_search(&data, 6, 5, 4);
    for q in &queries {
        let rs = db.execute(&q.to_sql("bench", "emb")).unwrap().rows();
        let truth = ground_truth(&data, q, None);
        if truth.is_empty() {
            assert!(rs.is_empty());
            continue;
        }
        // Exact filter semantics: regex + similarity floor hold on results.
        let re = bh_common::regex_lite::Regex::new(q.regex.as_ref().unwrap()).unwrap();
        for id in result_ids(&rs) {
            assert!(re.is_match(&data.captions[id as usize]));
            assert!(data.similarity[id as usize] >= q.similarity_floor.unwrap());
        }
    }
}

#[test]
fn second_attribute_conjunction() {
    let data = DatasetSpec::tiny().generate();
    let db = build_database(
        &data,
        blendhouse::DatabaseConfig::default(),
        &TableOptions::default(),
    );
    let ys = second_attr(&data);
    let mut q = vector_search(&data, 1, 10, 5)[0].clone();
    q.ranges.push(("x".into(), 0, 600_000));
    q.ranges.push(("y".into(), 200_000, 900_000));
    let rs = db.execute(&q.to_sql("bench", "emb")).unwrap().rows();
    for id in result_ids(&rs) {
        assert!((0..=600_000).contains(&data.rand_int[id as usize]));
        assert!((200_000..=900_000).contains(&ys[id as usize]));
    }
    let truth = ground_truth(&data, &q, Some(&ys));
    assert!(recall_of(&result_ids(&rs), &truth) >= 0.8);
}

#[test]
fn semantic_pruning_preserves_correctness_via_adaptive_expansion() {
    let data = DatasetSpec::tiny().generate();
    let mut cfg = blendhouse::DatabaseConfig::default();
    cfg.table.segment_max_rows = 64;
    let db = build_database(
        &data,
        cfg,
        &TableOptions {
            cluster_clause: "CLUSTER BY emb INTO 4 BUCKETS".into(),
            ..Default::default()
        },
    );
    let opts = QueryOptions {
        prune: bh_cluster::scheduler::PruneConfig {
            scalar: true,
            semantic_fraction: 0.25,
            min_segments: 1,
        },
        ..db.default_options()
    };
    for q in &vector_search(&data, 6, 10, 6) {
        let rs = db.execute_with(&q.to_sql("bench", "emb"), &opts).unwrap().rows();
        assert_eq!(rs.len(), 10, "pruning must not shrink the result set");
        let truth = ground_truth(&data, q, None);
        let recall = recall_of(&result_ids(&rs), &truth);
        assert!(recall >= 0.8, "pruned recall {recall}");
    }
}
