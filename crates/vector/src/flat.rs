//! Exact brute-force index.
//!
//! `FLAT` stores raw vectors and scans them all. It is simultaneously:
//!
//! * the correctness oracle every ANN test measures recall against,
//! * the physical operator behind **Plan A** (brute-force after scalar
//!   filtering, Eq. 1) and the cache-miss fallback path (§II-D), and
//! * the exact-distance source for refine steps on quantized indexes.

use crate::codec::{Reader, Writer};
use crate::distance::distance_batch;
use crate::iterator::SearchIterator;
use crate::types::{check_batch, IndexBuilder, IndexMeta, IndexSpec, Neighbor, SearchParams, VectorIndex};
use crate::{IndexKind, Metric};
use bh_common::{Bitset, Result, SharedBound, TopK};
use bytes::Bytes;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"BHFL";
const VERSION: u16 = 1;

/// Rows per `distance_batch` call on the unfiltered scan path. Large enough
/// to amortize kernel dispatch, small enough that a block of distances stays
/// in L1.
const SCAN_BLOCK_ROWS: usize = 256;

/// Exact scan index over raw `f32` vectors.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    dim: usize,
    metric: Metric,
    ids: Vec<u64>,
    data: Vec<f32>,
}

impl FlatIndex {
    /// Raw vector stored at `row`.
    pub fn vector(&self, row: usize) -> &[f32] {
        &self.data[row * self.dim..(row + 1) * self.dim]
    }

    /// Direct access to a vector by its id label (linear scan in the id
    /// table; used only by refine paths on small candidate sets).
    pub fn vector_by_id(&self, id: u64) -> Option<&[f32]> {
        self.ids.iter().position(|&x| x == id).map(|row| self.vector(row))
    }

    /// Run `visit(row, distance)` over every stored row using the batched
    /// kernel; used by the unfiltered scan paths.
    fn scan_all(&self, query: &[f32], mut visit: impl FnMut(usize, f32)) -> Result<()> {
        let n = self.ids.len();
        let mut out = [0.0f32; SCAN_BLOCK_ROWS];
        let mut row = 0;
        while row < n {
            let rows = SCAN_BLOCK_ROWS.min(n - row);
            let block = &self.data[row * self.dim..(row + rows) * self.dim];
            distance_batch(self.metric, query, block, self.dim, &mut out[..rows])?;
            for (r, &d) in out[..rows].iter().enumerate() {
                visit(row + r, d);
            }
            row += rows;
        }
        Ok(())
    }

    /// Deserialize an index written by [`VectorIndex::save_bytes`].
    pub fn load_bytes(bytes: &[u8]) -> Result<FlatIndex> {
        let mut r = Reader::new(bytes);
        let _v = r.expect_header(MAGIC)?;
        let dim = r.get_u64()? as usize;
        let metric = metric_from_u8(r.get_u8()?)?;
        let ids = r.get_u64_vec()?;
        let data = r.get_f32_vec()?;
        if dim == 0 || data.len() != ids.len() * dim {
            return Err(bh_common::BhError::Serde("flat: corrupt geometry".into()));
        }
        Ok(FlatIndex { dim, metric, ids, data })
    }
}

pub(crate) fn metric_to_u8(m: Metric) -> u8 {
    match m {
        Metric::L2 => 0,
        Metric::InnerProduct => 1,
        Metric::Cosine => 2,
    }
}

pub(crate) fn metric_from_u8(v: u8) -> Result<Metric> {
    match v {
        0 => Ok(Metric::L2),
        1 => Ok(Metric::InnerProduct),
        2 => Ok(Metric::Cosine),
        x => Err(bh_common::BhError::Serde(format!("bad metric byte {x}"))),
    }
}

impl VectorIndex for FlatIndex {
    fn meta(&self) -> IndexMeta {
        IndexMeta { kind: IndexKind::Flat, dim: self.dim, metric: self.metric, len: self.ids.len() }
    }

    fn search_with_filter(
        &self,
        query: &[f32],
        k: usize,
        _params: &SearchParams,
        filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>> {
        self.check_query(query)?;
        let mut tk = TopK::new(k);
        match filter {
            Some(f) => {
                // Selective path: skip excluded rows before paying for the
                // distance, one row at a time.
                for row in 0..self.ids.len() {
                    if !f.contains(self.ids[row] as usize) {
                        continue;
                    }
                    let d = self.metric.distance(query, self.vector(row));
                    tk.push(d, self.ids[row]);
                }
            }
            None => self.scan_all(query, |row, d| {
                tk.push(d, self.ids[row]);
            })?,
        }
        Ok(tk.into_sorted().into_iter().map(|s| Neighbor::new(s.item, s.distance)).collect())
    }

    fn search_with_bound(
        &self,
        query: &[f32],
        k: usize,
        _params: &SearchParams,
        filter: Option<&Bitset>,
        bound: Option<&SharedBound>,
    ) -> Result<Vec<Neighbor>> {
        let Some(b) = bound else {
            return self.search_with_filter(query, k, _params, filter);
        };
        self.check_query(query)?;
        // FLAT distances are exact, so candidates beaten by the shared bound
        // can be dropped and our own k-th distance can be published.
        let mut tk = TopK::new(k);
        let mut skipped = 0u64;
        match filter {
            Some(f) => {
                for row in 0..self.ids.len() {
                    if !f.contains(self.ids[row] as usize) {
                        continue;
                    }
                    let d = self.metric.distance(query, self.vector(row));
                    if d > b.get() {
                        skipped += 1;
                        continue;
                    }
                    if tk.push(d, self.ids[row]) && tk.is_full() {
                        b.update(tk.threshold());
                    }
                }
            }
            None => self.scan_all(query, |row, d| {
                if d > b.get() {
                    skipped += 1;
                    return;
                }
                if tk.push(d, self.ids[row]) && tk.is_full() {
                    b.update(tk.threshold());
                }
            })?,
        }
        b.record_skips(skipped);
        Ok(tk.into_sorted().into_iter().map(|s| Neighbor::new(s.item, s.distance)).collect())
    }

    fn search_with_range(
        &self,
        query: &[f32],
        radius: f32,
        _params: &SearchParams,
        filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>> {
        self.check_query(query)?;
        let mut out = Vec::new();
        match filter {
            Some(f) => {
                for row in 0..self.ids.len() {
                    if !f.contains(self.ids[row] as usize) {
                        continue;
                    }
                    let d = self.metric.distance(query, self.vector(row));
                    if d <= radius {
                        out.push(Neighbor::new(self.ids[row], d));
                    }
                }
            }
            None => self.scan_all(query, |row, d| {
                if d <= radius {
                    out.push(Neighbor::new(self.ids[row], d));
                }
            })?,
        }
        out.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        Ok(out)
    }

    fn search_iterator<'a>(
        &'a self,
        query: &[f32],
        _params: &SearchParams,
    ) -> Result<Box<dyn SearchIterator + 'a>> {
        self.check_query(query)?;
        Ok(Box::new(FlatIterator {
            index: self,
            query: query.to_vec(),
            sorted: None,
            cursor: 0,
        }))
    }

    fn has_native_iterator(&self) -> bool {
        true
    }

    fn memory_usage(&self) -> usize {
        self.data.len() * 4 + self.ids.len() * 8 + std::mem::size_of::<Self>()
    }

    fn save_bytes(&self) -> Result<Bytes> {
        let mut w = Writer::with_header(MAGIC, VERSION);
        w.put_u64(self.dim as u64);
        w.put_u8(metric_to_u8(self.metric));
        w.put_u64_slice(&self.ids);
        w.put_f32_slice(&self.data);
        Ok(w.finish())
    }
}

/// Native iterator: one full distance pass on first use, then streamed.
/// "Native" means additional batches cost nothing beyond the initial scan —
/// no doubled-k restarts.
struct FlatIterator<'a> {
    index: &'a FlatIndex,
    query: Vec<f32>,
    sorted: Option<Vec<Neighbor>>,
    cursor: usize,
}

impl SearchIterator for FlatIterator<'_> {
    fn next_batch(&mut self, n: usize) -> Result<Vec<Neighbor>> {
        if self.sorted.is_none() {
            let mut all: Vec<Neighbor> = Vec::with_capacity(self.index.ids.len());
            self.index.scan_all(&self.query, |row, d| {
                all.push(Neighbor::new(self.index.ids[row], d));
            })?;
            all.sort_by(|a, b| a.distance.total_cmp(&b.distance));
            self.sorted = Some(all);
        }
        // lint: allow(panic) - the branch directly above assigns `Some(all)`
        // whenever `sorted` was `None`
        let sorted = self.sorted.as_ref().expect("initialized above");
        let end = (self.cursor + n).min(sorted.len());
        let out = sorted[self.cursor..end].to_vec();
        self.cursor = end;
        Ok(out)
    }

    fn visited(&self) -> usize {
        if self.sorted.is_some() {
            self.index.ids.len()
        } else {
            0
        }
    }

    fn exhausted(&self) -> bool {
        self.sorted.as_ref().map(|s| self.cursor >= s.len()).unwrap_or(false)
    }
}

/// Builder for [`FlatIndex`]. Training is a no-op.
#[derive(Debug)]
pub struct FlatBuilder {
    dim: usize,
    metric: Metric,
    ids: Vec<u64>,
    data: Vec<f32>,
}

impl FlatBuilder {
    /// A builder validated against `spec`.
    pub fn new(spec: &IndexSpec) -> Result<FlatBuilder> {
        spec.validate()?;
        Ok(FlatBuilder { dim: spec.dim, metric: spec.metric, ids: Vec::new(), data: Vec::new() })
    }
}

impl IndexBuilder for FlatBuilder {
    fn train(&mut self, _sample: &[f32]) -> Result<()> {
        Ok(())
    }

    fn add_with_ids(&mut self, vectors: &[f32], ids: &[u64]) -> Result<()> {
        check_batch(self.dim, vectors, ids)?;
        self.data.extend_from_slice(vectors);
        self.ids.extend_from_slice(ids);
        Ok(())
    }

    fn finish(self: Box<Self>) -> Result<Arc<dyn VectorIndex>> {
        Ok(Arc::new(FlatIndex { dim: self.dim, metric: self.metric, ids: self.ids, data: self.data }))
    }

    fn requires_training(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_common::rng::rng;
    use rand::Rng;

    fn build(n: usize, dim: usize, metric: Metric, seed: u64) -> (Arc<dyn VectorIndex>, Vec<f32>) {
        let mut r = rng(seed);
        let data: Vec<f32> = (0..n * dim).map(|_| r.gen_range(-1.0f32..1.0)).collect();
        let ids: Vec<u64> = (0..n as u64).collect();
        let spec = IndexSpec::new(IndexKind::Flat, dim, metric);
        let mut b = Box::new(FlatBuilder::new(&spec).unwrap());
        b.add_with_ids(&data, &ids).unwrap();
        ((b as Box<dyn IndexBuilder>).finish().unwrap(), data)
    }

    #[test]
    fn topk_matches_manual_sort() {
        let dim = 8;
        let (idx, data) = build(100, dim, Metric::L2, 1);
        let q: Vec<f32> = data[0..dim].to_vec();
        let got = idx.search_with_filter(&q, 5, &SearchParams::default(), None).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].id, 0, "nearest to itself");
        assert_eq!(got[0].distance, 0.0);
        for w in got.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn filter_restricts_results() {
        let dim = 4;
        let (idx, data) = build(50, dim, Metric::L2, 2);
        let q: Vec<f32> = data[0..dim].to_vec();
        let allowed = Bitset::from_positions(50, [10, 20, 30]);
        let got = idx.search_with_filter(&q, 10, &SearchParams::default(), Some(&allowed)).unwrap();
        assert_eq!(got.len(), 3);
        for nb in &got {
            assert!([10, 20, 30].contains(&nb.id));
        }
    }

    #[test]
    fn empty_filter_returns_nothing() {
        let dim = 4;
        let (idx, data) = build(10, dim, Metric::L2, 3);
        let q: Vec<f32> = data[0..dim].to_vec();
        let empty = Bitset::new(10);
        let got = idx.search_with_filter(&q, 5, &SearchParams::default(), Some(&empty)).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn range_search_returns_exactly_within_radius() {
        let dim = 2;
        let (idx, data) = build(200, dim, Metric::L2, 4);
        let q: Vec<f32> = data[0..dim].to_vec();
        let radius = 0.3;
        let got = idx.search_with_range(&q, radius, &SearchParams::default(), None).unwrap();
        // Verify against a manual scan.
        let mut expect = 0;
        for row in 0..200 {
            let d = Metric::L2.distance(&q, &data[row * dim..(row + 1) * dim]);
            if d <= radius {
                expect += 1;
            }
        }
        assert_eq!(got.len(), expect);
        for nb in &got {
            assert!(nb.distance <= radius);
        }
    }

    #[test]
    fn k_larger_than_n() {
        let (idx, data) = build(3, 4, Metric::L2, 5);
        let got = idx.search_with_filter(&data[0..4], 100, &SearchParams::default(), None).unwrap();
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (idx, _) = build(3, 4, Metric::L2, 6);
        assert!(idx.search_with_filter(&[0.0; 3], 1, &SearchParams::default(), None).is_err());
        assert!(idx.search_with_range(&[0.0; 5], 1.0, &SearchParams::default(), None).is_err());
    }

    #[test]
    fn native_iterator_streams_all_rows_once() {
        let dim = 4;
        let (idx, data) = build(25, dim, Metric::L2, 7);
        let q = data[0..dim].to_vec();
        let params = SearchParams::default();
        let mut it = idx.search_iterator(&q, &params).unwrap();
        let mut seen = Vec::new();
        loop {
            let b = it.next_batch(7).unwrap();
            if b.is_empty() {
                break;
            }
            seen.extend(b);
        }
        assert_eq!(seen.len(), 25);
        assert_eq!(it.visited(), 25, "native iterator visits each row once");
        for w in seen.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_results() {
        let dim = 8;
        let (idx, data) = build(40, dim, Metric::Cosine, 8);
        let blob = idx.save_bytes().unwrap();
        let idx2 = FlatIndex::load_bytes(&blob).unwrap();
        let q = &data[0..dim];
        let a = idx.search_with_filter(q, 5, &SearchParams::default(), None).unwrap();
        let b = idx2.search_with_filter(q, 5, &SearchParams::default(), None).unwrap();
        assert_eq!(a, b);
        assert_eq!(idx2.meta().metric, Metric::Cosine);
    }

    #[test]
    fn corrupt_blob_rejected() {
        let (idx, _) = build(4, 2, Metric::L2, 9);
        let blob = idx.save_bytes().unwrap();
        assert!(FlatIndex::load_bytes(&blob[..10]).is_err());
        let mut garbled = blob.to_vec();
        garbled[0] ^= 0xFF;
        assert!(FlatIndex::load_bytes(&garbled).is_err());
    }

    #[test]
    fn inner_product_ranks_by_dot() {
        let spec = IndexSpec::new(IndexKind::Flat, 2, Metric::InnerProduct);
        let mut b = Box::new(FlatBuilder::new(&spec).unwrap());
        b.add_with_ids(&[1.0, 0.0, 10.0, 0.0, 5.0, 0.0], &[0, 1, 2]).unwrap();
        let idx = (b as Box<dyn IndexBuilder>).finish().unwrap();
        let got = idx.search_with_filter(&[1.0, 0.0], 3, &SearchParams::default(), None).unwrap();
        let ids: Vec<u64> = got.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 2, 0], "largest dot product first");
    }
}
