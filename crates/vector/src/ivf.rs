//! Inverted-file indexes: `IVFFLAT`, `IVFPQ`, `IVFPQFS`.
//!
//! Vectors are partitioned into `nlist` cells by a k-means coarse quantizer;
//! a query probes the `nprobe` nearest cells. Payload variants:
//!
//! * `IVFFLAT` — raw vectors per cell, exact in-cell distances.
//! * `IVFPQ` — 8-bit product-quantized **residuals** (vector minus its cell
//!   centroid), scanned with per-cell ADC tables.
//! * `IVFPQFS` — 4-bit PQ residuals stored in the 32-vector *blocked*
//!   fast-scan layout and scanned with in-register shuffle LUTs
//!   ([`crate::quant::fastscan`]): smallest memory and fastest scan of the
//!   three, lowest recall — the trade-off Table V / Table VI / Fig. 13
//!   characterize.
//!
//! PQ variants report approximate distances and set
//! [`VectorIndex::needs_refine`], letting the executor re-rank `σ·k`
//! candidates with exact distances (the refine term in cost Eqs. 2–3).
//!
//! Quantized scans still participate in cross-segment [`SharedBound`]
//! pruning: the index records the worst per-subspace encoding error at build
//! time, which yields a sound *lower bound* on any candidate's exact
//! distance (DESIGN.md §10). Candidates whose lower bound exceeds the shared
//! exact threshold are dropped after the scan; approximate distances are
//! never *published* to the bound.

use crate::codec::{Reader, Writer};
use crate::flat::{metric_from_u8, metric_to_u8};
use crate::iterator::{GenericSearchIterator, SearchIterator};
use crate::kmeans::{train_kmeans, KMeans, KMeansParams};
use crate::quant::fastscan::FastScanCodes;
use crate::quant::pq::{AdcTable, CodeBits, Pq, PqParams};
use crate::types::{
    check_batch, IndexBuilder, IndexMeta, IndexSpec, Neighbor, SearchParams, VectorIndex,
};
use crate::distance::distance_batch;
use crate::{distance, IndexKind, Metric};
use bh_common::{BhError, Bitset, Result, SharedBound, TopK};
use bytes::Bytes;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"BHIV";
/// v2 appends the per-subspace worst-case encoding errors for PQ payloads
/// (the margins behind bound-aware quantized pruning); v1 blobs still load,
/// with margins absent and bound pruning disabled.
const VERSION: u16 = 2;

/// PQ code storage. 8-bit codes stay packed per cell; 4-bit codes keep only
/// the blocked fast-scan transpose (same byte count, register-shuffle
/// friendly) and reconstruct packed bytes on demand for serialization.
#[derive(Debug, Clone)]
enum PqStore {
    Bytes(Vec<Vec<u8>>),
    Blocked(Vec<FastScanCodes>),
}

/// Per-cell payload.
#[derive(Debug, Clone)]
enum Cells {
    Flat {
        vectors: Vec<Vec<f32>>,
    },
    Pq {
        pq: Pq,
        store: PqStore,
        /// Per-subspace maximum squared encoding error over every stored
        /// vector (`m` entries). `sqrt(sum)` bounds any stored vector's
        /// reconstruction error — the margin that makes pruning quantized
        /// distances against an exact bound sound. `None` for v1 blobs.
        margins: Option<Vec<f32>>,
    },
}

/// An immutable IVF index.
#[derive(Debug)]
pub struct IvfIndex {
    dim: usize,
    metric: Metric,
    kind: IndexKind,
    coarse: KMeans,
    /// Per-cell row labels.
    ids: Vec<Vec<u64>>,
    cells: Cells,
    len: usize,
}

impl IvfIndex {
    /// Number of coarse cells.
    pub fn nlist(&self) -> usize {
        self.coarse.k
    }

    /// Cosine queries are searched in normalized space; scale L2² on unit
    /// vectors back to cosine distance (`1 - cos = l2²/2`).
    fn post_scale(&self) -> f32 {
        if self.metric == Metric::Cosine {
            0.5
        } else {
            1.0
        }
    }

    fn effective_metric(&self) -> Metric {
        if self.metric == Metric::Cosine {
            Metric::L2
        } else {
            self.metric
        }
    }

    fn prep_query(&self, query: &[f32]) -> Vec<f32> {
        let mut q = query.to_vec();
        if self.metric == Metric::Cosine {
            distance::normalize(&mut q);
        }
        q
    }

    /// Scan one cell, pushing (possibly approximate) distances into `tk`.
    fn scan_cell(
        &self,
        cell: usize,
        q: &[f32],
        filter: Option<&Bitset>,
        tk: &mut TopK<u64>,
        visited: &mut usize,
    ) {
        let scale = self.post_scale();
        match &self.cells {
            Cells::Flat { vectors } => {
                let cell_ids = &self.ids[cell];
                if filter.is_none() && !cell_ids.is_empty() {
                    // The whole posting list is scanned: use the batched
                    // kernel over the cell's contiguous row-major block.
                    *visited += cell_ids.len();
                    let mut out = vec![0.0f32; cell_ids.len()];
                    if distance_batch(self.effective_metric(), q, &vectors[cell], self.dim, &mut out)
                        .is_ok()
                    {
                        for (&d, &id) in out.iter().zip(cell_ids) {
                            tk.push(d * scale, id);
                        }
                        return;
                    }
                    *visited -= cell_ids.len();
                }
                for (i, &id) in cell_ids.iter().enumerate() {
                    *visited += 1;
                    if let Some(f) = filter {
                        if !f.contains(id as usize) {
                            continue;
                        }
                    }
                    let d = self.effective_metric().distance(q, &vectors[cell][i * self.dim..(i + 1) * self.dim]);
                    tk.push(d * scale, id);
                }
            }
            Cells::Pq { pq, store, .. } => {
                // Residual ADC table for this cell.
                let centroid = self.coarse.centroid(cell);
                let resid: Vec<f32> = q.iter().zip(centroid).map(|(a, b)| a - b).collect();
                let Ok(table) = pq.adc_table(&resid) else { return };
                let mut out = Vec::new();
                self.pq_cell_distances(pq, store, cell, &table, &mut out);
                for (i, &id) in self.ids[cell].iter().enumerate() {
                    *visited += 1;
                    if let Some(f) = filter {
                        if !f.contains(id as usize) {
                            continue;
                        }
                    }
                    tk.push(out[i] * scale, id);
                }
            }
        }
    }

    /// Fill `out` with the (unscaled) approximate distance of every row in
    /// `cell`. Returns the quantization error bound of the produced values:
    /// positive when the u8 fast-scan kernel ran, zero when the exact f32
    /// ADC table was used. Both [`Self::scan_cell`] and the bound-aware path
    /// go through here so batched and sequential executions see identical
    /// candidate distances.
    fn pq_cell_distances(
        &self,
        pq: &Pq,
        store: &PqStore,
        cell: usize,
        table: &AdcTable,
        out: &mut Vec<f32>,
    ) -> f32 {
        let n = self.ids[cell].len();
        out.clear();
        out.resize(n, 0.0);
        match store {
            PqStore::Bytes(codes) => {
                let cs = pq.code_size();
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = table.distance(&codes[cell][i * cs..(i + 1) * cs]);
                }
                0.0
            }
            PqStore::Blocked(cells) => {
                let codes = &cells[cell];
                if let Some(lut) = table.quantized() {
                    if lut.scan(codes, out).is_ok() {
                        return lut.error_bound();
                    }
                }
                // Unquantizable table: exact f32 ADC over reconstructed
                // per-vector codes.
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = table.distance(&codes.code_bytes(i));
                }
                0.0
            }
        }
    }

    /// Deserialize an index written by [`VectorIndex::save_bytes`].
    /// Accepts both the current v2 layout and v1 blobs (which carry no
    /// margin section — bound-aware pruning is then disabled).
    pub fn load_bytes(bytes: &[u8]) -> Result<IvfIndex> {
        let mut r = Reader::new(bytes);
        let version = r.expect_header(MAGIC)?;
        let kind = match r.get_u8()? {
            0 => IndexKind::IvfFlat,
            1 => IndexKind::IvfPq,
            2 => IndexKind::IvfPqFs,
            x => return Err(BhError::Serde(format!("ivf: bad kind byte {x}"))),
        };
        let dim = r.get_u64()? as usize;
        let metric = metric_from_u8(r.get_u8()?)?;
        let nlist = r.get_u64()? as usize;
        let centroids = r.get_f32_vec()?;
        if dim == 0 || centroids.len() != nlist * dim {
            return Err(BhError::Serde("ivf: corrupt centroids".into()));
        }
        let coarse = KMeans { dim, k: nlist, centroids };
        let mut ids = Vec::with_capacity(nlist);
        for _ in 0..nlist {
            ids.push(r.get_u64_vec()?);
        }
        let len = ids.iter().map(|v| v.len()).sum();
        let cells = match r.get_u8()? {
            0 => {
                let mut vectors = Vec::with_capacity(nlist);
                for _ in 0..nlist {
                    vectors.push(r.get_f32_vec()?);
                }
                Cells::Flat { vectors }
            }
            1 => {
                let pq = Pq::load(&mut r)?;
                let cs = pq.code_size();
                let mut codes = Vec::with_capacity(nlist);
                for cell_ids in ids.iter().take(nlist) {
                    let cell = r.get_bytes()?;
                    if cell.len() != cell_ids.len() * cs {
                        return Err(BhError::Serde("ivf: pq cell size mismatch".into()));
                    }
                    codes.push(cell);
                }
                let store = match pq.bits() {
                    CodeBits::B8 => PqStore::Bytes(codes),
                    CodeBits::B4 => {
                        // Rebuild the blocked fast-scan transpose from the
                        // on-disk packed layout.
                        let mut blocked = Vec::with_capacity(nlist);
                        for cell in &codes {
                            let mut fc = FastScanCodes::new(cs);
                            for code in cell.chunks_exact(cs) {
                                fc.push(code)?;
                            }
                            blocked.push(fc);
                        }
                        PqStore::Blocked(blocked)
                    }
                };
                let margins = if version >= 2 {
                    match r.get_u8()? {
                        0 => None,
                        1 => {
                            let mg = r.get_f32_vec()?;
                            if mg.len() != pq.m() {
                                return Err(BhError::Serde("ivf: corrupt margin section".into()));
                            }
                            Some(mg)
                        }
                        x => return Err(BhError::Serde(format!("ivf: bad margin flag {x}"))),
                    }
                } else {
                    None
                };
                Cells::Pq { pq, store, margins }
            }
            x => return Err(BhError::Serde(format!("ivf: bad payload byte {x}"))),
        };
        Ok(IvfIndex { dim, metric, kind, coarse, ids, cells, len })
    }

    fn kind_byte(&self) -> Result<u8> {
        match self.kind {
            IndexKind::IvfFlat => Ok(0),
            IndexKind::IvfPq => Ok(1),
            IndexKind::IvfPqFs => Ok(2),
            _ => Err(BhError::Internal("ivf: impossible kind".into())),
        }
    }

    /// Serialize as `(head, body)` sections for the v3 tiered container.
    ///
    /// The head carries the coarse centroids (plus the PQ codebook and
    /// margins for quantized payloads) — everything a cold worker needs to
    /// route queries to cells. The body carries the posting lists: per-cell
    /// ids and vector/code payloads.
    pub fn save_tiered_parts(&self) -> Result<(Bytes, Bytes)> {
        let mut hw = Writer::with_header(HEAD_MAGIC, TIERED_PART_VERSION);
        hw.put_u8(self.kind_byte()?);
        hw.put_u64(self.dim as u64);
        hw.put_u8(metric_to_u8(self.metric));
        hw.put_u64(self.len as u64);
        hw.put_u64(self.nlist() as u64);
        hw.put_f32_slice(&self.coarse.centroids);
        match &self.cells {
            Cells::Flat { .. } => hw.put_u8(0),
            Cells::Pq { pq, margins, .. } => {
                hw.put_u8(1);
                pq.save(&mut hw);
                match margins {
                    Some(mg) => {
                        hw.put_u8(1);
                        hw.put_f32_slice(mg);
                    }
                    None => hw.put_u8(0),
                }
            }
        }

        let mut bw = Writer::with_header(BODY_MAGIC, TIERED_PART_VERSION);
        for cell in &self.ids {
            bw.put_u64_slice(cell);
        }
        match &self.cells {
            Cells::Flat { vectors } => {
                for v in vectors {
                    bw.put_f32_slice(v);
                }
            }
            Cells::Pq { store, .. } => match store {
                PqStore::Bytes(codes) => {
                    for c in codes {
                        bw.put_bytes(c);
                    }
                }
                PqStore::Blocked(cells) => {
                    let mut buf = Vec::new();
                    for c in cells {
                        buf.clear();
                        for i in 0..c.len() {
                            buf.extend(c.code_bytes(i));
                        }
                        bw.put_bytes(&buf);
                    }
                }
            },
        }
        Ok((hw.finish(), bw.finish()))
    }

    /// Reconstruct a full index from tiered `(head, body)` sections written
    /// by [`IvfIndex::save_tiered_parts`].
    pub fn load_tiered_parts(head: &[u8], body: &[u8]) -> Result<IvfIndex> {
        let h = IvfHead::parse(head)?;
        let mut r = Reader::new(body);
        r.expect_header(BODY_MAGIC)?;
        let nlist = h.coarse.k;
        let mut ids = Vec::with_capacity(nlist);
        for _ in 0..nlist {
            ids.push(r.get_u64_vec()?);
        }
        let len: usize = ids.iter().map(|v| v.len()).sum();
        if len != h.len {
            return Err(BhError::Serde(format!(
                "ivf tiered: head says {} rows, body holds {len}",
                h.len
            )));
        }
        let cells = match h.payload {
            IvfHeadPayload::Flat => {
                let mut vectors = Vec::with_capacity(nlist);
                for _ in 0..nlist {
                    vectors.push(r.get_f32_vec()?);
                }
                Cells::Flat { vectors }
            }
            IvfHeadPayload::Pq { pq, margins } => {
                let cs = pq.code_size();
                let mut codes = Vec::with_capacity(nlist);
                for cell_ids in ids.iter().take(nlist) {
                    let cell = r.get_bytes()?;
                    if cell.len() != cell_ids.len() * cs {
                        return Err(BhError::Serde("ivf tiered: pq cell size mismatch".into()));
                    }
                    codes.push(cell);
                }
                let store = match pq.bits() {
                    CodeBits::B8 => PqStore::Bytes(codes),
                    CodeBits::B4 => {
                        let mut blocked = Vec::with_capacity(nlist);
                        for cell in &codes {
                            let mut fc = FastScanCodes::new(cs);
                            for code in cell.chunks_exact(cs) {
                                fc.push(code)?;
                            }
                            blocked.push(fc);
                        }
                        PqStore::Blocked(blocked)
                    }
                };
                Cells::Pq { pq, store, margins }
            }
        };
        Ok(IvfIndex { dim: h.dim, metric: h.metric, kind: h.kind, coarse: h.coarse, ids, cells, len })
    }
}

/// Magic for the head section of a tiered IVF blob.
const HEAD_MAGIC: &[u8; 4] = b"BHIH";
/// Magic for the body section of a tiered IVF blob.
const BODY_MAGIC: &[u8; 4] = b"BHIB";
const TIERED_PART_VERSION: u16 = 1;

enum IvfHeadPayload {
    Flat,
    Pq { pq: Pq, margins: Option<Vec<f32>> },
}

/// Parsed head section of a tiered IVF blob.
struct IvfHead {
    kind: IndexKind,
    dim: usize,
    metric: Metric,
    len: usize,
    coarse: KMeans,
    payload: IvfHeadPayload,
}

impl IvfHead {
    fn parse(head: &[u8]) -> Result<IvfHead> {
        let mut r = Reader::new(head);
        r.expect_header(HEAD_MAGIC)?;
        let kind = match r.get_u8()? {
            0 => IndexKind::IvfFlat,
            1 => IndexKind::IvfPq,
            2 => IndexKind::IvfPqFs,
            x => return Err(BhError::Serde(format!("ivf head: bad kind byte {x}"))),
        };
        let dim = r.get_u64()? as usize;
        let metric = metric_from_u8(r.get_u8()?)?;
        let len = r.get_u64()? as usize;
        let nlist = r.get_u64()? as usize;
        let centroids = r.get_f32_vec()?;
        if dim == 0 || centroids.len() != nlist * dim {
            return Err(BhError::Serde("ivf head: corrupt centroids".into()));
        }
        let coarse = KMeans { dim, k: nlist, centroids };
        let payload = match r.get_u8()? {
            0 => IvfHeadPayload::Flat,
            1 => {
                let pq = Pq::load(&mut r)?;
                let margins = match r.get_u8()? {
                    0 => None,
                    1 => {
                        let mg = r.get_f32_vec()?;
                        if mg.len() != pq.m() {
                            return Err(BhError::Serde("ivf head: corrupt margin section".into()));
                        }
                        Some(mg)
                    }
                    x => return Err(BhError::Serde(format!("ivf head: bad margin flag {x}"))),
                };
                IvfHeadPayload::Pq { pq, margins }
            }
            x => return Err(BhError::Serde(format!("ivf head: bad payload byte {x}"))),
        };
        Ok(IvfHead { kind, dim, metric, len, coarse, payload })
    }
}

/// A head-only partial IVF index: coarse centroids (and PQ codebook) without
/// posting lists. It cannot serve searches by itself —
/// [`VectorIndex::head_servable`] is `false`, so cold workers brute-force
/// scan until the body arrives — but loading it warms the routing structures
/// and pins the codebook while the posting lists stream in.
pub struct IvfHeadIndex {
    kind: IndexKind,
    dim: usize,
    metric: Metric,
    len: usize,
    coarse: KMeans,
}

impl IvfHeadIndex {
    /// Deserialize the head section of a tiered IVF blob.
    pub fn load_bytes(head: &[u8]) -> Result<IvfHeadIndex> {
        let h = IvfHead::parse(head)?;
        Ok(IvfHeadIndex { kind: h.kind, dim: h.dim, metric: h.metric, len: h.len, coarse: h.coarse })
    }

    /// Number of coarse cells resident in the head.
    pub fn nlist(&self) -> usize {
        self.coarse.k
    }
}

impl VectorIndex for IvfHeadIndex {
    fn meta(&self) -> IndexMeta {
        IndexMeta { kind: self.kind, dim: self.dim, metric: self.metric, len: self.len }
    }

    fn search_with_filter(
        &self,
        query: &[f32],
        _k: usize,
        _params: &SearchParams,
        _filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>> {
        self.check_query(query)?;
        // Posting lists are not resident; there is nothing to return. The
        // caller gates on `head_servable()` and brute-forces instead.
        Ok(Vec::new())
    }

    fn search_with_range(
        &self,
        query: &[f32],
        _radius: f32,
        _params: &SearchParams,
        _filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>> {
        self.check_query(query)?;
        Ok(Vec::new())
    }

    fn search_iterator<'a>(
        &'a self,
        query: &[f32],
        params: &SearchParams,
    ) -> Result<Box<dyn SearchIterator + 'a>> {
        self.check_query(query)?;
        Ok(Box::new(crate::iterator::GenericSearchIterator::new(self, query, params)))
    }

    fn memory_usage(&self) -> usize {
        self.coarse.centroids.len() * 4 + std::mem::size_of::<Self>()
    }

    fn save_bytes(&self) -> Result<Bytes> {
        Err(BhError::Internal("head-only partial index cannot be re-saved".into()))
    }

    fn is_partial(&self) -> bool {
        true
    }
}

impl VectorIndex for IvfIndex {
    fn meta(&self) -> IndexMeta {
        IndexMeta { kind: self.kind, dim: self.dim, metric: self.metric, len: self.len }
    }

    fn search_with_filter(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>> {
        self.check_query(query)?;
        if self.len == 0 || k == 0 {
            return Ok(Vec::new());
        }
        let q = self.prep_query(query);
        let nprobe = params.nprobe.clamp(1, self.nlist());
        let probes = self.coarse.nearest_centroids(&q, nprobe);
        let mut tk = TopK::new(k);
        let mut visited = 0usize;
        for (cell, _) in probes {
            self.scan_cell(cell, &q, filter, &mut tk, &mut visited);
        }
        Ok(tk.into_sorted().into_iter().map(|s| Neighbor::new(s.item, s.distance)).collect())
    }

    fn search_with_bound(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
        bound: Option<&SharedBound>,
    ) -> Result<Vec<Neighbor>> {
        let Some(b) = bound else {
            return self.search_with_filter(query, k, params, filter);
        };
        match &self.cells {
            Cells::Flat { .. } => self.flat_search_with_bound(query, k, params, filter, b),
            Cells::Pq { pq, store, margins } => {
                // Margin pruning needs build-time margins (v2 blobs) and a
                // metric whose approximate scan value bounds the exact
                // distance from below — L2, and Cosine via normalized L2.
                // The residual-IP approximation has no such relation, and a
                // v1 blob carries no margins: both fall back to the plain
                // path (no pruning, no publishing).
                let (Some(margins), false) = (margins, self.metric == Metric::InnerProduct) else {
                    return self.search_with_filter(query, k, params, filter);
                };
                self.pq_search_with_bound(pq, store, margins, query, k, params, filter, b)
            }
        }
    }

    fn search_with_range(
        &self,
        query: &[f32],
        radius: f32,
        params: &SearchParams,
        filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>> {
        self.check_query(query)?;
        if self.len == 0 {
            return Ok(Vec::new());
        }
        let q = self.prep_query(query);
        let nprobe = params.nprobe.clamp(1, self.nlist());
        let probes = self.coarse.nearest_centroids(&q, nprobe);
        // Collect everything within radius from the probed cells.
        let mut tk = TopK::new(self.len);
        let mut visited = 0usize;
        for (cell, _) in probes {
            self.scan_cell(cell, &q, filter, &mut tk, &mut visited);
        }
        Ok(tk
            .into_sorted()
            .into_iter()
            .filter(|s| s.distance <= radius)
            .map(|s| Neighbor::new(s.item, s.distance))
            .collect())
    }

    fn search_iterator<'a>(
        &'a self,
        query: &[f32],
        params: &SearchParams,
    ) -> Result<Box<dyn SearchIterator + 'a>> {
        self.check_query(query)?;
        // IVF has no natural incremental order → generic doubling-k wrapper.
        Ok(Box::new(GenericSearchIterator::new(self, query, params)))
    }

    fn needs_refine(&self) -> bool {
        matches!(self.cells, Cells::Pq { .. })
    }

    fn memory_usage(&self) -> usize {
        let id_bytes: usize = self.ids.iter().map(|v| v.len() * 8 + 24).sum();
        let cell_bytes: usize = match &self.cells {
            Cells::Flat { vectors } => vectors.iter().map(|v| v.len() * 4 + 24).sum(),
            Cells::Pq { pq, store, margins } => {
                let code_bytes: usize = match store {
                    PqStore::Bytes(codes) => codes.iter().map(|c| c.len() + 24).sum(),
                    PqStore::Blocked(cells) => cells.iter().map(|c| c.memory_usage()).sum(),
                };
                pq.memory_usage()
                    + code_bytes
                    + margins.as_ref().map_or(0, |m| m.len() * 4 + 24)
            }
        };
        self.coarse.centroids.len() * 4 + id_bytes + cell_bytes + std::mem::size_of::<Self>()
    }

    fn save_bytes(&self) -> Result<Bytes> {
        let mut w = Writer::with_header(MAGIC, VERSION);
        w.put_u8(match self.kind {
            IndexKind::IvfFlat => 0,
            IndexKind::IvfPq => 1,
            IndexKind::IvfPqFs => 2,
            _ => return Err(BhError::Internal("ivf: impossible kind".into())),
        });
        w.put_u64(self.dim as u64);
        w.put_u8(metric_to_u8(self.metric));
        w.put_u64(self.nlist() as u64);
        w.put_f32_slice(&self.coarse.centroids);
        for cell in &self.ids {
            w.put_u64_slice(cell);
        }
        match &self.cells {
            Cells::Flat { vectors } => {
                w.put_u8(0);
                for v in vectors {
                    w.put_f32_slice(v);
                }
            }
            Cells::Pq { pq, store, margins } => {
                w.put_u8(1);
                pq.save(&mut w);
                // Cells keep the v1 packed per-vector byte layout on disk;
                // the blocked transpose is rebuilt at load time.
                match store {
                    PqStore::Bytes(codes) => {
                        for c in codes {
                            w.put_bytes(c);
                        }
                    }
                    PqStore::Blocked(cells) => {
                        let mut buf = Vec::new();
                        for c in cells {
                            buf.clear();
                            for i in 0..c.len() {
                                buf.extend(c.code_bytes(i));
                            }
                            w.put_bytes(&buf);
                        }
                    }
                }
                // v2 margin section.
                match margins {
                    Some(mg) => {
                        w.put_u8(1);
                        w.put_f32_slice(mg);
                    }
                    None => w.put_u8(0),
                }
            }
        }
        Ok(w.finish())
    }

    fn save_bytes_tiered(&self) -> Result<Option<(Bytes, Bytes)>> {
        Ok(Some(self.save_tiered_parts()?))
    }
}

impl IvfIndex {
    /// Exact-distance bounded scan over flat cells: prunes on and publishes
    /// to the shared bound (distances are exact, in the post-scale domain
    /// for cosine).
    fn flat_search_with_bound(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
        b: &SharedBound,
    ) -> Result<Vec<Neighbor>> {
        let Cells::Flat { vectors } = &self.cells else {
            return Err(BhError::Internal("ivf: flat bound path on pq cells".into()));
        };
        self.check_query(query)?;
        if self.len == 0 || k == 0 {
            return Ok(Vec::new());
        }
        let q = self.prep_query(query);
        let scale = self.post_scale();
        let nprobe = params.nprobe.clamp(1, self.nlist());
        let probes = self.coarse.nearest_centroids(&q, nprobe);
        // IVFFLAT posting lists hold raw vectors, so distances are exact and
        // the shared bound applies (in the post-scale domain for cosine).
        let mut tk = TopK::new(k);
        let mut skipped = 0u64;
        let mut out: Vec<f32> = Vec::new();
        for (cell, _) in probes {
            let cell_ids = &self.ids[cell];
            if cell_ids.is_empty() {
                continue;
            }
            if filter.is_none() {
                out.clear();
                out.resize(cell_ids.len(), 0.0);
                if distance_batch(self.effective_metric(), &q, &vectors[cell], self.dim, &mut out)
                    .is_ok()
                {
                    for (&d, &id) in out.iter().zip(cell_ids) {
                        let d = d * scale;
                        if d > b.get() {
                            skipped += 1;
                            continue;
                        }
                        if tk.push(d, id) && tk.is_full() {
                            b.update(tk.threshold());
                        }
                    }
                    continue;
                }
            }
            for (i, &id) in cell_ids.iter().enumerate() {
                if let Some(f) = filter {
                    if !f.contains(id as usize) {
                        continue;
                    }
                }
                let row = &vectors[cell][i * self.dim..(i + 1) * self.dim];
                let d = self.effective_metric().distance(&q, row) * scale;
                if d > b.get() {
                    skipped += 1;
                    continue;
                }
                if tk.push(d, id) && tk.is_full() {
                    b.update(tk.threshold());
                }
            }
        }
        b.record_skips(skipped);
        Ok(tk.into_sorted().into_iter().map(|s| Neighbor::new(s.item, s.distance)).collect())
    }

    /// Bound-aware scan over PQ cells: runs the *same* quantized scan as the
    /// unbounded path (identical candidate values, so batched and sequential
    /// executions merge identically), then drops candidates whose exact
    /// distance provably exceeds the shared exact threshold.
    ///
    /// For a candidate reported at quantized distance `d` (unscaled), the
    /// exact f32 ADC value is at least `d - err_q`, the distance to the
    /// *reconstruction* is at least `sqrt(max(0, d - err_q))`, and by the
    /// triangle inequality the distance to the true vector is at least that
    /// minus `rho = sqrt(sum of per-subspace worst-case squared errors)`.
    /// Squaring (and post-scaling for cosine) gives a lower bound on the
    /// exact distance; a candidate is skipped only when that bound strictly
    /// exceeds `b.get()`. Approximate distances are never published.
    #[allow(clippy::too_many_arguments)]
    fn pq_search_with_bound(
        &self,
        pq: &Pq,
        store: &PqStore,
        margins: &[f32],
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
        b: &SharedBound,
    ) -> Result<Vec<Neighbor>> {
        self.check_query(query)?;
        if self.len == 0 || k == 0 {
            return Ok(Vec::new());
        }
        let q = self.prep_query(query);
        let scale = self.post_scale();
        let nprobe = params.nprobe.clamp(1, self.nlist());
        let probes = self.coarse.nearest_centroids(&q, nprobe);
        let mut tk = TopK::new(k);
        let mut max_errq = 0.0f32;
        let mut out: Vec<f32> = Vec::new();
        for (cell, _) in probes {
            if self.ids[cell].is_empty() {
                continue;
            }
            let centroid = self.coarse.centroid(cell);
            let resid: Vec<f32> = q.iter().zip(centroid).map(|(a, b)| a - b).collect();
            let Ok(table) = pq.adc_table(&resid) else { continue };
            let errq = self.pq_cell_distances(pq, store, cell, &table, &mut out);
            // Cells may differ in LUT quantization step; the max across
            // probed cells is a uniform (conservative) error bound.
            max_errq = max_errq.max(errq);
            for (i, &id) in self.ids[cell].iter().enumerate() {
                if let Some(f) = filter {
                    if !f.contains(id as usize) {
                        continue;
                    }
                }
                tk.push(out[i] * scale, id);
            }
        }
        let rho = margins.iter().map(|e| e.max(0.0)).sum::<f32>().sqrt();
        let mut skipped = 0u64;
        let hits: Vec<Neighbor> = tk
            .into_sorted()
            .into_iter()
            .filter(|s| {
                // post_scale is 1.0 or 0.5: the division below is exact.
                let d = s.distance / scale;
                let base = ((d - max_errq).max(0.0).sqrt() - rho).max(0.0);
                if base * base * scale > b.get() {
                    skipped += 1;
                    false
                } else {
                    true
                }
            })
            .map(|s| Neighbor::new(s.item, s.distance))
            .collect();
        b.record_skips(skipped);
        Ok(hits)
    }
}

/// Builder for the three IVF variants.
pub struct IvfBuilder {
    spec: IndexSpec,
    kind: IndexKind,
    nlist: usize,
    seed: u64,
    coarse: Option<KMeans>,
    pq: Option<Pq>,
    ids: Vec<Vec<u64>>,
    flat: Vec<Vec<f32>>,
    codes: Vec<Vec<u8>>,
    blocked: Vec<FastScanCodes>,
    /// Running per-subspace maximum squared encoding error.
    max_sq_err: Vec<f32>,
    len: usize,
}

impl IvfBuilder {
    /// A builder for one of the IVF variants validated against `spec`.
    pub fn new(spec: &IndexSpec, kind: IndexKind) -> Result<IvfBuilder> {
        spec.validate()?;
        if !matches!(kind, IndexKind::IvfFlat | IndexKind::IvfPq | IndexKind::IvfPqFs) {
            return Err(BhError::InvalidArgument(format!(
                "IvfBuilder cannot build {}",
                kind.name()
            )));
        }
        // nlist = 0 means "auto-select at train time" (§III-B Auto index).
        let nlist = spec.param_usize("nlist", 0)?;
        let seed = spec.param_usize("seed", 0)? as u64;
        Ok(IvfBuilder {
            spec: spec.clone(),
            kind,
            nlist,
            seed,
            coarse: None,
            pq: None,
            ids: Vec::new(),
            flat: Vec::new(),
            codes: Vec::new(),
            blocked: Vec::new(),
            max_sq_err: Vec::new(),
            len: 0,
        })
    }

    fn dim(&self) -> usize {
        self.spec.dim
    }

    fn normalize_if_cosine(&self, vectors: &[f32]) -> Vec<f32> {
        let mut out = vectors.to_vec();
        if self.spec.metric == Metric::Cosine {
            for chunk in out.chunks_mut(self.dim()) {
                distance::normalize(chunk);
            }
        }
        out
    }

    fn pq_m(&self) -> Result<usize> {
        // Default: subspaces of ~4 dims, clamped to a divisor of dim.
        let requested = self.spec.param_usize("pq_m", 0)?;
        if requested > 0 {
            if self.dim() % requested != 0 {
                return Err(BhError::InvalidArgument(format!(
                    "pq_m={requested} must divide dim={}",
                    self.dim()
                )));
            }
            return Ok(requested);
        }
        let target = (self.dim() / 4).max(1);
        // Largest divisor of dim that is <= target.
        let mut best = 1;
        for m in 1..=target {
            if self.dim() % m == 0 {
                best = m;
            }
        }
        Ok(best)
    }
}

impl IndexBuilder for IvfBuilder {
    fn train(&mut self, sample: &[f32]) -> Result<()> {
        let dim = self.dim();
        if sample.is_empty() || sample.len() % dim != 0 {
            return Err(BhError::InvalidArgument("ivf: bad training sample shape".into()));
        }
        let sample = self.normalize_if_cosine(sample);
        let n = sample.len() / dim;
        let nlist = if self.nlist > 0 {
            self.nlist
        } else {
            crate::autoindex::auto_nlist(n)
        };
        // Sample cap scales with nlist (faiss' max_points_per_centroid idea)
        // so coarse training cost stays proportionate to the codebook size.
        let coarse = train_kmeans(
            &sample,
            dim,
            &KMeansParams {
                k: nlist,
                max_iters: 6,
                seed: self.seed,
                sample_limit: (nlist * 24).clamp(1_024, 16_384),
            },
        )?;
        let nlist = coarse.k;

        if matches!(self.kind, IndexKind::IvfPq | IndexKind::IvfPqFs) {
            // Train PQ on residuals against the coarse centroids.
            let mut residuals = Vec::with_capacity(sample.len());
            for i in 0..n {
                let v = &sample[i * dim..(i + 1) * dim];
                let c = coarse.centroid(coarse.assign(v));
                residuals.extend(v.iter().zip(c).map(|(a, b)| a - b));
            }
            let bits = if self.kind == IndexKind::IvfPqFs { CodeBits::B4 } else { CodeBits::B8 };
            let m = self.pq_m()?;
            let metric = if self.spec.metric == Metric::Cosine { Metric::L2 } else { self.spec.metric };
            let pq = Pq::train(
                &residuals,
                dim,
                metric,
                &PqParams { m, bits, seed: self.seed, kmeans_iters: 8 },
            )?;
            match bits {
                CodeBits::B4 => self.blocked = vec![FastScanCodes::new(pq.code_size()); nlist],
                CodeBits::B8 => self.codes = vec![Vec::new(); nlist],
            }
            self.max_sq_err = vec![0.0; m];
            self.pq = Some(pq);
        } else {
            self.flat = vec![Vec::new(); nlist];
        }
        self.ids = vec![Vec::new(); nlist];
        self.nlist = nlist;
        self.coarse = Some(coarse);
        Ok(())
    }

    fn add_with_ids(&mut self, vectors: &[f32], ids: &[u64]) -> Result<()> {
        if self.coarse.is_none() {
            // Auto-train on the first batch (faiss-style convenience).
            self.train(vectors)?;
        }
        let dim = self.dim();
        let n = check_batch(dim, vectors, ids)?;
        let vectors = self.normalize_if_cosine(vectors);
        let Some(coarse) = self.coarse.as_ref() else {
            return Err(BhError::Index("ivf: quantizer missing after auto-train".into()));
        };
        let mut dist_scratch = Vec::new();
        for i in 0..n {
            let v = &vectors[i * dim..(i + 1) * dim];
            let cell = coarse.assign_into(v, &mut dist_scratch);
            self.ids[cell].push(ids[i]);
            match (&self.pq, self.flat.is_empty()) {
                (Some(pq), _) => {
                    let c = coarse.centroid(cell);
                    let resid: Vec<f32> = v.iter().zip(c).map(|(a, b)| a - b).collect();
                    let (code, errs) = pq.encode_with_errors(&resid)?;
                    for (slot, &e) in self.max_sq_err.iter_mut().zip(&errs) {
                        *slot = slot.max(e);
                    }
                    match pq.bits() {
                        CodeBits::B4 => self.blocked[cell].push(&code)?,
                        CodeBits::B8 => self.codes[cell].extend(code),
                    }
                }
                (None, false) => {
                    self.flat[cell].extend_from_slice(v);
                }
                (None, true) => {
                    return Err(BhError::Internal("ivf: untrained payload".into()));
                }
            }
        }
        self.len += n;
        Ok(())
    }

    fn finish(self: Box<Self>) -> Result<Arc<dyn VectorIndex>> {
        let coarse = self
            .coarse
            .ok_or_else(|| BhError::Index("ivf: finish before train/add".into()))?;
        let cells = match self.pq {
            Some(pq) => {
                let store = match pq.bits() {
                    CodeBits::B4 => PqStore::Blocked(self.blocked),
                    CodeBits::B8 => PqStore::Bytes(self.codes),
                };
                Cells::Pq { pq, store, margins: Some(self.max_sq_err) }
            }
            None => Cells::Flat { vectors: self.flat },
        };
        Ok(Arc::new(IvfIndex {
            dim: self.spec.dim,
            metric: self.spec.metric,
            kind: self.kind,
            coarse,
            ids: self.ids,
            cells,
            len: self.len,
        }))
    }

    fn requires_training(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatBuilder;
    use crate::recall::recall_at_k;
    use bh_common::rng::rng;
    use proptest::prelude::*;
    use rand::Rng;

    fn clustered(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut r = rng(seed);
        let mut data = Vec::with_capacity(n * dim);
        for i in 0..n {
            let center = (i % 10) as f32 * 5.0;
            for _ in 0..dim {
                data.push(center + r.gen_range(-1.0f32..1.0));
            }
        }
        data
    }

    fn build(
        kind: IndexKind,
        n: usize,
        dim: usize,
        nlist: usize,
        metric: Metric,
        seed: u64,
    ) -> (Arc<dyn VectorIndex>, Arc<dyn VectorIndex>, Vec<f32>) {
        let data = clustered(n, dim, seed);
        let ids: Vec<u64> = (0..n as u64).collect();
        let spec = IndexSpec::new(kind, dim, metric).with_param("nlist", nlist);
        let mut b = Box::new(IvfBuilder::new(&spec, kind).unwrap());
        b.train(&data).unwrap();
        b.add_with_ids(&data, &ids).unwrap();
        let ivf = (b as Box<dyn IndexBuilder>).finish().unwrap();

        let fspec = IndexSpec::new(IndexKind::Flat, dim, metric);
        let mut fb = Box::new(FlatBuilder::new(&fspec).unwrap());
        fb.add_with_ids(&data, &ids).unwrap();
        let flat = (fb as Box<dyn IndexBuilder>).finish().unwrap();
        (ivf, flat, data)
    }

    fn mean_recall(
        ivf: &Arc<dyn VectorIndex>,
        flat: &Arc<dyn VectorIndex>,
        data: &[f32],
        dim: usize,
        params: &SearchParams,
        queries: usize,
    ) -> f64 {
        let n = data.len() / dim;
        let mut total = 0.0;
        for q in 0..queries {
            let row = (q * 31) % n;
            let qv = &data[row * dim..(row + 1) * dim];
            let truth = flat.search_with_filter(qv, 10, params, None).unwrap();
            let got = ivf.search_with_filter(qv, 10, params, None).unwrap();
            total += recall_at_k(&truth, &got, 10);
        }
        total / queries as f64
    }

    #[test]
    fn tiered_roundtrip_is_bit_identical() {
        for kind in [IndexKind::IvfFlat, IndexKind::IvfPq, IndexKind::IvfPqFs] {
            let (ivf, _, data) = build(kind, 400, 8, 8, Metric::L2, 9);
            let whole = ivf.save_bytes().unwrap();
            let (head, body) = ivf.save_bytes_tiered().unwrap().unwrap();
            let rebuilt = IvfIndex::load_tiered_parts(&head, &body).unwrap();
            assert_eq!(rebuilt.save_bytes().unwrap(), whole, "{kind:?}");
            let params = SearchParams::default().with_nprobe(8);
            let a = ivf.search_with_filter(&data[..8], 10, &params, None).unwrap();
            let b = rebuilt.search_with_filter(&data[..8], 10, &params, None).unwrap();
            assert_eq!(a, b, "{kind:?}");
        }
    }

    #[test]
    fn tiered_head_loads_but_is_not_servable() {
        let (ivf, _, data) = build(IndexKind::IvfFlat, 500, 8, 10, Metric::L2, 4);
        let (head, body) = ivf.save_bytes_tiered().unwrap().unwrap();
        // Centroid-only head is a small fraction of the blob.
        assert!(head.len() * 5 <= head.len() + body.len());
        let partial = IvfHeadIndex::load_bytes(&head).unwrap();
        assert!(partial.is_partial());
        assert!(!partial.head_servable(), "IVF head holds no rows");
        assert_eq!(partial.meta().len, 500);
        assert_eq!(partial.nlist(), 10);
        // Searches are well-formed but empty (caller brute-forces instead).
        let got =
            partial.search_with_filter(&data[..8], 5, &SearchParams::default(), None).unwrap();
        assert!(got.is_empty());
        // Dimension checks still apply.
        assert!(partial.search_with_filter(&[0.0; 3], 5, &SearchParams::default(), None).is_err());
    }

    #[test]
    fn tiered_mismatched_sections_error() {
        let (a, _, _) = build(IndexKind::IvfFlat, 300, 8, 8, Metric::L2, 1);
        let (b, _, _) = build(IndexKind::IvfFlat, 301, 8, 8, Metric::L2, 2);
        let (head_a, _) = a.save_bytes_tiered().unwrap().unwrap();
        let (_, body_b) = b.save_bytes_tiered().unwrap().unwrap();
        assert!(IvfIndex::load_tiered_parts(&head_a, &body_b).is_err());
    }

    #[test]
    fn ivfflat_recall_with_full_probe_is_exact() {
        let dim = 8;
        let (ivf, flat, data) = build(IndexKind::IvfFlat, 1000, dim, 16, Metric::L2, 1);
        let params = SearchParams::default().with_nprobe(16); // all cells
        let r = mean_recall(&ivf, &flat, &data, dim, &params, 15);
        assert!(r > 0.999, "full-probe IVFFLAT must be exact, recall {r}");
    }

    #[test]
    fn recall_improves_with_nprobe() {
        let dim = 8;
        let (ivf, flat, data) = build(IndexKind::IvfFlat, 2000, dim, 32, Metric::L2, 2);
        let r1 = mean_recall(&ivf, &flat, &data, dim, &SearchParams::default().with_nprobe(1), 20);
        let r8 = mean_recall(&ivf, &flat, &data, dim, &SearchParams::default().with_nprobe(8), 20);
        let r32 =
            mean_recall(&ivf, &flat, &data, dim, &SearchParams::default().with_nprobe(32), 20);
        assert!(r8 >= r1, "recall must not drop with more probes: {r1} -> {r8}");
        assert!(r32 >= r8);
        assert!(r32 > 0.99);
    }

    #[test]
    fn ivfpq_recall_floor_on_clustered_data() {
        let dim = 16;
        let (ivf, flat, data) = build(IndexKind::IvfPq, 2000, dim, 16, Metric::L2, 3);
        assert!(ivf.needs_refine());
        let params = SearchParams::default().with_nprobe(8);
        let r = mean_recall(&ivf, &flat, &data, dim, &params, 20);
        assert!(r > 0.6, "IVFPQ recall {r} unreasonably low");
    }

    #[test]
    fn ivfpqfs_smaller_than_ivfpq_smaller_than_flat() {
        let dim = 16;
        let (pqfs, _, _) = build(IndexKind::IvfPqFs, 1500, dim, 16, Metric::L2, 4);
        let (pq, _, _) = build(IndexKind::IvfPq, 1500, dim, 16, Metric::L2, 4);
        let (fl, _, _) = build(IndexKind::IvfFlat, 1500, dim, 16, Metric::L2, 4);
        assert!(pqfs.memory_usage() < pq.memory_usage());
        assert!(pq.memory_usage() < fl.memory_usage());
    }

    #[test]
    fn filter_respected() {
        let dim = 8;
        let (ivf, _, data) = build(IndexKind::IvfFlat, 500, dim, 8, Metric::L2, 5);
        let allowed = Bitset::from_positions(500, (0..500).filter(|i| i % 3 == 0));
        let got = ivf
            .search_with_filter(
                &data[0..dim],
                10,
                &SearchParams::default().with_nprobe(8),
                Some(&allowed),
            )
            .unwrap();
        assert!(!got.is_empty());
        for nb in &got {
            assert_eq!(nb.id % 3, 0);
        }
    }

    #[test]
    fn range_search_within_probed_cells() {
        let dim = 4;
        let (ivf, flat, data) = build(IndexKind::IvfFlat, 800, dim, 8, Metric::L2, 6);
        let q = &data[0..dim];
        let params = SearchParams::default().with_nprobe(8);
        let truth = flat.search_with_range(q, 3.0, &params, None).unwrap();
        let got = ivf.search_with_range(q, 3.0, &params, None).unwrap();
        assert_eq!(got.len(), truth.len(), "full probe range must be exact");
        for nb in &got {
            assert!(nb.distance <= 3.0);
        }
    }

    #[test]
    fn cosine_metric_normalizes_and_scales() {
        let dim = 8;
        let (ivf, flat, data) = build(IndexKind::IvfFlat, 600, dim, 8, Metric::Cosine, 7);
        let q = &data[dim..2 * dim];
        let params = SearchParams::default().with_nprobe(8);
        let truth = flat.search_with_filter(q, 5, &params, None).unwrap();
        let got = ivf.search_with_filter(q, 5, &params, None).unwrap();
        let t_ids: Vec<u64> = truth.iter().map(|x| x.id).collect();
        let g_ids: Vec<u64> = got.iter().map(|x| x.id).collect();
        assert_eq!(t_ids, g_ids);
        // Distances must match cosine distance values.
        for (t, g) in truth.iter().zip(&got) {
            assert!((t.distance - g.distance).abs() < 1e-3, "{} vs {}", t.distance, g.distance);
        }
    }

    #[test]
    fn auto_train_on_first_add() {
        let dim = 8;
        let data = clustered(300, dim, 8);
        let ids: Vec<u64> = (0..300).collect();
        let spec = IndexSpec::new(IndexKind::IvfFlat, dim, Metric::L2);
        let mut b = Box::new(IvfBuilder::new(&spec, IndexKind::IvfFlat).unwrap());
        b.add_with_ids(&data, &ids).unwrap(); // no explicit train
        let idx = (b as Box<dyn IndexBuilder>).finish().unwrap();
        assert_eq!(idx.meta().len, 300);
    }

    #[test]
    fn finish_without_data_fails() {
        let spec = IndexSpec::new(IndexKind::IvfFlat, 4, Metric::L2);
        let b = Box::new(IvfBuilder::new(&spec, IndexKind::IvfFlat).unwrap());
        assert!((b as Box<dyn IndexBuilder>).finish().is_err());
    }

    #[test]
    fn save_load_roundtrip_all_variants() {
        for kind in [IndexKind::IvfFlat, IndexKind::IvfPq, IndexKind::IvfPqFs] {
            let dim = 8;
            let (ivf, _, data) = build(kind, 400, dim, 8, Metric::L2, 9);
            let blob = ivf.save_bytes().unwrap();
            let loaded = IvfIndex::load_bytes(&blob).unwrap();
            assert_eq!(loaded.meta().kind, kind);
            let q = &data[0..dim];
            let params = SearchParams::default().with_nprobe(4);
            assert_eq!(
                ivf.search_with_filter(q, 5, &params, None).unwrap(),
                loaded.search_with_filter(q, 5, &params, None).unwrap(),
                "{kind:?} roundtrip mismatch"
            );
        }
    }

    #[test]
    fn corrupt_blob_rejected() {
        let (ivf, _, _) = build(IndexKind::IvfFlat, 100, 4, 4, Metric::L2, 10);
        let blob = ivf.save_bytes().unwrap();
        assert!(IvfIndex::load_bytes(&blob[..16]).is_err());
    }

    #[test]
    fn pq_bound_prunes_and_records_skips() {
        // Small clusters force the 80-deep candidate list to span clusters:
        // far-cluster candidates sit ~sqrt(dim)*5 away, far outside the
        // margin-adjusted lower bound, so a kth-exact bound must skip them.
        let dim = 16;
        let (ivf, flat, data) = build(IndexKind::IvfPqFs, 300, dim, 8, Metric::L2, 20);
        let params = SearchParams::default().with_nprobe(8);
        let q = &data[0..dim];
        let truth = flat.search_with_filter(q, 10, &params, None).unwrap();
        let b = SharedBound::new();
        b.update(truth[9].distance);
        let got = ivf.search_with_bound(q, 80, &params, None, Some(&b)).unwrap();
        assert!(!got.is_empty());
        // Clustered data: candidates from far clusters have exact lower
        // bounds far above the exact kth distance and must be skipped.
        assert!(b.skips() > 0, "tight bound produced no skips");
        // The surviving list is the unbounded list minus skipped tail
        // entries only (post-scan filter preserves order and values).
        let unbounded = ivf.search_with_filter(q, 80, &params, None).unwrap();
        let got_ids: Vec<u64> = got.iter().map(|n| n.id).collect();
        let sub: Vec<u64> =
            unbounded.iter().map(|n| n.id).filter(|id| got_ids.contains(id)).collect();
        assert_eq!(got_ids, sub, "bound filter must preserve scan order");
    }

    #[test]
    fn v1_blob_without_margins_loads_and_falls_back() {
        let dim = 8;
        let (ivf, _, data) = build(IndexKind::IvfPqFs, 400, dim, 8, Metric::L2, 21);
        let blob = ivf.save_bytes().unwrap();
        let mut v1 = blob.to_vec();
        // Rewrite the header version (bytes [4,6) little-endian) to 1 and
        // strip the v2 margin tail: flag byte + u64 len + m f32s, with
        // m = 2 for dim 8 (largest divisor of 8 that is <= dim/4).
        v1[4] = 1;
        v1[5] = 0;
        v1.truncate(v1.len() - (1 + 8 + 4 * 2));
        let loaded = IvfIndex::load_bytes(&v1).unwrap();
        let params = SearchParams::default().with_nprobe(8);
        let q = &data[0..dim];
        assert_eq!(
            ivf.search_with_filter(q, 5, &params, None).unwrap(),
            loaded.search_with_filter(q, 5, &params, None).unwrap(),
            "v1 payload must scan identically"
        );
        // No margins → the bound path must fall back: nothing skipped even
        // under an impossibly tight bound.
        let b = SharedBound::new();
        b.update(0.0);
        let got = loaded.search_with_bound(q, 5, &params, None, Some(&b)).unwrap();
        assert_eq!(got, loaded.search_with_filter(q, 5, &params, None).unwrap());
        assert_eq!(b.skips(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        /// Satellite 4: bound-aware quantized pruning never drops a result
        /// whose exact distance is within the published exact threshold —
        /// for both PQ code widths (B8 scalar ADC and B4 fast-scan).
        #[test]
        fn prop_quantized_pruning_never_drops_true_topk(
            seed in 0u64..8,
            kindsel in 0usize..2,
            qrow in 0usize..40,
        ) {
            let dim = 8;
            let kind = [IndexKind::IvfPq, IndexKind::IvfPqFs][kindsel];
            let (ivf, flat, data) = build(kind, 800, dim, 8, Metric::L2, 100 + seed);
            let params = SearchParams::default().with_nprobe(8);
            let q = &data[qrow * dim..(qrow + 1) * dim];
            let truth = flat.search_with_filter(q, 10, &params, None).unwrap();
            let bound_val = truth[truth.len() - 1].distance;
            let b = SharedBound::new();
            b.update(bound_val);
            let unbounded = ivf.search_with_filter(q, 30, &params, None).unwrap();
            let got = ivf.search_with_bound(q, 30, &params, None, Some(&b)).unwrap();
            let got_ids: Vec<u64> = got.iter().map(|n| n.id).collect();
            for cand in &unbounded {
                let row = &data[cand.id as usize * dim..(cand.id as usize + 1) * dim];
                let exact = Metric::L2.distance(q, row);
                if exact <= bound_val {
                    prop_assert!(
                        got_ids.contains(&cand.id),
                        "candidate {} (exact {} <= bound {}) was pruned",
                        cand.id, exact, bound_val
                    );
                }
            }
        }
    }

    #[test]
    fn pq_m_must_divide_dim() {
        let spec = IndexSpec::new(IndexKind::IvfPq, 10, Metric::L2).with_param("pq_m", 3);
        let mut b = IvfBuilder::new(&spec, IndexKind::IvfPq).unwrap();
        assert!(b.train(&clustered(100, 10, 11)).is_err());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (ivf, _, _) = build(IndexKind::IvfFlat, 50, 8, 4, Metric::L2, 12);
        assert!(ivf.search_with_filter(&[0.0; 7], 3, &SearchParams::default(), None).is_err());
    }
}
