//! Lloyd's k-means with k-means++ seeding.
//!
//! Used in three places: IVF coarse quantizer training, product-quantizer
//! codebook training, and the storage layer's semantic (`CLUSTER BY`)
//! partitioning (§IV-B). Clustering always uses squared-L2 internally —
//! cosine-metric callers normalize their vectors first.

use crate::distance::{distance_batch, l2_sq, Metric};
use bh_common::rng::{derived_rng, DetRng};
use bh_common::{BhError, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// Training parameters.
#[derive(Debug, Clone, Copy)]
pub struct KMeansParams {
    /// Desired number of clusters; clamped to the number of points.
    pub k: usize,
    /// Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed for reproducible training.
    pub seed: u64,
    /// Train on at most this many points (uniformly sampled) — the standard
    /// faiss-style cap that keeps training cost bounded on large segments.
    pub sample_limit: usize,
}

impl Default for KMeansParams {
    fn default() -> Self {
        Self { k: 8, max_iters: 15, seed: 0, sample_limit: 16_384 }
    }
}

impl KMeansParams {
    /// Default training parameters for `k` clusters.
    pub fn new(k: usize) -> Self {
        Self { k, ..Default::default() }
    }

    /// Set the training seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A trained codebook: `k` centroids of dimension `dim`, stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    /// Dimensionality of each centroid.
    pub dim: usize,
    /// Number of centroids.
    pub k: usize,
    /// Row-major `k × dim` centroid matrix.
    pub centroids: Vec<f32>,
}

impl KMeans {
    /// The `i`-th centroid.
    pub fn centroid(&self, i: usize) -> &[f32] {
        &self.centroids[i * self.dim..(i + 1) * self.dim]
    }

    /// Index of the nearest centroid.
    pub fn assign(&self, v: &[f32]) -> usize {
        let mut dists = Vec::new();
        self.assign_into(v, &mut dists)
    }

    /// As [`KMeans::assign`], reusing a caller-provided distance buffer so
    /// tight loops (Lloyd iterations, IVF `add_with_ids`) do not allocate per
    /// point. The batched kernel scans the whole `k × dim` centroid table.
    pub fn assign_into(&self, v: &[f32], dists: &mut Vec<f32>) -> usize {
        dists.resize(self.k, 0.0);
        if v.len() == self.dim
            && distance_batch(Metric::L2, v, &self.centroids, self.dim, dists).is_ok()
        {
            let mut best = 0;
            for c in 1..self.k {
                if dists[c] < dists[best] {
                    best = c;
                }
            }
            return best;
        }
        // Out-of-contract query shape: keep the legacy truncating scan.
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        for c in 0..self.k {
            let d = l2_sq(v, self.centroid(c));
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// The `m` nearest centroids with distances, ascending. Used for IVF
    /// probe selection and semantic segment pruning.
    pub fn nearest_centroids(&self, v: &[f32], m: usize) -> Vec<(usize, f32)> {
        let mut dists = vec![0.0f32; self.k];
        let mut all: Vec<(usize, f32)> = if v.len() == self.dim
            && distance_batch(Metric::L2, v, &self.centroids, self.dim, &mut dists).is_ok()
        {
            dists.iter().copied().enumerate().collect()
        } else {
            (0..self.k).map(|c| (c, l2_sq(v, self.centroid(c)))).collect()
        };
        all.sort_by(|a, b| a.1.total_cmp(&b.1));
        all.truncate(m);
        all
    }
}

/// Train k-means over `n = data.len() / dim` row-major points.
///
/// `k` is clamped to `n`. Empty clusters are reseeded to the point farthest
/// from its assigned centroid, so the returned codebook always has exactly
/// `min(k, n)` distinct, non-empty centroids for non-degenerate input.
pub fn train_kmeans(data: &[f32], dim: usize, params: &KMeansParams) -> Result<KMeans> {
    if dim == 0 {
        return Err(BhError::InvalidArgument("kmeans: dim must be > 0".into()));
    }
    if data.len() % dim != 0 {
        return Err(BhError::DimensionMismatch { expected: dim, got: data.len() % dim });
    }
    let n = data.len() / dim;
    if n == 0 {
        return Err(BhError::InvalidArgument("kmeans: no training points".into()));
    }
    if params.k == 0 {
        return Err(BhError::InvalidArgument("kmeans: k must be > 0".into()));
    }

    let mut rng = derived_rng(params.seed, 0x6b6d_6561_6e73);

    // Optional subsampling for large inputs.
    let (train, n_train): (Vec<f32>, usize) = if n > params.sample_limit {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        idx.truncate(params.sample_limit);
        let mut out = Vec::with_capacity(params.sample_limit * dim);
        for i in &idx {
            out.extend_from_slice(&data[i * dim..(i + 1) * dim]);
        }
        (out, params.sample_limit)
    } else {
        (data.to_vec(), n)
    };

    let k = params.k.min(n_train);
    let point = |i: usize| &train[i * dim..(i + 1) * dim];

    // k-means++ seeding.
    let mut centroids = Vec::with_capacity(k * dim);
    let first = rng.gen_range(0..n_train);
    centroids.extend_from_slice(point(first));
    let mut min_d2: Vec<f32> = (0..n_train).map(|i| l2_sq(point(i), point(first))).collect();
    while centroids.len() / dim < k {
        let total: f64 = min_d2.iter().map(|&d| d as f64).sum();
        let chosen = if total <= f64::EPSILON {
            // All points coincide with existing centroids; pick uniformly.
            rng.gen_range(0..n_train)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n_train - 1;
            for (i, &d) in min_d2.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        centroids.extend_from_slice(point(chosen));
        let cid = centroids.len() / dim - 1;
        for i in 0..n_train {
            let d = l2_sq(point(i), &centroids[cid * dim..(cid + 1) * dim]);
            if d < min_d2[i] {
                min_d2[i] = d;
            }
        }
    }

    let mut km = KMeans { dim, k, centroids };

    // Lloyd iterations.
    let mut assignments = vec![0usize; n_train];
    let mut dist_scratch = Vec::new();
    for _ in 0..params.max_iters {
        let mut moved = false;
        for i in 0..n_train {
            let a = km.assign_into(point(i), &mut dist_scratch);
            if a != assignments[i] {
                assignments[i] = a;
                moved = true;
            }
        }
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0usize; k];
        for i in 0..n_train {
            let c = assignments[i];
            counts[c] += 1;
            for d in 0..dim {
                sums[c * dim + d] += point(i)[d] as f64;
            }
        }
        reseed_empty_clusters(&mut sums, &mut counts, &train, dim, &assignments, &km, &mut rng);
        for c in 0..k {
            if counts[c] > 0 {
                for d in 0..dim {
                    km.centroids[c * dim + d] = (sums[c * dim + d] / counts[c] as f64) as f32;
                }
            }
        }
        if !moved {
            break;
        }
    }
    Ok(km)
}

/// Replace empty clusters' accumulators with the point currently farthest
/// from its own centroid (a single point, count 1).
fn reseed_empty_clusters(
    sums: &mut [f64],
    counts: &mut [usize],
    train: &[f32],
    dim: usize,
    assignments: &[usize],
    km: &KMeans,
    _rng: &mut DetRng,
) {
    let n = assignments.len();
    for c in 0..counts.len() {
        if counts[c] > 0 {
            continue;
        }
        // Farthest point from its assigned centroid.
        let mut far_i = 0;
        let mut far_d = -1.0f32;
        for i in 0..n {
            let p = &train[i * dim..(i + 1) * dim];
            let d = l2_sq(p, km.centroid(assignments[i]));
            if d > far_d {
                far_d = d;
                far_i = i;
            }
        }
        counts[c] = 1;
        for d in 0..dim {
            sums[c * dim + d] = train[far_i * dim + d] as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_common::rng::rng as seeded;
    use rand::Rng;

    /// Three well-separated Gaussian blobs in `dim` dims.
    fn blobs(n_per: usize, dim: usize, seed: u64) -> (Vec<f32>, Vec<usize>) {
        let centers = [-10.0f32, 0.0, 10.0];
        let mut r = seeded(seed);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for (ci, &c) in centers.iter().enumerate() {
            for _ in 0..n_per {
                for _ in 0..dim {
                    data.push(c + r.gen_range(-0.5..0.5));
                }
                labels.push(ci);
            }
        }
        (data, labels)
    }

    #[test]
    fn separated_blobs_are_recovered() {
        let dim = 4;
        let (data, labels) = blobs(50, dim, 1);
        let km = train_kmeans(&data, dim, &KMeansParams::new(3).with_seed(7)).unwrap();
        assert_eq!(km.k, 3);
        // Every pair of same-label points must land in the same cluster and
        // different-label points in different clusters.
        let assignment: Vec<usize> =
            (0..150).map(|i| km.assign(&data[i * dim..(i + 1) * dim])).collect();
        for i in 0..150 {
            for j in 0..150 {
                assert_eq!(
                    labels[i] == labels[j],
                    assignment[i] == assignment[j],
                    "points {i},{j} clustered wrongly"
                );
            }
        }
    }

    #[test]
    fn k_clamped_to_point_count() {
        let data = vec![0.0, 0.0, 1.0, 1.0]; // two 2-d points
        let km = train_kmeans(&data, 2, &KMeansParams::new(10)).unwrap();
        assert_eq!(km.k, 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = blobs(30, 3, 2);
        let a = train_kmeans(&data, 3, &KMeansParams::new(4).with_seed(9)).unwrap();
        let b = train_kmeans(&data, 3, &KMeansParams::new(4).with_seed(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(train_kmeans(&[], 4, &KMeansParams::new(2)).is_err());
        assert!(train_kmeans(&[1.0, 2.0, 3.0], 2, &KMeansParams::new(2)).is_err()); // ragged
        assert!(train_kmeans(&[1.0, 2.0], 0, &KMeansParams::new(2)).is_err());
        assert!(train_kmeans(&[1.0, 2.0], 2, &KMeansParams::new(0)).is_err());
    }

    #[test]
    fn identical_points_do_not_crash() {
        let data = vec![5.0f32; 40]; // 10 identical 4-d points
        let km = train_kmeans(&data, 4, &KMeansParams::new(3)).unwrap();
        assert_eq!(km.assign(&[5.0; 4]), km.assign(&[5.0; 4]));
    }

    #[test]
    fn nearest_centroids_sorted_ascending() {
        let (data, _) = blobs(40, 2, 3);
        let km = train_kmeans(&data, 2, &KMeansParams::new(3).with_seed(1)).unwrap();
        let q = vec![9.5, 9.5];
        let near = km.nearest_centroids(&q, 3);
        assert_eq!(near.len(), 3);
        for w in near.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(near[0].0, km.assign(&q));
    }

    #[test]
    fn sampling_cap_still_produces_usable_codebook() {
        let (data, _) = blobs(200, 2, 4);
        let params = KMeansParams { k: 3, max_iters: 10, seed: 5, sample_limit: 60 };
        let km = train_kmeans(&data, 2, &params).unwrap();
        // All three blob centers should have a centroid within 2.0.
        for c in [-10.0f32, 0.0, 10.0] {
            let q = vec![c, c];
            let (_, d) = km.nearest_centroids(&q, 1)[0];
            assert!(d < 4.0, "no centroid near blob at {c}: d={d}");
        }
    }
}
