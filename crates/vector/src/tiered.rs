//! v3 tiered index-blob container (head/body framing).
//!
//! A tiered blob wraps an index serialized as two sections:
//!
//! * **head** — the part needed to start serving: HNSW upper layers + entry
//!   point (plus the upper nodes' vectors), IVF centroids + PQ codebooks.
//!   For realistic indexes this is ≤ 10% of the blob.
//! * **body** — the bulk: HNSW base layer + full vector store, IVF posting
//!   lists.
//!
//! Layout (all integers little-endian, matching [`crate::codec`]):
//!
//! ```text
//! [magic "BHT3" 4B][version u16][head_len u64][body_len u64][head…][body…]
//! ```
//!
//! The fixed 22-byte prefix plus `head_len` is exactly the byte count a cold
//! worker range-fetches to begin head-only serving
//! ([`head_prefix_len`]); the remainder is demand-fetched and joined via
//! [`split`]. Blobs not starting with the magic are v2 (or older) whole-index
//! blobs and load through the legacy per-kind path — backward compatibility
//! is a one-magic sniff ([`is_tiered`]).

use bh_common::{BhError, Result};
use bytes::Bytes;

/// Magic prefix identifying a v3 tiered container.
pub const TIERED_MAGIC: [u8; 4] = *b"BHT3";

/// Container format version.
pub const TIERED_VERSION: u16 = 1;

/// Fixed byte length of the container prefix before the head section.
pub const TIERED_PREFIX_LEN: u64 = 4 + 2 + 8 + 8;

/// Whether `bytes` is a v3 tiered container (vs a legacy whole-index blob).
pub fn is_tiered(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == TIERED_MAGIC
}

/// Total bytes a ranged get must fetch to obtain the head section:
/// container prefix + head.
pub fn head_prefix_len(head_len: u64) -> u64 {
    TIERED_PREFIX_LEN + head_len
}

/// Frame `head` and `body` into one v3 container blob.
pub fn frame(head: &[u8], body: &[u8]) -> Bytes {
    let mut out =
        Vec::with_capacity(TIERED_PREFIX_LEN as usize + head.len() + body.len());
    out.extend_from_slice(&TIERED_MAGIC);
    out.extend_from_slice(&TIERED_VERSION.to_le_bytes());
    out.extend_from_slice(&(head.len() as u64).to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(head);
    out.extend_from_slice(body);
    Bytes::from(out)
}

fn read_prefix(bytes: &[u8]) -> Result<(u64, u64)> {
    if !is_tiered(bytes) {
        return Err(BhError::InvalidArgument("not a tiered index container".into()));
    }
    if bytes.len() < TIERED_PREFIX_LEN as usize {
        return Err(BhError::InvalidArgument("tiered container prefix truncated".into()));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != TIERED_VERSION {
        return Err(BhError::InvalidArgument(format!(
            "unsupported tiered container version {version}"
        )));
    }
    let head_len = u64::from_le_bytes(bytes[6..14].try_into().map_err(|_| {
        BhError::InvalidArgument("tiered container prefix truncated".into())
    })?);
    let body_len = u64::from_le_bytes(bytes[14..22].try_into().map_err(|_| {
        BhError::InvalidArgument("tiered container prefix truncated".into())
    })?);
    Ok((head_len, body_len))
}

/// Split a full container blob into `(head, body)` sections (zero-copy
/// slices of the input).
pub fn split(blob: &Bytes) -> Result<(Bytes, Bytes)> {
    let (head_len, body_len) = read_prefix(blob)?;
    let head_start = TIERED_PREFIX_LEN as usize;
    let head_end = head_start + head_len as usize;
    let body_end = head_end + body_len as usize;
    if blob.len() < body_end {
        return Err(BhError::InvalidArgument(format!(
            "tiered container truncated: {} bytes, sections need {body_end}",
            blob.len()
        )));
    }
    Ok((blob.slice(head_start..head_end), blob.slice(head_end..body_end)))
}

/// Extract the head section from a prefix range-fetch of at least
/// [`head_prefix_len`] bytes (`prefix` may extend into the body; extra bytes
/// are ignored).
pub fn head_from_prefix(prefix: &Bytes) -> Result<Bytes> {
    let (head_len, _) = read_prefix(prefix)?;
    let head_start = TIERED_PREFIX_LEN as usize;
    let head_end = head_start + head_len as usize;
    if prefix.len() < head_end {
        return Err(BhError::InvalidArgument(format!(
            "tiered head truncated: {} bytes fetched, head needs {head_end}",
            prefix.len()
        )));
    }
    Ok(prefix.slice(head_start..head_end))
}

/// Byte offset and length of the body section, for a ranged body fetch.
pub fn body_range(blob_prefix: &Bytes) -> Result<(u64, u64)> {
    let (head_len, body_len) = read_prefix(blob_prefix)?;
    Ok((head_prefix_len(head_len), body_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_split_roundtrip() {
        let blob = frame(b"HEAD", b"BODYBYTES");
        assert!(is_tiered(&blob));
        assert_eq!(blob.len() as u64, head_prefix_len(4) + 9);
        let (h, b) = split(&blob).unwrap();
        assert_eq!(h, Bytes::from_static(b"HEAD"));
        assert_eq!(b, Bytes::from_static(b"BODYBYTES"));
    }

    #[test]
    fn head_from_prefix_fetch() {
        let blob = frame(b"HEAD", b"BODYBYTES");
        // Exactly the head prefix.
        let prefix = blob.slice(..head_prefix_len(4) as usize);
        assert_eq!(head_from_prefix(&prefix).unwrap(), Bytes::from_static(b"HEAD"));
        // Over-fetch into the body is fine.
        let over = blob.slice(..head_prefix_len(4) as usize + 3);
        assert_eq!(head_from_prefix(&over).unwrap(), Bytes::from_static(b"HEAD"));
        // Under-fetch errors.
        let under = blob.slice(..head_prefix_len(4) as usize - 1);
        assert!(head_from_prefix(&under).is_err());
    }

    #[test]
    fn body_range_points_past_head() {
        let blob = frame(b"HH", b"BBB");
        let (off, len) = body_range(&blob).unwrap();
        assert_eq!((off, len), (TIERED_PREFIX_LEN + 2, 3));
        assert_eq!(&blob[off as usize..(off + len) as usize], b"BBB");
    }

    #[test]
    fn legacy_blobs_are_not_tiered() {
        assert!(!is_tiered(b"BHHN....v2 hnsw blob"));
        assert!(!is_tiered(b""));
        assert!(split(&Bytes::from_static(b"BHIV....")).is_err());
    }

    #[test]
    fn truncated_container_errors() {
        let blob = frame(b"HEAD", b"BODY");
        assert!(split(&blob.slice(..blob.len() - 1)).is_err());
        assert!(split(&blob.slice(..10)).is_err());
        // Wrong version.
        let mut v = blob.to_vec();
        v[4] = 99;
        assert!(split(&Bytes::from(v)).is_err());
    }
}
