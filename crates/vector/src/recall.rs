//! Recall measurement utilities used by tests and the benchmark harness.

use crate::types::Neighbor;
use std::collections::HashSet;

/// `recall@k`: fraction of the true top-k ids that appear in the returned
/// top-k. `truth` is assumed exact (e.g. from the FLAT oracle). When fewer
/// than `k` true results exist, recall is computed against what exists;
/// empty truth counts as perfect recall (nothing to find).
pub fn recall_at_k(truth: &[Neighbor], got: &[Neighbor], k: usize) -> f64 {
    let want: HashSet<u64> = truth.iter().take(k).map(|n| n.id).collect();
    if want.is_empty() {
        return 1.0;
    }
    let hits = got.iter().take(k).filter(|n| want.contains(&n.id)).count();
    hits as f64 / want.len() as f64
}

/// Mean recall@k over query batches of (truth, got) pairs.
pub fn mean_recall_at_k(pairs: &[(Vec<Neighbor>, Vec<Neighbor>)], k: usize) -> f64 {
    if pairs.is_empty() {
        return 1.0;
    }
    pairs.iter().map(|(t, g)| recall_at_k(t, g, k)).sum::<f64>() / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(ids: &[u64]) -> Vec<Neighbor> {
        ids.iter().map(|&i| Neighbor::new(i, i as f32)).collect()
    }

    #[test]
    fn perfect_recall() {
        assert_eq!(recall_at_k(&nb(&[1, 2, 3]), &nb(&[3, 2, 1]), 3), 1.0);
    }

    #[test]
    fn partial_recall() {
        assert_eq!(recall_at_k(&nb(&[1, 2, 3, 4]), &nb(&[1, 2, 9, 8]), 4), 0.5);
    }

    #[test]
    fn empty_truth_is_perfect() {
        assert_eq!(recall_at_k(&[], &nb(&[1]), 5), 1.0);
    }

    #[test]
    fn truth_shorter_than_k() {
        // Only 2 true results exist; finding both = recall 1.
        assert_eq!(recall_at_k(&nb(&[7, 8]), &nb(&[8, 7, 1, 2]), 10), 1.0);
    }

    #[test]
    fn got_shorter_than_truth() {
        assert_eq!(recall_at_k(&nb(&[1, 2, 3, 4]), &nb(&[1]), 4), 0.25);
    }

    #[test]
    fn mean_over_batches() {
        let pairs = vec![
            (nb(&[1, 2]), nb(&[1, 2])),
            (nb(&[1, 2]), nb(&[1, 9])),
        ];
        assert_eq!(mean_recall_at_k(&pairs, 2), 0.75);
        assert_eq!(mean_recall_at_k(&[], 2), 1.0);
    }
}
