//! DiskANN-style index: a Vamana graph whose full-precision vectors and
//! adjacency live in a "disk" blob, navigated via in-memory PQ codes.
//!
//! Faithful to the DiskANN design (Jayaram Subramanya et al.):
//!
//! * **Build**: Vamana — iterative greedy search + α-robust pruning over an
//!   initially random `R`-regular graph, producing a low-diameter navigable
//!   graph.
//! * **Layout**: one contiguous blob stores, per node, the raw vector, its
//!   degree and its neighbor list; each node expansion is one blob read,
//!   counted in [`DiskAnnIndex::disk_reads`] so the storage layer and the
//!   benchmarks can charge disk latency per read.
//! * **Search**: beam search ordered by in-memory PQ-approximate distances;
//!   expanded nodes contribute *exact* distances read from the blob, so
//!   results are already refined.
//!
//! We do not mmap an actual file — the blob is the unit the (simulated) disk
//! cache moves around, which preserves the I/O-count behaviour the paper's
//! disk-based index group is about.

use crate::codec::{Reader, Writer};
use crate::flat::{metric_from_u8, metric_to_u8};
use crate::iterator::{GenericSearchIterator, SearchIterator};
use crate::quant::pq::{CodeBits, Pq, PqParams};
use crate::types::{
    check_batch, IndexBuilder, IndexMeta, IndexSpec, Neighbor, SearchParams, VectorIndex,
};
use crate::{IndexKind, Metric};
use bh_common::rng::derived_rng;
use bh_common::{BhError, Bitset, Result, TopK};
use bytes::Bytes;
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"BHDA";
const VERSION: u16 = 1;

/// Little-endian `f32` at `at`; node stride arithmetic keeps reads in bounds.
#[inline]
fn le_f32(blob: &[u8], at: usize) -> f32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&blob[at..at + 4]);
    f32::from_le_bytes(b)
}

/// Little-endian `u32` at `at`; node stride arithmetic keeps reads in bounds.
#[inline]
fn le_u32(blob: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&blob[at..at + 4]);
    u32::from_le_bytes(b)
}

/// Immutable DiskANN index.
pub struct DiskAnnIndex {
    dim: usize,
    metric: Metric,
    r: usize,
    medoid: u32,
    ids: Vec<u64>,
    /// In-memory navigation structures.
    pq: Pq,
    codes: Vec<u8>,
    /// "On-disk" node blob: per node `[vector f32*dim][degree u32][nbrs u32*R]`.
    blob: Vec<u8>,
    disk_reads: AtomicU64,
}

impl DiskAnnIndex {
    fn n(&self) -> usize {
        self.ids.len()
    }

    fn stride(&self) -> usize {
        self.dim * 4 + 4 + self.r * 4
    }

    /// Number of blob (simulated disk) reads performed since construction.
    pub fn disk_reads(&self) -> u64 {
        self.disk_reads.load(Ordering::Relaxed)
    }

    /// Size of the on-disk portion in bytes.
    pub fn disk_bytes(&self) -> usize {
        self.blob.len()
    }

    /// Read one node from the blob: exact vector + neighbor list.
    fn read_node(&self, node: u32) -> (Vec<f32>, Vec<u32>) {
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
        let off = node as usize * self.stride();
        let mut vec = Vec::with_capacity(self.dim);
        for d in 0..self.dim {
            vec.push(le_f32(&self.blob, off + d * 4));
        }
        let doff = off + self.dim * 4;
        let degree = le_u32(&self.blob, doff) as usize;
        let mut nbrs = Vec::with_capacity(degree);
        for i in 0..degree {
            nbrs.push(le_u32(&self.blob, doff + 4 + i * 4));
        }
        (vec, nbrs)
    }

    /// Approximate distance from query to a node via PQ codes.
    #[inline]
    fn approx_dist(&self, table: &crate::quant::pq::AdcTable, node: u32) -> f32 {
        let cs = self.pq.code_size();
        table.distance(&self.codes[node as usize * cs..(node as usize + 1) * cs])
    }

    /// Beam search: returns `(exact top candidates, visited count)`.
    fn beam_search(
        &self,
        query: &[f32],
        k: usize,
        beam: usize,
        filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>> {
        let table = self.pq.adc_table(query)?;
        let beam = beam.max(k).max(8).min(self.n());
        let mut visited = vec![false; self.n()];
        let mut expanded = vec![false; self.n()];
        // Working list: (approx_dist, node), kept sorted ascending, ≤ beam.
        let mut list: Vec<(f32, u32)> = vec![(self.approx_dist(&table, self.medoid), self.medoid)];
        visited[self.medoid as usize] = true;
        let mut exact = TopK::new(k);

        loop {
            // Closest unexpanded entry in the working list.
            let Some(pos) = list.iter().position(|&(_, n)| !expanded[n as usize]) else {
                break;
            };
            let (_, node) = list[pos];
            expanded[node as usize] = true;
            let (vec, nbrs) = self.read_node(node);
            let d_exact = self.metric.distance(query, &vec);
            let allowed = filter.map(|f| f.contains(self.ids[node as usize] as usize)).unwrap_or(true);
            if allowed {
                exact.push(d_exact, self.ids[node as usize]);
            }
            for nb in nbrs {
                if visited[nb as usize] {
                    continue;
                }
                visited[nb as usize] = true;
                let d = self.approx_dist(&table, nb);
                let at = list.partition_point(|&(x, _)| x <= d);
                if at < beam {
                    list.insert(at, (d, nb));
                    if list.len() > beam {
                        list.pop();
                    }
                }
            }
        }
        Ok(exact.into_sorted().into_iter().map(|s| Neighbor::new(s.item, s.distance)).collect())
    }

    /// Deserialize an index written by [`VectorIndex::save_bytes`].
    pub fn load_bytes(bytes: &[u8]) -> Result<DiskAnnIndex> {
        let mut r = Reader::new(bytes);
        let _v = r.expect_header(MAGIC)?;
        let dim = r.get_u64()? as usize;
        let metric = metric_from_u8(r.get_u8()?)?;
        let deg = r.get_u64()? as usize;
        let medoid = r.get_u32()?;
        let ids = r.get_u64_vec()?;
        let pq = Pq::load(&mut r)?;
        let codes = r.get_bytes()?;
        let blob = r.get_bytes()?;
        let idx = DiskAnnIndex {
            dim,
            metric,
            r: deg,
            medoid,
            ids,
            pq,
            codes,
            blob,
            disk_reads: AtomicU64::new(0),
        };
        if dim == 0 || idx.blob.len() != idx.n() * idx.stride() {
            return Err(BhError::Serde("diskann: corrupt blob geometry".into()));
        }
        Ok(idx)
    }
}

impl VectorIndex for DiskAnnIndex {
    fn meta(&self) -> IndexMeta {
        IndexMeta { kind: IndexKind::DiskAnn, dim: self.dim, metric: self.metric, len: self.n() }
    }

    fn search_with_filter(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>> {
        self.check_query(query)?;
        if self.n() == 0 || k == 0 {
            return Ok(Vec::new());
        }
        let beam = if filter.is_some() { params.ef_search * 2 } else { params.ef_search };
        self.beam_search(query, k, beam, filter)
    }

    fn search_with_range(
        &self,
        query: &[f32],
        radius: f32,
        params: &SearchParams,
        filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>> {
        self.check_query(query)?;
        if self.n() == 0 {
            return Ok(Vec::new());
        }
        // Grow k until the worst result clears the radius (or all rows seen).
        let mut k = params.ef_search.max(32);
        loop {
            let got = self.beam_search(query, k, k, filter)?;
            let exhausted = got.len() < k;
            let worst_in = got.last().map(|n| n.distance <= radius).unwrap_or(false);
            if exhausted || !worst_in || k >= self.n() {
                return Ok(got.into_iter().filter(|n| n.distance <= radius).collect());
            }
            k = (k * 2).min(self.n());
        }
    }

    fn search_iterator<'a>(
        &'a self,
        query: &[f32],
        params: &SearchParams,
    ) -> Result<Box<dyn SearchIterator + 'a>> {
        self.check_query(query)?;
        Ok(Box::new(GenericSearchIterator::new(self, query, params)))
    }

    fn memory_usage(&self) -> usize {
        // Only the in-memory navigation structures; the blob is disk-resident.
        self.pq.memory_usage() + self.codes.len() + self.ids.len() * 8
            + std::mem::size_of::<Self>()
    }

    fn save_bytes(&self) -> Result<Bytes> {
        let mut w = Writer::with_header(MAGIC, VERSION);
        w.put_u64(self.dim as u64);
        w.put_u8(metric_to_u8(self.metric));
        w.put_u64(self.r as u64);
        w.put_u32(self.medoid);
        w.put_u64_slice(&self.ids);
        self.pq.save(&mut w);
        w.put_bytes(&self.codes);
        w.put_bytes(&self.blob);
        Ok(w.finish())
    }
}

/// Builder implementing the Vamana construction algorithm.
pub struct DiskAnnBuilder {
    spec: IndexSpec,
    r: usize,
    alpha: f32,
    l_build: usize,
    seed: u64,
    ids: Vec<u64>,
    data: Vec<f32>,
}

impl DiskAnnBuilder {
    /// A builder validated against `spec`.
    pub fn new(spec: &IndexSpec) -> Result<DiskAnnBuilder> {
        spec.validate()?;
        let r = spec.param_usize("r", 32)?;
        if r < 2 {
            return Err(BhError::InvalidArgument("diskann: R must be >= 2".into()));
        }
        Ok(DiskAnnBuilder {
            spec: spec.clone(),
            r,
            alpha: spec.param_f32("alpha", 1.2)?,
            l_build: spec.param_usize("l_build", 64)?,
            seed: spec.param_usize("seed", 0)? as u64,
            ids: Vec::new(),
            data: Vec::new(),
        })
    }

    fn dim(&self) -> usize {
        self.spec.dim
    }

    fn vec_of(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim()..(i + 1) * self.dim()]
    }

    fn dist(&self, a: usize, b: usize) -> f32 {
        self.spec.metric.distance(self.vec_of(a), self.vec_of(b))
    }

    /// α-robust prune (DiskANN Algorithm 2).
    fn robust_prune(&self, p: usize, mut cand: Vec<(f32, u32)>, adj: &mut Vec<Vec<u32>>) {
        cand.sort_by(|a, b| a.0.total_cmp(&b.0));
        cand.dedup_by_key(|c| c.1);
        let mut result: Vec<u32> = Vec::with_capacity(self.r);
        while let Some(pos) = cand.iter().position(|&(_, n)| n as usize != p) {
            let (d_star, star) = cand.remove(pos);
            result.push(star);
            if result.len() >= self.r {
                break;
            }
            cand.retain(|&(d_c, c)| {
                let d_between = self.dist(star as usize, c as usize);
                !(self.alpha * d_between <= d_c) || d_c <= d_star
            });
        }
        adj[p] = result;
    }

    /// Greedy search over the under-construction graph, returning the visited
    /// set with distances (the candidate pool for pruning).
    fn greedy_visited(&self, start: u32, target: usize, adj: &[Vec<u32>]) -> Vec<(f32, u32)> {
        let n = self.ids.len();
        let mut visited = vec![false; n];
        let mut out: Vec<(f32, u32)> = Vec::new();
        let mut list: Vec<(f32, u32)> = vec![(self.dist(start as usize, target), start)];
        visited[start as usize] = true;
        let mut expanded = vec![false; n];
        loop {
            let Some(pos) = list.iter().position(|&(_, v)| !expanded[v as usize]) else { break };
            let (d, node) = list[pos];
            expanded[node as usize] = true;
            out.push((d, node));
            for &nb in &adj[node as usize] {
                if visited[nb as usize] {
                    continue;
                }
                visited[nb as usize] = true;
                let dn = self.dist(nb as usize, target);
                let at = list.partition_point(|&(x, _)| x <= dn);
                if at < self.l_build {
                    list.insert(at, (dn, nb));
                    if list.len() > self.l_build {
                        list.pop();
                    }
                }
            }
        }
        out
    }
}

impl IndexBuilder for DiskAnnBuilder {
    fn train(&mut self, _sample: &[f32]) -> Result<()> {
        Ok(())
    }

    fn add_with_ids(&mut self, vectors: &[f32], ids: &[u64]) -> Result<()> {
        check_batch(self.dim(), vectors, ids)?;
        self.data.extend_from_slice(vectors);
        self.ids.extend_from_slice(ids);
        Ok(())
    }

    fn finish(self: Box<Self>) -> Result<Arc<dyn VectorIndex>> {
        let n = self.ids.len();
        let dim = self.dim();
        if n == 0 {
            return Err(BhError::Index("diskann: cannot build over zero vectors".into()));
        }
        let mut rng = derived_rng(self.seed, 0x7661_6d61);

        // Medoid: node nearest the dataset mean.
        let mut mean = vec![0.0f64; dim];
        for i in 0..n {
            for d in 0..dim {
                mean[d] += self.vec_of(i)[d] as f64;
            }
        }
        let mean: Vec<f32> = mean.iter().map(|&x| (x / n as f64) as f32).collect();
        let medoid = (0..n)
            .min_by(|&a, &b| {
                self.spec
                    .metric
                    .distance(&mean, self.vec_of(a))
                    .total_cmp(&self.spec.metric.distance(&mean, self.vec_of(b)))
            })
            .unwrap_or(0) as u32;

        // Random initial graph.
        let mut adj: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let mut nbrs = Vec::with_capacity(self.r.min(n - 1));
                while nbrs.len() < self.r.min(n.saturating_sub(1)) {
                    let c = rng.gen_range(0..n) as u32;
                    if c as usize != i && !nbrs.contains(&c) {
                        nbrs.push(c);
                    }
                }
                nbrs
            })
            .collect();

        // Two Vamana passes.
        let mut order: Vec<usize> = (0..n).collect();
        for _pass in 0..2 {
            order.shuffle(&mut rng);
            for &p in &order {
                let mut cand = self.greedy_visited(medoid, p, &adj);
                cand.extend(adj[p].iter().map(|&x| (self.dist(p, x as usize), x)));
                self.robust_prune(p, cand, &mut adj);
                // Back-edges with pruning on overflow.
                let nbrs = adj[p].clone();
                for nb in nbrs {
                    if !adj[nb as usize].contains(&(p as u32)) {
                        adj[nb as usize].push(p as u32);
                        if adj[nb as usize].len() > self.r {
                            let cand: Vec<(f32, u32)> = adj[nb as usize]
                                .iter()
                                .map(|&x| (self.dist(nb as usize, x as usize), x))
                                .collect();
                            self.robust_prune(nb as usize, cand, &mut adj);
                        }
                    }
                }
            }
        }

        // PQ navigation codes (8-bit on raw vectors — DiskANN compresses
        // absolute vectors, not residuals).
        let m = {
            let target = (dim / 4).max(1);
            let mut best = 1;
            for cand_m in 1..=target {
                if dim % cand_m == 0 {
                    best = cand_m;
                }
            }
            best
        };
        let pq = Pq::train(
            &self.data,
            dim,
            self.spec.metric,
            &PqParams { m, bits: CodeBits::B8, seed: self.seed, kmeans_iters: 8 },
        )?;
        let mut codes = Vec::with_capacity(n * pq.code_size());
        for i in 0..n {
            codes.extend(pq.encode(self.vec_of(i))?);
        }

        // Pack the disk blob.
        let stride = dim * 4 + 4 + self.r * 4;
        let mut blob = vec![0u8; n * stride];
        for i in 0..n {
            let off = i * stride;
            for d in 0..dim {
                blob[off + d * 4..off + d * 4 + 4]
                    .copy_from_slice(&self.vec_of(i)[d].to_le_bytes());
            }
            let doff = off + dim * 4;
            let degree = adj[i].len().min(self.r) as u32;
            blob[doff..doff + 4].copy_from_slice(&degree.to_le_bytes());
            for (j, &nb) in adj[i].iter().take(self.r).enumerate() {
                let b = doff + 4 + j * 4;
                blob[b..b + 4].copy_from_slice(&nb.to_le_bytes());
            }
        }

        Ok(Arc::new(DiskAnnIndex {
            dim,
            metric: self.spec.metric,
            r: self.r,
            medoid,
            ids: self.ids,
            pq,
            codes,
            blob,
            disk_reads: AtomicU64::new(0),
        }))
    }

    fn requires_training(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatBuilder;
    use crate::recall::recall_at_k;
    use bh_common::rng::rng;
    use rand::Rng;

    fn clustered(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut r = rng(seed);
        let mut data = Vec::with_capacity(n * dim);
        for i in 0..n {
            let center = (i % 6) as f32 * 6.0;
            for _ in 0..dim {
                data.push(center + r.gen_range(-1.0f32..1.0));
            }
        }
        data
    }

    fn build(n: usize, dim: usize, seed: u64) -> (Arc<dyn VectorIndex>, Arc<dyn VectorIndex>, Vec<f32>) {
        let data = clustered(n, dim, seed);
        let ids: Vec<u64> = (0..n as u64).collect();
        let spec = IndexSpec::new(IndexKind::DiskAnn, dim, Metric::L2).with_param("r", 24);
        let mut b = Box::new(DiskAnnBuilder::new(&spec).unwrap());
        b.add_with_ids(&data, &ids).unwrap();
        let dann = (b as Box<dyn IndexBuilder>).finish().unwrap();
        let fspec = IndexSpec::new(IndexKind::Flat, dim, Metric::L2);
        let mut fb = Box::new(FlatBuilder::new(&fspec).unwrap());
        fb.add_with_ids(&data, &ids).unwrap();
        let flat = (fb as Box<dyn IndexBuilder>).finish().unwrap();
        (dann, flat, data)
    }

    #[test]
    fn recall_floor_vs_oracle() {
        let dim = 12;
        let n = 800;
        let (dann, flat, data) = build(n, dim, 1);
        let params = SearchParams::default().with_ef(64);
        let mut total = 0.0;
        for q in 0..15 {
            let row = (q * 53) % n;
            let qv = &data[row * dim..(row + 1) * dim];
            let truth = flat.search_with_filter(qv, 10, &params, None).unwrap();
            let got = dann.search_with_filter(qv, 10, &params, None).unwrap();
            total += recall_at_k(&truth, &got, 10);
        }
        let recall = total / 15.0;
        assert!(recall >= 0.85, "diskann recall {recall} below floor");
    }

    #[test]
    fn disk_reads_counted_and_bounded() {
        let (dann, _, data) = build(500, 8, 2);
        let dann_concrete = {
            // Downcast via save/load to access DiskAnnIndex API.
            DiskAnnIndex::load_bytes(&dann.save_bytes().unwrap()).unwrap()
        };
        assert_eq!(dann_concrete.disk_reads(), 0);
        let params = SearchParams::default().with_ef(32);
        dann_concrete.search_with_filter(&data[0..8], 5, &params, None).unwrap();
        let reads = dann_concrete.disk_reads();
        assert!(reads > 0, "search must read the blob");
        assert!(
            (reads as usize) < 500 / 2,
            "beam search must not read most of the graph: {reads} reads"
        );
    }

    #[test]
    fn memory_excludes_disk_blob() {
        let (dann, flat, _) = build(600, 16, 3);
        assert!(
            dann.memory_usage() < flat.memory_usage(),
            "diskann resident memory {} must undercut raw vectors {}",
            dann.memory_usage(),
            flat.memory_usage()
        );
    }

    #[test]
    fn filtered_search() {
        let (dann, _, data) = build(400, 8, 4);
        let allowed = Bitset::from_positions(400, (0..400).filter(|i| i % 5 == 0));
        let got = dann
            .search_with_filter(&data[0..8], 8, &SearchParams::default(), Some(&allowed))
            .unwrap();
        assert!(!got.is_empty());
        for nb in &got {
            assert_eq!(nb.id % 5, 0);
        }
    }

    #[test]
    fn range_search_grows_k() {
        let (dann, flat, data) = build(500, 8, 5);
        let q = &data[0..8];
        let params = SearchParams::default().with_ef(48);
        let truth = flat.search_with_range(q, 4.0, &params, None).unwrap();
        let got = dann.search_with_range(q, 4.0, &params, None).unwrap();
        assert!(got.len() as f64 >= truth.len() as f64 * 0.8, "{} of {}", got.len(), truth.len());
        for nb in &got {
            assert!(nb.distance <= 4.0);
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let (dann, _, data) = build(300, 8, 6);
        let blob = dann.save_bytes().unwrap();
        let loaded = DiskAnnIndex::load_bytes(&blob).unwrap();
        let params = SearchParams::default();
        assert_eq!(
            dann.search_with_filter(&data[0..8], 5, &params, None).unwrap(),
            loaded.search_with_filter(&data[0..8], 5, &params, None).unwrap()
        );
        assert!(DiskAnnIndex::load_bytes(&blob[..32]).is_err());
    }

    #[test]
    fn empty_build_fails_single_vector_works() {
        let spec = IndexSpec::new(IndexKind::DiskAnn, 4, Metric::L2);
        let b = Box::new(DiskAnnBuilder::new(&spec).unwrap());
        assert!((b as Box<dyn IndexBuilder>).finish().is_err());

        let mut b2 = Box::new(DiskAnnBuilder::new(&spec).unwrap());
        b2.add_with_ids(&[1.0, 2.0, 3.0, 4.0], &[42]).unwrap();
        let idx = (b2 as Box<dyn IndexBuilder>).finish().unwrap();
        let got = idx
            .search_with_filter(&[1.0, 2.0, 3.0, 4.0], 1, &SearchParams::default(), None)
            .unwrap();
        assert_eq!(got[0].id, 42);
    }
}
