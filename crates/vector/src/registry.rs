//! Pluggable index-library registry (§III-A).
//!
//! BlendHouse instantiates and loads vector indexes exclusively through an
//! [`IndexRegistry`]. Each index "library" contributes an [`IndexFactory`];
//! the registry routes an [`IndexSpec`] to the factory registered for its
//! [`IndexKind`]. Registering a factory for an already-claimed kind replaces
//! the previous provider — that is the pluggability mechanism: swapping the
//! HNSW implementation is one `register` call, no engine changes.
//!
//! Three built-in factories mirror the paper's three integrated libraries:
//!
//! * `bh-hnswlib` — `HNSW`, `HNSWSQ` (with the iterative-search extension),
//! * `bh-faiss` — `FLAT`, `IVFFLAT`, `IVFPQ`, `IVFPQFS`,
//! * `bh-diskann` — `DISKANN`.

use crate::flat::{FlatBuilder, FlatIndex};
use crate::hnsw::{HnswBuilder, HnswIndex};
use crate::ivf::{IvfBuilder, IvfIndex};
use crate::types::{IndexBuilder, IndexKind, IndexSpec, VectorIndex};
use crate::vamana::{DiskAnnBuilder, DiskAnnIndex};
use bh_common::{BhError, Result};
use bytes::Bytes;
use bh_common::sync::{classes, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// A provider of one or more index implementations.
pub trait IndexFactory: Send + Sync {
    /// Human-readable library name (shows up in `EXPLAIN` and catalogs).
    fn library(&self) -> &'static str;

    /// The kinds this factory can build and load.
    fn supported(&self) -> Vec<IndexKind>;

    /// `CreateIndex`: start a builder for `spec`.
    fn create_builder(&self, spec: &IndexSpec) -> Result<Box<dyn IndexBuilder>>;

    /// `LoadIndex`: deserialize a previously saved index of `kind`.
    fn load(&self, kind: IndexKind, bytes: &[u8]) -> Result<Arc<dyn VectorIndex>>;

    /// Deserialize only the head section of a v3 tiered blob into a partial
    /// index ([`VectorIndex::is_partial`]). Factories without tiered support
    /// keep the default error; the caller then falls back to a full load.
    fn load_head(&self, kind: IndexKind, head: &[u8]) -> Result<Arc<dyn VectorIndex>> {
        let _ = head;
        Err(BhError::InvalidArgument(format!(
            "{} does not support tiered loading of {}",
            self.library(),
            kind.name()
        )))
    }

    /// Deserialize head + body sections of a v3 tiered blob into a full
    /// index, equivalent to loading the legacy whole blob.
    fn load_tiered(
        &self,
        kind: IndexKind,
        head: &[u8],
        body: &[u8],
    ) -> Result<Arc<dyn VectorIndex>> {
        let _ = (head, body);
        Err(BhError::InvalidArgument(format!(
            "{} does not support tiered loading of {}",
            self.library(),
            kind.name()
        )))
    }
}

/// Built-in factory standing in for hnswlib.
#[derive(Debug, Default)]
pub struct HnswlibFactory;

impl IndexFactory for HnswlibFactory {
    fn library(&self) -> &'static str {
        "bh-hnswlib"
    }

    fn supported(&self) -> Vec<IndexKind> {
        vec![IndexKind::Hnsw, IndexKind::HnswSq]
    }

    fn create_builder(&self, spec: &IndexSpec) -> Result<Box<dyn IndexBuilder>> {
        Ok(Box::new(HnswBuilder::new(spec, spec.kind)?))
    }

    fn load(&self, _kind: IndexKind, bytes: &[u8]) -> Result<Arc<dyn VectorIndex>> {
        Ok(Arc::new(HnswIndex::load_bytes(bytes)?))
    }

    fn load_head(&self, _kind: IndexKind, head: &[u8]) -> Result<Arc<dyn VectorIndex>> {
        Ok(Arc::new(crate::hnsw::HnswHeadIndex::load_bytes(head)?))
    }

    fn load_tiered(
        &self,
        _kind: IndexKind,
        head: &[u8],
        body: &[u8],
    ) -> Result<Arc<dyn VectorIndex>> {
        Ok(Arc::new(HnswIndex::load_tiered_parts(head, body)?))
    }
}

/// Built-in factory standing in for faiss.
#[derive(Debug, Default)]
pub struct FaissFactory;

impl IndexFactory for FaissFactory {
    fn library(&self) -> &'static str {
        "bh-faiss"
    }

    fn supported(&self) -> Vec<IndexKind> {
        vec![IndexKind::Flat, IndexKind::IvfFlat, IndexKind::IvfPq, IndexKind::IvfPqFs]
    }

    fn create_builder(&self, spec: &IndexSpec) -> Result<Box<dyn IndexBuilder>> {
        match spec.kind {
            IndexKind::Flat => Ok(Box::new(FlatBuilder::new(spec)?)),
            IndexKind::IvfFlat | IndexKind::IvfPq | IndexKind::IvfPqFs => {
                Ok(Box::new(IvfBuilder::new(spec, spec.kind)?))
            }
            other => Err(BhError::InvalidArgument(format!(
                "{} does not provide {}",
                self.library(),
                other.name()
            ))),
        }
    }

    fn load(&self, kind: IndexKind, bytes: &[u8]) -> Result<Arc<dyn VectorIndex>> {
        match kind {
            IndexKind::Flat => Ok(Arc::new(FlatIndex::load_bytes(bytes)?)),
            _ => Ok(Arc::new(IvfIndex::load_bytes(bytes)?)),
        }
    }

    fn load_head(&self, kind: IndexKind, head: &[u8]) -> Result<Arc<dyn VectorIndex>> {
        match kind {
            IndexKind::Flat => Err(BhError::InvalidArgument(
                "FLAT indexes have no tiered form".into(),
            )),
            _ => Ok(Arc::new(crate::ivf::IvfHeadIndex::load_bytes(head)?)),
        }
    }

    fn load_tiered(
        &self,
        kind: IndexKind,
        head: &[u8],
        body: &[u8],
    ) -> Result<Arc<dyn VectorIndex>> {
        match kind {
            IndexKind::Flat => Err(BhError::InvalidArgument(
                "FLAT indexes have no tiered form".into(),
            )),
            _ => Ok(Arc::new(IvfIndex::load_tiered_parts(head, body)?)),
        }
    }
}

/// Built-in factory standing in for diskann.
#[derive(Debug, Default)]
pub struct DiskannFactory;

impl IndexFactory for DiskannFactory {
    fn library(&self) -> &'static str {
        "bh-diskann"
    }

    fn supported(&self) -> Vec<IndexKind> {
        vec![IndexKind::DiskAnn]
    }

    fn create_builder(&self, spec: &IndexSpec) -> Result<Box<dyn IndexBuilder>> {
        Ok(Box::new(DiskAnnBuilder::new(spec)?))
    }

    fn load(&self, _kind: IndexKind, bytes: &[u8]) -> Result<Arc<dyn VectorIndex>> {
        Ok(Arc::new(DiskAnnIndex::load_bytes(bytes)?))
    }
}

/// The registry: kind → providing factory.
pub struct IndexRegistry {
    factories: RwLock<HashMap<IndexKind, Arc<dyn IndexFactory>>>,
}

impl IndexRegistry {
    /// An empty registry (no kinds available).
    pub fn empty() -> Self {
        Self { factories: RwLock::new(&classes::REGISTRY_FACTORIES, HashMap::new()) }
    }

    /// A registry pre-populated with the three built-in libraries.
    pub fn with_builtins() -> Self {
        let reg = Self::empty();
        reg.register(Arc::new(HnswlibFactory));
        reg.register(Arc::new(FaissFactory));
        reg.register(Arc::new(DiskannFactory));
        reg
    }

    /// Register a factory for every kind it supports, replacing previous
    /// providers of those kinds.
    pub fn register(&self, factory: Arc<dyn IndexFactory>) {
        let mut map = self.factories.write();
        for kind in factory.supported() {
            map.insert(kind, factory.clone());
        }
    }

    fn factory_for(&self, kind: IndexKind) -> Result<Arc<dyn IndexFactory>> {
        self.factories
            .read()
            .get(&kind)
            .cloned()
            .ok_or_else(|| BhError::NotFound(format!("no index library provides {}", kind.name())))
    }

    /// The library name that will serve `kind`.
    pub fn provider(&self, kind: IndexKind) -> Option<&'static str> {
        self.factories.read().get(&kind).map(|f| f.library())
    }

    /// All kinds currently available, sorted by name.
    pub fn supported_kinds(&self) -> Vec<IndexKind> {
        let mut kinds: Vec<IndexKind> = self.factories.read().keys().copied().collect();
        kinds.sort_by_key(|k| k.name());
        kinds
    }

    /// `CreateIndex` entry point.
    pub fn create_builder(&self, spec: &IndexSpec) -> Result<Box<dyn IndexBuilder>> {
        spec.validate()?;
        self.factory_for(spec.kind)?.create_builder(spec)
    }

    /// `LoadIndex` entry point. Accepts both legacy whole-index blobs and v3
    /// tiered containers (sniffed by magic), so callers never need to know
    /// which format a segment was persisted with.
    pub fn load(&self, kind: IndexKind, bytes: &[u8]) -> Result<Arc<dyn VectorIndex>> {
        let factory = self.factory_for(kind)?;
        if crate::tiered::is_tiered(bytes) {
            let blob = Bytes::copy_from_slice(bytes);
            let (head, body) = crate::tiered::split(&blob)?;
            return factory.load_tiered(kind, &head, &body);
        }
        factory.load(kind, bytes)
    }

    /// Zero-copy variant of [`IndexRegistry::load`] for callers that already
    /// hold the blob as [`Bytes`].
    pub fn load_blob(&self, kind: IndexKind, blob: &Bytes) -> Result<Arc<dyn VectorIndex>> {
        let factory = self.factory_for(kind)?;
        if crate::tiered::is_tiered(blob) {
            let (head, body) = crate::tiered::split(blob)?;
            return factory.load_tiered(kind, &head, &body);
        }
        factory.load(kind, blob)
    }

    /// Load a head-only partial index from a container prefix range-fetch
    /// (at least `SegmentMeta::index_head_bytes` bytes of the blob). The
    /// result has [`VectorIndex::is_partial`] `== true`.
    pub fn load_head(&self, kind: IndexKind, prefix: &Bytes) -> Result<Arc<dyn VectorIndex>> {
        let head = crate::tiered::head_from_prefix(prefix)?;
        self.factory_for(kind)?.load_head(kind, &head)
    }
}

impl Default for IndexRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Neighbor, SearchParams};
    use crate::Metric;
    use bh_common::Bitset;

    #[test]
    fn builtins_cover_all_seven_kinds() {
        let reg = IndexRegistry::with_builtins();
        assert_eq!(reg.supported_kinds().len(), 7);
        assert_eq!(reg.provider(IndexKind::Hnsw), Some("bh-hnswlib"));
        assert_eq!(reg.provider(IndexKind::IvfPqFs), Some("bh-faiss"));
        assert_eq!(reg.provider(IndexKind::DiskAnn), Some("bh-diskann"));
    }

    #[test]
    fn empty_registry_rejects_everything() {
        let reg = IndexRegistry::empty();
        let spec = IndexSpec::new(IndexKind::Flat, 4, Metric::L2);
        assert!(reg.create_builder(&spec).is_err());
        assert!(reg.load(IndexKind::Flat, &[]).is_err());
    }

    #[test]
    fn build_save_load_via_registry_for_every_kind() {
        let reg = IndexRegistry::with_builtins();
        let dim = 8;
        let n = 200;
        let data: Vec<f32> = (0..n * dim).map(|i| ((i * 37) % 100) as f32 / 10.0).collect();
        let ids: Vec<u64> = (0..n as u64).collect();
        for kind in reg.supported_kinds() {
            let spec = IndexSpec::new(kind, dim, Metric::L2).with_param("nlist", 8);
            let mut b = reg.create_builder(&spec).unwrap();
            if b.requires_training() {
                b.train(&data).unwrap();
            }
            b.add_with_ids(&data, &ids).unwrap();
            let idx = b.finish().unwrap();
            assert_eq!(idx.meta().len, n, "{kind:?}");
            let blob = idx.save_bytes().unwrap();
            let loaded = reg.load(kind, &blob).unwrap();
            assert_eq!(loaded.meta().kind, kind);
            let got = loaded
                .search_with_filter(&data[0..dim], 3, &SearchParams::default(), None)
                .unwrap();
            assert!(!got.is_empty(), "{kind:?} returned nothing");
        }
    }

    #[test]
    fn tiered_blobs_load_via_registry() {
        let reg = IndexRegistry::with_builtins();
        let dim = 16;
        let n = 400;
        let data: Vec<f32> = (0..n * dim).map(|i| ((i * 37) % 100) as f32 / 10.0).collect();
        let ids: Vec<u64> = (0..n as u64).collect();
        for kind in [IndexKind::Hnsw, IndexKind::IvfFlat, IndexKind::IvfPq] {
            let spec = IndexSpec::new(kind, dim, Metric::L2).with_param("nlist", 8);
            let mut b = reg.create_builder(&spec).unwrap();
            if b.requires_training() {
                b.train(&data).unwrap();
            }
            b.add_with_ids(&data, &ids).unwrap();
            let idx = b.finish().unwrap();
            let (head, body) = idx.save_bytes_tiered().unwrap().expect("tiered support");
            let framed = crate::tiered::frame(&head, &body);

            // The full tiered container loads to an equivalent index.
            let full = reg.load(kind, &framed).unwrap();
            assert!(!full.is_partial(), "{kind:?}");
            let params = SearchParams::default().with_nprobe(8);
            let want = idx.search_with_filter(&data[0..dim], 5, &params, None).unwrap();
            let got = full.search_with_filter(&data[0..dim], 5, &params, None).unwrap();
            assert_eq!(want, got, "{kind:?}");

            // A head-only prefix loads to a partial index.
            let prefix_len = crate::tiered::head_prefix_len(head.len() as u64) as usize;
            let prefix = framed.slice(0..prefix_len);
            let partial = reg.load_head(kind, &prefix).unwrap();
            assert!(partial.is_partial(), "{kind:?}");
            assert_eq!(partial.meta().len, n, "{kind:?}");
        }

        // FLAT has no tiered form: declines the split, still loads whole blobs.
        let spec = IndexSpec::new(IndexKind::Flat, dim, Metric::L2);
        let mut b = reg.create_builder(&spec).unwrap();
        b.add_with_ids(&data, &ids).unwrap();
        let idx = b.finish().unwrap();
        assert!(idx.save_bytes_tiered().unwrap().is_none());
        let blob = idx.save_bytes().unwrap();
        assert!(reg.load(IndexKind::Flat, &blob).is_ok());
    }

    /// A custom single-kind factory demonstrating third-party pluggability.
    struct ConstantFactory;

    struct ConstantIndex(usize);

    impl VectorIndex for ConstantIndex {
        fn meta(&self) -> crate::types::IndexMeta {
            crate::types::IndexMeta {
                kind: IndexKind::Flat,
                dim: self.0,
                metric: Metric::L2,
                len: 1,
            }
        }

        fn search_with_filter(
            &self,
            _q: &[f32],
            _k: usize,
            _p: &SearchParams,
            _f: Option<&Bitset>,
        ) -> Result<Vec<Neighbor>> {
            Ok(vec![Neighbor::new(99, 0.0)])
        }

        fn search_with_range(
            &self,
            _q: &[f32],
            _r: f32,
            _p: &SearchParams,
            _f: Option<&Bitset>,
        ) -> Result<Vec<Neighbor>> {
            Ok(vec![])
        }

        fn search_iterator<'a>(
            &'a self,
            q: &[f32],
            p: &SearchParams,
        ) -> Result<Box<dyn crate::iterator::SearchIterator + 'a>> {
            Ok(Box::new(crate::iterator::GenericSearchIterator::new(self, q, p)))
        }

        fn memory_usage(&self) -> usize {
            0
        }

        fn save_bytes(&self) -> Result<bytes::Bytes> {
            Ok(bytes::Bytes::new())
        }
    }

    impl IndexFactory for ConstantFactory {
        fn library(&self) -> &'static str {
            "third-party"
        }

        fn supported(&self) -> Vec<IndexKind> {
            vec![IndexKind::Flat]
        }

        fn create_builder(&self, _spec: &IndexSpec) -> Result<Box<dyn IndexBuilder>> {
            Err(BhError::InvalidArgument("load-only factory".into()))
        }

        fn load(&self, _kind: IndexKind, _bytes: &[u8]) -> Result<Arc<dyn VectorIndex>> {
            Ok(Arc::new(ConstantIndex(4)))
        }
    }

    #[test]
    fn registering_replaces_provider() {
        let reg = IndexRegistry::with_builtins();
        assert_eq!(reg.provider(IndexKind::Flat), Some("bh-faiss"));
        reg.register(Arc::new(ConstantFactory));
        assert_eq!(reg.provider(IndexKind::Flat), Some("third-party"));
        // Other kinds untouched.
        assert_eq!(reg.provider(IndexKind::Hnsw), Some("bh-hnswlib"));
        // And the new provider actually serves loads.
        let idx = reg.load(IndexKind::Flat, &[]).unwrap();
        let got = idx.search_with_filter(&[0.0; 4], 1, &SearchParams::default(), None).unwrap();
        assert_eq!(got[0].id, 99);
    }
}
