//! Pluggable index-library registry (§III-A).
//!
//! BlendHouse instantiates and loads vector indexes exclusively through an
//! [`IndexRegistry`]. Each index "library" contributes an [`IndexFactory`];
//! the registry routes an [`IndexSpec`] to the factory registered for its
//! [`IndexKind`]. Registering a factory for an already-claimed kind replaces
//! the previous provider — that is the pluggability mechanism: swapping the
//! HNSW implementation is one `register` call, no engine changes.
//!
//! Three built-in factories mirror the paper's three integrated libraries:
//!
//! * `bh-hnswlib` — `HNSW`, `HNSWSQ` (with the iterative-search extension),
//! * `bh-faiss` — `FLAT`, `IVFFLAT`, `IVFPQ`, `IVFPQFS`,
//! * `bh-diskann` — `DISKANN`.

use crate::flat::{FlatBuilder, FlatIndex};
use crate::hnsw::{HnswBuilder, HnswIndex};
use crate::ivf::{IvfBuilder, IvfIndex};
use crate::types::{IndexBuilder, IndexKind, IndexSpec, VectorIndex};
use crate::vamana::{DiskAnnBuilder, DiskAnnIndex};
use bh_common::{BhError, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A provider of one or more index implementations.
pub trait IndexFactory: Send + Sync {
    /// Human-readable library name (shows up in `EXPLAIN` and catalogs).
    fn library(&self) -> &'static str;

    /// The kinds this factory can build and load.
    fn supported(&self) -> Vec<IndexKind>;

    /// `CreateIndex`: start a builder for `spec`.
    fn create_builder(&self, spec: &IndexSpec) -> Result<Box<dyn IndexBuilder>>;

    /// `LoadIndex`: deserialize a previously saved index of `kind`.
    fn load(&self, kind: IndexKind, bytes: &[u8]) -> Result<Arc<dyn VectorIndex>>;
}

/// Built-in factory standing in for hnswlib.
#[derive(Debug, Default)]
pub struct HnswlibFactory;

impl IndexFactory for HnswlibFactory {
    fn library(&self) -> &'static str {
        "bh-hnswlib"
    }

    fn supported(&self) -> Vec<IndexKind> {
        vec![IndexKind::Hnsw, IndexKind::HnswSq]
    }

    fn create_builder(&self, spec: &IndexSpec) -> Result<Box<dyn IndexBuilder>> {
        Ok(Box::new(HnswBuilder::new(spec, spec.kind)?))
    }

    fn load(&self, _kind: IndexKind, bytes: &[u8]) -> Result<Arc<dyn VectorIndex>> {
        Ok(Arc::new(HnswIndex::load_bytes(bytes)?))
    }
}

/// Built-in factory standing in for faiss.
#[derive(Debug, Default)]
pub struct FaissFactory;

impl IndexFactory for FaissFactory {
    fn library(&self) -> &'static str {
        "bh-faiss"
    }

    fn supported(&self) -> Vec<IndexKind> {
        vec![IndexKind::Flat, IndexKind::IvfFlat, IndexKind::IvfPq, IndexKind::IvfPqFs]
    }

    fn create_builder(&self, spec: &IndexSpec) -> Result<Box<dyn IndexBuilder>> {
        match spec.kind {
            IndexKind::Flat => Ok(Box::new(FlatBuilder::new(spec)?)),
            IndexKind::IvfFlat | IndexKind::IvfPq | IndexKind::IvfPqFs => {
                Ok(Box::new(IvfBuilder::new(spec, spec.kind)?))
            }
            other => Err(BhError::InvalidArgument(format!(
                "{} does not provide {}",
                self.library(),
                other.name()
            ))),
        }
    }

    fn load(&self, kind: IndexKind, bytes: &[u8]) -> Result<Arc<dyn VectorIndex>> {
        match kind {
            IndexKind::Flat => Ok(Arc::new(FlatIndex::load_bytes(bytes)?)),
            _ => Ok(Arc::new(IvfIndex::load_bytes(bytes)?)),
        }
    }
}

/// Built-in factory standing in for diskann.
#[derive(Debug, Default)]
pub struct DiskannFactory;

impl IndexFactory for DiskannFactory {
    fn library(&self) -> &'static str {
        "bh-diskann"
    }

    fn supported(&self) -> Vec<IndexKind> {
        vec![IndexKind::DiskAnn]
    }

    fn create_builder(&self, spec: &IndexSpec) -> Result<Box<dyn IndexBuilder>> {
        Ok(Box::new(DiskAnnBuilder::new(spec)?))
    }

    fn load(&self, _kind: IndexKind, bytes: &[u8]) -> Result<Arc<dyn VectorIndex>> {
        Ok(Arc::new(DiskAnnIndex::load_bytes(bytes)?))
    }
}

/// The registry: kind → providing factory.
pub struct IndexRegistry {
    factories: RwLock<HashMap<IndexKind, Arc<dyn IndexFactory>>>,
}

impl IndexRegistry {
    /// An empty registry (no kinds available).
    pub fn empty() -> Self {
        Self { factories: RwLock::new(HashMap::new()) }
    }

    /// A registry pre-populated with the three built-in libraries.
    pub fn with_builtins() -> Self {
        let reg = Self::empty();
        reg.register(Arc::new(HnswlibFactory));
        reg.register(Arc::new(FaissFactory));
        reg.register(Arc::new(DiskannFactory));
        reg
    }

    /// Register a factory for every kind it supports, replacing previous
    /// providers of those kinds.
    pub fn register(&self, factory: Arc<dyn IndexFactory>) {
        let mut map = self.factories.write();
        for kind in factory.supported() {
            map.insert(kind, factory.clone());
        }
    }

    fn factory_for(&self, kind: IndexKind) -> Result<Arc<dyn IndexFactory>> {
        self.factories
            .read()
            .get(&kind)
            .cloned()
            .ok_or_else(|| BhError::NotFound(format!("no index library provides {}", kind.name())))
    }

    /// The library name that will serve `kind`.
    pub fn provider(&self, kind: IndexKind) -> Option<&'static str> {
        self.factories.read().get(&kind).map(|f| f.library())
    }

    /// All kinds currently available, sorted by name.
    pub fn supported_kinds(&self) -> Vec<IndexKind> {
        let mut kinds: Vec<IndexKind> = self.factories.read().keys().copied().collect();
        kinds.sort_by_key(|k| k.name());
        kinds
    }

    /// `CreateIndex` entry point.
    pub fn create_builder(&self, spec: &IndexSpec) -> Result<Box<dyn IndexBuilder>> {
        spec.validate()?;
        self.factory_for(spec.kind)?.create_builder(spec)
    }

    /// `LoadIndex` entry point.
    pub fn load(&self, kind: IndexKind, bytes: &[u8]) -> Result<Arc<dyn VectorIndex>> {
        self.factory_for(kind)?.load(kind, bytes)
    }
}

impl Default for IndexRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Neighbor, SearchParams};
    use crate::Metric;
    use bh_common::Bitset;

    #[test]
    fn builtins_cover_all_seven_kinds() {
        let reg = IndexRegistry::with_builtins();
        assert_eq!(reg.supported_kinds().len(), 7);
        assert_eq!(reg.provider(IndexKind::Hnsw), Some("bh-hnswlib"));
        assert_eq!(reg.provider(IndexKind::IvfPqFs), Some("bh-faiss"));
        assert_eq!(reg.provider(IndexKind::DiskAnn), Some("bh-diskann"));
    }

    #[test]
    fn empty_registry_rejects_everything() {
        let reg = IndexRegistry::empty();
        let spec = IndexSpec::new(IndexKind::Flat, 4, Metric::L2);
        assert!(reg.create_builder(&spec).is_err());
        assert!(reg.load(IndexKind::Flat, &[]).is_err());
    }

    #[test]
    fn build_save_load_via_registry_for_every_kind() {
        let reg = IndexRegistry::with_builtins();
        let dim = 8;
        let n = 200;
        let data: Vec<f32> = (0..n * dim).map(|i| ((i * 37) % 100) as f32 / 10.0).collect();
        let ids: Vec<u64> = (0..n as u64).collect();
        for kind in reg.supported_kinds() {
            let spec = IndexSpec::new(kind, dim, Metric::L2).with_param("nlist", 8);
            let mut b = reg.create_builder(&spec).unwrap();
            if b.requires_training() {
                b.train(&data).unwrap();
            }
            b.add_with_ids(&data, &ids).unwrap();
            let idx = b.finish().unwrap();
            assert_eq!(idx.meta().len, n, "{kind:?}");
            let blob = idx.save_bytes().unwrap();
            let loaded = reg.load(kind, &blob).unwrap();
            assert_eq!(loaded.meta().kind, kind);
            let got = loaded
                .search_with_filter(&data[0..dim], 3, &SearchParams::default(), None)
                .unwrap();
            assert!(!got.is_empty(), "{kind:?} returned nothing");
        }
    }

    /// A custom single-kind factory demonstrating third-party pluggability.
    struct ConstantFactory;

    struct ConstantIndex(usize);

    impl VectorIndex for ConstantIndex {
        fn meta(&self) -> crate::types::IndexMeta {
            crate::types::IndexMeta {
                kind: IndexKind::Flat,
                dim: self.0,
                metric: Metric::L2,
                len: 1,
            }
        }

        fn search_with_filter(
            &self,
            _q: &[f32],
            _k: usize,
            _p: &SearchParams,
            _f: Option<&Bitset>,
        ) -> Result<Vec<Neighbor>> {
            Ok(vec![Neighbor::new(99, 0.0)])
        }

        fn search_with_range(
            &self,
            _q: &[f32],
            _r: f32,
            _p: &SearchParams,
            _f: Option<&Bitset>,
        ) -> Result<Vec<Neighbor>> {
            Ok(vec![])
        }

        fn search_iterator<'a>(
            &'a self,
            q: &[f32],
            p: &SearchParams,
        ) -> Result<Box<dyn crate::iterator::SearchIterator + 'a>> {
            Ok(Box::new(crate::iterator::GenericSearchIterator::new(self, q, p)))
        }

        fn memory_usage(&self) -> usize {
            0
        }

        fn save_bytes(&self) -> Result<bytes::Bytes> {
            Ok(bytes::Bytes::new())
        }
    }

    impl IndexFactory for ConstantFactory {
        fn library(&self) -> &'static str {
            "third-party"
        }

        fn supported(&self) -> Vec<IndexKind> {
            vec![IndexKind::Flat]
        }

        fn create_builder(&self, _spec: &IndexSpec) -> Result<Box<dyn IndexBuilder>> {
            Err(BhError::InvalidArgument("load-only factory".into()))
        }

        fn load(&self, _kind: IndexKind, _bytes: &[u8]) -> Result<Arc<dyn VectorIndex>> {
            Ok(Arc::new(ConstantIndex(4)))
        }
    }

    #[test]
    fn registering_replaces_provider() {
        let reg = IndexRegistry::with_builtins();
        assert_eq!(reg.provider(IndexKind::Flat), Some("bh-faiss"));
        reg.register(Arc::new(ConstantFactory));
        assert_eq!(reg.provider(IndexKind::Flat), Some("third-party"));
        // Other kinds untouched.
        assert_eq!(reg.provider(IndexKind::Hnsw), Some("bh-hnswlib"));
        // And the new provider actually serves loads.
        let idx = reg.load(IndexKind::Flat, &[]).unwrap();
        let got = idx.search_with_filter(&[0.0; 4], 1, &SearchParams::default(), None).unwrap();
        assert_eq!(got[0].id, 99);
    }
}
