//! The "virtual vector index" abstraction (paper Fig. 5).
//!
//! BlendHouse never talks to a concrete index algorithm directly. The storage
//! layer builds indexes through [`IndexBuilder`] (`Train`, `AddWithIds`,
//! `CreateIndex`) and persists them via [`VectorIndex::save_bytes`]
//! (`SaveIndex`); the execution layer searches through
//! [`VectorIndex::search_with_filter`], [`VectorIndex::search_with_range`] and
//! [`VectorIndex::search_iterator`]. A new index library plugs in by
//! implementing these traits and registering an
//! [`crate::registry::IndexFactory`].

use crate::distance::Metric;
use crate::iterator::SearchIterator;
use bh_common::{BhError, Bitset, Result, SharedBound};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One search hit: a segment-local row offset (`id`) and its distance.
///
/// Per-segment indexes label vectors with *row offsets* rather than primary
/// keys (§III-B "Per segment vector index"), so mapping between vector hits
/// and scalar columns is a direct array access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// Segment-local row offset of the hit.
    pub id: u64,
    /// Distance under the index metric (smaller = more similar).
    pub distance: f32,
}

impl Neighbor {
    /// Construct a hit from a row offset and its distance.
    pub fn new(id: u64, distance: f32) -> Self {
        Self { id, distance }
    }
}

/// The index algorithms BlendHouse supports, grouped as in §III-A:
/// graph-based (HNSW, HNSWSQ), IVF-based (IVFFLAT, IVFPQ, IVFPQFS) and
/// disk-based (DISKANN). `Flat` is the exact brute-force fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexKind {
    /// Exact brute-force scan over raw vectors.
    Flat,
    /// Hierarchical navigable small world graph.
    Hnsw,
    /// HNSW over 8-bit scalar-quantized vectors.
    HnswSq,
    /// Inverted file with raw vectors per cell.
    IvfFlat,
    /// Inverted file with 8-bit product-quantized residuals.
    IvfPq,
    /// Inverted file with 4-bit PQ residuals (fast-scan layout).
    IvfPqFs,
    /// Disk-resident Vamana graph (DiskANN).
    DiskAnn,
}

/// Algorithm family, used for coarse capability checks and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexGroup {
    /// Exhaustive scan, exact results.
    Exact,
    /// Graph-traversal indexes (HNSW family).
    Graph,
    /// Inverted-file indexes.
    Ivf,
    /// Disk-resident indexes.
    Disk,
}

impl IndexKind {
    /// Parse the SQL-facing type name (`INDEX ann_idx embedding TYPE HNSW(...)`).
    pub fn parse(s: &str) -> Result<IndexKind> {
        match s.to_ascii_uppercase().as_str() {
            "FLAT" => Ok(IndexKind::Flat),
            "HNSW" => Ok(IndexKind::Hnsw),
            "HNSWSQ" | "HNSW_SQ" => Ok(IndexKind::HnswSq),
            "IVFFLAT" | "IVF_FLAT" => Ok(IndexKind::IvfFlat),
            "IVFPQ" | "IVF_PQ" => Ok(IndexKind::IvfPq),
            "IVFPQFS" | "IVF_PQ_FS" | "IVFPQ_FS" => Ok(IndexKind::IvfPqFs),
            "DISKANN" | "DISK_ANN" => Ok(IndexKind::DiskAnn),
            other => Err(BhError::InvalidArgument(format!("unknown index type: {other}"))),
        }
    }

    /// Canonical SQL-facing name.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Flat => "FLAT",
            IndexKind::Hnsw => "HNSW",
            IndexKind::HnswSq => "HNSWSQ",
            IndexKind::IvfFlat => "IVFFLAT",
            IndexKind::IvfPq => "IVFPQ",
            IndexKind::IvfPqFs => "IVFPQFS",
            IndexKind::DiskAnn => "DISKANN",
        }
    }

    /// Algorithm family of this kind.
    pub fn group(&self) -> IndexGroup {
        match self {
            IndexKind::Flat => IndexGroup::Exact,
            IndexKind::Hnsw | IndexKind::HnswSq => IndexGroup::Graph,
            IndexKind::IvfFlat | IndexKind::IvfPq | IndexKind::IvfPqFs => IndexGroup::Ivf,
            IndexKind::DiskAnn => IndexGroup::Disk,
        }
    }

    /// Whether building requires a training pass (k-means for IVF/PQ).
    pub fn requires_training(&self) -> bool {
        matches!(
            self,
            IndexKind::IvfFlat | IndexKind::IvfPq | IndexKind::IvfPqFs | IndexKind::HnswSq
        )
    }
}

/// Full specification of an index: algorithm, dimensionality, metric and
/// algorithm-specific build parameters (string-keyed, mirroring the SQL
/// `TYPE HNSW('DIM=960', 'M=32')` syntax).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexSpec {
    /// Algorithm to build.
    pub kind: IndexKind,
    /// Vector dimensionality.
    pub dim: usize,
    /// Distance metric.
    pub metric: Metric,
    /// Algorithm-specific build parameters (lower-cased keys).
    pub params: BTreeMap<String, String>,
}

impl IndexSpec {
    /// A spec with no algorithm-specific parameters.
    pub fn new(kind: IndexKind, dim: usize, metric: Metric) -> Self {
        Self { kind, dim, metric, params: BTreeMap::new() }
    }

    /// Builder-style parameter setter.
    pub fn with_param(mut self, key: &str, value: impl ToString) -> Self {
        self.params.insert(key.to_ascii_lowercase(), value.to_string());
        self
    }

    /// Read a numeric parameter with a default.
    pub fn param_usize(&self, key: &str, default: usize) -> Result<usize> {
        match self.params.get(&key.to_ascii_lowercase()) {
            None => Ok(default),
            Some(v) => v.parse::<usize>().map_err(|_| {
                BhError::InvalidArgument(format!("index param {key}={v} is not an integer"))
            }),
        }
    }

    /// Read a float parameter with a default.
    pub fn param_f32(&self, key: &str, default: f32) -> Result<f32> {
        match self.params.get(&key.to_ascii_lowercase()) {
            None => Ok(default),
            Some(v) => v.parse::<f32>().map_err(|_| {
                BhError::InvalidArgument(format!("index param {key}={v} is not a number"))
            }),
        }
    }

    /// Validate the parts every index shares.
    pub fn validate(&self) -> Result<()> {
        if self.dim == 0 {
            return Err(BhError::InvalidArgument("index dim must be > 0".into()));
        }
        Ok(())
    }
}

/// Immutable descriptive metadata of a built index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexMeta {
    /// Algorithm of the built index.
    pub kind: IndexKind,
    /// Vector dimensionality.
    pub dim: usize,
    /// Distance metric.
    pub metric: Metric,
    /// Number of indexed vectors.
    pub len: usize,
}

/// Runtime search knobs. Which field applies depends on the index group;
/// unknown fields are ignored by an index (so one struct serves all kinds,
/// mirroring faiss' search-parameter objects).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchParams {
    /// Beam width for graph indexes (HNSW `ef_search`, Vamana beam).
    pub ef_search: usize,
    /// Number of inverted lists probed by IVF indexes.
    pub nprobe: usize,
    /// Estimated fraction of rows passing the scalar filter (from the
    /// optimizer's histogram sketches). `None` when the caller has no
    /// estimate; filtered searches then fall back to the legacy fixed 2x
    /// beam widening.
    #[serde(default)]
    pub filter_selectivity: Option<f32>,
    /// Ask graph indexes to run the predicate-aware traversal (Plan D):
    /// failing nodes steer navigation but only passing nodes enter the
    /// result heap. Non-graph indexes ignore the flag and keep their
    /// bitmap-filter behaviour, which is always correct.
    #[serde(default)]
    pub filter_traversal: bool,
}

impl Default for SearchParams {
    fn default() -> Self {
        Self { ef_search: 64, nprobe: 8, filter_selectivity: None, filter_traversal: false }
    }
}

impl SearchParams {
    /// Set the graph beam width.
    pub fn with_ef(mut self, ef: usize) -> Self {
        self.ef_search = ef;
        self
    }

    /// Set the IVF probe count.
    pub fn with_nprobe(mut self, nprobe: usize) -> Self {
        self.nprobe = nprobe;
        self
    }

    /// Set the selectivity estimate driving adaptive beam widening.
    pub fn with_selectivity(mut self, s: f32) -> Self {
        self.filter_selectivity = Some(s);
        self
    }

    /// Enable the predicate-aware graph traversal (Plan D).
    pub fn with_filter_traversal(mut self, on: bool) -> Self {
        self.filter_traversal = on;
        self
    }

    /// Beam widening factor applied by bitmap-filtered searches (Plans
    /// B/C). Roughly `1/s` candidates must be visited per surviving row,
    /// so the beam grows inversely with selectivity; the clamp keeps a
    /// wild histogram estimate from exploding the beam, and the `None`
    /// arm preserves the historical fixed 2x widening.
    pub fn filter_widen_factor(&self) -> usize {
        match self.filter_selectivity {
            Some(s) if s > 0.0 => ((1.0 / f64::from(s)).ceil() as usize).clamp(1, 16),
            _ => 2,
        }
    }

    /// `base` beam width widened by [`Self::filter_widen_factor`].
    pub fn widened_ef(&self, base: usize) -> usize {
        base.saturating_mul(self.filter_widen_factor())
    }

    /// Beam width for the predicate-aware traversal: the base ef,
    /// unchanged. Unlike the bitmap-filtered beam, the traversal's result
    /// heap admits only predicate-passing rows, so an `ef`-sized heap
    /// already demands `ef` *answerable* candidates — the widening is
    /// implicit in the ~`1/√s` failing nodes the wavefront crosses to
    /// collect them (the `β/√s` term of cost_D). Multiplying ef on top of
    /// that double-counts the selectivity and re-inflates the beam the
    /// traversal exists to avoid (ACORN keeps the candidate list size
    /// unchanged for the same reason).
    pub fn traversal_ef(&self, base: usize) -> usize {
        base
    }

    /// How many consecutive predicate-failing hops the traversal may take
    /// from the last passing node before abandoning a path. Selective
    /// filters leave fewer passing nodes, so the graph needs deeper
    /// detours to stay connected (ACORN's expansion depth).
    pub fn hop_budget(&self) -> usize {
        match self.filter_selectivity {
            Some(s) if s >= 0.5 => 2,
            Some(s) if s >= 0.1 => 3,
            Some(_) => 5,
            None => 3,
        }
    }
}

/// A built, immutable, searchable vector index (execution-layer interface of
/// Fig. 5 plus `SaveIndex`).
///
/// Filter semantics: when `filter` is `Some`, only rows whose bit is **set**
/// may appear in results. The storage layer composes predicate bitsets with
/// the segment's delete bitmap before calling.
pub trait VectorIndex: Send + Sync {
    /// Descriptive metadata (kind, dim, metric, length).
    fn meta(&self) -> IndexMeta;

    /// `SearchWithFilter`: top-`k` by distance among rows passing `filter`.
    fn search_with_filter(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>>;

    /// Like [`Self::search_with_filter`], but threaded with a shared k-th
    /// distance upper bound published by peer workers of the same query
    /// (batched execution, DESIGN.md §7).
    ///
    /// Implementations may (a) skip candidates whose exact distance — or a
    /// proven **lower bound** on it — is **strictly** greater than
    /// `bound.get()` (such rows cannot enter the final top-k), and (b) lower
    /// the bound with their own exact local k-th distance once `k` exact
    /// candidates are collected. Indexes returning approximate distances
    /// (`needs_refine`) must never publish them; they may still prune using
    /// a conservative margin (quantization error bound) subtracted from the
    /// approximate distance, as the IVFPQ and HNSW-SQ stores do (DESIGN.md
    /// §10) — the exact k-th for publication then comes from the refine
    /// stage. The default ignores the bound entirely, which is always
    /// correct.
    fn search_with_bound(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
        bound: Option<&SharedBound>,
    ) -> Result<Vec<Neighbor>> {
        let _ = bound;
        self.search_with_filter(query, k, params, filter)
    }

    /// `SearchWithRange`: all rows within `radius` of `query` (by the index
    /// metric), passing `filter`, sorted ascending by distance.
    fn search_with_range(
        &self,
        query: &[f32],
        radius: f32,
        params: &SearchParams,
        filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>>;

    /// `SearchIterator`: incremental nearest-first traversal used by the
    /// post-filter strategy. Indexes without native support return a
    /// [`crate::iterator::GenericSearchIterator`] that restarts with doubled
    /// `k` (§III-B).
    fn search_iterator<'a>(
        &'a self,
        query: &[f32],
        params: &SearchParams,
    ) -> Result<Box<dyn SearchIterator + 'a>>;

    /// Whether [`Self::search_iterator`] is natively incremental (true for
    /// our extended HNSW) or a generic restart wrapper.
    fn has_native_iterator(&self) -> bool {
        false
    }

    /// Whether returned distances are approximate (quantized) and benefit
    /// from exact-distance refinement on the raw vectors (the `σ·k·c_d` term
    /// of the cost model).
    fn needs_refine(&self) -> bool {
        false
    }

    /// Resident memory estimate in bytes (drives Table VI and cache sizing).
    fn memory_usage(&self) -> usize;

    /// `SaveIndex`: serialize to a self-describing binary blob.
    fn save_bytes(&self) -> Result<Bytes>;

    /// Serialize as separate `(head, body)` sections for the v3 tiered
    /// container: the head alone must be loadable via
    /// [`crate::registry::IndexFactory::load_head`] into a partial index, and
    /// head + body via `load_tiered` into an index equivalent to `self`.
    /// `Ok(None)` (the default) means the kind has no tiered form and is
    /// persisted as a legacy whole blob.
    fn save_bytes_tiered(&self) -> Result<Option<(Bytes, Bytes)>> {
        Ok(None)
    }

    /// Whether this is a head-only partial index (body not yet loaded).
    /// Partial indexes serve from the resident head; rows only reachable
    /// through the missing body are not returned.
    fn is_partial(&self) -> bool {
        false
    }

    /// Whether a head-only load of this index can serve useful approximate
    /// searches by itself (true for HNSW: upper layers contain real vectors;
    /// false for IVF: centroids alone locate cells but hold no rows, so the
    /// caller should brute-force until the posting lists arrive).
    fn head_servable(&self) -> bool {
        !self.is_partial()
    }

    /// Validate a query vector against the index dimension.
    fn check_query(&self, query: &[f32]) -> Result<()> {
        let dim = self.meta().dim;
        if query.len() != dim {
            return Err(BhError::DimensionMismatch { expected: dim, got: query.len() });
        }
        Ok(())
    }
}

/// Storage-layer build interface of Fig. 5 (`Train`, `AddWithIds`, then
/// `finish` seals the immutable index — per-segment indexes are built exactly
/// once over an immutable segment).
pub trait IndexBuilder: Send {
    /// `Train`: fit data-dependent structures (k-means centroids, quantizer
    /// ranges) on a row-major `dim × n` sample. No-op for indexes that do not
    /// require training.
    fn train(&mut self, sample: &[f32]) -> Result<()>;

    /// `AddWithIds`: append vectors (row-major) with their row-offset labels.
    fn add_with_ids(&mut self, vectors: &[f32], ids: &[u64]) -> Result<()>;

    /// Seal and return the immutable index.
    fn finish(self: Box<Self>) -> Result<Arc<dyn VectorIndex>>;

    /// Whether `train` must be called before `add_with_ids`.
    fn requires_training(&self) -> bool;
}

/// Helper shared by all builders: validate a row-major batch shape.
pub fn check_batch(dim: usize, vectors: &[f32], ids: &[u64]) -> Result<usize> {
    if dim == 0 {
        return Err(BhError::InvalidArgument("dim must be > 0".into()));
    }
    if vectors.len() % dim != 0 {
        return Err(BhError::DimensionMismatch { expected: dim, got: vectors.len() % dim });
    }
    let n = vectors.len() / dim;
    if n != ids.len() {
        return Err(BhError::InvalidArgument(format!(
            "vector count {n} != id count {}",
            ids.len()
        )));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_roundtrip() {
        for k in [
            IndexKind::Flat,
            IndexKind::Hnsw,
            IndexKind::HnswSq,
            IndexKind::IvfFlat,
            IndexKind::IvfPq,
            IndexKind::IvfPqFs,
            IndexKind::DiskAnn,
        ] {
            assert_eq!(IndexKind::parse(k.name()).unwrap(), k);
        }
        assert_eq!(IndexKind::parse("ivf_flat").unwrap(), IndexKind::IvfFlat);
        assert!(IndexKind::parse("LSH").is_err());
    }

    #[test]
    fn kind_groups() {
        assert_eq!(IndexKind::Hnsw.group(), IndexGroup::Graph);
        assert_eq!(IndexKind::IvfPqFs.group(), IndexGroup::Ivf);
        assert_eq!(IndexKind::DiskAnn.group(), IndexGroup::Disk);
        assert_eq!(IndexKind::Flat.group(), IndexGroup::Exact);
    }

    #[test]
    fn training_requirements() {
        assert!(IndexKind::IvfPq.requires_training());
        assert!(IndexKind::HnswSq.requires_training());
        assert!(!IndexKind::Hnsw.requires_training());
        assert!(!IndexKind::Flat.requires_training());
    }

    #[test]
    fn spec_params() {
        let spec = IndexSpec::new(IndexKind::Hnsw, 128, Metric::L2)
            .with_param("M", 32)
            .with_param("ef_construction", 100);
        assert_eq!(spec.param_usize("m", 16).unwrap(), 32);
        assert_eq!(spec.param_usize("EF_CONSTRUCTION", 0).unwrap(), 100);
        assert_eq!(spec.param_usize("missing", 7).unwrap(), 7);
        let bad = IndexSpec::new(IndexKind::Hnsw, 8, Metric::L2).with_param("m", "abc");
        assert!(bad.param_usize("m", 1).is_err());
    }

    #[test]
    fn spec_validation() {
        assert!(IndexSpec::new(IndexKind::Flat, 0, Metric::L2).validate().is_err());
        assert!(IndexSpec::new(IndexKind::Flat, 4, Metric::L2).validate().is_ok());
    }

    #[test]
    fn search_param_widening_is_clamped_and_selectivity_driven() {
        // No estimate: legacy fixed 2x widening, traversal budget 3.
        let p = SearchParams::default();
        assert_eq!(p.filter_widen_factor(), 2);
        assert_eq!(p.widened_ef(64), 128);
        assert_eq!(p.traversal_ef(64), 64);
        assert_eq!(p.hop_budget(), 3);

        // Permissive filter: almost everything passes, no widening needed.
        let p = SearchParams::default().with_selectivity(1.0);
        assert_eq!(p.filter_widen_factor(), 1);
        assert_eq!(p.traversal_ef(64), 64);
        assert_eq!(p.hop_budget(), 2);

        // Mid selectivity: bitmap widening ~1/s; the traversal heap stays at
        // base ef (only passing rows enter it — widening is implicit).
        let p = SearchParams::default().with_selectivity(0.25);
        assert_eq!(p.filter_widen_factor(), 4);
        assert_eq!(p.widened_ef(64), 256);
        assert_eq!(p.traversal_ef(64), 64);
        assert_eq!(p.hop_budget(), 3);

        // Ultra-selective: bitmap factor hits its clamp; deepest hops.
        let p = SearchParams::default().with_selectivity(1e-4);
        assert_eq!(p.filter_widen_factor(), 16);
        assert_eq!(p.traversal_ef(64), 64);
        assert_eq!(p.hop_budget(), 5);

        // Degenerate estimates fall back to the legacy factor.
        let p = SearchParams::default().with_selectivity(0.0);
        assert_eq!(p.filter_widen_factor(), 2);
    }

    #[test]
    fn search_params_serde_roundtrip_keeps_filter_fields() {
        let p = SearchParams::default().with_ef(32).with_selectivity(0.25).with_filter_traversal(true);
        let json = serde_json::to_string(&p).unwrap();
        let back: SearchParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        let q: SearchParams = serde_json::from_str(&serde_json::to_string(&SearchParams::default()).unwrap()).unwrap();
        assert_eq!(q, SearchParams::default());
    }

    #[test]
    fn check_batch_shapes() {
        assert_eq!(check_batch(4, &[0.0; 8], &[1, 2]).unwrap(), 2);
        assert!(check_batch(4, &[0.0; 7], &[1]).is_err()); // ragged
        assert!(check_batch(4, &[0.0; 8], &[1]).is_err()); // id count mismatch
        assert!(check_batch(0, &[], &[]).is_err());
    }
}
