//! Vector quantizers.
//!
//! * [`sq`] — 8-bit scalar quantization (per-dimension affine), backing the
//!   `HNSWSQ` index: ~4x memory reduction at a small recall cost.
//! * [`pq`] — product quantization with asymmetric distance computation
//!   (ADC, Jégou et al.), backing `IVFPQ` (8-bit codes) and `IVFPQFS`
//!   (4-bit codes).
//! * [`fastscan`] — the register-resident half of `IVFPQFS`: 4-bit codes in
//!   a 32-vector blocked layout scanned with `u8`-quantized LUTs via
//!   in-register byte shuffles (`vpshufb` / `vqtbl1q_u8`), faiss' `PQx4fs`
//!   kernel shape.

pub mod fastscan;
pub mod pq;
pub mod sq;

pub use fastscan::{FastScanCodes, QuantizedLut};
pub use pq::{Pq, PqParams};
pub use sq::Sq8;
