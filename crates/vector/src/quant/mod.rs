//! Vector quantizers.
//!
//! * [`sq`] — 8-bit scalar quantization (per-dimension affine), backing the
//!   `HNSWSQ` index: ~4x memory reduction at a small recall cost.
//! * [`pq`] — product quantization with asymmetric distance computation
//!   (ADC, Jégou et al.), backing `IVFPQ` (8-bit codes) and `IVFPQFS`
//!   (4-bit codes — the algorithmic content of faiss' fast-scan variant; we
//!   substitute the hand-written SIMD kernel with the same LUT math, which
//!   preserves the memory/recall trade-off shape the paper evaluates).

pub mod pq;
pub mod sq;

pub use pq::{Pq, PqParams};
pub use sq::Sq8;
