//! SIMD PQ fast-scan: in-register shuffle-LUT ADC over 4-bit codes.
//!
//! Classic ADC walks one code at a time and gathers `m` table entries from
//! L1 — the gather is the bottleneck, not the adds. Fast-scan (faiss'
//! `PQx4fs`) removes the gather entirely for 4-bit codes: the 16-entry
//! per-subspace lookup table is quantized to `u8` and held *in a SIMD
//! register*, and a byte-shuffle instruction (`vpshufb` on AVX2,
//! `vqtbl1q_u8` on NEON) performs 16–32 table lookups per cycle.
//!
//! Two layout transforms make this work:
//!
//! 1. **Blocked codes** ([`FastScanCodes`]): vectors are grouped into blocks
//!    of 32; within a block the packed code bytes are transposed so byte
//!    `g` of all 32 vectors is contiguous. One 32-byte load then feeds the
//!    shuffle with the code ids of 32 *different* vectors for subspace pair
//!    `(2g, 2g+1)` (low/high nibble).
//! 2. **`u8` LUT quantization** ([`QuantizedLut`]): per-subspace f32 table
//!    entries `t[i][c]` are mapped to `q[i][c] = round((t[i][c] - min_i) /
//!    delta)` with one global `delta = max_i(max_c t[i][c] - min_i) / 255`.
//!    The integer sums accumulate in saturating `u16`; the f32 distance is
//!    reconstructed as `bias + delta * qsum` with `bias = sum_i min_i`.
//!
//! The quantization error is bounded: each entry is off by at most
//! `delta / 2`, so `|d - d̂| <= m * delta / 2` ([`QuantizedLut::error_bound`]).
//! That bound is what lets IVFPQ prune against a [`bh_common::SharedBound`]
//! without ever dropping a true top-k result (see `DESIGN.md` §10).
//!
//! All three kernel tiers compute the *same* saturating-`u16` integer sums
//! in the same order, so the scalar fallback is bit-identical to the SIMD
//! paths — parity tests compare exactly, not within a tolerance.

use crate::distance::KernelTier;
use bh_common::{BhError, Result};

/// Vectors per fast-scan block (two 16-lane shuffles on NEON, one 32-lane
/// pass on AVX2).
pub const BLOCK: usize = 32;

/// 4-bit PQ codes in blocked (transposed) layout.
///
/// Stores the same bytes as the packed per-vector layout — `groups =
/// ceil(m/2)` bytes per vector — but transposed within each 32-vector block:
/// `blocks[block * groups * 32 + g * 32 + lane]` is packed byte `g` of
/// vector `block * 32 + lane`. Incomplete tail blocks are zero-padded so
/// kernels can always issue full 32-byte loads.
#[derive(Debug, Clone, PartialEq)]
pub struct FastScanCodes {
    groups: usize,
    len: usize,
    blocks: Vec<u8>,
}

impl FastScanCodes {
    /// Empty code store for vectors of `groups` packed bytes each
    /// (`groups = ceil(m / 2)` for `m` subspaces).
    pub fn new(groups: usize) -> FastScanCodes {
        FastScanCodes { groups, len: 0, blocks: Vec::new() }
    }

    /// Packed bytes per vector.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Number of vectors stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one vector's packed code (`groups` bytes, two 4-bit ids per
    /// byte) — transposed into its block in place.
    pub fn push(&mut self, packed: &[u8]) -> Result<()> {
        if packed.len() != self.groups {
            return Err(BhError::InvalidArgument(format!(
                "fastscan: packed code len {} != groups {}",
                packed.len(),
                self.groups
            )));
        }
        let lane = self.len % BLOCK;
        if lane == 0 {
            // Start a new zero-padded block.
            self.blocks.resize(self.blocks.len() + self.groups * BLOCK, 0);
        }
        let base = (self.len / BLOCK) * self.groups * BLOCK;
        for (g, &b) in packed.iter().enumerate() {
            self.blocks[base + g * BLOCK + lane] = b;
        }
        self.len += 1;
        Ok(())
    }

    /// Reconstruct the packed per-vector code bytes of vector `i` — the
    /// inverse of the [`Self::push`] transpose, used for serialization
    /// (blobs keep the v1 packed layout) and scalar re-ranking.
    pub fn code_bytes(&self, i: usize) -> Vec<u8> {
        debug_assert!(i < self.len, "fastscan: code index out of range");
        let base = (i / BLOCK) * self.groups * BLOCK;
        let lane = i % BLOCK;
        (0..self.groups).map(|g| self.blocks[base + g * BLOCK + lane]).collect()
    }

    /// Resident size in bytes.
    pub fn memory_usage(&self) -> usize {
        self.blocks.len() + std::mem::size_of::<Self>()
    }
}

/// A `u8`-quantized ADC table laid out for register shuffles.
///
/// Built from a per-query f32 ADC table (`m * 16` entries). `None` when the
/// table cannot be soundly quantized: non-finite entries, or `m > 257`
/// (the `u16` accumulator fits at most `257 * 255`).
#[derive(Debug, Clone)]
pub struct QuantizedLut {
    /// `ceil(m/2) * 32` bytes: group `g` holds 16 entries for subspace `2g`
    /// (low nibble) then 16 for `2g + 1` (high nibble, zeros when `m` odd).
    luts: Vec<u8>,
    groups: usize,
    m: usize,
    /// `sum_i min_i` — added back after integer accumulation.
    bias: f32,
    /// Global quantization step shared by all subspaces.
    delta: f32,
    /// Conservative bound on `|exact ADC - reconstructed|`.
    err: f32,
}

impl QuantizedLut {
    /// Quantize an `m * 16` f32 ADC table (4-bit codes only).
    pub fn build(table: &[f32], m: usize) -> Option<QuantizedLut> {
        const KS: usize = 16;
        // qsum <= m * 255 must fit the u16 accumulator: m <= 257.
        if m == 0 || m > 257 || table.len() != m * KS {
            return None;
        }
        if table.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let mut mins = vec![0.0f32; m];
        let mut spread = 0.0f32;
        for sub in 0..m {
            let t = &table[sub * KS..(sub + 1) * KS];
            let mn = t.iter().copied().fold(f32::INFINITY, f32::min);
            let mx = t.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            mins[sub] = mn;
            spread = spread.max(mx - mn);
        }
        // spread == 0 means every entry equals its subspace min: all codes
        // quantize to 0 and the reconstruction `bias` is exact.
        let delta = if spread > 0.0 { spread / 255.0 } else { 1.0 };
        let bias: f32 = mins.iter().sum();
        let groups = m.div_ceil(2);
        let mut luts = vec![0u8; groups * 2 * KS];
        for sub in 0..m {
            let half = (sub / 2) * 2 * KS + (sub % 2) * KS;
            for c in 0..KS {
                let q = ((table[sub * KS + c] - mins[sub]) / delta).round();
                luts[half + c] = q.clamp(0.0, 255.0) as u8;
            }
        }
        // Rounding error is delta/2 per subspace; the extra relative slack
        // absorbs the f32 arithmetic of `bias + delta * qsum` vs the exact
        // f32 table sum so the bound stays a true upper bound.
        let err = 0.5 * delta * m as f32 * 1.001 + 1e-5 * (1.0 + bias.abs());
        Some(QuantizedLut { luts, groups, m, bias, delta, err })
    }

    /// Number of subspaces.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Conservative bound on `|exact f32 ADC - reconstructed distance|`,
    /// valid for every code. Callers subtract this before comparing a
    /// quantized distance against an exact pruning threshold.
    pub fn error_bound(&self) -> f32 {
        self.err
    }

    /// Reconstructed approximate distances of every stored code, written to
    /// `out` (one slot per vector), dispatched to the current kernel tier.
    ///
    /// Every tier performs the same saturating-`u16` integer sums in the
    /// same per-lane order, so results are bit-identical across tiers.
    pub fn scan(&self, codes: &FastScanCodes, out: &mut [f32]) -> Result<()> {
        if codes.groups != self.groups {
            return Err(BhError::InvalidArgument(format!(
                "fastscan: code groups {} != lut groups {}",
                codes.groups, self.groups
            )));
        }
        if out.len() != codes.len {
            return Err(BhError::InvalidArgument(format!(
                "fastscan: out len {} != code count {}",
                out.len(),
                codes.len
            )));
        }
        if codes.len == 0 {
            return Ok(());
        }
        match KernelTier::current() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: tier checked: detect() verified avx2; slice shapes
            // validated above and by FastScanCodes/QuantizedLut invariants.
            KernelTier::Avx2 => unsafe {
                avx2::scan(&self.luts, &codes.blocks, self.groups, codes.len, self.bias, self.delta, out)
            },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: tier checked: detect() verified neon; slice shapes
            // validated above and by FastScanCodes/QuantizedLut invariants.
            KernelTier::Neon => unsafe {
                neon::scan(&self.luts, &codes.blocks, self.groups, codes.len, self.bias, self.delta, out)
            },
            _ => self.scan_scalar(codes, out),
        }
        Ok(())
    }

    /// Scalar reference kernel on the blocked layout — public so parity
    /// tests and benchmarks can compare the dispatched tiers against it.
    /// Performs the identical saturating-`u16` arithmetic as the SIMD paths.
    pub fn scan_scalar(&self, codes: &FastScanCodes, out: &mut [f32]) {
        let stride = self.groups * BLOCK;
        for v in 0..codes.len {
            let base = (v / BLOCK) * stride;
            let lane = v % BLOCK;
            let mut qsum = 0u16;
            for g in 0..self.groups {
                let byte = codes.blocks[base + g * BLOCK + lane];
                let lo = self.luts[g * 32 + (byte & 0x0F) as usize];
                let hi = self.luts[g * 32 + 16 + (byte >> 4) as usize];
                qsum = qsum.saturating_add(lo as u16).saturating_add(hi as u16);
            }
            out[v] = self.bias + self.delta * qsum as f32;
        }
    }
}

// ------------------------------------------------------------------- avx2

/// AVX2 fast-scan kernel: one `vpshufb` per subspace pair resolves the LUT
/// entries of 32 vectors at once; sums accumulate in saturating `u16`.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::BLOCK;
    use std::arch::x86_64::*;

    /// # Safety
    /// The CPU must support AVX2. `luts.len() == groups * 32` and
    /// `blocks.len() == ceil(n / 32) * groups * 32` (zero-padded tail), and
    /// `out.len() >= n` — guaranteed by the [`super::QuantizedLut::scan`]
    /// dispatch site via the container invariants.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scan(
        luts: &[u8],
        blocks: &[u8],
        groups: usize,
        n: usize,
        bias: f32,
        delta: f32,
        out: &mut [f32],
    ) {
        // SAFETY: fn contract (see `# Safety`): AVX2 is available and every
        // pointer offset below stays inside the stated slice shapes; all
        // SIMD loads/stores are the unaligned variants.
        unsafe {
            let stride = groups * BLOCK;
            let mask = _mm256_set1_epi8(0x0F);
            let zero = _mm256_setzero_si256();
            let mut acc_lo_arr = [0u16; 16];
            let mut acc_hi_arr = [0u16; 16];
            for b in 0..n.div_ceil(BLOCK) {
                let base = b * stride;
                // Two u16x16 accumulators; the epi8 unpack interleaves
                // within 128-bit halves, so acc_lo carries lanes
                // [0,8)∪[16,24) and acc_hi lanes [8,16)∪[24,32).
                let mut acc_lo = zero;
                let mut acc_hi = zero;
                for g in 0..groups {
                    let lut_lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                        luts.as_ptr().add(g * 32) as *const __m128i,
                    ));
                    let lut_hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                        luts.as_ptr().add(g * 32 + 16) as *const __m128i,
                    ));
                    let cv = _mm256_loadu_si256(blocks.as_ptr().add(base + g * BLOCK) as *const __m256i);
                    let lo_ids = _mm256_and_si256(cv, mask);
                    // epi16 shift drags bits across byte boundaries; the
                    // mask clears them.
                    let hi_ids = _mm256_and_si256(_mm256_srli_epi16(cv, 4), mask);
                    let vlo = _mm256_shuffle_epi8(lut_lo, lo_ids);
                    let vhi = _mm256_shuffle_epi8(lut_hi, hi_ids);
                    acc_lo = _mm256_adds_epu16(acc_lo, _mm256_unpacklo_epi8(vlo, zero));
                    acc_hi = _mm256_adds_epu16(acc_hi, _mm256_unpackhi_epi8(vlo, zero));
                    acc_lo = _mm256_adds_epu16(acc_lo, _mm256_unpacklo_epi8(vhi, zero));
                    acc_hi = _mm256_adds_epu16(acc_hi, _mm256_unpackhi_epi8(vhi, zero));
                }
                _mm256_storeu_si256(acc_lo_arr.as_mut_ptr() as *mut __m256i, acc_lo);
                _mm256_storeu_si256(acc_hi_arr.as_mut_ptr() as *mut __m256i, acc_hi);
                let limit = (n - b * BLOCK).min(BLOCK);
                for v in 0..limit {
                    // Undo the unpack interleave (see accumulator comment).
                    let qsum = match v {
                        0..=7 => acc_lo_arr[v],
                        8..=15 => acc_hi_arr[v - 8],
                        16..=23 => acc_lo_arr[v - 8],
                        _ => acc_hi_arr[v - 16],
                    };
                    out[b * BLOCK + v] = bias + delta * qsum as f32;
                }
            }
        }
    }
}

// ------------------------------------------------------------------- neon

/// NEON fast-scan kernel: `vqtbl1q_u8` resolves 16 LUT entries per shuffle;
/// each 32-vector block is two 16-lane halves.
#[cfg(target_arch = "aarch64")]
mod neon {
    use super::BLOCK;
    use std::arch::aarch64::*;

    /// # Safety
    /// The CPU must support NEON. `luts.len() == groups * 32` and
    /// `blocks.len() == ceil(n / 32) * groups * 32` (zero-padded tail), and
    /// `out.len() >= n` — guaranteed by the [`super::QuantizedLut::scan`]
    /// dispatch site via the container invariants.
    #[target_feature(enable = "neon")]
    pub unsafe fn scan(
        luts: &[u8],
        blocks: &[u8],
        groups: usize,
        n: usize,
        bias: f32,
        delta: f32,
        out: &mut [f32],
    ) {
        // SAFETY: fn contract (see `# Safety`): NEON is available and every
        // pointer offset below stays inside the stated slice shapes.
        unsafe {
            let stride = groups * BLOCK;
            let mask = vdupq_n_u8(0x0F);
            let mut qs = [0u16; BLOCK];
            for b in 0..n.div_ceil(BLOCK) {
                let base = b * stride;
                // Four u16x8 accumulators: lanes [0,8), [8,16), [16,24), [24,32).
                let mut acc = [vdupq_n_u16(0); 4];
                for g in 0..groups {
                    let lut_lo = vld1q_u8(luts.as_ptr().add(g * 32));
                    let lut_hi = vld1q_u8(luts.as_ptr().add(g * 32 + 16));
                    for half in 0..2 {
                        let cv = vld1q_u8(blocks.as_ptr().add(base + g * BLOCK + half * 16));
                        let lo_ids = vandq_u8(cv, mask);
                        let hi_ids = vshrq_n_u8(cv, 4);
                        let vlo = vqtbl1q_u8(lut_lo, lo_ids);
                        let vhi = vqtbl1q_u8(lut_hi, hi_ids);
                        acc[half * 2] = vqaddq_u16(acc[half * 2], vmovl_u8(vget_low_u8(vlo)));
                        acc[half * 2 + 1] = vqaddq_u16(acc[half * 2 + 1], vmovl_u8(vget_high_u8(vlo)));
                        acc[half * 2] = vqaddq_u16(acc[half * 2], vmovl_u8(vget_low_u8(vhi)));
                        acc[half * 2 + 1] = vqaddq_u16(acc[half * 2 + 1], vmovl_u8(vget_high_u8(vhi)));
                    }
                }
                for (q, a) in acc.iter().enumerate() {
                    vst1q_u16(qs.as_mut_ptr().add(q * 8), *a);
                }
                let limit = (n - b * BLOCK).min(BLOCK);
                for v in 0..limit {
                    out[b * BLOCK + v] = bias + delta * qs[v] as f32;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::pq::{CodeBits, Pq, PqParams};
    use crate::Metric;
    use bh_common::rng::rng;
    use proptest::prelude::*;
    use rand::Rng;

    fn sample(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut r = rng(seed);
        (0..n * dim).map(|_| r.gen_range(-1.0f32..1.0)).collect()
    }

    /// Build a trained B4 quantizer, its codes in both layouts and a query
    /// LUT for exercising the kernels end to end.
    fn fixture(n: usize, dim: usize, m: usize, seed: u64) -> (Pq, Vec<Vec<u8>>, FastScanCodes, Vec<f32>) {
        let data = sample(n + 1, dim, seed);
        let pq = Pq::train(&data[dim..], dim, Metric::L2, &PqParams::new(m, CodeBits::B4)).unwrap();
        let mut packed = Vec::with_capacity(n);
        let mut blocked = FastScanCodes::new(pq.code_size());
        for i in 1..=n {
            let code = pq.encode(&data[i * dim..(i + 1) * dim]).unwrap();
            blocked.push(&code).unwrap();
            packed.push(code);
        }
        (pq, packed, blocked, data[..dim].to_vec())
    }

    #[test]
    fn blocked_layout_roundtrips_packed_codes() {
        let (_, packed, blocked, _) = fixture(77, 16, 8, 1);
        assert_eq!(blocked.len(), 77);
        for (i, code) in packed.iter().enumerate() {
            assert_eq!(&blocked.code_bytes(i), code, "vector {i}");
        }
    }

    #[test]
    fn push_rejects_wrong_width() {
        let mut c = FastScanCodes::new(4);
        assert!(c.push(&[0u8; 3]).is_err());
        assert!(c.push(&[0u8; 4]).is_ok());
    }

    #[test]
    fn scan_matches_exact_adc_within_error_bound() {
        let (pq, packed, blocked, q) = fixture(100, 32, 8, 2);
        let table = pq.adc_table(&q).unwrap();
        let lut = table.quantized().expect("B4 table must quantize");
        let mut out = vec![0.0f32; blocked.len()];
        lut.scan(&blocked, &mut out).unwrap();
        for (i, code) in packed.iter().enumerate() {
            let exact = table.distance(code);
            assert!(
                (out[i] - exact).abs() <= lut.error_bound(),
                "vector {i}: fast {} vs exact {exact}, bound {}",
                out[i],
                lut.error_bound()
            );
        }
    }

    #[test]
    fn dispatched_scan_is_bit_identical_to_scalar() {
        // Odd m (zero-padded high nibble in the last group) and a ragged
        // tail block both covered.
        for (n, m) in [(1usize, 2usize), (31, 2), (32, 4), (33, 4), (100, 5), (64, 16)] {
            let dim = m * 4;
            let (pq, _, blocked, q) = fixture(n, dim, m, (n * 31 + m) as u64);
            let lut = pq.adc_table(&q).unwrap().quantized().unwrap();
            let mut fast = vec![0.0f32; n];
            let mut reference = vec![0.0f32; n];
            lut.scan(&blocked, &mut fast).unwrap();
            lut.scan_scalar(&blocked, &mut reference);
            assert_eq!(fast, reference, "n={n} m={m}");
        }
    }

    #[test]
    fn scan_rejects_shape_mismatch() {
        let (pq, _, blocked, q) = fixture(10, 16, 4, 3);
        let lut = pq.adc_table(&q).unwrap().quantized().unwrap();
        let mut short = vec![0.0f32; 9];
        assert!(lut.scan(&blocked, &mut short).is_err());
        let other = FastScanCodes::new(blocked.groups() + 1);
        assert!(lut.scan(&other, &mut []).is_err());
    }

    #[test]
    fn build_rejects_unquantizable_tables() {
        assert!(QuantizedLut::build(&[], 0).is_none());
        assert!(QuantizedLut::build(&vec![0.0; 16], 2).is_none()); // wrong len
        assert!(QuantizedLut::build(&vec![f32::NAN; 16], 1).is_none());
        // m > 257 overflows the u16 accumulator budget.
        assert!(QuantizedLut::build(&vec![0.0; 258 * 16], 258).is_none());
        assert!(QuantizedLut::build(&vec![1.0; 16], 1).is_some());
    }

    #[test]
    fn constant_table_reconstructs_exactly() {
        // spread == 0: every code maps to the bias with zero error.
        let table = vec![3.5f32; 2 * 16];
        let lut = QuantizedLut::build(&table, 2).unwrap();
        let mut codes = FastScanCodes::new(1);
        codes.push(&[0x31]).unwrap();
        let mut out = vec![0.0f32; 1];
        lut.scan(&codes, &mut out).unwrap();
        assert_eq!(out[0], 7.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Satellite 4: the fast-scan kernel agrees with the exact scalar
        /// f32 ADC within the documented quantization tolerance, and the
        /// dispatched tier agrees with the blocked scalar path exactly.
        #[test]
        fn prop_fastscan_matches_scalar_adc(
            n in 1usize..96,
            msel in 0usize..4,
            seed in 0u64..30,
        ) {
            let m = [2usize, 4, 7, 8][msel];
            let dim = m * 3;
            let (pq, packed, blocked, q) = fixture(n, dim, m, seed);
            let table = pq.adc_table(&q).unwrap();
            let lut = table.quantized().unwrap();
            let mut fast = vec![0.0f32; n];
            let mut reference = vec![0.0f32; n];
            lut.scan(&blocked, &mut fast).unwrap();
            lut.scan_scalar(&blocked, &mut reference);
            prop_assert_eq!(&fast, &reference);
            for (i, code) in packed.iter().enumerate() {
                let exact = table.distance(code);
                prop_assert!(
                    (fast[i] - exact).abs() <= lut.error_bound(),
                    "vector {}: fast {} exact {} bound {}",
                    i, fast[i], exact, lut.error_bound()
                );
            }
        }
    }
}
