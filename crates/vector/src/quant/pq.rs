//! Product quantization with asymmetric distance computation (ADC).
//!
//! A vector is split into `m` contiguous subspaces; each subspace is encoded
//! as the id of its nearest codebook centroid (codebooks trained with
//! k-means). At query time a lookup table of query-subvector-to-centroid
//! distances is built once per (query, codebook); the approximate distance of
//! any code is then `m` table lookups — this is the `c_c` ("fetch a code and
//! run ADC") term of the paper's cost model.
//!
//! Two code widths are supported:
//!
//! * **8-bit** (`ks = 256`), the classic IVFPQ configuration.
//! * **4-bit** (`ks = 16`), two codes packed per byte — the layout used by
//!   faiss' fast-scan (`PQx4fs`) indexes. We reproduce the algorithmic
//!   memory/recall trade-off; the SIMD register-shuffle kernel is substituted
//!   by the same LUT arithmetic (documented in DESIGN.md).

use crate::codec::{Reader, Writer};
use crate::distance::{distance_batch, dot};
use crate::kmeans::{train_kmeans, KMeansParams};
use crate::quant::fastscan::QuantizedLut;
use crate::Metric;
use bh_common::rng::derive_seed;
use bh_common::{BhError, Result};

/// Code width of a PQ codebook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeBits {
    /// 256 centroids per subspace, one byte per code.
    B8,
    /// 16 centroids per subspace, two codes per byte ("fast-scan" layout).
    B4,
}

impl CodeBits {
    /// Centroids per subspace for this code width.
    pub fn ks(self) -> usize {
        match self {
            CodeBits::B8 => 256,
            CodeBits::B4 => 16,
        }
    }
}

/// Training parameters.
#[derive(Debug, Clone, Copy)]
pub struct PqParams {
    /// Number of subspaces; must divide `dim`.
    pub m: usize,
    /// Code width (8-bit classic or 4-bit fast-scan).
    pub bits: CodeBits,
    /// Codebook-training seed.
    pub seed: u64,
    /// Lloyd iterations per subspace codebook.
    pub kmeans_iters: usize,
}

impl PqParams {
    /// Defaults for `m` subspaces at the given code width.
    pub fn new(m: usize, bits: CodeBits) -> Self {
        Self { m, bits, seed: 0, kmeans_iters: 12 }
    }
}

/// A trained product quantizer.
#[derive(Debug, Clone, PartialEq)]
pub struct Pq {
    dim: usize,
    m: usize,
    bits: CodeBits,
    dsub: usize,
    /// Codebooks: `m * ks * dsub` floats, subspace-major.
    codebooks: Vec<f32>,
    /// Squared centroid norms (`m * ks`), hoisted out of the per-query ADC
    /// table build: the L2 entry expands to `‖q‖² + ‖c‖² - 2⟨q,c⟩`, so with
    /// these precomputed only the dot products are evaluated per query.
    cent_norms: Vec<f32>,
    metric: Metric,
}

/// Squared norm of every centroid, `m * ks` entries subspace-major.
fn centroid_norms(codebooks: &[f32], dsub: usize) -> Vec<f32> {
    codebooks.chunks_exact(dsub).map(|c| dot(c, c)).collect()
}

impl Pq {
    /// Train codebooks on a row-major sample. For [`Metric::Cosine`] the
    /// caller is expected to have normalized the sample (IVF index does).
    pub fn train(sample: &[f32], dim: usize, metric: Metric, params: &PqParams) -> Result<Pq> {
        if dim == 0 || params.m == 0 || dim % params.m != 0 {
            return Err(BhError::InvalidArgument(format!(
                "pq: m={} must divide dim={dim}",
                params.m
            )));
        }
        if sample.is_empty() || sample.len() % dim != 0 {
            return Err(BhError::InvalidArgument("pq: bad sample shape".into()));
        }
        let n = sample.len() / dim;
        let dsub = dim / params.m;
        let ks = params.bits.ks();
        let mut codebooks = vec![0.0f32; params.m * ks * dsub];
        for sub in 0..params.m {
            // Gather the subvectors of this subspace.
            let mut subdata = Vec::with_capacity(n * dsub);
            for i in 0..n {
                let off = i * dim + sub * dsub;
                subdata.extend_from_slice(&sample[off..off + dsub]);
            }
            let km = train_kmeans(
                &subdata,
                dsub,
                &KMeansParams {
                    k: ks,
                    max_iters: params.kmeans_iters,
                    seed: derive_seed(params.seed, sub as u64),
                    sample_limit: 16_384,
                },
            )?;
            // km.k may be < ks when the sample is small; replicate the last
            // centroid so every code id stays decodable.
            for c in 0..ks {
                let src = km.centroid(c.min(km.k - 1));
                let dst = (sub * ks + c) * dsub;
                codebooks[dst..dst + dsub].copy_from_slice(src);
            }
        }
        let cent_norms = centroid_norms(&codebooks, dsub);
        Ok(Pq { dim, m: params.m, bits: params.bits, dsub, codebooks, cent_norms, metric })
    }

    /// Vector dimensionality the quantizer was trained for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of subspaces.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Code width.
    pub fn bits(&self) -> CodeBits {
        self.bits
    }

    /// Bytes per encoded vector.
    pub fn code_size(&self) -> usize {
        match self.bits {
            CodeBits::B8 => self.m,
            CodeBits::B4 => self.m.div_ceil(2),
        }
    }

    #[inline]
    fn centroid(&self, sub: usize, c: usize) -> &[f32] {
        let off = (sub * self.bits.ks() + c) * self.dsub;
        &self.codebooks[off..off + self.dsub]
    }

    /// The contiguous `ks × dsub` codebook slab of one subspace.
    #[inline]
    fn codebook(&self, sub: usize) -> &[f32] {
        let ks = self.bits.ks();
        &self.codebooks[sub * ks * self.dsub..(sub + 1) * ks * self.dsub]
    }

    /// Encode one vector into `code_size()` bytes.
    pub fn encode(&self, v: &[f32]) -> Result<Vec<u8>> {
        Ok(self.encode_with_errors(v)?.0)
    }

    /// Encode one vector and also report the squared reconstruction error of
    /// each subspace (the distance to the chosen centroid). IVF aggregates
    /// these into the per-subspace worst-case margins that make quantized
    /// pruning against an exact bound sound.
    pub fn encode_with_errors(&self, v: &[f32]) -> Result<(Vec<u8>, Vec<f32>)> {
        if v.len() != self.dim {
            return Err(BhError::DimensionMismatch { expected: self.dim, got: v.len() });
        }
        let ks = self.bits.ks();
        let mut ids = Vec::with_capacity(self.m);
        let mut errs = Vec::with_capacity(self.m);
        let mut dists = vec![0.0f32; ks];
        for sub in 0..self.m {
            let sv = &v[sub * self.dsub..(sub + 1) * self.dsub];
            distance_batch(Metric::L2, sv, self.codebook(sub), self.dsub, &mut dists)?;
            let mut best = 0usize;
            for c in 1..ks {
                if dists[c] < dists[best] {
                    best = c;
                }
            }
            ids.push(best as u8);
            errs.push(dists[best].max(0.0));
        }
        let code = match self.bits {
            CodeBits::B8 => ids,
            CodeBits::B4 => {
                let mut packed = vec![0u8; self.code_size()];
                for (i, &id) in ids.iter().enumerate() {
                    packed[i / 2] |= (id & 0x0F) << ((i % 2) * 4);
                }
                packed
            }
        };
        Ok((code, errs))
    }

    /// Decode a code to its reconstruction.
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dim);
        for sub in 0..self.m {
            let id = self.code_id(code, sub);
            out.extend_from_slice(self.centroid(sub, id));
        }
        out
    }

    #[inline]
    fn code_id(&self, code: &[u8], sub: usize) -> usize {
        match self.bits {
            CodeBits::B8 => code[sub] as usize,
            CodeBits::B4 => ((code[sub / 2] >> ((sub % 2) * 4)) & 0x0F) as usize,
        }
    }

    /// Build the ADC lookup table for `query`: `m * ks` partial distances.
    pub fn adc_table(&self, query: &[f32]) -> Result<AdcTable> {
        if query.len() != self.dim {
            return Err(BhError::DimensionMismatch { expected: self.dim, got: query.len() });
        }
        let ks = self.bits.ks();
        // Cosine rides the L2 form (IVF searches normalized space); the
        // InnerProduct batch already returns negated dot. L2 entries use the
        // expansion `‖q-c‖² = ‖q‖² + ‖c‖² - 2⟨q,c⟩` with the centroid norms
        // hoisted into the trained model, so each query pays one dot-product
        // batch per subspace instead of a full subtract-square pass.
        let mut table = vec![0.0f32; self.m * ks];
        for sub in 0..self.m {
            let qv = &query[sub * self.dsub..(sub + 1) * self.dsub];
            let out = &mut table[sub * ks..(sub + 1) * ks];
            distance_batch(Metric::InnerProduct, qv, self.codebook(sub), self.dsub, out)?;
            if !matches!(self.metric, Metric::InnerProduct) {
                let qn = dot(qv, qv);
                for (c, slot) in out.iter_mut().enumerate() {
                    // `*slot` holds -⟨q,c⟩; the true L2 value is >= 0, so
                    // clamp the float cancellation residue away.
                    *slot = (qn + self.cent_norms[sub * ks + c] + 2.0 * *slot).max(0.0);
                }
            }
        }
        Ok(AdcTable { table, ks, m: self.m, bits: self.bits })
    }

    /// Resident codebook size in bytes.
    pub fn memory_usage(&self) -> usize {
        self.codebooks.len() * 4 + std::mem::size_of::<Self>()
    }

    /// Serialize the quantizer into a codec writer.
    pub fn save(&self, w: &mut Writer) {
        w.put_u64(self.dim as u64);
        w.put_u64(self.m as u64);
        w.put_u8(match self.bits {
            CodeBits::B8 => 8,
            CodeBits::B4 => 4,
        });
        w.put_u8(match self.metric {
            Metric::L2 => 0,
            Metric::InnerProduct => 1,
            Metric::Cosine => 2,
        });
        w.put_f32_slice(&self.codebooks);
    }

    /// Deserialize a quantizer written by [`Self::save`].
    pub fn load(r: &mut Reader<'_>) -> Result<Pq> {
        let dim = r.get_u64()? as usize;
        let m = r.get_u64()? as usize;
        let bits = match r.get_u8()? {
            8 => CodeBits::B8,
            4 => CodeBits::B4,
            b => return Err(BhError::Serde(format!("pq: bad bits {b}"))),
        };
        let metric = match r.get_u8()? {
            0 => Metric::L2,
            1 => Metric::InnerProduct,
            2 => Metric::Cosine,
            x => return Err(BhError::Serde(format!("pq: bad metric {x}"))),
        };
        let codebooks = r.get_f32_vec()?;
        if m == 0 || dim == 0 || dim % m != 0 {
            return Err(BhError::Serde("pq: corrupt geometry".into()));
        }
        let dsub = dim / m;
        if codebooks.len() != m * bits.ks() * dsub {
            return Err(BhError::Serde("pq: corrupt codebook size".into()));
        }
        // Norms are derived state: recomputed on load, never serialized.
        let cent_norms = centroid_norms(&codebooks, dsub);
        Ok(Pq { dim, m, bits, dsub, codebooks, cent_norms, metric })
    }
}

/// Per-query ADC lookup table.
pub struct AdcTable {
    table: Vec<f32>,
    ks: usize,
    m: usize,
    bits: CodeBits,
}

impl AdcTable {
    /// Approximate distance of one code: `m` lookups.
    #[inline]
    pub fn distance(&self, code: &[u8]) -> f32 {
        let mut sum = 0.0;
        match self.bits {
            CodeBits::B8 => {
                for sub in 0..self.m {
                    sum += self.table[sub * self.ks + code[sub] as usize];
                }
            }
            CodeBits::B4 => {
                for sub in 0..self.m {
                    let id = ((code[sub / 2] >> ((sub % 2) * 4)) & 0x0F) as usize;
                    sum += self.table[sub * self.ks + id];
                }
            }
        }
        sum
    }

    /// Quantize this table for the in-register fast-scan kernel. `None` for
    /// 8-bit tables (they do not fit a shuffle register) and for tables the
    /// `u8` quantization cannot soundly represent — callers fall back to the
    /// scalar [`Self::distance`] path.
    pub fn quantized(&self) -> Option<QuantizedLut> {
        match self.bits {
            CodeBits::B4 => QuantizedLut::build(&self.table, self.m),
            CodeBits::B8 => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{dot, l2_sq};
    use bh_common::rng::rng;
    use rand::Rng;

    fn sample(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut r = rng(seed);
        (0..n * dim).map(|_| r.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn adc_matches_decode_then_distance_l2() {
        let dim = 16;
        let data = sample(300, dim, 1);
        let pq = Pq::train(&data, dim, Metric::L2, &PqParams::new(4, CodeBits::B8)).unwrap();
        let q = &data[0..dim];
        let t = pq.adc_table(q).unwrap();
        for i in 1..20 {
            let v = &data[i * dim..(i + 1) * dim];
            let code = pq.encode(v).unwrap();
            let adc = t.distance(&code);
            let exact = l2_sq(q, &pq.decode(&code));
            assert!((adc - exact).abs() < 1e-2 * (1.0 + exact), "adc {adc} vs exact {exact}");
        }
    }

    #[test]
    fn four_bit_packs_two_codes_per_byte() {
        let dim = 8;
        let data = sample(200, dim, 2);
        let pq = Pq::train(&data, dim, Metric::L2, &PqParams::new(4, CodeBits::B4)).unwrap();
        assert_eq!(pq.code_size(), 2);
        let code = pq.encode(&data[0..dim]).unwrap();
        assert_eq!(code.len(), 2);
        // decode/ADC agree with 8-bit-style decoding
        let q = &data[dim..2 * dim];
        let t = pq.adc_table(q).unwrap();
        let adc = t.distance(&code);
        let exact = l2_sq(q, &pq.decode(&code));
        assert!((adc - exact).abs() < 1e-2 * (1.0 + exact));
    }

    #[test]
    fn reconstruction_reduces_distance_error_vs_random() {
        // PQ reconstruction of v should be much closer to v than a random
        // other vector is — a coarse sanity bound on codebook quality.
        let dim = 16;
        let data = sample(500, dim, 3);
        let pq = Pq::train(&data, dim, Metric::L2, &PqParams::new(8, CodeBits::B8)).unwrap();
        let mut err_sum = 0.0;
        let mut rand_sum = 0.0;
        for i in 0..50 {
            let v = &data[i * dim..(i + 1) * dim];
            let rec = pq.decode(&pq.encode(v).unwrap());
            err_sum += l2_sq(v, &rec);
            let other = &data[(i + 100) * dim..(i + 101) * dim];
            rand_sum += l2_sq(v, other);
        }
        assert!(err_sum < rand_sum * 0.5, "err {err_sum} vs random {rand_sum}");
    }

    #[test]
    fn inner_product_adc_is_negated_dot() {
        let dim = 8;
        let data = sample(200, dim, 4);
        let pq =
            Pq::train(&data, dim, Metric::InnerProduct, &PqParams::new(4, CodeBits::B8)).unwrap();
        let q = &data[0..dim];
        let t = pq.adc_table(q).unwrap();
        let v = &data[dim..2 * dim];
        let code = pq.encode(v).unwrap();
        let adc = t.distance(&code);
        let exact = -dot(q, &pq.decode(&code));
        assert!((adc - exact).abs() < 1e-2 * (1.0 + exact.abs()));
    }

    #[test]
    fn rejects_bad_geometry() {
        let data = sample(10, 6, 5);
        assert!(Pq::train(&data, 6, Metric::L2, &PqParams::new(4, CodeBits::B8)).is_err()); // 4∤6
        assert!(Pq::train(&data, 0, Metric::L2, &PqParams::new(1, CodeBits::B8)).is_err());
        assert!(Pq::train(&[], 6, Metric::L2, &PqParams::new(2, CodeBits::B8)).is_err());
        let pq = Pq::train(&data, 6, Metric::L2, &PqParams::new(2, CodeBits::B8)).unwrap();
        assert!(pq.encode(&[0.0; 5]).is_err());
        assert!(pq.adc_table(&[0.0; 5]).is_err());
    }

    #[test]
    fn small_sample_replicates_centroids() {
        // Fewer points than ks: every code id must still decode.
        let data = sample(5, 4, 6);
        let pq = Pq::train(&data, 4, Metric::L2, &PqParams::new(2, CodeBits::B8)).unwrap();
        let code = vec![255u8, 255u8];
        let dec = pq.decode(&code);
        assert_eq!(dec.len(), 4);
        assert!(dec.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn serialization_roundtrip() {
        let data = sample(100, 8, 7);
        let pq = Pq::train(&data, 8, Metric::Cosine, &PqParams::new(4, CodeBits::B4)).unwrap();
        let mut w = Writer::new();
        pq.save(&mut w);
        let blob = w.finish();
        let mut r = Reader::new(&blob);
        let pq2 = Pq::load(&mut r).unwrap();
        assert_eq!(pq, pq2);
    }

    #[test]
    fn memory_scales_with_bits() {
        let data = sample(300, 16, 8);
        let p8 = Pq::train(&data, 16, Metric::L2, &PqParams::new(4, CodeBits::B8)).unwrap();
        let p4 = Pq::train(&data, 16, Metric::L2, &PqParams::new(4, CodeBits::B4)).unwrap();
        assert!(p4.memory_usage() < p8.memory_usage());
        assert_eq!(p8.code_size(), 4);
        assert_eq!(p4.code_size(), 2);
    }
}
