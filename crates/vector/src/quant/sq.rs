//! 8-bit scalar quantization.
//!
//! Each dimension is affinely mapped onto `0..=255` using per-dimension
//! `[min, max]` ranges fitted on a training sample. Distances are computed
//! *asymmetrically*: the query stays in f32 and codes are decoded on the fly,
//! which keeps the recall loss well below symmetric code-to-code distances.

use crate::codec::{Reader, Writer};
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
use crate::distance::KernelTier;
use bh_common::{BhError, Result};
use bytes::Bytes;

/// A trained per-dimension affine quantizer.
#[derive(Debug, Clone, PartialEq)]
pub struct Sq8 {
    dim: usize,
    /// Per-dimension lower bound.
    min: Vec<f32>,
    /// Per-dimension step `(max - min) / 255`; zero for constant dimensions.
    step: Vec<f32>,
}

impl Sq8 {
    /// Fit ranges on a row-major training sample.
    pub fn train(sample: &[f32], dim: usize) -> Result<Sq8> {
        if dim == 0 {
            return Err(BhError::InvalidArgument("sq8: dim must be > 0".into()));
        }
        if sample.is_empty() || sample.len() % dim != 0 {
            return Err(BhError::InvalidArgument(format!(
                "sq8: sample len {} is not a positive multiple of dim {dim}",
                sample.len()
            )));
        }
        let n = sample.len() / dim;
        let mut min = vec![f32::INFINITY; dim];
        let mut max = vec![f32::NEG_INFINITY; dim];
        for i in 0..n {
            for d in 0..dim {
                let v = sample[i * dim + d];
                min[d] = min[d].min(v);
                max[d] = max[d].max(v);
            }
        }
        let step = min
            .iter()
            .zip(&max)
            .map(|(lo, hi)| {
                let s = (hi - lo) / 255.0;
                if s.is_finite() {
                    s
                } else {
                    0.0
                }
            })
            .collect();
        Ok(Sq8 { dim, min, step })
    }

    /// Vector dimensionality the quantizer was trained for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encode one vector into `dim` bytes. Out-of-range values clamp, so the
    /// quantizer degrades gracefully on data drift beyond the training range.
    pub fn encode(&self, v: &[f32]) -> Result<Vec<u8>> {
        if v.len() != self.dim {
            return Err(BhError::DimensionMismatch { expected: self.dim, got: v.len() });
        }
        Ok(v.iter()
            .enumerate()
            .map(|(d, &x)| {
                if self.step[d] == 0.0 {
                    0u8
                } else {
                    (((x - self.min[d]) / self.step[d]).round()).clamp(0.0, 255.0) as u8
                }
            })
            .collect())
    }

    /// Decode a code back to an approximate vector.
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        code.iter()
            .enumerate()
            .map(|(d, &c)| self.min[d] + c as f32 * self.step[d])
            .collect()
    }

    /// Asymmetric squared-L2 distance between an f32 query and a code.
    ///
    /// On x86_64 with AVX2+FMA the codes are widened u8→f32 in-register
    /// (`cvtepu8` + `cvtepi32_ps`) and decoded with one FMA against the
    /// per-dimension `min`/`step` tables; on aarch64 the NEON path widens
    /// via `vmovl_u8`/`vmovl_u16` + `vcvtq_f32_u32` and decodes with
    /// `vfmaq_f32`; other tiers decode scalar-wise.
    #[inline]
    pub fn asym_l2(&self, query: &[f32], code: &[u8]) -> f32 {
        #[cfg(target_arch = "x86_64")]
        if matches!(KernelTier::current(), KernelTier::Avx2)
            && query.len() >= self.dim
            && code.len() >= self.dim
        {
            // SAFETY: the guard above verified AVX2+FMA and that both slices
            // hold at least `dim` elements.
            return unsafe { self.asym_l2_avx2(query, code) };
        }
        #[cfg(target_arch = "aarch64")]
        if matches!(KernelTier::current(), KernelTier::Neon)
            && query.len() >= self.dim
            && code.len() >= self.dim
        {
            // SAFETY: the guard above verified NEON and that both slices
            // hold at least `dim` elements.
            return unsafe { self.asym_l2_neon(query, code) };
        }
        let mut sum = 0.0;
        for d in 0..self.dim {
            let x = self.min[d] + code[d] as f32 * self.step[d];
            let diff = query[d] - x;
            sum += diff * diff;
        }
        sum
    }

    /// Asymmetric negative inner product.
    #[inline]
    pub fn asym_neg_ip(&self, query: &[f32], code: &[u8]) -> f32 {
        #[cfg(target_arch = "x86_64")]
        if matches!(KernelTier::current(), KernelTier::Avx2)
            && query.len() >= self.dim
            && code.len() >= self.dim
        {
            // SAFETY: the guard above verified AVX2+FMA and that both slices
            // hold at least `dim` elements.
            return unsafe { self.asym_neg_ip_avx2(query, code) };
        }
        #[cfg(target_arch = "aarch64")]
        if matches!(KernelTier::current(), KernelTier::Neon)
            && query.len() >= self.dim
            && code.len() >= self.dim
        {
            // SAFETY: the guard above verified NEON and that both slices
            // hold at least `dim` elements.
            return unsafe { self.asym_neg_ip_neon(query, code) };
        }
        let mut sum = 0.0;
        for d in 0..self.dim {
            let x = self.min[d] + code[d] as f32 * self.step[d];
            sum += query[d] * x;
        }
        -sum
    }

    /// # Safety
    /// Requires AVX2+FMA and `query.len() >= dim && code.len() >= dim`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn asym_l2_avx2(&self, query: &[f32], code: &[u8]) -> f32 {
        use std::arch::x86_64::*;
        // SAFETY: fn contract (see `# Safety`): the required CPU features are
        // enabled and both slices hold at least `dim` elements, so every
        // load and index below stays in bounds.
        unsafe {
            let n = self.dim;
            let mut acc = _mm256_setzero_ps();
            let mut d = 0;
            while d + 8 <= n {
                let cf = load_u8x8_as_f32(code.as_ptr().add(d));
                let x = _mm256_fmadd_ps(
                    cf,
                    _mm256_loadu_ps(self.step.as_ptr().add(d)),
                    _mm256_loadu_ps(self.min.as_ptr().add(d)),
                );
                let diff = _mm256_sub_ps(_mm256_loadu_ps(query.as_ptr().add(d)), x);
                acc = _mm256_fmadd_ps(diff, diff, acc);
                d += 8;
            }
            let mut sum = hsum256(acc);
            while d < n {
                let x = self.min[d] + code[d] as f32 * self.step[d];
                let diff = query[d] - x;
                sum += diff * diff;
                d += 1;
            }
            sum
        }
    }

    /// # Safety
    /// Requires AVX2+FMA and `query.len() >= dim && code.len() >= dim`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn asym_neg_ip_avx2(&self, query: &[f32], code: &[u8]) -> f32 {
        use std::arch::x86_64::*;
        // SAFETY: fn contract (see `# Safety`): the required CPU features are
        // enabled and both slices hold at least `dim` elements, so every
        // load and index below stays in bounds.
        unsafe {
            let n = self.dim;
            let mut acc = _mm256_setzero_ps();
            let mut d = 0;
            while d + 8 <= n {
                let cf = load_u8x8_as_f32(code.as_ptr().add(d));
                let x = _mm256_fmadd_ps(
                    cf,
                    _mm256_loadu_ps(self.step.as_ptr().add(d)),
                    _mm256_loadu_ps(self.min.as_ptr().add(d)),
                );
                acc = _mm256_fmadd_ps(_mm256_loadu_ps(query.as_ptr().add(d)), x, acc);
                d += 8;
            }
            let mut sum = hsum256(acc);
            while d < n {
                let x = self.min[d] + code[d] as f32 * self.step[d];
                sum += query[d] * x;
                d += 1;
            }
            -sum
        }
    }

    /// # Safety
    /// Requires NEON and `query.len() >= dim && code.len() >= dim`.
    #[cfg(target_arch = "aarch64")]
    #[target_feature(enable = "neon")]
    unsafe fn asym_l2_neon(&self, query: &[f32], code: &[u8]) -> f32 {
        use std::arch::aarch64::*;
        // SAFETY: fn contract (see `# Safety`): the required CPU features are
        // enabled and both slices hold at least `dim` elements, so every
        // load and index below stays in bounds.
        unsafe {
            let n = self.dim;
            let (pq, pc) = (query.as_ptr(), code.as_ptr());
            let (pmin, pstep) = (self.min.as_ptr(), self.step.as_ptr());
            let mut acc0 = vdupq_n_f32(0.0);
            let mut acc1 = vdupq_n_f32(0.0);
            let mut d = 0usize;
            while d + 8 <= n {
                let (c0, c1) = load_u8x8_as_f32x2(pc.add(d));
                let x0 = vfmaq_f32(vld1q_f32(pmin.add(d)), c0, vld1q_f32(pstep.add(d)));
                let x1 = vfmaq_f32(vld1q_f32(pmin.add(d + 4)), c1, vld1q_f32(pstep.add(d + 4)));
                let d0 = vsubq_f32(vld1q_f32(pq.add(d)), x0);
                let d1 = vsubq_f32(vld1q_f32(pq.add(d + 4)), x1);
                acc0 = vfmaq_f32(acc0, d0, d0);
                acc1 = vfmaq_f32(acc1, d1, d1);
                d += 8;
            }
            let mut sum = vaddvq_f32(vaddq_f32(acc0, acc1));
            while d < n {
                let x = self.min[d] + code[d] as f32 * self.step[d];
                let diff = query[d] - x;
                sum += diff * diff;
                d += 1;
            }
            sum
        }
    }

    /// # Safety
    /// Requires NEON and `query.len() >= dim && code.len() >= dim`.
    #[cfg(target_arch = "aarch64")]
    #[target_feature(enable = "neon")]
    unsafe fn asym_neg_ip_neon(&self, query: &[f32], code: &[u8]) -> f32 {
        use std::arch::aarch64::*;
        // SAFETY: fn contract (see `# Safety`): the required CPU features are
        // enabled and both slices hold at least `dim` elements, so every
        // load and index below stays in bounds.
        unsafe {
            let n = self.dim;
            let (pq, pc) = (query.as_ptr(), code.as_ptr());
            let (pmin, pstep) = (self.min.as_ptr(), self.step.as_ptr());
            let mut acc0 = vdupq_n_f32(0.0);
            let mut acc1 = vdupq_n_f32(0.0);
            let mut d = 0usize;
            while d + 8 <= n {
                let (c0, c1) = load_u8x8_as_f32x2(pc.add(d));
                let x0 = vfmaq_f32(vld1q_f32(pmin.add(d)), c0, vld1q_f32(pstep.add(d)));
                let x1 = vfmaq_f32(vld1q_f32(pmin.add(d + 4)), c1, vld1q_f32(pstep.add(d + 4)));
                acc0 = vfmaq_f32(acc0, vld1q_f32(pq.add(d)), x0);
                acc1 = vfmaq_f32(acc1, vld1q_f32(pq.add(d + 4)), x1);
                d += 8;
            }
            let mut sum = vaddvq_f32(vaddq_f32(acc0, acc1));
            while d < n {
                let x = self.min[d] + code[d] as f32 * self.step[d];
                sum += query[d] * x;
                d += 1;
            }
            -sum
        }
    }

    /// Worst-case per-dimension reconstruction error (half a step).
    pub fn max_abs_error(&self, d: usize) -> f32 {
        self.step[d] * 0.5
    }

    /// Serialized + resident size in bytes.
    pub fn memory_usage(&self) -> usize {
        self.dim * 8 + std::mem::size_of::<Self>()
    }

    /// Serialize into a codec writer.
    pub fn save(&self, w: &mut Writer) {
        w.put_u64(self.dim as u64);
        w.put_f32_slice(&self.min);
        w.put_f32_slice(&self.step);
    }

    /// Deserialize a quantizer written by [`Self::save`].
    pub fn load(r: &mut Reader<'_>) -> Result<Sq8> {
        let dim = r.get_u64()? as usize;
        let min = r.get_f32_vec()?;
        let step = r.get_f32_vec()?;
        if min.len() != dim || step.len() != dim {
            return Err(BhError::Serde("sq8: corrupt dimension data".into()));
        }
        Ok(Sq8 { dim, min, step })
    }

    /// Standalone blob round-trip helpers used in tests.
    pub fn to_bytes(&self) -> Bytes {
        let mut w = Writer::new();
        self.save(&mut w);
        w.finish()
    }

    /// Deserialize a standalone blob written by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Sq8> {
        let mut r = Reader::new(bytes);
        Self::load(&mut r)
    }
}

/// Load 8 `u8` codes and widen to a `f32x8` register.
///
/// # Safety
/// Requires AVX2 and 8 readable bytes at `p`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn load_u8x8_as_f32(p: *const u8) -> std::arch::x86_64::__m256 {
    use std::arch::x86_64::*;
    // SAFETY: fn contract: 8 readable bytes at `p`; the widening
    // conversions are value-only.
    unsafe {
        let raw = _mm_loadl_epi64(p as *const __m128i);
        _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(raw))
    }
}

/// Load 8 `u8` codes and widen to two `f32x4` registers (low, high).
///
/// # Safety
/// Requires NEON and 8 readable bytes at `p`.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn load_u8x8_as_f32x2(
    p: *const u8,
) -> (std::arch::aarch64::float32x4_t, std::arch::aarch64::float32x4_t) {
    use std::arch::aarch64::*;
    // SAFETY: fn contract: 8 readable bytes at `p`; the widening
    // conversions are value-only.
    unsafe {
        let raw = vmovl_u8(vld1_u8(p));
        let lo = vcvtq_f32_u32(vmovl_u16(vget_low_u16(raw)));
        let hi = vcvtq_f32_u32(vmovl_u16(vget_high_u16(raw)));
        (lo, hi)
    }
}

/// Horizontal sum of a `f32x8` register.
///
/// # Safety
/// Requires AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hsum256(v: std::arch::x86_64::__m256) -> f32 {
    use std::arch::x86_64::*;
    // Value-only lane shuffles: safe to call inside this `#[target_feature]`
    // fn, so no inner `unsafe` block is needed.
    let hi = _mm256_extractf128_ps(v, 1);
    let lo = _mm256_castps256_ps128(v);
    let s = _mm_add_ps(lo, hi);
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    _mm_cvtss_f32(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::l2_sq;
    use bh_common::rng::rng;
    use proptest::prelude::*;
    use rand::Rng;

    fn sample(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut r = rng(seed);
        (0..n * dim).map(|_| r.gen_range(-3.0f32..3.0)).collect()
    }

    #[test]
    fn encode_decode_error_bounded_by_half_step() {
        let dim = 16;
        let data = sample(100, dim, 1);
        let sq = Sq8::train(&data, dim).unwrap();
        for i in 0..100 {
            let v = &data[i * dim..(i + 1) * dim];
            let code = sq.encode(v).unwrap();
            let dec = sq.decode(&code);
            for d in 0..dim {
                let err = (v[d] - dec[d]).abs();
                assert!(
                    err <= sq.max_abs_error(d) + 1e-5,
                    "dim {d}: err {err} > bound {}",
                    sq.max_abs_error(d)
                );
            }
        }
    }

    #[test]
    fn asym_l2_matches_decode_then_l2() {
        let dim = 8;
        let data = sample(50, dim, 2);
        let sq = Sq8::train(&data, dim).unwrap();
        let q = &data[0..dim];
        let code = sq.encode(&data[dim..2 * dim]).unwrap();
        let fast = sq.asym_l2(q, &code);
        let slow = l2_sq(q, &sq.decode(&code));
        assert!((fast - slow).abs() < 1e-3 * (1.0 + slow));
    }

    #[test]
    fn asym_kernels_match_scalar_decode_path() {
        // Exercises the dispatched u8→f32 kernels on every remainder shape.
        for dim in [1usize, 7, 8, 9, 16, 31, 64, 100] {
            let data = sample(30, dim, dim as u64);
            let sq = Sq8::train(&data, dim).unwrap();
            let q = &data[0..dim];
            for i in 1..10 {
                let code = sq.encode(&data[i * dim..(i + 1) * dim]).unwrap();
                let dec = sq.decode(&code);
                let l2_ref = l2_sq(q, &dec);
                assert!((sq.asym_l2(q, &code) - l2_ref).abs() < 1e-3 * (1.0 + l2_ref));
                let ip_ref = -crate::distance::dot(q, &dec);
                assert!((sq.asym_neg_ip(q, &code) - ip_ref).abs() < 1e-3 * (1.0 + ip_ref.abs()));
            }
        }
    }

    #[test]
    fn constant_dimension_is_stable() {
        // Second dimension constant → step 0 → decodes exactly.
        let data = vec![1.0, 5.0, 2.0, 5.0, 3.0, 5.0];
        let sq = Sq8::train(&data, 2).unwrap();
        let code = sq.encode(&[2.0, 5.0]).unwrap();
        let dec = sq.decode(&code);
        assert_eq!(dec[1], 5.0);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let data = vec![0.0, 1.0]; // 1-d, range [0,1]
        let sq = Sq8::train(&data, 1).unwrap();
        let lo = sq.encode(&[-100.0]).unwrap();
        let hi = sq.encode(&[100.0]).unwrap();
        assert_eq!(lo[0], 0);
        assert_eq!(hi[0], 255);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Sq8::train(&[], 4).is_err());
        assert!(Sq8::train(&[1.0, 2.0, 3.0], 2).is_err());
        let sq = Sq8::train(&[0.0, 1.0], 1).unwrap();
        assert!(sq.encode(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn serialization_roundtrip() {
        let data = sample(20, 6, 3);
        let sq = Sq8::train(&data, 6).unwrap();
        let b = sq.to_bytes();
        let sq2 = Sq8::from_bytes(&b).unwrap();
        assert_eq!(sq, sq2);
    }

    #[test]
    fn corrupt_blob_rejected() {
        let data = sample(5, 4, 4);
        let sq = Sq8::train(&data, 4).unwrap();
        let b = sq.to_bytes();
        assert!(Sq8::from_bytes(&b[..b.len() / 2]).is_err());
    }

    proptest! {
        #[test]
        fn prop_reconstruction_within_bound(
            n in 2usize..30,
            dim in 1usize..12,
            seed in 0u64..100,
        ) {
            let data = sample(n, dim, seed);
            let sq = Sq8::train(&data, dim).unwrap();
            for i in 0..n {
                let v = &data[i * dim..(i + 1) * dim];
                let dec = sq.decode(&sq.encode(v).unwrap());
                for d in 0..dim {
                    prop_assert!((v[d] - dec[d]).abs() <= sq.max_abs_error(d) + 1e-4);
                }
            }
        }

        #[test]
        fn prop_neg_ip_matches_decode(
            dim in 1usize..10,
            seed in 0u64..50,
        ) {
            let data = sample(10, dim, seed);
            let sq = Sq8::train(&data, dim).unwrap();
            let q = &data[0..dim];
            let code = sq.encode(&data[dim..2 * dim]).unwrap();
            let fast = sq.asym_neg_ip(q, &code);
            let slow = -crate::distance::dot(q, &sq.decode(&code));
            prop_assert!((fast - slow).abs() < 1e-3 * (1.0 + slow.abs()));
        }
    }
}
