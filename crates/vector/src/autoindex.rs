//! Automatic index parameter selection (§III-B "Auto index", Fig. 7).
//!
//! BlendHouse's per-segment index design means index sizes vary wildly across
//! LSM levels, and IVF search cost is sharply sensitive to the clustering
//! fan-out `K_IVF`: probing cost grows with `K` (centroid scan) while in-cell
//! scan cost grows with `n / K`. The rule-based selector below balances the
//! two, mirroring the faiss guidelines the paper cites; the compaction path
//! additionally refines the choice with a measured cost model
//! ([`select_kivf_modeled`]), standing in for the auto-tuning tools.

use crate::types::{IndexKind, IndexSpec};

/// Rule-based `nlist` selection used at ingest time: `√n`, clamped so tiny
/// segments still get a few cells and huge ones don't over-fragment. (The
/// faiss guideline range is `√n`–`16·√n`; the low end keeps per-segment
/// training cost below graph construction, which is what makes IVF the
/// cheap-build option in Table V.)
pub fn auto_nlist(n: usize) -> usize {
    let k = (n.max(1) as f64).sqrt().round() as usize;
    k.clamp(4, 65_536).min(n.max(1))
}

/// Simple analytic IVF search-cost model: probing scans all `k` centroids
/// plus `nprobe` cells of expected size `n / k`.
/// `centroid_cost` and `code_cost` are relative per-item costs (centroid
/// distances are full-dimension float ops; in-cell scans may be ADC lookups).
pub fn ivf_search_cost(n: usize, k: usize, nprobe: usize, centroid_cost: f64, code_cost: f64) -> f64 {
    let k = k.max(1) as f64;
    let cells = (n as f64 / k).max(1.0);
    k * centroid_cost + nprobe as f64 * cells * code_cost
}

/// Pick the best `K_IVF` among `choices` under the analytic model — the
/// compaction-time refinement. Fig. 7's crossovers fall out of this model:
/// small `N` favours small `K`, large `N` favours large `K`.
pub fn select_kivf_modeled(n: usize, nprobe: usize, choices: &[usize]) -> usize {
    choices
        .iter()
        .copied()
        .min_by(|&a, &b| {
            ivf_search_cost(n, a, nprobe, 1.0, 1.0)
                .total_cmp(&ivf_search_cost(n, b, nprobe, 1.0, 1.0))
        })
        .unwrap_or_else(|| auto_nlist(n))
}

/// The paper's Fig. 7 choice set, scaled to its production segment sizes.
pub const PAPER_KIVF_CHOICES: [usize; 3] = [4_096, 16_384, 65_536];

/// Apply auto-selection to a spec: fills `nlist` for IVF indexes when the
/// user did not specify one. Non-IVF specs pass through untouched.
pub fn apply_auto_index(spec: &IndexSpec, segment_rows: usize) -> IndexSpec {
    match spec.kind {
        IndexKind::IvfFlat | IndexKind::IvfPq | IndexKind::IvfPqFs => {
            if spec.params.contains_key("nlist") {
                spec.clone()
            } else {
                spec.clone().with_param("nlist", auto_nlist(segment_rows))
            }
        }
        _ => spec.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metric;

    #[test]
    fn auto_nlist_grows_with_sqrt_n() {
        assert!(auto_nlist(100) < auto_nlist(10_000));
        assert!(auto_nlist(10_000) < auto_nlist(1_000_000));
        // √10000 = 100
        assert_eq!(auto_nlist(10_000), 100);
    }

    #[test]
    fn auto_nlist_clamps() {
        assert_eq!(auto_nlist(0), 1);
        assert_eq!(auto_nlist(2), 2); // never more cells than points
        assert!(auto_nlist(usize::MAX / 2) <= 65_536);
    }

    #[test]
    fn modeled_choice_crosses_over_with_n() {
        // Small segment → small K; huge segment → large K (Fig. 7 shape).
        let small = select_kivf_modeled(50_000, 8, &PAPER_KIVF_CHOICES);
        let large = select_kivf_modeled(500_000_000, 8, &PAPER_KIVF_CHOICES);
        assert_eq!(small, 4_096);
        assert_eq!(large, 65_536);
        assert!(small < large);
    }

    #[test]
    fn cost_model_monotone_in_parts() {
        // More probes cost more; more centroids cost more at fixed n per cell.
        let a = ivf_search_cost(1_000_000, 4096, 4, 1.0, 1.0);
        let b = ivf_search_cost(1_000_000, 4096, 8, 1.0, 1.0);
        assert!(b > a);
    }

    #[test]
    fn apply_auto_fills_only_missing_nlist() {
        let spec = IndexSpec::new(IndexKind::IvfFlat, 8, Metric::L2);
        let auto = apply_auto_index(&spec, 10_000);
        assert_eq!(auto.param_usize("nlist", 0).unwrap(), 100);

        let explicit = spec.clone().with_param("nlist", 7);
        let kept = apply_auto_index(&explicit, 10_000);
        assert_eq!(kept.param_usize("nlist", 0).unwrap(), 7);

        let hnsw = IndexSpec::new(IndexKind::Hnsw, 8, Metric::L2);
        let untouched = apply_auto_index(&hnsw, 10_000);
        assert!(!untouched.params.contains_key("nlist"));
    }
}
