//! Hierarchical Navigable Small World graphs (Malkov & Yashunin), with the
//! iterative-search extension the paper adds to hnswlib (§III-B).
//!
//! Two storage backends share one graph implementation:
//!
//! * `HNSW` — raw f32 vectors (exact distances).
//! * `HNSWSQ` — vectors stored as 8-bit scalar-quantized codes
//!   ([`crate::quant::sq::Sq8`]), decoded on the fly (asymmetric distance):
//!   ~4x less memory for a small recall cost (Table VI's shape).
//!
//! The **native search iterator** is the feature BlendHouse's post-filter
//! strategy relies on: a resumable best-first traversal of layer 0 whose
//! state (candidate heap + visited set) persists across batches, so asking
//! for "k more" costs only the incremental expansion — no doubled-k restart.

use crate::codec::{Reader, Writer};
use crate::flat::{metric_from_u8, metric_to_u8};
use crate::iterator::SearchIterator;
use crate::quant::sq::Sq8;
use crate::types::{
    check_batch, IndexBuilder, IndexMeta, IndexSpec, Neighbor, SearchParams, VectorIndex,
};
use crate::{IndexKind, Metric};
use bh_common::rng::{derived_rng, DetRng};
use bh_common::{BhError, Bitset, Result, SharedBound, TopK};
use bytes::Bytes;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"BHHN";
/// v2 appends a reconstruction-radius section to the SQ store payload
/// (`flag u8` + `f32 rho`), the measured max ‖x − decode(encode(x))‖ over
/// all build rows. v1 blobs load with `rho = None`, which disables the
/// SQ margin-pruning path (bound searches fall back to plain search).
const VERSION: u16 = 2;

/// Ordered (distance, node) pair for binary heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct DistNode {
    dist: f32,
    node: u32,
}

impl Eq for DistNode {}

impl PartialOrd for DistNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DistNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist.total_cmp(&other.dist).then(self.node.cmp(&other.node))
    }
}

/// Vector payload storage: raw or scalar-quantized.
#[derive(Debug, Clone)]
enum Store {
    Raw {
        data: Vec<f32>,
    },
    Sq {
        sq: Sq8,
        codes: Vec<u8>,
        /// Max reconstruction radius ‖x − decode(encode(x))‖ measured over
        /// the build rows at `finish()`. Turns asymmetric SQ distances into
        /// conservative lower bounds on exact distances (triangle
        /// inequality), letting HNSWSQ prune against a [`SharedBound`].
        /// `None` for pre-v2 payloads: margin pruning disabled.
        rho: Option<f32>,
    },
}

impl Store {
    /// Rows `rows` (in order) extracted into a standalone store. Quantizer
    /// state is duplicated — it is small (two f32 vectors) next to the codes.
    fn subset(&self, dim: usize, rows: &[u32]) -> Store {
        match self {
            Store::Raw { data } => {
                let mut out = Vec::with_capacity(rows.len() * dim);
                for &r in rows {
                    let r = r as usize;
                    out.extend_from_slice(&data[r * dim..(r + 1) * dim]);
                }
                Store::Raw { data: out }
            }
            Store::Sq { sq, codes, rho } => {
                let mut out = Vec::with_capacity(rows.len() * dim);
                for &r in rows {
                    let r = r as usize;
                    out.extend_from_slice(&codes[r * dim..(r + 1) * dim]);
                }
                Store::Sq { sq: sq.clone(), codes: out, rho: *rho }
            }
        }
    }

    /// Serialize as the v2 store payload (tag, payload, rho section).
    fn write(&self, w: &mut Writer) {
        match self {
            Store::Raw { data } => {
                w.put_u8(0);
                w.put_f32_slice(data);
            }
            Store::Sq { sq, codes, rho } => {
                w.put_u8(1);
                sq.save(w);
                w.put_bytes(codes);
                match rho {
                    Some(r) => {
                        w.put_u8(1);
                        w.put_f32(*r);
                    }
                    None => w.put_u8(0),
                }
            }
        }
    }

    /// Deserialize a v2 store payload written by [`Store::write`].
    fn read(r: &mut Reader<'_>) -> Result<Store> {
        match r.get_u8()? {
            0 => Ok(Store::Raw { data: r.get_f32_vec()? }),
            1 => {
                let sq = Sq8::load(r)?;
                let codes = r.get_bytes()?;
                let rho = match r.get_u8()? {
                    0 => None,
                    1 => Some(r.get_f32()?),
                    x => return Err(BhError::Serde(format!("hnsw: bad rho flag {x}"))),
                };
                Ok(Store::Sq { sq, codes, rho })
            }
            x => Err(BhError::Serde(format!("hnsw: bad store byte {x}"))),
        }
    }

    fn len(&self, dim: usize) -> usize {
        match self {
            Store::Raw { data } => data.len() / dim,
            Store::Sq { codes, .. } => codes.len() / dim,
        }
    }

    /// Asymmetric distance from an f32 query to stored row.
    ///
    /// Graph traversal is pointer-chasing, so there is no contiguous block to
    /// hand to `distance_batch`; per-pair calls still hit the runtime-
    /// dispatched SIMD kernels (`Metric::distance`, `Sq8::asym_*`).
    #[inline]
    fn distance_to(&self, metric: Metric, dim: usize, query: &[f32], row: usize) -> f32 {
        match self {
            Store::Raw { data } => metric.distance(query, &data[row * dim..(row + 1) * dim]),
            Store::Sq { sq, codes, .. } => {
                let code = &codes[row * dim..(row + 1) * dim];
                match metric {
                    Metric::L2 => sq.asym_l2(query, code),
                    Metric::InnerProduct => sq.asym_neg_ip(query, code),
                    // Cosine over SQ: decode (rare path; HNSWSQ cosine users
                    // normalize at ingest so L2 ordering matches).
                    Metric::Cosine => metric.distance(query, &sq.decode(code)),
                }
            }
        }
    }

    /// Prefetch `row`'s vector (or SQ code row) toward L1 ahead of its
    /// distance computation. Beam expansion reads neighbor rows in random
    /// order, so each distance otherwise serializes on a full memory
    /// latency; issuing a neighborhood's prefetches before scoring lets the
    /// loads overlap. No-op on non-x86_64 targets.
    #[inline]
    fn prefetch_row(&self, dim: usize, row: usize) {
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let (ptr, stride) = match self {
                Store::Raw { data } => (data.as_ptr().cast::<i8>(), dim * 4),
                Store::Sq { codes, .. } => (codes.as_ptr().cast::<i8>(), dim),
            };
            let mut off = 0usize;
            while off < stride {
                // SAFETY: `row` is a valid row index and `off < stride`, so
                // the address stays within the store's allocation; prefetch
                // itself never faults regardless.
                unsafe { _mm_prefetch(ptr.add(row * stride + off), _MM_HINT_T0) };
                off += 64;
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (dim, row);
        }
    }

    fn memory_usage(&self) -> usize {
        match self {
            Store::Raw { data } => data.len() * 4,
            Store::Sq { sq, codes, .. } => codes.len() + sq.memory_usage(),
        }
    }
}

/// An immutable HNSW index.
#[derive(Debug)]
pub struct HnswIndex {
    dim: usize,
    metric: Metric,
    kind: IndexKind,
    m: usize,
    ids: Vec<u64>,
    /// Per node, per level, the neighbor list. `links[n].len()` is the node's
    /// level count + 1.
    links: Vec<Vec<Vec<u32>>>,
    entry: u32,
    max_level: usize,
    store: Store,
}

impl HnswIndex {
    fn n(&self) -> usize {
        self.ids.len()
    }

    #[inline]
    fn dist_q(&self, query: &[f32], node: u32) -> f32 {
        self.store.distance_to(self.metric, self.dim, query, node as usize)
    }

    /// Greedy descent through upper levels to the closest entry at `level`.
    fn greedy_to_level(&self, query: &[f32], mut cur: u32, from: usize, to: usize) -> u32 {
        let mut cur_d = self.dist_q(query, cur);
        for level in (to + 1..=from).rev() {
            let mut improved = true;
            while improved {
                improved = false;
                if level < self.links[cur as usize].len() {
                    // Clone-free iteration; adjacency is immutable post-build.
                    for &nb in &self.links[cur as usize][level] {
                        let d = self.dist_q(query, nb);
                        if d < cur_d {
                            cur_d = d;
                            cur = nb;
                            improved = true;
                        }
                    }
                }
            }
        }
        cur
    }

    /// Beam search at one level: returns up to `ef` nearest as a max-heap
    /// drained to ascending order. Also reports visited count.
    fn search_layer(
        &self,
        query: &[f32],
        entry: u32,
        ef: usize,
        level: usize,
    ) -> (Vec<DistNode>, usize) {
        let mut visited = vec![false; self.n()];
        visited[entry as usize] = true;
        let d0 = self.dist_q(query, entry);
        let mut candidates = BinaryHeap::new(); // min-heap via Reverse
        candidates.push(Reverse(DistNode { dist: d0, node: entry }));
        let mut results: BinaryHeap<DistNode> = BinaryHeap::new(); // max-heap
        results.push(DistNode { dist: d0, node: entry });
        let mut n_visited = 1usize;
        let mut fresh: Vec<u32> = Vec::with_capacity(2 * self.m.max(8));

        while let Some(Reverse(c)) = candidates.pop() {
            let worst = results.peek().map(|r| r.dist).unwrap_or(f32::INFINITY);
            if results.len() >= ef && c.dist > worst {
                break;
            }
            if level < self.links[c.node as usize].len() {
                // Gather-then-score: issue the whole neighborhood's vector
                // prefetches before the first distance so the random-access
                // loads overlap instead of serializing on memory latency.
                fresh.clear();
                for &nb in &self.links[c.node as usize][level] {
                    if visited[nb as usize] {
                        continue;
                    }
                    self.store.prefetch_row(self.dim, nb as usize);
                    fresh.push(nb);
                }
                for &nb in &fresh {
                    visited[nb as usize] = true;
                    n_visited += 1;
                    let d = self.dist_q(query, nb);
                    let worst = results.peek().map(|r| r.dist).unwrap_or(f32::INFINITY);
                    if results.len() < ef || d < worst {
                        candidates.push(Reverse(DistNode { dist: d, node: nb }));
                        results.push(DistNode { dist: d, node: nb });
                        if results.len() > ef {
                            results.pop();
                        }
                    }
                }
            }
        }
        let mut out: Vec<DistNode> = results.into_vec();
        out.sort();
        (out, n_visited)
    }

    /// Predicate-aware beam search at level 0 (Plan D, ACORN-style).
    ///
    /// Nodes failing `filter` still steer navigation — they stay in the
    /// candidate heap and their neighborhoods are expanded — but only
    /// passing nodes enter the `ef`-bounded result heap, so the beam is
    /// spent entirely on rows that can appear in the answer. A path may
    /// cross at most `hop_budget` consecutive failing nodes beyond the
    /// last passing one: selective filters thin the passing subgraph, and
    /// bounded multi-hop detours keep it connected without devolving into
    /// an unbounded flood.
    fn search_layer0_filtered(
        &self,
        query: &[f32],
        entry: u32,
        ef: usize,
        filter: &Bitset,
        hop_budget: usize,
    ) -> (Vec<DistNode>, usize) {
        let passes = |node: u32| filter.contains(self.ids[node as usize] as usize);
        let mut visited = vec![false; self.n()];
        visited[entry as usize] = true;
        let d0 = self.dist_q(query, entry);
        let entry_hops = if passes(entry) { 0usize } else { 1 };
        // Candidates carry the consecutive-failing-hop count since the last
        // passing node (0 for a passing node).
        let mut candidates = BinaryHeap::new();
        candidates.push(Reverse((DistNode { dist: d0, node: entry }, entry_hops)));
        let mut results: BinaryHeap<DistNode> = BinaryHeap::new();
        if entry_hops == 0 {
            results.push(DistNode { dist: d0, node: entry });
        }
        let mut n_visited = 1usize;
        let mut fresh: Vec<u32> = Vec::with_capacity(2 * self.m.max(8));

        while let Some(Reverse((c, hops))) = candidates.pop() {
            let worst = results.peek().map(|r| r.dist).unwrap_or(f32::INFINITY);
            if results.len() >= ef && c.dist > worst {
                break;
            }
            if self.links[c.node as usize].is_empty() {
                continue;
            }
            // Gather-then-score, as in `search_layer`: prefetch the whole
            // neighborhood before the first distance. Budget-skipped nodes
            // get a wasted prefetch; overlapping the rest still wins.
            fresh.clear();
            for &nb in &self.links[c.node as usize][0] {
                if visited[nb as usize] {
                    continue;
                }
                self.store.prefetch_row(self.dim, nb as usize);
                fresh.push(nb);
            }
            for &nb in &fresh {
                let nb_pass = passes(nb);
                let nb_hops = if nb_pass { 0 } else { hops + 1 };
                // Pure navigation until the first passing node is found: the
                // greedy descent is predicate-blind, so the beam may start
                // deep inside a failing region (correlated filters) and must
                // be free to walk out of it. Once results exist, the hop
                // budget bounds further detours.
                if nb_hops > hop_budget && !results.is_empty() {
                    // Leave unvisited: a shorter detour from another passing
                    // node may still legitimately reach it later.
                    continue;
                }
                visited[nb as usize] = true;
                n_visited += 1;
                let d = self.dist_q(query, nb);
                let worst = results.peek().map(|r| r.dist).unwrap_or(f32::INFINITY);
                if results.len() < ef || d < worst {
                    candidates.push(Reverse((DistNode { dist: d, node: nb }, nb_hops)));
                    if nb_pass {
                        results.push(DistNode { dist: d, node: nb });
                        if results.len() > ef {
                            results.pop();
                        }
                    }
                }
            }
        }
        let mut out: Vec<DistNode> = results.into_vec();
        out.sort();
        (out, n_visited)
    }

    /// Level-0 candidate generation for filtered searches: the Plan D
    /// traversal when `params.filter_traversal` asks for it, else the
    /// classic widened beam with post-hoc bitset checks.
    fn filtered_candidates(
        &self,
        query: &[f32],
        entry: u32,
        ef_base: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
    ) -> Vec<DistNode> {
        match filter {
            Some(f) if params.filter_traversal => {
                self.search_layer0_filtered(
                    query,
                    entry,
                    params.traversal_ef(ef_base),
                    f,
                    params.hop_budget(),
                )
                .0
            }
            // With a selective filter, widen the beam so enough filtered
            // rows survive — hnswlib's recipe, with the factor now derived
            // from the selectivity estimate instead of a fixed 2x.
            Some(_) => self.search_layer(query, entry, params.widened_ef(ef_base), 0).0,
            None => self.search_layer(query, entry, ef_base, 0).0,
        }
    }

    /// Deserialize an index written by [`VectorIndex::save_bytes`].
    pub fn load_bytes(bytes: &[u8]) -> Result<HnswIndex> {
        let mut r = Reader::new(bytes);
        let version = r.expect_header(MAGIC)?;
        let kind = match r.get_u8()? {
            0 => IndexKind::Hnsw,
            1 => IndexKind::HnswSq,
            x => return Err(BhError::Serde(format!("hnsw: bad kind byte {x}"))),
        };
        let dim = r.get_u64()? as usize;
        let metric = metric_from_u8(r.get_u8()?)?;
        let m = r.get_u64()? as usize;
        let entry = r.get_u32()?;
        let max_level = r.get_u64()? as usize;
        let ids = r.get_u64_vec()?;
        let n = ids.len();
        let mut links = Vec::with_capacity(n);
        for _ in 0..n {
            let levels = r.get_u64()? as usize;
            let mut per = Vec::with_capacity(levels);
            for _ in 0..levels {
                per.push(r.get_u32_vec()?);
            }
            links.push(per);
        }
        let store = match r.get_u8()? {
            0 => Store::Raw { data: r.get_f32_vec()? },
            1 => {
                let sq = Sq8::load(&mut r)?;
                let codes = r.get_bytes()?;
                let rho = if version >= 2 {
                    match r.get_u8()? {
                        0 => None,
                        1 => Some(r.get_f32()?),
                        x => return Err(BhError::Serde(format!("hnsw: bad rho flag {x}"))),
                    }
                } else {
                    None
                };
                Store::Sq { sq, codes, rho }
            }
            x => return Err(BhError::Serde(format!("hnsw: bad store byte {x}"))),
        };
        let idx = HnswIndex { dim, metric, kind, m, ids, links, entry, max_level, store };
        if dim == 0 || (idx.n() > 0 && idx.store.len(dim) != idx.n()) {
            return Err(BhError::Serde("hnsw: corrupt geometry".into()));
        }
        Ok(idx)
    }

    /// Node indices (in node order) of every node participating in levels
    /// ≥ 1 — the nodes the head section carries vectors and links for.
    /// With the standard level distribution this is ~1/M of all nodes.
    fn upper_nodes(&self) -> Vec<u32> {
        (0..self.n() as u32).filter(|&i| self.links[i as usize].len() >= 2).collect()
    }

    /// Serialize as `(head, body)` sections for the v3 tiered container.
    ///
    /// The head carries everything needed to run greedy descent + a level-1
    /// beam over the upper graph: per-node level counts, the upper nodes'
    /// links, row ids, and vector payload (raw or SQ codes + quantizer).
    /// The body carries the base layer: all ids, every node's layer-0
    /// adjacency, and the full vector store. `load_tiered_parts(head, body)`
    /// reconstructs an index identical to `self`.
    pub fn save_tiered_parts(&self) -> Result<(Bytes, Bytes)> {
        let mut hw = Writer::with_header(HEAD_MAGIC, TIERED_PART_VERSION);
        hw.put_u8(match self.kind {
            IndexKind::Hnsw => 0,
            IndexKind::HnswSq => 1,
            _ => return Err(BhError::Internal("hnsw: impossible kind".into())),
        });
        hw.put_u64(self.dim as u64);
        hw.put_u8(metric_to_u8(self.metric));
        hw.put_u64(self.m as u64);
        hw.put_u32(self.entry);
        hw.put_u64(self.max_level as u64);
        let mut level_counts = Vec::with_capacity(self.n());
        for per in &self.links {
            if per.len() > u8::MAX as usize {
                return Err(BhError::Internal("hnsw: level count exceeds u8".into()));
            }
            level_counts.push(per.len() as u8);
        }
        hw.put_bytes(&level_counts);
        let upper = self.upper_nodes();
        for &node in &upper {
            let per = &self.links[node as usize];
            for l in &per[1..] {
                hw.put_u32_slice(l);
            }
        }
        hw.put_u64_slice(&upper.iter().map(|&u| self.ids[u as usize]).collect::<Vec<_>>());
        self.store.subset(self.dim, &upper).write(&mut hw);

        let mut bw = Writer::with_header(BODY_MAGIC, TIERED_PART_VERSION);
        bw.put_u64_slice(&self.ids);
        for per in &self.links {
            bw.put_u32_slice(&per[0]);
        }
        self.store.write(&mut bw);
        Ok((hw.finish(), bw.finish()))
    }

    /// Reconstruct a full index from tiered `(head, body)` sections written
    /// by [`HnswIndex::save_tiered_parts`].
    pub fn load_tiered_parts(head: &[u8], body: &[u8]) -> Result<HnswIndex> {
        let h = HnswHead::parse(head)?;
        let mut r = Reader::new(body);
        r.expect_header(BODY_MAGIC)?;
        let ids = r.get_u64_vec()?;
        if ids.len() != h.level_counts.len() {
            return Err(BhError::Serde(format!(
                "hnsw tiered: head describes {} nodes, body has {}",
                h.level_counts.len(),
                ids.len()
            )));
        }
        let n = ids.len();
        let mut links: Vec<Vec<Vec<u32>>> = Vec::with_capacity(n);
        for node in 0..n {
            let mut per = Vec::with_capacity(h.level_counts[node] as usize);
            per.push(r.get_u32_vec()?);
            links.push(per);
        }
        let store = Store::read(&mut r)?;
        // Graft the upper levels from the head onto the base layer.
        for (dense, &node) in h.upper.iter().enumerate() {
            links[node as usize].extend(h.upper_links[dense].iter().cloned());
        }
        for (node, per) in links.iter().enumerate() {
            if per.len() != h.level_counts[node] as usize {
                return Err(BhError::Serde("hnsw tiered: level count mismatch".into()));
            }
        }
        let idx = HnswIndex {
            dim: h.dim,
            metric: h.metric,
            kind: h.kind,
            m: h.m,
            ids,
            links,
            entry: h.entry,
            max_level: h.max_level,
            store,
        };
        if idx.dim == 0 || (idx.n() > 0 && idx.store.len(idx.dim) != idx.n()) {
            return Err(BhError::Serde("hnsw tiered: corrupt geometry".into()));
        }
        Ok(idx)
    }
}

/// Magic for the head section of a tiered HNSW blob.
const HEAD_MAGIC: &[u8; 4] = b"BHH3";
/// Magic for the body section of a tiered HNSW blob.
const BODY_MAGIC: &[u8; 4] = b"BHB3";
const TIERED_PART_VERSION: u16 = 1;

/// Parsed head section, shared by the full tiered load (which grafts it onto
/// the body) and the head-only partial load.
struct HnswHead {
    kind: IndexKind,
    dim: usize,
    metric: Metric,
    m: usize,
    entry: u32,
    max_level: usize,
    /// Per node (all nodes), its level count + 1.
    level_counts: Vec<u8>,
    /// Global node indices of upper nodes, ascending.
    upper: Vec<u32>,
    /// Per upper node (dense order), its links for levels 1..=level.
    upper_links: Vec<Vec<Vec<u32>>>,
    /// Per upper node, its row id.
    upper_ids: Vec<u64>,
    /// Vector payload for the upper nodes only.
    upper_store: Store,
}

impl HnswHead {
    fn parse(head: &[u8]) -> Result<HnswHead> {
        let mut r = Reader::new(head);
        r.expect_header(HEAD_MAGIC)?;
        let kind = match r.get_u8()? {
            0 => IndexKind::Hnsw,
            1 => IndexKind::HnswSq,
            x => return Err(BhError::Serde(format!("hnsw head: bad kind byte {x}"))),
        };
        let dim = r.get_u64()? as usize;
        let metric = metric_from_u8(r.get_u8()?)?;
        let m = r.get_u64()? as usize;
        let entry = r.get_u32()?;
        let max_level = r.get_u64()? as usize;
        let level_counts = r.get_bytes()?;
        let upper: Vec<u32> = (0..level_counts.len() as u32)
            .filter(|&i| level_counts[i as usize] >= 2)
            .collect();
        let mut upper_links = Vec::with_capacity(upper.len());
        for &node in &upper {
            let levels = level_counts[node as usize] as usize;
            let mut per = Vec::with_capacity(levels - 1);
            for _ in 1..levels {
                per.push(r.get_u32_vec()?);
            }
            upper_links.push(per);
        }
        let upper_ids = r.get_u64_vec()?;
        if upper_ids.len() != upper.len() {
            return Err(BhError::Serde("hnsw head: upper id count mismatch".into()));
        }
        let upper_store = Store::read(&mut r)?;
        if dim == 0 || upper_store.len(dim) != upper.len() {
            return Err(BhError::Serde("hnsw head: corrupt geometry".into()));
        }
        Ok(HnswHead {
            kind,
            dim,
            metric,
            m,
            entry,
            max_level,
            level_counts,
            upper,
            upper_links,
            upper_ids,
            upper_store,
        })
    }
}

/// A head-only partial HNSW index: the upper layers (levels ≥ 1) with their
/// vectors, loadable from ~1/M of the blob bytes. Serves real (approximate)
/// top-k immediately after a head-sized fetch by running greedy descent plus
/// a level-1 beam over the upper graph — candidates are genuine rows with
/// exact (or asymmetric-SQ) distances, just drawn from the upper sample of
/// the dataset instead of the full base layer.
pub struct HnswHeadIndex {
    kind: IndexKind,
    dim: usize,
    metric: Metric,
    entry: u32,
    max_level: usize,
    /// Total rows in the full index (reported in meta).
    total_len: usize,
    /// Global node index per dense upper slot, ascending.
    upper: Vec<u32>,
    /// Global node index → dense upper slot.
    dense_of: std::collections::HashMap<u32, u32>,
    /// Per dense slot, links for levels 1..=level (global node refs).
    links: Vec<Vec<Vec<u32>>>,
    /// Per dense slot, the row id.
    ids: Vec<u64>,
    /// Vector payload, rows addressed by dense slot.
    store: Store,
}

impl HnswHeadIndex {
    /// Deserialize the head section of a tiered HNSW blob into a partial
    /// index.
    pub fn load_bytes(head: &[u8]) -> Result<HnswHeadIndex> {
        let h = HnswHead::parse(head)?;
        let dense_of = h
            .upper
            .iter()
            .enumerate()
            .map(|(dense, &node)| (node, dense as u32))
            .collect();
        Ok(HnswHeadIndex {
            kind: h.kind,
            dim: h.dim,
            metric: h.metric,
            entry: h.entry,
            max_level: h.max_level,
            total_len: h.level_counts.len(),
            upper: h.upper,
            dense_of,
            links: h.upper_links,
            ids: h.upper_ids,
            store: h.upper_store,
        })
    }

    /// Number of upper nodes resident in the head.
    pub fn head_len(&self) -> usize {
        self.upper.len()
    }

    #[inline]
    fn dist_dense(&self, query: &[f32], dense: u32) -> f32 {
        self.store.distance_to(self.metric, self.dim, query, dense as usize)
    }

    /// Links of dense node `dense` at graph level `level` (≥ 1).
    fn links_at(&self, dense: u32, level: usize) -> &[u32] {
        let per = &self.links[dense as usize];
        match per.get(level - 1) {
            Some(l) => l,
            None => &[],
        }
    }

    /// Greedy descent from the global entry through levels
    /// `max_level..level+1`, returning the best dense node seen.
    fn greedy_to_level(&self, query: &[f32], to: usize) -> Option<u32> {
        let mut cur = *self.dense_of.get(&self.entry)?;
        let mut cur_d = self.dist_dense(query, cur);
        for level in (to + 1..=self.max_level).rev() {
            let mut improved = true;
            while improved {
                improved = false;
                for &nb in self.links_at(cur, level) {
                    let Some(&nd) = self.dense_of.get(&nb) else { continue };
                    let d = self.dist_dense(query, nd);
                    if d < cur_d {
                        cur_d = d;
                        cur = nd;
                        improved = true;
                    }
                }
            }
        }
        Some(cur)
    }

    /// Beam search over level 1 (the lowest level present in the head).
    fn search_upper(&self, query: &[f32], ef: usize) -> Vec<DistNode> {
        let Some(entry) = self.greedy_to_level(query, 1) else { return Vec::new() };
        let mut visited = vec![false; self.upper.len()];
        visited[entry as usize] = true;
        let d0 = self.dist_dense(query, entry);
        let mut candidates = BinaryHeap::new();
        candidates.push(Reverse(DistNode { dist: d0, node: entry }));
        let mut results: BinaryHeap<DistNode> = BinaryHeap::new();
        results.push(DistNode { dist: d0, node: entry });
        while let Some(Reverse(c)) = candidates.pop() {
            let worst = results.peek().map(|r| r.dist).unwrap_or(f32::INFINITY);
            if results.len() >= ef && c.dist > worst {
                break;
            }
            for &nb in self.links_at(c.node, 1) {
                let Some(&nd) = self.dense_of.get(&nb) else { continue };
                if visited[nd as usize] {
                    continue;
                }
                visited[nd as usize] = true;
                let d = self.dist_dense(query, nd);
                let worst = results.peek().map(|r| r.dist).unwrap_or(f32::INFINITY);
                if results.len() < ef || d < worst {
                    candidates.push(Reverse(DistNode { dist: d, node: nd }));
                    results.push(DistNode { dist: d, node: nd });
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<DistNode> = results.into_vec();
        out.sort();
        out
    }
}

impl VectorIndex for HnswHeadIndex {
    fn meta(&self) -> IndexMeta {
        IndexMeta { kind: self.kind, dim: self.dim, metric: self.metric, len: self.total_len }
    }

    fn search_with_filter(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>> {
        self.check_query(query)?;
        if self.upper.is_empty() || k == 0 {
            return Ok(Vec::new());
        }
        let ef = params.ef_search.max(k);
        // The head holds only upper layers, too sparse for the Plan D
        // multi-hop traversal — a filtered head search always uses the
        // widened beam (selectivity-adaptive, legacy 2x without estimate).
        let ef = if filter.is_some() { params.widened_ef(ef) } else { ef };
        let mut tk = TopK::new(k);
        for c in self.search_upper(query, ef) {
            let id = self.ids[c.node as usize];
            if let Some(f) = filter {
                if !f.contains(id as usize) {
                    continue;
                }
            }
            tk.push(c.dist, id);
        }
        Ok(tk.into_sorted().into_iter().map(|s| Neighbor::new(s.item, s.distance)).collect())
    }

    fn search_with_range(
        &self,
        query: &[f32],
        radius: f32,
        params: &SearchParams,
        filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>> {
        self.check_query(query)?;
        let ef = params.widened_ef(params.ef_search.max(16));
        let mut out: Vec<Neighbor> = self
            .search_upper(query, ef)
            .into_iter()
            .filter(|c| c.dist <= radius)
            .map(|c| Neighbor::new(self.ids[c.node as usize], c.dist))
            .filter(|nb| filter.map(|f| f.contains(nb.id as usize)).unwrap_or(true))
            .collect();
        out.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        Ok(out)
    }

    fn search_iterator<'a>(
        &'a self,
        query: &[f32],
        params: &SearchParams,
    ) -> Result<Box<dyn SearchIterator + 'a>> {
        self.check_query(query)?;
        Ok(Box::new(crate::iterator::GenericSearchIterator::new(self, query, params)))
    }

    fn needs_refine(&self) -> bool {
        matches!(self.kind, IndexKind::HnswSq)
    }

    fn memory_usage(&self) -> usize {
        let link_bytes: usize = self
            .links
            .iter()
            .map(|per| per.iter().map(|l| l.len() * 4 + 24).sum::<usize>() + 24)
            .sum();
        self.store.memory_usage()
            + link_bytes
            + self.ids.len() * 8
            + self.upper.len() * 4
            + self.dense_of.len() * 12
            + std::mem::size_of::<Self>()
    }

    fn save_bytes(&self) -> Result<Bytes> {
        Err(BhError::Internal("head-only partial index cannot be re-saved".into()))
    }

    fn is_partial(&self) -> bool {
        true
    }

    fn head_servable(&self) -> bool {
        // A graph with no upper layers (tiny segment) has an empty head;
        // the caller must brute-force until the body arrives.
        !self.upper.is_empty()
    }
}

impl VectorIndex for HnswIndex {
    fn meta(&self) -> IndexMeta {
        IndexMeta { kind: self.kind, dim: self.dim, metric: self.metric, len: self.n() }
    }

    fn search_with_filter(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>> {
        self.check_query(query)?;
        if self.n() == 0 || k == 0 {
            return Ok(Vec::new());
        }
        let ef = params.ef_search.max(k);
        let entry = self.greedy_to_level(query, self.entry, self.max_level, 0);
        let cands = self.filtered_candidates(query, entry, ef, params, filter);
        let mut tk = TopK::new(k);
        for c in cands {
            let id = self.ids[c.node as usize];
            if let Some(f) = filter {
                if !f.contains(id as usize) {
                    continue;
                }
            }
            tk.push(c.dist, id);
        }
        Ok(tk.into_sorted().into_iter().map(|s| Neighbor::new(s.item, s.distance)).collect())
    }

    fn search_with_bound(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
        bound: Option<&SharedBound>,
    ) -> Result<Vec<Neighbor>> {
        let Some(b) = bound else {
            return self.search_with_filter(query, k, params, filter);
        };
        // SQ stores yield asymmetric (approximate) distances. With a measured
        // reconstruction radius rho they still admit conservative lower
        // bounds on the exact distance (triangle inequality), so HNSWSQ can
        // *prune* against the shared bound — but never publish to it:
        //
        //   L2:  ‖q − x‖ ≥ ‖q − x̂‖ − ‖x − x̂‖ ≥ sqrt(d_sq) − rho
        //        lower bound = max(0, sqrt(d_sq) − rho)²
        //   IP:  ⟨q, x⟩ ≤ ⟨q, x̂⟩ + ‖q‖·rho (Cauchy-Schwarz)
        //        lower bound = d_sq − ‖q‖·rho      (d = −⟨q, x⟩)
        //
        // Cosine over SQ measures distance to the *reconstruction* with no
        // usable margin relation, and v1 payloads carry no rho — both fall
        // back to the plain search.
        let sq_margin = match &self.store {
            Store::Raw { .. } => None,
            Store::Sq { rho: Some(rho), .. } if self.metric != Metric::Cosine => Some(*rho),
            Store::Sq { .. } => {
                return self.search_with_filter(query, k, params, filter);
            }
        };
        self.check_query(query)?;
        if self.n() == 0 || k == 0 {
            return Ok(Vec::new());
        }
        let exact = matches!(self.store, Store::Raw { .. });
        let q_norm = match (sq_margin, self.metric) {
            (Some(_), Metric::InnerProduct) => crate::distance::dot(query, query).sqrt(),
            _ => 0.0,
        };
        // The graph traversal itself is untouched — pruning mid-walk would
        // change which neighborhoods get explored. Only the final candidate
        // list participates in the shared bound, so swapping the candidate
        // source for the Plan D traversal preserves the prune/publish rules.
        let ef = params.ef_search.max(k);
        let entry = self.greedy_to_level(query, self.entry, self.max_level, 0);
        let cands = self.filtered_candidates(query, entry, ef, params, filter);
        let mut tk = TopK::new(k);
        let mut skipped = 0u64;
        for c in cands {
            let id = self.ids[c.node as usize];
            if let Some(f) = filter {
                if !f.contains(id as usize) {
                    continue;
                }
            }
            let lower = match (sq_margin, self.metric) {
                (Some(rho), Metric::L2) => {
                    let base = (c.dist.max(0.0).sqrt() - rho).max(0.0);
                    base * base
                }
                (Some(rho), _) => c.dist - q_norm * rho,
                (None, _) => c.dist,
            };
            if lower > b.get() {
                skipped += 1;
                continue;
            }
            // Only exact distances may tighten the shared bound; approximate
            // SQ distances could over-prune sibling segments.
            if tk.push(c.dist, id) && tk.is_full() && exact {
                b.update(tk.threshold());
            }
        }
        b.record_skips(skipped);
        Ok(tk.into_sorted().into_iter().map(|s| Neighbor::new(s.item, s.distance)).collect())
    }

    fn search_with_range(
        &self,
        query: &[f32],
        radius: f32,
        params: &SearchParams,
        filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>> {
        self.check_query(query)?;
        if self.n() == 0 {
            return Ok(Vec::new());
        }
        // Stream the native iterator until distances exceed the radius with
        // a slack window (the traversal order is only approximately sorted).
        let mut it = self.search_iterator(query, params)?;
        let slack = params.ef_search.max(16);
        let mut out = Vec::new();
        let mut beyond = 0usize;
        loop {
            let batch = it.next_batch(slack)?;
            if batch.is_empty() {
                break;
            }
            for nb in batch {
                if nb.distance <= radius {
                    beyond = 0;
                    if filter.map(|f| f.contains(nb.id as usize)).unwrap_or(true) {
                        out.push(nb);
                    }
                } else {
                    beyond += 1;
                }
            }
            if beyond >= slack {
                break;
            }
        }
        out.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        Ok(out)
    }

    fn search_iterator<'a>(
        &'a self,
        query: &[f32],
        _params: &SearchParams,
    ) -> Result<Box<dyn SearchIterator + 'a>> {
        self.check_query(query)?;
        let mut heap = BinaryHeap::new();
        let mut visited = vec![false; self.n()];
        if self.n() > 0 {
            let entry = self.greedy_to_level(query, self.entry, self.max_level, 0);
            visited[entry as usize] = true;
            heap.push(Reverse(DistNode { dist: self.dist_q(query, entry), node: entry }));
        }
        Ok(Box::new(HnswIterator { index: self, query: query.to_vec(), heap, visited, n_visited: if self.n() > 0 { 1 } else { 0 } }))
    }

    fn has_native_iterator(&self) -> bool {
        true
    }

    fn needs_refine(&self) -> bool {
        matches!(self.kind, IndexKind::HnswSq)
    }

    fn memory_usage(&self) -> usize {
        let link_bytes: usize = self
            .links
            .iter()
            .map(|per| per.iter().map(|l| l.len() * 4 + 24).sum::<usize>() + 24)
            .sum();
        self.store.memory_usage() + link_bytes + self.ids.len() * 8 + std::mem::size_of::<Self>()
    }

    fn save_bytes(&self) -> Result<Bytes> {
        let mut w = Writer::with_header(MAGIC, VERSION);
        w.put_u8(match self.kind {
            IndexKind::Hnsw => 0,
            IndexKind::HnswSq => 1,
            _ => return Err(BhError::Internal("hnsw: impossible kind".into())),
        });
        w.put_u64(self.dim as u64);
        w.put_u8(metric_to_u8(self.metric));
        w.put_u64(self.m as u64);
        w.put_u32(self.entry);
        w.put_u64(self.max_level as u64);
        w.put_u64_slice(&self.ids);
        for per in &self.links {
            w.put_u64(per.len() as u64);
            for l in per {
                w.put_u32_slice(l);
            }
        }
        match &self.store {
            Store::Raw { data } => {
                w.put_u8(0);
                w.put_f32_slice(data);
            }
            Store::Sq { sq, codes, rho } => {
                w.put_u8(1);
                sq.save(&mut w);
                w.put_bytes(codes);
                // v2 margin section.
                match rho {
                    Some(r) => {
                        w.put_u8(1);
                        w.put_f32(*r);
                    }
                    None => w.put_u8(0),
                }
            }
        }
        Ok(w.finish())
    }

    fn save_bytes_tiered(&self) -> Result<Option<(Bytes, Bytes)>> {
        Ok(Some(self.save_tiered_parts()?))
    }
}

/// Resumable best-first traversal of layer 0 (the paper's hnswlib extension).
struct HnswIterator<'a> {
    index: &'a HnswIndex,
    query: Vec<f32>,
    heap: BinaryHeap<Reverse<DistNode>>,
    visited: Vec<bool>,
    n_visited: usize,
}

impl SearchIterator for HnswIterator<'_> {
    fn next_batch(&mut self, n: usize) -> Result<Vec<Neighbor>> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let Some(Reverse(c)) = self.heap.pop() else { break };
            // Expand neighbors before emitting so the frontier stays ahead.
            if !self.index.links[c.node as usize].is_empty() {
                for &nb in &self.index.links[c.node as usize][0] {
                    if !self.visited[nb as usize] {
                        self.visited[nb as usize] = true;
                        self.n_visited += 1;
                        let d = self.index.dist_q(&self.query, nb);
                        self.heap.push(Reverse(DistNode { dist: d, node: nb }));
                    }
                }
            }
            out.push(Neighbor::new(self.index.ids[c.node as usize], c.dist));
        }
        Ok(out)
    }

    fn visited(&self) -> usize {
        self.n_visited
    }

    fn exhausted(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Builder for `HNSW` / `HNSWSQ`.
pub struct HnswBuilder {
    spec: IndexSpec,
    kind: IndexKind,
    m: usize,
    ef_construction: usize,
    ml: f64,
    rng: DetRng,
    ids: Vec<u64>,
    raw: Vec<f32>,
    sq: Option<Sq8>,
    trained: bool,
    // Graph state grown incrementally as vectors are added.
    links: Vec<Vec<Vec<u32>>>,
    levels: Vec<usize>,
    entry: u32,
    max_level: usize,
}

impl HnswBuilder {
    /// A builder for `HNSW` or `HNSWSQ` validated against `spec`.
    pub fn new(spec: &IndexSpec, kind: IndexKind) -> Result<HnswBuilder> {
        spec.validate()?;
        if !matches!(kind, IndexKind::Hnsw | IndexKind::HnswSq) {
            return Err(BhError::InvalidArgument(format!(
                "HnswBuilder cannot build {}",
                kind.name()
            )));
        }
        let m = spec.param_usize("m", 16)?;
        if m < 2 {
            return Err(BhError::InvalidArgument("hnsw: M must be >= 2".into()));
        }
        let ef_construction = spec.param_usize("ef_construction", 128)?.max(m);
        let seed = spec.param_usize("seed", 0)? as u64;
        Ok(HnswBuilder {
            spec: spec.clone(),
            kind,
            m,
            ef_construction,
            ml: 1.0 / (m as f64).ln(),
            rng: derived_rng(seed, 0x686e_7377),
            ids: Vec::new(),
            raw: Vec::new(),
            sq: None,
            trained: false,
            links: Vec::new(),
            levels: Vec::new(),
            entry: 0,
            max_level: 0,
        })
    }

    fn dim(&self) -> usize {
        self.spec.dim
    }

    /// Distance between the pending raw vectors of two inserted nodes.
    #[inline]
    fn dist(&self, a: usize, b: usize) -> f32 {
        let dim = self.dim();
        self.spec
            .metric
            .distance(&self.raw[a * dim..(a + 1) * dim], &self.raw[b * dim..(b + 1) * dim])
    }

    #[inline]
    fn dist_vec(&self, v: &[f32], node: usize) -> f32 {
        let dim = self.dim();
        self.spec.metric.distance(v, &self.raw[node * dim..(node + 1) * dim])
    }

    fn max_links(&self, level: usize) -> usize {
        if level == 0 {
            self.m * 2
        } else {
            self.m
        }
    }

    /// Heuristic neighbor selection (Malkov's Algorithm 4): prefer candidates
    /// closer to the query than to any already-selected neighbor, keeping the
    /// graph navigable rather than clustered.
    fn select_neighbors(&self, candidates: &[DistNode], m: usize) -> Vec<u32> {
        let mut selected: Vec<DistNode> = Vec::with_capacity(m);
        for &c in candidates {
            if selected.len() >= m {
                break;
            }
            let dominated = selected
                .iter()
                .any(|s| self.dist(s.node as usize, c.node as usize) < c.dist);
            if !dominated {
                selected.push(c);
            }
        }
        // Backfill with nearest remaining if the heuristic was too strict.
        if selected.len() < m {
            for &c in candidates {
                if selected.len() >= m {
                    break;
                }
                if !selected.iter().any(|s| s.node == c.node) {
                    selected.push(c);
                }
            }
        }
        selected.into_iter().map(|s| s.node).collect()
    }

    /// Beam search over the partially built graph.
    fn search_layer_build(&self, query: &[f32], entry: u32, ef: usize, level: usize) -> Vec<DistNode> {
        let mut visited = vec![false; self.links.len()];
        visited[entry as usize] = true;
        let d0 = self.dist_vec(query, entry as usize);
        let mut candidates = BinaryHeap::new();
        candidates.push(Reverse(DistNode { dist: d0, node: entry }));
        let mut results: BinaryHeap<DistNode> = BinaryHeap::new();
        results.push(DistNode { dist: d0, node: entry });
        while let Some(Reverse(c)) = candidates.pop() {
            let worst = results.peek().map(|r| r.dist).unwrap_or(f32::INFINITY);
            if results.len() >= ef && c.dist > worst {
                break;
            }
            if level < self.links[c.node as usize].len() {
                for &nb in &self.links[c.node as usize][level] {
                    if visited[nb as usize] {
                        continue;
                    }
                    visited[nb as usize] = true;
                    let d = self.dist_vec(query, nb as usize);
                    let worst = results.peek().map(|r| r.dist).unwrap_or(f32::INFINITY);
                    if results.len() < ef || d < worst {
                        candidates.push(Reverse(DistNode { dist: d, node: nb }));
                        results.push(DistNode { dist: d, node: nb });
                        if results.len() > ef {
                            results.pop();
                        }
                    }
                }
            }
        }
        let mut out: Vec<DistNode> = results.into_vec();
        out.sort();
        out
    }

    fn insert(&mut self, node: usize) {
        let level = (-self.rng.gen::<f64>().ln() * self.ml).floor() as usize;
        self.levels.push(level);
        self.links.push(vec![Vec::new(); level + 1]);

        if node == 0 {
            self.entry = 0;
            self.max_level = level;
            return;
        }

        let dim = self.dim();
        let query: Vec<f32> = self.raw[node * dim..(node + 1) * dim].to_vec();
        let mut cur = self.entry;

        // Greedy descent through levels above the new node's level.
        if self.max_level > level {
            let mut cur_d = self.dist_vec(&query, cur as usize);
            for l in (level + 1..=self.max_level).rev() {
                let mut improved = true;
                while improved {
                    improved = false;
                    if l < self.links[cur as usize].len() {
                        let neigh = self.links[cur as usize][l].clone();
                        for nb in neigh {
                            let d = self.dist_vec(&query, nb as usize);
                            if d < cur_d {
                                cur_d = d;
                                cur = nb;
                                improved = true;
                            }
                        }
                    }
                }
            }
        }

        // Connect at each level from min(level, max_level) down to 0.
        for l in (0..=level.min(self.max_level)).rev() {
            let cands = self.search_layer_build(&query, cur, self.ef_construction, l);
            let m = self.max_links(l).min(self.m);
            let neighbors = self.select_neighbors(&cands, m);
            for &nb in &neighbors {
                self.links[node][l].push(nb);
                self.links[nb as usize][l].push(node as u32);
                // Prune over-full neighbor lists with the same heuristic.
                let cap = self.max_links(l);
                if self.links[nb as usize][l].len() > cap {
                    let mut cand: Vec<DistNode> = self.links[nb as usize][l]
                        .iter()
                        .map(|&x| DistNode { dist: self.dist(nb as usize, x as usize), node: x })
                        .collect();
                    cand.sort();
                    self.links[nb as usize][l] = self.select_neighbors(&cand, cap);
                }
            }
            if let Some(best) = cands.first() {
                cur = best.node;
            }
        }

        if level > self.max_level {
            self.max_level = level;
            self.entry = node as u32;
        }
    }
}

impl IndexBuilder for HnswBuilder {
    fn train(&mut self, sample: &[f32]) -> Result<()> {
        if self.kind == IndexKind::HnswSq {
            self.sq = Some(Sq8::train(sample, self.dim())?);
        }
        self.trained = true;
        Ok(())
    }

    fn add_with_ids(&mut self, vectors: &[f32], ids: &[u64]) -> Result<()> {
        if self.kind == IndexKind::HnswSq && self.sq.is_none() {
            // Auto-train on the first batch, matching faiss' convenience path.
            self.sq = Some(Sq8::train(vectors, self.dim())?);
        }
        let n = check_batch(self.dim(), vectors, ids)?;
        let start = self.ids.len();
        self.raw.extend_from_slice(vectors);
        self.ids.extend_from_slice(ids);
        for i in 0..n {
            self.insert(start + i);
        }
        Ok(())
    }

    fn finish(self: Box<Self>) -> Result<Arc<dyn VectorIndex>> {
        let dim = self.spec.dim;
        let store = match self.kind {
            IndexKind::Hnsw => Store::Raw { data: self.raw },
            IndexKind::HnswSq => {
                let sq = self
                    .sq
                    .ok_or_else(|| BhError::Index("hnswsq: finish before train/add".into()))?;
                let n = self.ids.len();
                let mut codes = Vec::with_capacity(n * dim);
                // Measure the actual reconstruction radius over the build
                // rows rather than trusting the per-dimension step bound:
                // `encode` clamps out-of-range values, so drifted rows can
                // exceed step/2 per dimension — the measured max is the
                // sound margin for exactly this data.
                let mut rho_sq = 0.0f32;
                for i in 0..n {
                    let row = &self.raw[i * dim..(i + 1) * dim];
                    let code = sq.encode(row)?;
                    let recon = sq.decode(&code);
                    let err: f32 =
                        row.iter().zip(&recon).map(|(a, b)| (a - b) * (a - b)).sum();
                    rho_sq = rho_sq.max(err);
                    codes.extend(code);
                }
                Store::Sq { sq, codes, rho: Some(rho_sq.max(0.0).sqrt()) }
            }
            // lint: allow(panic) - the builder constructor rejects every
            // kind except Hnsw and HnswSq before this point
            _ => unreachable!("constructor validated kind"),
        };
        Ok(Arc::new(HnswIndex {
            dim,
            metric: self.spec.metric,
            kind: self.kind,
            m: self.m,
            ids: self.ids,
            links: self.links,
            entry: self.entry,
            max_level: self.max_level,
            store,
        }))
    }

    fn requires_training(&self) -> bool {
        self.kind == IndexKind::HnswSq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatBuilder;
    use crate::recall::recall_at_k;
    use bh_common::rng::rng;
    use rand::Rng;

    fn clustered(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut r = rng(seed);
        let mut data = Vec::with_capacity(n * dim);
        for i in 0..n {
            let center = (i % 8) as f32 * 4.0;
            for _ in 0..dim {
                data.push(center + r.gen_range(-1.0f32..1.0));
            }
        }
        data
    }

    fn build_pair(
        n: usize,
        dim: usize,
        kind: IndexKind,
        seed: u64,
    ) -> (Arc<dyn VectorIndex>, Arc<dyn VectorIndex>, Vec<f32>) {
        let data = clustered(n, dim, seed);
        let ids: Vec<u64> = (0..n as u64).collect();
        let spec = IndexSpec::new(kind, dim, Metric::L2)
            .with_param("m", 16)
            .with_param("ef_construction", 120);
        let mut hb = Box::new(HnswBuilder::new(&spec, kind).unwrap());
        hb.train(&data).unwrap();
        hb.add_with_ids(&data, &ids).unwrap();
        let hnsw = (hb as Box<dyn IndexBuilder>).finish().unwrap();

        let fspec = IndexSpec::new(IndexKind::Flat, dim, Metric::L2);
        let mut fb = Box::new(FlatBuilder::new(&fspec).unwrap());
        fb.add_with_ids(&data, &ids).unwrap();
        let flat = (fb as Box<dyn IndexBuilder>).finish().unwrap();
        (hnsw, flat, data)
    }

    #[test]
    fn tiered_roundtrip_is_bit_identical() {
        for kind in [IndexKind::Hnsw, IndexKind::HnswSq] {
            let (hnsw, _, data) = build_pair(600, 12, kind, 7);
            let whole = hnsw.save_bytes().unwrap();
            let (head, body) = hnsw.save_bytes_tiered().unwrap().unwrap();
            let rebuilt = HnswIndex::load_tiered_parts(&head, &body).unwrap();
            // The reconstructed index must serialize to the exact v2 blob.
            assert_eq!(rebuilt.save_bytes().unwrap(), whole, "{kind:?}");
            // And search identically.
            let params = SearchParams::default().with_ef(64);
            let a = hnsw.search_with_filter(&data[..12], 10, &params, None).unwrap();
            let b = rebuilt.search_with_filter(&data[..12], 10, &params, None).unwrap();
            assert_eq!(a, b, "{kind:?}");
        }
    }

    #[test]
    fn tiered_head_is_small_and_serves() {
        let dim = 32;
        let n = 2000;
        let (hnsw, flat, data) = build_pair(n, dim, IndexKind::Hnsw, 3);
        let (head, body) = hnsw.save_bytes_tiered().unwrap().unwrap();
        let total = head.len() + body.len();
        assert!(
            head.len() * 10 <= total,
            "head {} of {} bytes exceeds 10%",
            head.len(),
            total
        );
        let partial = HnswHeadIndex::load_bytes(&head).unwrap();
        assert!(partial.is_partial());
        assert!(partial.head_servable());
        assert_eq!(partial.meta().len, n);
        assert!(partial.head_len() < n / 8, "upper layer unexpectedly large");
        // Head-only search returns genuine rows with exact distances, drawn
        // from the upper sample: every hit must match the flat oracle's
        // distance for that id.
        let params = SearchParams::default().with_ef(64);
        let q = &data[..dim];
        let got = partial.search_with_filter(q, 5, &params, None).unwrap();
        assert!(!got.is_empty(), "head-only search returned nothing");
        let truth = flat.search_with_filter(q, n, &params, None).unwrap();
        for nb in &got {
            let t = truth.iter().find(|t| t.id == nb.id).unwrap();
            assert!(
                (t.distance - nb.distance).abs() <= 1e-4 * (1.0 + t.distance.abs()),
                "id {} head distance {} vs exact {}",
                nb.id,
                nb.distance,
                t.distance
            );
        }
    }

    #[test]
    fn tiered_head_respects_filter() {
        let (hnsw, _, data) = build_pair(800, 8, IndexKind::Hnsw, 11);
        let (head, _) = hnsw.save_bytes_tiered().unwrap().unwrap();
        let partial = HnswHeadIndex::load_bytes(&head).unwrap();
        let allow = Bitset::from_positions(800, (0..800).step_by(2));
        let got = partial
            .search_with_filter(&data[..8], 10, &SearchParams::default(), Some(&allow))
            .unwrap();
        for nb in got {
            assert_eq!(nb.id % 2, 0);
        }
    }

    #[test]
    fn tiered_truncated_sections_error() {
        let (hnsw, _, _) = build_pair(300, 8, IndexKind::Hnsw, 5);
        let (head, body) = hnsw.save_bytes_tiered().unwrap().unwrap();
        assert!(HnswHeadIndex::load_bytes(&head[..head.len() - 4]).is_err());
        assert!(HnswIndex::load_tiered_parts(&head, &body[..body.len() - 4]).is_err());
        // Mismatched sections (head from a different build) must not load.
        let (other, _, _) = build_pair(301, 8, IndexKind::Hnsw, 6);
        let (head2, _) = other.save_bytes_tiered().unwrap().unwrap();
        assert!(HnswIndex::load_tiered_parts(&head2, &body).is_err());
    }

    #[test]
    fn recall_floor_vs_flat_oracle() {
        let dim = 16;
        let n = 1500;
        let (hnsw, flat, data) = build_pair(n, dim, IndexKind::Hnsw, 1);
        let params = SearchParams::default().with_ef(96);
        let mut total = 0.0;
        let queries = 20;
        for q in 0..queries {
            let qv = &data[q * 37 * dim % (n * dim - dim)..][..dim];
            let truth = flat.search_with_filter(qv, 10, &params, None).unwrap();
            let got = hnsw.search_with_filter(qv, 10, &params, None).unwrap();
            total += recall_at_k(&truth, &got, 10);
        }
        let recall = total / queries as f64;
        assert!(recall >= 0.9, "hnsw recall {recall} below floor");
    }

    #[test]
    fn sq_variant_recall_and_memory() {
        let dim = 16;
        let n = 1200;
        let (hnswsq, flat, data) = build_pair(n, dim, IndexKind::HnswSq, 2);
        let (hnsw, _, _) = build_pair(n, dim, IndexKind::Hnsw, 2);
        assert!(
            hnswsq.memory_usage() < hnsw.memory_usage(),
            "SQ must shrink memory: {} vs {}",
            hnswsq.memory_usage(),
            hnsw.memory_usage()
        );
        assert!(hnswsq.needs_refine());
        let params = SearchParams::default().with_ef(96);
        let mut total = 0.0;
        for q in 0..15 {
            let qv = &data[q * 53 * dim % (n * dim - dim)..][..dim];
            let truth = flat.search_with_filter(qv, 10, &params, None).unwrap();
            let got = hnswsq.search_with_filter(qv, 10, &params, None).unwrap();
            total += recall_at_k(&truth, &got, 10);
        }
        assert!(total / 15.0 >= 0.8, "hnswsq recall {} below floor", total / 15.0);
    }

    #[test]
    fn filtered_search_respects_bitset() {
        let dim = 8;
        let (hnsw, _, data) = build_pair(600, dim, IndexKind::Hnsw, 3);
        let allowed = Bitset::from_positions(600, (0..600).filter(|i| i % 7 == 0));
        let got = hnsw
            .search_with_filter(&data[0..dim], 10, &SearchParams::default(), Some(&allowed))
            .unwrap();
        assert!(!got.is_empty());
        for nb in &got {
            assert_eq!(nb.id % 7, 0, "row {} not allowed by filter", nb.id);
        }
    }

    #[test]
    fn empty_index_and_k_zero() {
        let spec = IndexSpec::new(IndexKind::Hnsw, 4, Metric::L2);
        let b = Box::new(HnswBuilder::new(&spec, IndexKind::Hnsw).unwrap());
        let idx = (b as Box<dyn IndexBuilder>).finish().unwrap();
        assert!(idx
            .search_with_filter(&[0.0; 4], 5, &SearchParams::default(), None)
            .unwrap()
            .is_empty());
        let (hnsw, _, data) = build_pair(50, 4, IndexKind::Hnsw, 4);
        assert!(hnsw
            .search_with_filter(&data[0..4], 0, &SearchParams::default(), None)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn native_iterator_is_incremental_and_complete() {
        let dim = 8;
        let n = 300;
        let (hnsw, _, data) = build_pair(n, dim, IndexKind::Hnsw, 5);
        let q = data[0..dim].to_vec();
        let params = SearchParams::default();
        let mut it = hnsw.search_iterator(&q, &params).unwrap();
        assert!(hnsw.has_native_iterator());
        let mut seen = std::collections::HashSet::new();
        loop {
            let b = it.next_batch(16).unwrap();
            if b.is_empty() {
                break;
            }
            for nb in b {
                assert!(seen.insert(nb.id), "duplicate id {}", nb.id);
            }
        }
        // Layer 0 of HNSW is connected for this data size, so the iterator
        // reaches every node.
        assert_eq!(seen.len(), n);
        // Native: visited equals nodes touched once, not doubled restarts.
        assert_eq!(it.visited(), n);
    }

    #[test]
    fn iterator_first_batch_contains_true_nearest() {
        let dim = 8;
        let (hnsw, flat, data) = build_pair(500, dim, IndexKind::Hnsw, 6);
        let q = data[40 * dim..41 * dim].to_vec();
        let params = SearchParams::default().with_ef(64);
        let truth = flat.search_with_filter(&q, 1, &params, None).unwrap();
        let mut it = hnsw.search_iterator(&q, &params).unwrap();
        let first = it.next_batch(10).unwrap();
        assert!(
            first.iter().any(|nb| nb.id == truth[0].id),
            "true nearest {} missing from first batch {:?}",
            truth[0].id,
            first
        );
    }

    #[test]
    fn range_search_finds_close_cluster() {
        let dim = 4;
        let (hnsw, flat, data) = build_pair(800, dim, IndexKind::Hnsw, 7);
        let q = data[0..dim].to_vec();
        let radius = 2.0;
        let params = SearchParams::default().with_ef(64);
        let truth = flat.search_with_range(&q, radius, &params, None).unwrap();
        let got = hnsw.search_with_range(&q, radius, &params, None).unwrap();
        assert!(!truth.is_empty());
        // ANN range search may miss a few fringe rows but must find most.
        assert!(
            got.len() as f64 >= truth.len() as f64 * 0.9,
            "range recall too low: {} of {}",
            got.len(),
            truth.len()
        );
        for nb in &got {
            assert!(nb.distance <= radius);
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_search() {
        let dim = 8;
        let (hnsw, _, data) = build_pair(400, dim, IndexKind::Hnsw, 8);
        let blob = hnsw.save_bytes().unwrap();
        let loaded = HnswIndex::load_bytes(&blob).unwrap();
        let q = &data[0..dim];
        let params = SearchParams::default();
        assert_eq!(
            hnsw.search_with_filter(q, 10, &params, None).unwrap(),
            loaded.search_with_filter(q, 10, &params, None).unwrap()
        );
    }

    #[test]
    fn sq_save_load_roundtrip() {
        let dim = 8;
        let (hnswsq, _, data) = build_pair(300, dim, IndexKind::HnswSq, 9);
        let blob = hnswsq.save_bytes().unwrap();
        let loaded = HnswIndex::load_bytes(&blob).unwrap();
        assert_eq!(loaded.meta().kind, IndexKind::HnswSq);
        let q = &data[0..dim];
        let params = SearchParams::default();
        assert_eq!(
            hnswsq.search_with_filter(q, 5, &params, None).unwrap(),
            loaded.search_with_filter(q, 5, &params, None).unwrap()
        );
    }

    #[test]
    fn sq_bound_prunes_far_candidates_without_dropping_true_ones() {
        let dim = 8;
        let n = 300;
        let (hnswsq, flat, data) = build_pair(n, dim, IndexKind::HnswSq, 12);
        // Wide beam on small clusters so the candidate list spans clusters:
        // far-cluster candidates sit ~4 per dim away, far outside the
        // rho-adjusted lower bound.
        let params = SearchParams::default().with_ef(160);
        let q = &data[0..dim];
        let k = 40;
        let truth = flat.search_with_filter(q, 10, &params, None).unwrap();
        let bound_val = truth[9].distance;
        let b = SharedBound::new();
        b.update(bound_val);
        let plain = hnswsq.search_with_filter(q, k, &params, None).unwrap();
        let got = hnswsq.search_with_bound(q, k, &params, None, Some(&b)).unwrap();
        assert!(b.skips() > 0, "tight bound produced no skips");
        let got_ids: Vec<u64> = got.iter().map(|nb| nb.id).collect();
        for cand in &plain {
            let row = &data[cand.id as usize * dim..(cand.id as usize + 1) * dim];
            let exact = Metric::L2.distance(q, row);
            assert!(
                exact > bound_val || got_ids.contains(&cand.id),
                "candidate {} (exact {exact} <= bound {bound_val}) was pruned",
                cand.id
            );
        }
        // Roundtrip keeps rho, so the loaded index prunes too.
        let loaded = HnswIndex::load_bytes(&hnswsq.save_bytes().unwrap()).unwrap();
        let b2 = SharedBound::new();
        b2.update(bound_val);
        let got2 = loaded.search_with_bound(q, k, &params, None, Some(&b2)).unwrap();
        assert_eq!(got, got2);
        assert_eq!(b.skips(), b2.skips());
    }

    #[test]
    fn sq_v1_blob_without_rho_loads_and_falls_back() {
        let dim = 8;
        let (hnswsq, _, data) = build_pair(200, dim, IndexKind::HnswSq, 13);
        let mut v1 = hnswsq.save_bytes().unwrap().to_vec();
        // Rewrite the header version (bytes [4,6) little-endian) to 1 and
        // strip the v2 rho section (flag byte + f32).
        v1[4] = 1;
        v1[5] = 0;
        v1.truncate(v1.len() - 5);
        let loaded = HnswIndex::load_bytes(&v1).unwrap();
        let params = SearchParams::default().with_ef(96);
        let q = &data[0..dim];
        assert_eq!(
            hnswsq.search_with_filter(q, 5, &params, None).unwrap(),
            loaded.search_with_filter(q, 5, &params, None).unwrap(),
            "v1 payload must search identically"
        );
        // No rho → the bound path must fall back: nothing skipped even
        // under an impossibly tight bound.
        let b = SharedBound::new();
        b.update(0.0);
        let got = loaded.search_with_bound(q, 5, &params, None, Some(&b)).unwrap();
        assert_eq!(got, loaded.search_with_filter(q, 5, &params, None).unwrap());
        assert_eq!(b.skips(), 0);
    }

    #[test]
    fn filtered_traversal_passes_filter_and_meets_recall_floor() {
        let dim = 8;
        let n = 1000;
        let (hnsw, flat, data) = build_pair(n, dim, IndexKind::Hnsw, 21);
        let k = 10;
        // From permissive to selective: every 2nd, 10th, 50th row passes.
        for (s, step) in [(0.5f32, 2usize), (0.1, 10), (0.02, 50)] {
            let allow = Bitset::from_positions(n, (0..n).step_by(step));
            let params =
                SearchParams::default().with_ef(96).with_selectivity(s).with_filter_traversal(true);
            let mut total = 0.0;
            let queries = 12;
            for q in 0..queries {
                let qv = &data[q * 83 * dim % (n * dim - dim)..][..dim];
                let got = hnsw.search_with_filter(qv, k, &params, Some(&allow)).unwrap();
                for nb in &got {
                    assert_eq!(
                        nb.id as usize % step,
                        0,
                        "s={s}: row {} escaped the filter",
                        nb.id
                    );
                }
                let truth = flat.search_with_filter(qv, k, &params, Some(&allow)).unwrap();
                total += recall_at_k(&truth, &got, k);
            }
            let recall = total / queries as f64;
            assert!(recall >= 0.85, "s={s}: traversal recall {recall} below floor");
        }
    }

    #[test]
    fn filtered_traversal_respects_shared_bound_rules() {
        let dim = 8;
        let n = 800;
        let (hnsw, flat, data) = build_pair(n, dim, IndexKind::Hnsw, 22);
        let allow = Bitset::from_positions(n, (0..n).step_by(5));
        let params =
            SearchParams::default().with_ef(96).with_selectivity(0.2).with_filter_traversal(true);
        let q = &data[0..dim];
        let k = 15;
        let plain = hnsw.search_with_filter(q, k, &params, Some(&allow)).unwrap();
        // A vacuous bound changes nothing and gets tightened by the exact
        // k-th distance once the local top-k fills.
        let b = SharedBound::new();
        let got = hnsw.search_with_bound(q, k, &params, Some(&allow), Some(&b)).unwrap();
        assert_eq!(got, plain);
        assert!(b.get() < f32::INFINITY, "exact store must publish its k-th");
        // A tight bound (true filtered 5th distance) prunes exactly the
        // candidates whose exact distance exceeds it — never a survivor.
        let truth = flat.search_with_filter(q, k, &params, Some(&allow)).unwrap();
        let tight = truth[4].distance;
        let b2 = SharedBound::new();
        b2.update(tight);
        let pruned = hnsw.search_with_bound(q, k, &params, Some(&allow), Some(&b2)).unwrap();
        assert!(b2.skips() > 0, "tight bound produced no skips");
        let expect: Vec<Neighbor> =
            plain.iter().copied().filter(|nb| nb.distance <= tight).collect();
        assert_eq!(pruned, expect);
    }

    #[test]
    fn filtered_traversal_sq_respects_filter() {
        let dim = 8;
        let n = 600;
        let (hnswsq, _, data) = build_pair(n, dim, IndexKind::HnswSq, 23);
        let allow = Bitset::from_positions(n, (0..n).step_by(7));
        let params =
            SearchParams::default().with_ef(96).with_selectivity(0.15).with_filter_traversal(true);
        let got = hnswsq.search_with_filter(&data[0..dim], 8, &params, Some(&allow)).unwrap();
        assert!(!got.is_empty());
        for nb in got {
            assert_eq!(nb.id % 7, 0);
        }
    }

    #[test]
    fn corrupt_blob_rejected() {
        let (hnsw, _, _) = build_pair(50, 4, IndexKind::Hnsw, 10);
        let blob = hnsw.save_bytes().unwrap();
        assert!(HnswIndex::load_bytes(&blob[..20]).is_err());
    }

    #[test]
    fn builder_rejects_bad_params() {
        let spec = IndexSpec::new(IndexKind::Hnsw, 4, Metric::L2).with_param("m", 1);
        assert!(HnswBuilder::new(&spec, IndexKind::Hnsw).is_err());
        let spec0 = IndexSpec::new(IndexKind::Hnsw, 0, Metric::L2);
        assert!(HnswBuilder::new(&spec0, IndexKind::Hnsw).is_err());
        let ok = IndexSpec::new(IndexKind::Hnsw, 4, Metric::L2);
        assert!(HnswBuilder::new(&ok, IndexKind::IvfFlat).is_err());
    }

    #[test]
    fn deterministic_build_given_seed() {
        let dim = 8;
        let data = clustered(200, dim, 11);
        let ids: Vec<u64> = (0..200).collect();
        let mk = || {
            let spec =
                IndexSpec::new(IndexKind::Hnsw, dim, Metric::L2).with_param("seed", 42);
            let mut b = Box::new(HnswBuilder::new(&spec, IndexKind::Hnsw).unwrap());
            b.add_with_ids(&data, &ids).unwrap();
            (b as Box<dyn IndexBuilder>).finish().unwrap().save_bytes().unwrap()
        };
        assert_eq!(mk(), mk());
    }
}
