//! Minimal binary codec for index and segment persistence.
//!
//! Index blobs are written to the (simulated) remote object store and their
//! byte size drives both cache accounting and transfer-latency charges, so a
//! compact binary layout matters — JSON would inflate float payloads ~4x and
//! distort every I/O-sensitive experiment. The format is little-endian,
//! length-prefixed, with a magic+version header per blob.

use bh_common::{BhError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Writer over a growable buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a blob with a 4-byte magic and a u16 version.
    pub fn with_header(magic: &[u8; 4], version: u16) -> Self {
        let mut w = Self::new();
        w.buf.put_slice(magic);
        w.buf.put_u16_le(version);
        w
    }

    /// Append one little-endian `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append one little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Append one little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Append one little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Append one little-endian `f32`.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.put_f32_le(v);
    }

    /// Append one little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.put_u64_le(v.len() as u64);
        self.buf.put_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Length-prefixed `f32` slice (raw little-endian).
    pub fn put_f32_slice(&mut self, v: &[f32]) {
        self.buf.put_u64_le(v.len() as u64);
        for &x in v {
            self.buf.put_f32_le(x);
        }
    }

    /// Length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.buf.put_u64_le(v.len() as u64);
        for &x in v {
            self.buf.put_u32_le(x);
        }
    }

    /// Length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.buf.put_u64_le(v.len() as u64);
        for &x in v {
            self.buf.put_u64_le(x);
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freeze the buffer into an immutable blob.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Reader over a byte slice with checked extraction.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// Validate and consume a magic+version header; returns the version.
    pub fn expect_header(&mut self, magic: &[u8; 4]) -> Result<u16> {
        if self.buf.len() < 6 {
            return Err(BhError::Serde("blob too short for header".into()));
        }
        if &self.buf[..4] != magic {
            return Err(BhError::Serde(format!(
                "bad magic: expected {:?}, got {:?}",
                magic,
                &self.buf[..4]
            )));
        }
        self.buf.advance(4);
        Ok(self.buf.get_u16_le())
    }

    fn need(&self, n: usize) -> Result<()> {
        if self.buf.remaining() < n {
            return Err(BhError::Serde(format!(
                "truncated blob: need {n} bytes, have {}",
                self.buf.remaining()
            )));
        }
        Ok(())
    }

    /// Read one little-endian `u8`.
    pub fn get_u8(&mut self) -> Result<u8> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Read one little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    /// Read one little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Read one little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Read one little-endian `f32`.
    pub fn get_f32(&mut self) -> Result<f32> {
        self.need(4)?;
        Ok(self.buf.get_f32_le())
    }

    /// Read one little-endian `f64`.
    pub fn get_f64(&mut self) -> Result<f64> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    fn get_len(&mut self, elem_size: usize) -> Result<usize> {
        let n = self.get_u64()? as usize;
        // Guard against corrupt lengths before allocating.
        if n.saturating_mul(elem_size) > self.buf.remaining() {
            return Err(BhError::Serde(format!(
                "corrupt length {n} (remaining {} bytes)",
                self.buf.remaining()
            )));
        }
        Ok(n)
    }

    /// Read a length-prefixed byte vector.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.get_len(1)?;
        let mut v = vec![0u8; n];
        self.buf.copy_to_slice(&mut v);
        Ok(v)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let b = self.get_bytes()?;
        String::from_utf8(b).map_err(|e| BhError::Serde(format!("invalid utf8: {e}")))
    }

    /// Read a length-prefixed `f32` vector.
    pub fn get_f32_vec(&mut self) -> Result<Vec<f32>> {
        let n = self.get_len(4)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.buf.get_f32_le());
        }
        Ok(v)
    }

    /// Read a length-prefixed `u32` vector.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>> {
        let n = self.get_len(4)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.buf.get_u32_le());
        }
        Ok(v)
    }

    /// Read a length-prefixed `u64` vector.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>> {
        let n = self.get_len(8)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.buf.get_u64_le());
        }
        Ok(v)
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn header_roundtrip() {
        let w = Writer::with_header(b"BHIX", 3);
        let b = w.finish();
        let mut r = Reader::new(&b);
        assert_eq!(r.expect_header(b"BHIX").unwrap(), 3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let w = Writer::with_header(b"AAAA", 1);
        let b = w.finish();
        let mut r = Reader::new(&b);
        assert!(r.expect_header(b"BBBB").is_err());
    }

    #[test]
    fn truncated_blob_rejected() {
        let mut w = Writer::new();
        w.put_u64(5); // claims 5 bytes follow but none do
        let b = w.finish();
        let mut r = Reader::new(&b);
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn short_header_rejected() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.expect_header(b"BHIX").is_err());
    }

    #[test]
    fn mixed_scalar_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_f32(1.5);
        w.put_f64(-2.25);
        w.put_str("héllo");
        let b = w.finish();
        let mut r = Reader::new(&b);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_f32().unwrap(), 1.5);
        assert_eq!(r.get_f64().unwrap(), -2.25);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.remaining(), 0);
    }

    proptest! {
        #[test]
        fn prop_slice_roundtrips(
            f in proptest::collection::vec(-1e6f32..1e6, 0..100),
            u in proptest::collection::vec(any::<u32>(), 0..100),
            l in proptest::collection::vec(any::<u64>(), 0..100),
            b in proptest::collection::vec(any::<u8>(), 0..100),
        ) {
            let mut w = Writer::new();
            w.put_f32_slice(&f);
            w.put_u32_slice(&u);
            w.put_u64_slice(&l);
            w.put_bytes(&b);
            let blob = w.finish();
            let mut r = Reader::new(&blob);
            prop_assert_eq!(r.get_f32_vec().unwrap(), f);
            prop_assert_eq!(r.get_u32_vec().unwrap(), u);
            prop_assert_eq!(r.get_u64_vec().unwrap(), l);
            prop_assert_eq!(r.get_bytes().unwrap(), b);
            prop_assert_eq!(r.remaining(), 0);
        }
    }
}
