//! # bh-vector — the pluggable vector index library
//!
//! A from-scratch Rust implementation of the index algorithms BlendHouse
//! consumes from hnswlib / faiss / diskann, exposed behind the paper's
//! "virtual vector index" abstraction (Fig. 5):
//!
//! * **Execution-layer interfaces**: [`VectorIndex::search_with_filter`],
//!   [`VectorIndex::search_with_range`], and [`VectorIndex::search_iterator`].
//! * **Storage-layer interfaces**: `CreateIndex` ([`registry::IndexRegistry::create_builder`]),
//!   `Train` / `AddWithIds` ([`IndexBuilder`]), and `SaveIndex` / `LoadIndex`
//!   ([`VectorIndex::save_bytes`] / [`registry::IndexRegistry::load`]).
//!
//! ## Index types
//!
//! | Kind | Group | Backing module |
//! |------|-------|----------------|
//! | `FLAT` | exact | [`flat`] |
//! | `HNSW` | graph | [`hnsw`] |
//! | `HNSWSQ` | graph + scalar quantization | [`hnsw`] over [`quant::sq`] |
//! | `IVFFLAT` | inverted file | [`ivf`] |
//! | `IVFPQ` | inverted file + product quantization | [`ivf`] over [`quant::pq`] |
//! | `IVFPQFS` | inverted file + 4-bit PQ (fast-scan layout) | [`ivf`] |
//! | `DISKANN` | disk-resident Vamana graph | [`vamana`] |
//!
//! Quantized indexes return *approximate* distances; the query executor
//! optionally refines the top `σ·k` candidates with exact distances fetched
//! from the vector column (the `σ × k × c_d` term of the paper's cost model).
//!
//! ## Pluggability
//!
//! Index implementations register [`IndexFactory`] objects in an
//! [`registry::IndexRegistry`]; BlendHouse instantiates indexes purely through
//! the registry, so a new library is integrated by registering one factory —
//! exactly the extensibility claim of §III-A.

pub mod autoindex;
pub mod codec;
pub mod distance;
pub mod flat;
pub mod hnsw;
pub mod iterator;
pub mod ivf;
pub mod kmeans;
pub mod quant;
pub mod recall;
pub mod registry;
pub mod tiered;
pub mod types;
pub mod vamana;

pub use distance::Metric;
pub use iterator::{GenericSearchIterator, SearchIterator};
pub use registry::{IndexFactory, IndexRegistry};
pub use types::{
    IndexBuilder, IndexKind, IndexMeta, IndexSpec, Neighbor, SearchParams, VectorIndex,
};
