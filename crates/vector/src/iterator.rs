//! Incremental search iterators (§III-B "Post-filter strategy").
//!
//! The post-filter execution strategy needs "give me the *next* nearest
//! neighbors" semantics: search a batch, filter on scalar predicates, and if
//! fewer than `k` rows survive, fetch more — without re-finding rows already
//! returned.
//!
//! Two implementations exist:
//!
//! * Indexes with **native** support (our extended HNSW, flat scan) resume
//!   their internal traversal state, so each additional row costs only the
//!   incremental graph expansion.
//! * Everything else uses [`GenericSearchIterator`], the SingleStore-V-style
//!   wrapper that restarts the top-k search with **doubled k** each round and
//!   returns only the suffix beyond what was already emitted. Correct, but
//!   each round redoes the earlier work — the redundancy the paper calls out
//!   and that our `fig13`-adjacent ablation bench quantifies.

use crate::types::{Neighbor, SearchParams, VectorIndex};
use bh_common::Result;

/// Incremental nearest-first traversal over one index.
pub trait SearchIterator {
    /// Return up to `n` further neighbors, nearest-first, never repeating a
    /// previously returned row. An empty result means the index is exhausted.
    fn next_batch(&mut self, n: usize) -> Result<Vec<Neighbor>>;

    /// Total number of candidate rows visited so far (distance computations),
    /// used for cost accounting and the iterator-redundancy ablation.
    fn visited(&self) -> usize;

    /// True once the iterator can produce no further results.
    fn exhausted(&self) -> bool;
}

/// Restart-based iterator for indexes without native incremental search.
///
/// Round `i` performs a fresh `search_with_filter(k = initial_k · 2^i)` and
/// emits only rows beyond the previously returned prefix. Relies on the
/// property (noted in the paper) that repeated runs with the same `k` return
/// identical results; our deterministic indexes satisfy it.
pub struct GenericSearchIterator<'a> {
    index: &'a dyn VectorIndex,
    query: Vec<f32>,
    params: SearchParams,
    /// Number of rows already emitted (= prefix length of the last search).
    emitted: usize,
    /// `k` to use for the next restart.
    next_k: usize,
    visited: usize,
    exhausted: bool,
    /// Buffered rows found but not yet handed out.
    pending: Vec<Neighbor>,
}

impl<'a> GenericSearchIterator<'a> {
    /// Wrap an index's top-k search as a restartable iterator.
    pub fn new(index: &'a dyn VectorIndex, query: &[f32], params: &SearchParams) -> Self {
        Self {
            index,
            query: query.to_vec(),
            params: *params,
            emitted: 0,
            next_k: 0,
            visited: 0,
            exhausted: false,
            pending: Vec::new(),
        }
    }
}

impl SearchIterator for GenericSearchIterator<'_> {
    fn next_batch(&mut self, n: usize) -> Result<Vec<Neighbor>> {
        if n == 0 {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(n);
        loop {
            // Drain buffered rows first.
            while out.len() < n {
                match self.pending.pop() {
                    Some(nb) => out.push(nb),
                    None => break,
                }
            }
            if out.len() == n || self.exhausted {
                return Ok(out);
            }

            // Restart with a larger k and keep only the new suffix.
            let want = self.emitted + (n - out.len());
            self.next_k = self.next_k.max(want).max(1).next_power_of_two();
            let results =
                self.index
                    .search_with_filter(&self.query, self.next_k, &self.params, None)?;
            // Full restart: every returned row was "visited" again.
            self.visited += results.len().max(self.next_k.min(self.index.meta().len));
            if results.len() <= self.emitted {
                // No new rows even with a larger k → the index is exhausted.
                self.exhausted = true;
                return Ok(out);
            }
            // Buffer the new suffix in reverse so pop() yields nearest-first.
            let fresh = &results[self.emitted..];
            self.emitted = results.len();
            self.pending.extend(fresh.iter().rev().copied());
            if results.len() < self.next_k {
                // The index returned fewer than asked: after draining pending
                // there is nothing more to find.
                self.exhausted = true;
            }
            self.next_k = self.next_k.saturating_mul(2);
        }
    }

    fn visited(&self) -> usize {
        self.visited
    }

    fn exhausted(&self) -> bool {
        self.exhausted && self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::IndexBuilder;
    use crate::{IndexKind, IndexSpec, Metric};

    fn sample_index(n: usize, dim: usize) -> std::sync::Arc<dyn VectorIndex> {
        let spec = IndexSpec::new(IndexKind::Flat, dim, Metric::L2);
        let mut b = Box::new(crate::flat::FlatBuilder::new(&spec).unwrap());
        let mut data = Vec::new();
        let mut ids = Vec::new();
        for i in 0..n {
            for d in 0..dim {
                data.push(i as f32 + d as f32 * 0.001);
            }
            ids.push(i as u64);
        }
        b.add_with_ids(&data, &ids).unwrap();
        (b as Box<dyn IndexBuilder>).finish().unwrap()
    }

    #[test]
    fn generic_iterator_streams_in_distance_order_without_repeats() {
        let idx = sample_index(20, 4);
        let q = vec![0.0; 4];
        let params = SearchParams::default();
        let mut it = GenericSearchIterator::new(idx.as_ref(), &q, &params);
        let mut seen = Vec::new();
        loop {
            let batch = it.next_batch(3).unwrap();
            if batch.is_empty() {
                break;
            }
            seen.extend(batch);
        }
        assert_eq!(seen.len(), 20, "must eventually return every row");
        let ids: Vec<u64> = seen.iter().map(|nb| nb.id).collect();
        let mut expected: Vec<u64> = (0..20).collect();
        assert_eq!(
            {
                let mut s = ids.clone();
                s.sort_unstable();
                s
            },
            expected.clone()
        );
        // Distances must be non-decreasing.
        for w in seen.windows(2) {
            assert!(w[0].distance <= w[1].distance + 1e-6);
        }
        expected.sort_unstable();
        assert!(it.exhausted());
        // Further calls stay empty.
        assert!(it.next_batch(5).unwrap().is_empty());
    }

    #[test]
    fn generic_iterator_counts_redundant_visits() {
        let idx = sample_index(64, 4);
        let q = vec![0.0; 4];
        let params = SearchParams::default();
        let mut it = GenericSearchIterator::new(idx.as_ref(), &q, &params);
        let mut total = 0;
        while !it.exhausted() {
            total += it.next_batch(4).unwrap().len();
        }
        assert_eq!(total, 64);
        // Restart redundancy: visited strictly exceeds rows returned.
        assert!(
            it.visited() > 64,
            "expected redundant visits, got {} for 64 rows",
            it.visited()
        );
    }

    #[test]
    fn zero_batch_is_noop() {
        let idx = sample_index(5, 2);
        let q = vec![0.0; 2];
        let params = SearchParams::default();
        let mut it = GenericSearchIterator::new(idx.as_ref(), &q, &params);
        assert!(it.next_batch(0).unwrap().is_empty());
        assert_eq!(it.visited(), 0);
    }

    #[test]
    fn empty_index_exhausts_immediately() {
        let spec = IndexSpec::new(IndexKind::Flat, 2, Metric::L2);
        let b = Box::new(crate::flat::FlatBuilder::new(&spec).unwrap());
        let idx = (b as Box<dyn IndexBuilder>).finish().unwrap();
        let q = vec![0.0; 2];
        let params = SearchParams::default();
        let mut it = GenericSearchIterator::new(idx.as_ref(), &q, &params);
        assert!(it.next_batch(3).unwrap().is_empty());
        assert!(it.exhausted());
    }

    #[test]
    fn flat_index_reports_native_iterator() {
        // FlatIndex implements its own resumable scan; sanity-check the flag
        // here since this module documents the two iterator families.
        let idx = sample_index(3, 2);
        assert!(idx.has_native_iterator());
    }
}
