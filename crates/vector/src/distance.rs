//! Distance metrics and their kernels, with runtime SIMD dispatch.
//!
//! Three kernel tiers back every metric:
//!
//! * **AVX2+FMA** (`x86_64`, selected at runtime via
//!   `is_x86_feature_detected!`) — 8-wide fused multiply-add loops, unrolled
//!   ×2 so two independent accumulators hide FMA latency.
//! * **NEON** (`aarch64`, baseline for the architecture) — 4-wide `vfmaq`
//!   loops, unrolled ×4 for `l2_sq`/`dot` (16 floats per iteration).
//! * **Scalar fallback** — chunked fixed-width-lane loops that LLVM
//!   auto-vectorizes to whatever the build target allows (SSE2 on stock
//!   `x86_64`), so even the fallback is not a naive element loop.
//!
//! The tier is detected once per process ([`KernelTier::current`]) and every
//! public kernel dispatches on it. [`distance_batch`] amortizes the dispatch
//! across a contiguous row-major block — the layout the FLAT scan, IVF
//! posting lists, k-means centroid tables and PQ codebooks all share.
//!
//! Cosine is computed in a **single fused pass** accumulating `a·b`, `‖a‖²`
//! and `‖b‖²` together (the former three-pass formulation paid for three
//! traversals of both vectors).
//!
//! All distances are *smaller is more similar*: inner product and cosine are
//! returned negated / inverted accordingly so every index can treat search
//! uniformly as minimization.

use bh_common::{BhError, Result};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Similarity metric for a vector column / index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Metric {
    /// Squared Euclidean distance (monotone in L2; avoids the sqrt).
    #[default]
    L2,
    /// Negative inner product (so that larger dot products sort first).
    InnerProduct,
    /// Cosine distance, `1 - cos(a, b)`.
    Cosine,
}

impl Metric {
    /// Parse the SQL-facing metric name.
    pub fn parse(s: &str) -> Result<Metric> {
        match s.to_ascii_uppercase().as_str() {
            "L2" | "L2DISTANCE" | "EUCLIDEAN" => Ok(Metric::L2),
            "IP" | "INNERPRODUCT" | "DOT" | "DOTPRODUCT" => Ok(Metric::InnerProduct),
            "COSINE" | "COSINEDISTANCE" | "COS" => Ok(Metric::Cosine),
            other => Err(BhError::InvalidArgument(format!("unknown metric: {other}"))),
        }
    }

    /// SQL distance-function name mapped to this metric.
    pub fn sql_function(&self) -> &'static str {
        match self {
            Metric::L2 => "L2Distance",
            Metric::InnerProduct => "IPDistance",
            Metric::Cosine => "CosineDistance",
        }
    }

    /// Compute the (minimization-oriented) distance between two vectors.
    ///
    /// # Panics
    /// Panics in debug builds if lengths differ; in release the shorter length
    /// wins. Callers that cannot guarantee matched dimensions must use
    /// [`Metric::distance_checked`] — every index search entry point validates
    /// through `check_query`/`check_batch` before reaching this.
    #[inline]
    pub fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch in distance kernel");
        match self {
            Metric::L2 => l2_sq(a, b),
            Metric::InnerProduct => -dot(a, b),
            Metric::Cosine => cosine_distance(a, b),
        }
    }

    /// [`Metric::distance`] with an explicit dimension check, for API
    /// boundaries where the two sides come from different sources (e.g.
    /// refining candidates against stored cells). Release builds of the
    /// unchecked kernels silently truncate to the shorter length, which can
    /// produce plausible-but-wrong distances — this returns an error instead.
    #[inline]
    pub fn distance_checked(&self, a: &[f32], b: &[f32]) -> Result<f32> {
        if a.len() != b.len() {
            return Err(BhError::InvalidArgument(format!(
                "distance kernel dimension mismatch: {} vs {}",
                a.len(),
                b.len()
            )));
        }
        Ok(self.distance(a, b))
    }
}

/// The SIMD tier the process dispatches distance kernels to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// AVX2 + FMA intrinsics (x86_64, runtime-detected).
    Avx2,
    /// NEON intrinsics (aarch64).
    Neon,
    /// Auto-vectorized scalar fallback.
    Scalar,
}

static TIER: OnceLock<KernelTier> = OnceLock::new();

impl KernelTier {
    /// The tier selected for this process (detected once, then cached).
    #[inline]
    pub fn current() -> KernelTier {
        *TIER.get_or_init(Self::detect)
    }

    fn detect() -> KernelTier {
        // Miri interprets MIR and cannot execute vendor intrinsics; force the
        // scalar kernels so `cargo miri test -p bh-vector` exercises the full
        // logic above the kernel layer.
        if cfg!(miri) {
            return KernelTier::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                return KernelTier::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                return KernelTier::Neon;
            }
        }
        KernelTier::Scalar
    }

    /// Lower-case tier name for metrics/logs.
    pub fn name(&self) -> &'static str {
        match self {
            KernelTier::Avx2 => "avx2",
            KernelTier::Neon => "neon",
            KernelTier::Scalar => "scalar",
        }
    }
}

// ---------------------------------------------------------------- dispatch

/// Squared Euclidean distance (runtime-dispatched).
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    match KernelTier::current() {
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => unsafe { avx2::l2_sq(a, b) }, // SAFETY: tier checked: detect() verified avx2+fma
        #[cfg(target_arch = "aarch64")]
        KernelTier::Neon => unsafe { neon::l2_sq(a, b) }, // SAFETY: tier checked: detect() verified neon
        _ => scalar::l2_sq(a, b),
    }
}

/// Inner (dot) product (runtime-dispatched).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    match KernelTier::current() {
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => unsafe { avx2::dot(a, b) }, // SAFETY: tier checked: detect() verified avx2+fma
        #[cfg(target_arch = "aarch64")]
        KernelTier::Neon => unsafe { neon::dot(a, b) }, // SAFETY: tier checked: detect() verified neon
        _ => scalar::dot(a, b),
    }
}

/// Fused cosine terms `(a·b, ‖a‖², ‖b‖²)` in one pass (runtime-dispatched).
#[inline]
pub fn cosine_terms(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
    match KernelTier::current() {
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => unsafe { avx2::cosine_terms(a, b) }, // SAFETY: tier checked: detect() verified avx2+fma
        #[cfg(target_arch = "aarch64")]
        KernelTier::Neon => unsafe { neon::cosine_terms(a, b) }, // SAFETY: tier checked: detect() verified neon
        _ => scalar::cosine_terms(a, b),
    }
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine distance `1 - cos(a,b)`, computed in a single fused pass. Zero
/// vectors are treated as maximally distant (distance 1.0) rather than NaN.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let (ab, na2, nb2) = cosine_terms(a, b);
    if na2 == 0.0 || nb2 == 0.0 {
        return 1.0;
    }
    1.0 - ab / (na2.sqrt() * nb2.sqrt())
}

/// Normalize a vector in place to unit length; zero vectors are left as-is.
pub fn normalize(v: &mut [f32]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

// ------------------------------------------------------------------- batch

/// Distances from `query` to every row of a contiguous row-major `block`,
/// written into `out` (one slot per row).
///
/// This is the preferred shape for exhaustive scans: the tier dispatch
/// happens once per block instead of once per row, the query stays hot in
/// registers/L1, and the block is walked sequentially (prefetch-friendly).
/// For [`Metric::Cosine`] the query norm is computed once for the whole
/// block.
///
/// Errors with [`BhError::InvalidArgument`] on any shape mismatch — no
/// silent truncation.
pub fn distance_batch(
    metric: Metric,
    query: &[f32],
    block: &[f32],
    dim: usize,
    out: &mut [f32],
) -> Result<()> {
    if dim == 0 {
        return Err(BhError::InvalidArgument("distance_batch: dim must be > 0".into()));
    }
    if query.len() != dim {
        return Err(BhError::InvalidArgument(format!(
            "distance_batch: query len {} != dim {dim}",
            query.len()
        )));
    }
    if block.len() % dim != 0 {
        return Err(BhError::InvalidArgument(format!(
            "distance_batch: block len {} is not a multiple of dim {dim}",
            block.len()
        )));
    }
    let rows = block.len() / dim;
    if out.len() != rows {
        return Err(BhError::InvalidArgument(format!(
            "distance_batch: out len {} != row count {rows}",
            out.len()
        )));
    }
    let tier = KernelTier::current();
    match metric {
        Metric::L2 => {
            for (r, slot) in out.iter_mut().enumerate() {
                let row = &block[r * dim..(r + 1) * dim];
                *slot = match tier {
                    #[cfg(target_arch = "x86_64")]
                    KernelTier::Avx2 => unsafe { avx2::l2_sq(query, row) }, // SAFETY: tier checked: detect() verified avx2+fma
                    #[cfg(target_arch = "aarch64")]
                    KernelTier::Neon => unsafe { neon::l2_sq(query, row) }, // SAFETY: tier checked: detect() verified neon
                    _ => scalar::l2_sq(query, row),
                };
            }
        }
        Metric::InnerProduct => {
            for (r, slot) in out.iter_mut().enumerate() {
                let row = &block[r * dim..(r + 1) * dim];
                *slot = -match tier {
                    #[cfg(target_arch = "x86_64")]
                    KernelTier::Avx2 => unsafe { avx2::dot(query, row) }, // SAFETY: tier checked: detect() verified avx2+fma
                    #[cfg(target_arch = "aarch64")]
                    KernelTier::Neon => unsafe { neon::dot(query, row) }, // SAFETY: tier checked: detect() verified neon
                    _ => scalar::dot(query, row),
                };
            }
        }
        Metric::Cosine => {
            // Query norm once per block, not once per row.
            let na2 = match tier {
                #[cfg(target_arch = "x86_64")]
                KernelTier::Avx2 => unsafe { avx2::dot(query, query) }, // SAFETY: tier checked: detect() verified avx2+fma
                #[cfg(target_arch = "aarch64")]
                KernelTier::Neon => unsafe { neon::dot(query, query) }, // SAFETY: tier checked: detect() verified neon
                _ => scalar::dot(query, query),
            };
            let na = na2.sqrt();
            for (r, slot) in out.iter_mut().enumerate() {
                let row = &block[r * dim..(r + 1) * dim];
                let (ab, _, nb2) = match tier {
                    #[cfg(target_arch = "x86_64")]
                    KernelTier::Avx2 => unsafe { avx2::cosine_terms(query, row) }, // SAFETY: tier checked: detect() verified avx2+fma
                    #[cfg(target_arch = "aarch64")]
                    KernelTier::Neon => unsafe { neon::cosine_terms(query, row) }, // SAFETY: tier checked: detect() verified neon
                    _ => scalar::cosine_terms(query, row),
                };
                *slot = if na == 0.0 || nb2 == 0.0 { 1.0 } else { 1.0 - ab / (na * nb2.sqrt()) };
            }
        }
    }
    Ok(())
}

// ------------------------------------------------------------------ scalar

/// Auto-vectorized scalar reference kernels. Public so benchmarks and parity
/// tests can compare the dispatched tiers against this baseline.
pub mod scalar {
    const LANES: usize = 8;

    /// Squared Euclidean distance.
    #[inline]
    pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let chunks = n / LANES;
        let mut acc = [0.0f32; LANES];
        for c in 0..chunks {
            let base = c * LANES;
            for l in 0..LANES {
                let d = a[base + l] - b[base + l];
                acc[l] += d * d;
            }
        }
        let mut sum: f32 = acc.iter().sum();
        for i in chunks * LANES..n {
            let d = a[i] - b[i];
            sum += d * d;
        }
        sum
    }

    /// Inner (dot) product.
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let chunks = n / LANES;
        let mut acc = [0.0f32; LANES];
        for c in 0..chunks {
            let base = c * LANES;
            for l in 0..LANES {
                acc[l] += a[base + l] * b[base + l];
            }
        }
        let mut sum: f32 = acc.iter().sum();
        for i in chunks * LANES..n {
            sum += a[i] * b[i];
        }
        sum
    }

    /// One-pass `(a·b, ‖a‖², ‖b‖²)`.
    #[inline]
    pub fn cosine_terms(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let chunks = n / LANES;
        let mut acc_ab = [0.0f32; LANES];
        let mut acc_aa = [0.0f32; LANES];
        let mut acc_bb = [0.0f32; LANES];
        for c in 0..chunks {
            let base = c * LANES;
            for l in 0..LANES {
                let (x, y) = (a[base + l], b[base + l]);
                acc_ab[l] += x * y;
                acc_aa[l] += x * x;
                acc_bb[l] += y * y;
            }
        }
        let mut ab: f32 = acc_ab.iter().sum();
        let mut aa: f32 = acc_aa.iter().sum();
        let mut bb: f32 = acc_bb.iter().sum();
        for i in chunks * LANES..n {
            let (x, y) = (a[i], b[i]);
            ab += x * y;
            aa += x * x;
            bb += y * y;
        }
        (ab, aa, bb)
    }

    /// Three-pass cosine distance kept as the parity oracle for the fused
    /// kernels (tests only reference it).
    #[inline]
    pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
        let na = dot(a, a).sqrt();
        let nb = dot(b, b).sqrt();
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        1.0 - dot(a, b) / (na * nb)
    }
}

// ------------------------------------------------------------------- avx2

/// AVX2+FMA kernels. 8-wide, unrolled ×2 (two independent accumulators) so
/// back-to-back FMAs from different chains overlap.
///
/// # Safety
/// Callers must ensure the CPU supports AVX2 and FMA
/// ([`KernelTier::current`] gates every dispatch site).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// Horizontal sum of all 8 lanes.
    ///
    /// # Safety
    /// Requires AVX2 (the enclosing kernels enable it).
    #[inline]
    unsafe fn hsum(v: __m256) -> f32 {
        // SAFETY: lane-shuffle/add intrinsics only touch the value `v`;
        // the fn contract guarantees AVX2 is available.
        unsafe {
            let lo = _mm256_castps256_ps128(v);
            let hi = _mm256_extractf128_ps(v, 1);
            let s = _mm_add_ps(lo, hi);
            let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
            let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
            _mm_cvtss_f32(s)
        }
    }

    /// # Safety
    /// The CPU must support AVX2 and FMA. Only the common prefix
    /// `min(a.len(), b.len())` is read, via unaligned loads.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: the fn contract guarantees the required CPU features;
        // every load/deref index is < n = min(a.len(), b.len()), and the
        // SIMD loads are the unaligned variants.
        unsafe {
            let n = a.len().min(b.len());
            let (pa, pb) = (a.as_ptr(), b.as_ptr());
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut i = 0usize;
            while i + 16 <= n {
                let d0 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
                let d1 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i + 8)), _mm256_loadu_ps(pb.add(i + 8)));
                acc0 = _mm256_fmadd_ps(d0, d0, acc0);
                acc1 = _mm256_fmadd_ps(d1, d1, acc1);
                i += 16;
            }
            if i + 8 <= n {
                let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
                acc0 = _mm256_fmadd_ps(d, d, acc0);
                i += 8;
            }
            let mut sum = hsum(_mm256_add_ps(acc0, acc1));
            while i < n {
                let d = *pa.add(i) - *pb.add(i);
                sum += d * d;
                i += 1;
            }
            sum
        }
    }

    /// # Safety
    /// The CPU must support AVX2 and FMA. Only the common prefix
    /// `min(a.len(), b.len())` is read, via unaligned loads.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: the fn contract guarantees the required CPU features;
        // every load/deref index is < n = min(a.len(), b.len()), and the
        // SIMD loads are the unaligned variants.
        unsafe {
            let n = a.len().min(b.len());
            let (pa, pb) = (a.as_ptr(), b.as_ptr());
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut i = 0usize;
            while i + 16 <= n {
                acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
                acc1 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(pa.add(i + 8)),
                    _mm256_loadu_ps(pb.add(i + 8)),
                    acc1,
                );
                i += 16;
            }
            if i + 8 <= n {
                acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
                i += 8;
            }
            let mut sum = hsum(_mm256_add_ps(acc0, acc1));
            while i < n {
                sum += *pa.add(i) * *pb.add(i);
                i += 1;
            }
            sum
        }
    }

    /// # Safety
    /// The CPU must support AVX2 and FMA. Only the common prefix
    /// `min(a.len(), b.len())` is read, via unaligned loads.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn cosine_terms(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        // SAFETY: the fn contract guarantees the required CPU features;
        // every load/deref index is < n = min(a.len(), b.len()), and the
        // SIMD loads are the unaligned variants.
        unsafe {
            let n = a.len().min(b.len());
            let (pa, pb) = (a.as_ptr(), b.as_ptr());
            let mut acc_ab = _mm256_setzero_ps();
            let mut acc_aa = _mm256_setzero_ps();
            let mut acc_bb = _mm256_setzero_ps();
            let mut i = 0usize;
            while i + 8 <= n {
                let va = _mm256_loadu_ps(pa.add(i));
                let vb = _mm256_loadu_ps(pb.add(i));
                acc_ab = _mm256_fmadd_ps(va, vb, acc_ab);
                acc_aa = _mm256_fmadd_ps(va, va, acc_aa);
                acc_bb = _mm256_fmadd_ps(vb, vb, acc_bb);
                i += 8;
            }
            let mut ab = hsum(acc_ab);
            let mut aa = hsum(acc_aa);
            let mut bb = hsum(acc_bb);
            while i < n {
                let (x, y) = (*pa.add(i), *pb.add(i));
                ab += x * y;
                aa += x * x;
                bb += y * y;
                i += 1;
            }
            (ab, aa, bb)
        }
    }
}

// ------------------------------------------------------------------- neon

/// NEON kernels (aarch64 baseline). 4-wide `vfmaq`, unrolled ×4 for the hot
/// `l2_sq`/`dot` pair (16 floats per iteration, four independent accumulator
/// chains hide the 3-4 cycle FMA latency) with ×2/×1 step-down remainders;
/// the three-accumulator `cosine_terms` stays at its natural width.
///
/// # Safety
/// NEON is mandatory on aarch64, but dispatch still goes through
/// [`KernelTier::current`] for uniformity.
#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    /// # Safety
    /// The CPU must support NEON. Only the common prefix
    /// `min(a.len(), b.len())` is read.
    #[target_feature(enable = "neon")]
    pub unsafe fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: the fn contract guarantees the required CPU features;
        // every load/deref index is < n = min(a.len(), b.len()), and the
        // SIMD loads are the unaligned variants.
        unsafe {
            let n = a.len().min(b.len());
            let (pa, pb) = (a.as_ptr(), b.as_ptr());
            let mut acc0 = vdupq_n_f32(0.0);
            let mut acc1 = vdupq_n_f32(0.0);
            let mut acc2 = vdupq_n_f32(0.0);
            let mut acc3 = vdupq_n_f32(0.0);
            let mut i = 0usize;
            while i + 16 <= n {
                let d0 = vsubq_f32(vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
                let d1 = vsubq_f32(vld1q_f32(pa.add(i + 4)), vld1q_f32(pb.add(i + 4)));
                let d2 = vsubq_f32(vld1q_f32(pa.add(i + 8)), vld1q_f32(pb.add(i + 8)));
                let d3 = vsubq_f32(vld1q_f32(pa.add(i + 12)), vld1q_f32(pb.add(i + 12)));
                acc0 = vfmaq_f32(acc0, d0, d0);
                acc1 = vfmaq_f32(acc1, d1, d1);
                acc2 = vfmaq_f32(acc2, d2, d2);
                acc3 = vfmaq_f32(acc3, d3, d3);
                i += 16;
            }
            if i + 8 <= n {
                let d0 = vsubq_f32(vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
                let d1 = vsubq_f32(vld1q_f32(pa.add(i + 4)), vld1q_f32(pb.add(i + 4)));
                acc0 = vfmaq_f32(acc0, d0, d0);
                acc1 = vfmaq_f32(acc1, d1, d1);
                i += 8;
            }
            if i + 4 <= n {
                let d = vsubq_f32(vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
                acc0 = vfmaq_f32(acc0, d, d);
                i += 4;
            }
            let mut sum = vaddvq_f32(vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3)));
            while i < n {
                let d = *pa.add(i) - *pb.add(i);
                sum += d * d;
                i += 1;
            }
            sum
        }
    }

    /// # Safety
    /// The CPU must support NEON. Only the common prefix
    /// `min(a.len(), b.len())` is read.
    #[target_feature(enable = "neon")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: the fn contract guarantees the required CPU features;
        // every load/deref index is < n = min(a.len(), b.len()), and the
        // SIMD loads are the unaligned variants.
        unsafe {
            let n = a.len().min(b.len());
            let (pa, pb) = (a.as_ptr(), b.as_ptr());
            let mut acc0 = vdupq_n_f32(0.0);
            let mut acc1 = vdupq_n_f32(0.0);
            let mut acc2 = vdupq_n_f32(0.0);
            let mut acc3 = vdupq_n_f32(0.0);
            let mut i = 0usize;
            while i + 16 <= n {
                acc0 = vfmaq_f32(acc0, vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
                acc1 = vfmaq_f32(acc1, vld1q_f32(pa.add(i + 4)), vld1q_f32(pb.add(i + 4)));
                acc2 = vfmaq_f32(acc2, vld1q_f32(pa.add(i + 8)), vld1q_f32(pb.add(i + 8)));
                acc3 = vfmaq_f32(acc3, vld1q_f32(pa.add(i + 12)), vld1q_f32(pb.add(i + 12)));
                i += 16;
            }
            if i + 8 <= n {
                acc0 = vfmaq_f32(acc0, vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
                acc1 = vfmaq_f32(acc1, vld1q_f32(pa.add(i + 4)), vld1q_f32(pb.add(i + 4)));
                i += 8;
            }
            if i + 4 <= n {
                acc0 = vfmaq_f32(acc0, vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
                i += 4;
            }
            let mut sum = vaddvq_f32(vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3)));
            while i < n {
                sum += *pa.add(i) * *pb.add(i);
                i += 1;
            }
            sum
        }
    }

    /// # Safety
    /// The CPU must support NEON. Only the common prefix
    /// `min(a.len(), b.len())` is read.
    #[target_feature(enable = "neon")]
    pub unsafe fn cosine_terms(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        // SAFETY: the fn contract guarantees the required CPU features;
        // every load/deref index is < n = min(a.len(), b.len()), and the
        // SIMD loads are the unaligned variants.
        unsafe {
            let n = a.len().min(b.len());
            let (pa, pb) = (a.as_ptr(), b.as_ptr());
            let mut acc_ab = vdupq_n_f32(0.0);
            let mut acc_aa = vdupq_n_f32(0.0);
            let mut acc_bb = vdupq_n_f32(0.0);
            let mut i = 0usize;
            while i + 4 <= n {
                let va = vld1q_f32(pa.add(i));
                let vb = vld1q_f32(pb.add(i));
                acc_ab = vfmaq_f32(acc_ab, va, vb);
                acc_aa = vfmaq_f32(acc_aa, va, va);
                acc_bb = vfmaq_f32(acc_bb, vb, vb);
                i += 4;
            }
            let mut ab = vaddvq_f32(acc_ab);
            let mut aa = vaddvq_f32(acc_aa);
            let mut bb = vaddvq_f32(acc_bb);
            while i < n {
                let (x, y) = (*pa.add(i), *pb.add(i));
                ab += x * y;
                aa += x * x;
                bb += y * y;
                i += 1;
            }
            (ab, aa, bb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_l2(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn l2_basic() {
        assert_eq!(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_sq(&[], &[]), 0.0);
        let a = [1.0; 17]; // exercises the remainder loop
        let b = [2.0; 17];
        assert_eq!(l2_sq(&a, &b), 17.0);
    }

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn cosine_handles_zero_vectors() {
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
        assert!((cosine_distance(&[1.0, 0.0], &[1.0, 0.0])).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn metric_parse_and_sql_names() {
        assert_eq!(Metric::parse("l2").unwrap(), Metric::L2);
        assert_eq!(Metric::parse("CoSiNe").unwrap(), Metric::Cosine);
        assert_eq!(Metric::parse("IP").unwrap(), Metric::InnerProduct);
        assert!(Metric::parse("hamming").is_err());
        assert_eq!(Metric::L2.sql_function(), "L2Distance");
    }

    #[test]
    fn inner_product_is_negated() {
        // Higher dot product must yield smaller distance.
        let q = [1.0, 0.0];
        let near = [1.0, 0.0];
        let far = [0.1, 0.0];
        assert!(Metric::InnerProduct.distance(&q, &near) < Metric::InnerProduct.distance(&q, &far));
    }

    #[test]
    fn normalize_gives_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn distance_checked_rejects_mismatch() {
        assert!(Metric::L2.distance_checked(&[1.0, 2.0], &[1.0]).is_err());
        assert_eq!(Metric::L2.distance_checked(&[1.0], &[2.0]).unwrap(), 1.0);
    }

    #[test]
    fn tier_is_stable_and_named() {
        let t = KernelTier::current();
        assert_eq!(t, KernelTier::current());
        assert!(["avx2", "neon", "scalar"].contains(&t.name()));
    }

    /// Every remainder-lane shape from 1 to 257 (covers 8/16-wide main loops
    /// plus tails) must agree with the scalar reference on the dispatched
    /// tier within 1e-3 relative tolerance.
    #[test]
    fn dispatched_matches_scalar_all_remainder_dims() {
        for dim in 1usize..=257 {
            let a: Vec<f32> = (0..dim).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect();
            let b: Vec<f32> = (0..dim).map(|i| ((i as f32) * 0.53).cos() * 3.0 - 0.5).collect();
            let rel = |x: f32, y: f32| (x - y).abs() / (1.0 + y.abs());
            assert!(
                rel(l2_sq(&a, &b), scalar::l2_sq(&a, &b)) < 1e-3,
                "l2 mismatch at dim {dim}"
            );
            assert!(rel(dot(&a, &b), scalar::dot(&a, &b)) < 1e-3, "dot mismatch at dim {dim}");
            assert!(
                rel(cosine_distance(&a, &b), scalar::cosine_distance(&a, &b)) < 1e-3,
                "cosine mismatch at dim {dim}"
            );
        }
    }

    #[test]
    fn batch_matches_per_row() {
        let dim = 27; // deliberately awkward remainder
        let rows = 19;
        let query: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.11).sin()).collect();
        let block: Vec<f32> = (0..rows * dim).map(|i| (i as f32 * 0.07).cos()).collect();
        for metric in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            let mut out = vec![0.0f32; rows];
            distance_batch(metric, &query, &block, dim, &mut out).unwrap();
            for r in 0..rows {
                let d = metric.distance(&query, &block[r * dim..(r + 1) * dim]);
                assert!(
                    (out[r] - d).abs() < 1e-4 * (1.0 + d.abs()),
                    "{metric:?} row {r}: batch {} vs single {d}",
                    out[r]
                );
            }
        }
    }

    #[test]
    fn batch_rejects_bad_shapes() {
        let q = [0.0f32; 4];
        let block = [0.0f32; 12];
        let mut out = [0.0f32; 3];
        assert!(distance_batch(Metric::L2, &q, &block, 0, &mut out).is_err());
        assert!(distance_batch(Metric::L2, &q[..3], &block, 4, &mut out).is_err());
        assert!(distance_batch(Metric::L2, &q, &block[..11], 4, &mut out).is_err());
        assert!(distance_batch(Metric::L2, &q, &block, 4, &mut out[..2]).is_err());
        assert!(distance_batch(Metric::L2, &q, &block, 4, &mut out).is_ok());
    }

    proptest! {
        #[test]
        fn prop_l2_matches_naive(
            v in proptest::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 0..64)
        ) {
            let a: Vec<f32> = v.iter().map(|p| p.0).collect();
            let b: Vec<f32> = v.iter().map(|p| p.1).collect();
            let fast = l2_sq(&a, &b);
            let slow = naive_l2(&a, &b);
            prop_assert!((fast - slow).abs() <= 1e-2 * (1.0 + slow.abs()));
        }

        #[test]
        fn prop_l2_identity_and_symmetry(
            a in proptest::collection::vec(-50.0f32..50.0, 1..40),
            b in proptest::collection::vec(-50.0f32..50.0, 1..40),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            prop_assert_eq!(l2_sq(a, a), 0.0);
            prop_assert!((l2_sq(a, b) - l2_sq(b, a)).abs() < 1e-3);
            prop_assert!(l2_sq(a, b) >= 0.0);
        }

        #[test]
        fn prop_cosine_in_range(
            a in proptest::collection::vec(-10.0f32..10.0, 2..32),
            b in proptest::collection::vec(-10.0f32..10.0, 2..32),
        ) {
            let n = a.len().min(b.len());
            let d = cosine_distance(&a[..n], &b[..n]);
            prop_assert!((-1e-4..=2.0 + 1e-4).contains(&d), "cosine distance {d} out of [0,2]");
        }

        #[test]
        fn prop_cosine_scale_invariant(
            a in proptest::collection::vec(0.1f32..10.0, 4..16),
            s in 0.5f32..4.0,
        ) {
            let scaled: Vec<f32> = a.iter().map(|x| x * s).collect();
            let d = cosine_distance(&a, &scaled);
            prop_assert!(d.abs() < 1e-3, "scaling changed cosine distance: {d}");
        }

        /// Satellite requirement: every tier available on this machine agrees
        /// with the scalar reference within 1e-3 relative tolerance across
        /// dims 1..=257 (all remainder lanes of the 4/8/16-wide loops).
        #[test]
        fn prop_kernel_tiers_match_scalar_reference(
            dim in 1usize..=257,
            seed in 0u32..1000,
        ) {
            let a: Vec<f32> = (0..dim)
                .map(|i| (((i as u32).wrapping_mul(2654435761).wrapping_add(seed)) as f32 / u32::MAX as f32 - 0.5) * 20.0)
                .collect();
            let b: Vec<f32> = (0..dim)
                .map(|i| (((i as u32).wrapping_mul(40503).wrapping_add(seed * 7)) as f32 / u32::MAX as f32 - 0.5) * 20.0)
                .collect();
            let rel = |x: f32, y: f32| (x - y).abs() / (1.0 + y.abs());
            prop_assert!(rel(l2_sq(&a, &b), scalar::l2_sq(&a, &b)) < 1e-3);
            prop_assert!(rel(dot(&a, &b), scalar::dot(&a, &b)) < 1e-3);
            let (ab, aa, bb) = cosine_terms(&a, &b);
            let (sab, saa, sbb) = scalar::cosine_terms(&a, &b);
            prop_assert!(rel(ab, sab) < 1e-3 && rel(aa, saa) < 1e-3 && rel(bb, sbb) < 1e-3);
        }
    }
}
