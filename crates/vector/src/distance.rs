//! Distance metrics and their scalar kernels.
//!
//! Kernels are written as chunked loops over fixed-width lanes so LLVM
//! auto-vectorizes them (the Rust Performance Book's recommended approach
//! when hand-written SIMD is not warranted). All distances are *smaller is
//! more similar*: inner product and cosine are returned negated / inverted
//! accordingly so every index can treat search uniformly as minimization.

use bh_common::{BhError, Result};
use serde::{Deserialize, Serialize};

/// Similarity metric for a vector column / index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Metric {
    /// Squared Euclidean distance (monotone in L2; avoids the sqrt).
    #[default]
    L2,
    /// Negative inner product (so that larger dot products sort first).
    InnerProduct,
    /// Cosine distance, `1 - cos(a, b)`.
    Cosine,
}

impl Metric {
    /// Parse the SQL-facing metric name.
    pub fn parse(s: &str) -> Result<Metric> {
        match s.to_ascii_uppercase().as_str() {
            "L2" | "L2DISTANCE" | "EUCLIDEAN" => Ok(Metric::L2),
            "IP" | "INNERPRODUCT" | "DOT" | "DOTPRODUCT" => Ok(Metric::InnerProduct),
            "COSINE" | "COSINEDISTANCE" | "COS" => Ok(Metric::Cosine),
            other => Err(BhError::InvalidArgument(format!("unknown metric: {other}"))),
        }
    }

    /// SQL distance-function name mapped to this metric.
    pub fn sql_function(&self) -> &'static str {
        match self {
            Metric::L2 => "L2Distance",
            Metric::InnerProduct => "IPDistance",
            Metric::Cosine => "CosineDistance",
        }
    }

    /// Compute the (minimization-oriented) distance between two vectors.
    ///
    /// # Panics
    /// Panics in debug builds if lengths differ; in release the shorter length
    /// wins (callers validate dimensions at the API boundary).
    #[inline]
    pub fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch in distance kernel");
        match self {
            Metric::L2 => l2_sq(a, b),
            Metric::InnerProduct => -dot(a, b),
            Metric::Cosine => cosine_distance(a, b),
        }
    }
}

const LANES: usize = 8;

/// Squared Euclidean distance.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks = n / LANES;
    let mut acc = [0.0f32; LANES];
    for c in 0..chunks {
        let base = c * LANES;
        for l in 0..LANES {
            let d = a[base + l] - b[base + l];
            acc[l] += d * d;
        }
    }
    let mut sum: f32 = acc.iter().sum();
    for i in chunks * LANES..n {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Inner (dot) product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks = n / LANES;
    let mut acc = [0.0f32; LANES];
    for c in 0..chunks {
        let base = c * LANES;
        for l in 0..LANES {
            acc[l] += a[base + l] * b[base + l];
        }
    }
    let mut sum: f32 = acc.iter().sum();
    for i in chunks * LANES..n {
        sum += a[i] * b[i];
    }
    sum
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine distance `1 - cos(a,b)`. Zero vectors are treated as maximally
/// distant (distance 1.0) rather than NaN.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot(a, b) / (na * nb)
}

/// Normalize a vector in place to unit length; zero vectors are left as-is.
pub fn normalize(v: &mut [f32]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_l2(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn l2_basic() {
        assert_eq!(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_sq(&[], &[]), 0.0);
        let a = [1.0; 17]; // exercises the remainder loop
        let b = [2.0; 17];
        assert_eq!(l2_sq(&a, &b), 17.0);
    }

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn cosine_handles_zero_vectors() {
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
        assert!((cosine_distance(&[1.0, 0.0], &[1.0, 0.0])).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn metric_parse_and_sql_names() {
        assert_eq!(Metric::parse("l2").unwrap(), Metric::L2);
        assert_eq!(Metric::parse("CoSiNe").unwrap(), Metric::Cosine);
        assert_eq!(Metric::parse("IP").unwrap(), Metric::InnerProduct);
        assert!(Metric::parse("hamming").is_err());
        assert_eq!(Metric::L2.sql_function(), "L2Distance");
    }

    #[test]
    fn inner_product_is_negated() {
        // Higher dot product must yield smaller distance.
        let q = [1.0, 0.0];
        let near = [1.0, 0.0];
        let far = [0.1, 0.0];
        assert!(Metric::InnerProduct.distance(&q, &near) < Metric::InnerProduct.distance(&q, &far));
    }

    #[test]
    fn normalize_gives_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    proptest! {
        #[test]
        fn prop_l2_matches_naive(
            v in proptest::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 0..64)
        ) {
            let a: Vec<f32> = v.iter().map(|p| p.0).collect();
            let b: Vec<f32> = v.iter().map(|p| p.1).collect();
            let fast = l2_sq(&a, &b);
            let slow = naive_l2(&a, &b);
            prop_assert!((fast - slow).abs() <= 1e-2 * (1.0 + slow.abs()));
        }

        #[test]
        fn prop_l2_identity_and_symmetry(
            a in proptest::collection::vec(-50.0f32..50.0, 1..40),
            b in proptest::collection::vec(-50.0f32..50.0, 1..40),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            prop_assert_eq!(l2_sq(a, a), 0.0);
            prop_assert!((l2_sq(a, b) - l2_sq(b, a)).abs() < 1e-3);
            prop_assert!(l2_sq(a, b) >= 0.0);
        }

        #[test]
        fn prop_cosine_in_range(
            a in proptest::collection::vec(-10.0f32..10.0, 2..32),
            b in proptest::collection::vec(-10.0f32..10.0, 2..32),
        ) {
            let n = a.len().min(b.len());
            let d = cosine_distance(&a[..n], &b[..n]);
            prop_assert!((-1e-4..=2.0 + 1e-4).contains(&d), "cosine distance {d} out of [0,2]");
        }

        #[test]
        fn prop_cosine_scale_invariant(
            a in proptest::collection::vec(0.1f32..10.0, 4..16),
            s in 0.5f32..4.0,
        ) {
            let scaled: Vec<f32> = a.iter().map(|x| x * s).collect();
            let d = cosine_distance(&a, &scaled);
            prop_assert!(d.abs() < 1e-3, "scaling changed cosine distance: {d}");
        }
    }
}
