//! Loom-lite models for the workspace's lock-free core.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p bh-common --test loom --release
//! ```
//!
//! Under `--cfg loom`, `SharedBound` and `StealingCursor` swap their std
//! atomics for `bh_common::loom::sync::atomic` wrappers, and `loom::model`
//! exhaustively explores every sequentially-consistent interleaving of the
//! model threads (see `src/loom.rs` for fidelity limits).

#![cfg(loom)]

use bh_common::cq::{OpTable, Ticket};
use bh_common::loom::{self, sync::Arc, thread};
use bh_common::{SharedBound, StealingCursor};

/// DESIGN.md §7 publish rule: whatever interleaving the publishers race
/// through, the bound settles on the minimum of all published thresholds,
/// and an updater immediately observes a bound no worse than its own.
#[test]
fn shared_bound_settles_on_min_of_published() {
    loom::model(|| {
        let b = Arc::new(SharedBound::new());
        let b1 = Arc::clone(&b);
        let b2 = Arc::clone(&b);
        let t1 = thread::spawn(move || {
            b1.update(3.0);
            // Publish/prune contract: after publishing d, no reader (this
            // thread included) can see a bound looser than d.
            assert!(b1.get() <= 3.0);
        });
        let t2 = thread::spawn(move || {
            b2.update(1.0);
            assert!(b2.get() <= 1.0);
        });
        b.update(2.0);
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(b.get(), 1.0, "bound must settle on the min of {{3.0, 1.0, 2.0}}");
    });
}

/// IP/cosine distances are negative; the CAS-min loop compares as floats,
/// so racing negative publishes must still settle on the float minimum
/// (raw-bit ordering would invert it).
#[test]
fn shared_bound_min_is_float_ordered_for_negative_distances() {
    loom::model(|| {
        let b = Arc::new(SharedBound::new());
        let b1 = Arc::clone(&b);
        let t1 = thread::spawn(move || b1.update(-2.0));
        b.update(-0.5);
        t1.join().unwrap();
        assert_eq!(b.get(), -2.0);
    });
}

/// A pruning reader may race the publishers arbitrarily, but the bound it
/// observes only ever tightens: two successive reads are non-increasing.
/// (This is what makes `d > bound` pruning safe to evaluate at any time.)
#[test]
fn shared_bound_is_monotonic_under_concurrent_publish() {
    loom::model(|| {
        let b = Arc::new(SharedBound::new());
        let pb = Arc::clone(&b);
        let ob = Arc::clone(&b);
        let publisher = thread::spawn(move || {
            pb.update(4.0);
            pb.update(1.5);
        });
        let observer = thread::spawn(move || {
            let first = ob.get();
            let second = ob.get();
            assert!(
                second <= first,
                "bound loosened between reads: {first} -> {second}"
            );
        });
        publisher.join().unwrap();
        observer.join().unwrap();
        assert_eq!(b.get(), 1.5);
    });
}

/// The skip counter is observability-only, but its adds must not be lost.
#[test]
fn shared_bound_skip_counter_never_loses_updates() {
    loom::model(|| {
        let b = Arc::new(SharedBound::new());
        let b1 = Arc::clone(&b);
        let t1 = thread::spawn(move || b1.record_skips(2));
        b.record_skips(3);
        t1.join().unwrap();
        assert_eq!(b.skips(), 5);
    });
}

/// The work-stealing invariant behind segment fan-out and compaction: over
/// any interleaving, each index in `0..len` is claimed exactly once, and
/// once exhausted every worker sees `None`.
#[test]
fn stealing_cursor_claims_each_index_exactly_once() {
    loom::model(|| {
        const LEN: usize = 3;
        let c = Arc::new(StealingCursor::new());
        let c1 = Arc::clone(&c);
        let t1 = thread::spawn(move || {
            let mut mine = Vec::new();
            while let Some(i) = c1.claim(LEN) {
                mine.push(i);
            }
            mine
        });
        let mut mine = Vec::new();
        while let Some(i) = c.claim(LEN) {
            mine.push(i);
        }
        let theirs = t1.join().unwrap();
        // Exhaustion is sticky for every worker.
        assert_eq!(c.claim(LEN), None);

        let mut all = mine;
        all.extend(theirs);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2], "indices must partition 0..{LEN}");
    });
}

/// Completion-queue invariant #1 (DESIGN.md §11): however a driver and a
/// racing `is_complete`-then-reap waiter interleave, completion for one
/// submitted operation is delivered exactly once, and so is the reap that
/// recycles its slot.
#[test]
fn optable_completion_is_exactly_once() {
    loom::model(|| {
        let t = Arc::new(OpTable::with_capacity(1));
        let tk = t.try_submit(0).expect("empty slot must accept a submission");
        let t1 = Arc::clone(&t);
        let racer = thread::spawn(move || t1.try_complete(tk));
        let mine = t.try_complete(tk);
        let theirs = racer.join().unwrap();
        assert!(
            mine ^ theirs,
            "completion must be delivered exactly once (mine={mine}, theirs={theirs})"
        );
        assert!(t.is_complete(tk));
        assert!(t.reap(tk), "the completed slot must be reclaimable");
        assert!(!t.reap(tk), "reaping is exactly-once too");
    });
}

/// Completion-queue invariant #2: a slot can never be observed completed for
/// a generation that was not submitted. A completer racing the submitter with
/// a forged ticket either lands after the submission (and the completion is
/// then observable) or bounces off the still-empty slot.
#[test]
fn optable_never_completes_before_submission() {
    loom::model(|| {
        let t = Arc::new(OpTable::with_capacity(1));
        let forged = Ticket::forged(0, 0);
        let t1 = Arc::clone(&t);
        let completer = thread::spawn(move || t1.try_complete(forged));
        let submitted = t.try_submit(0);
        let completed = completer.join().unwrap();
        assert!(submitted.is_some(), "the only submitter must win the empty slot");
        if completed {
            assert!(t.is_complete(forged), "a delivered completion must be observable");
        } else {
            assert!(
                !t.is_complete(forged),
                "no completion may be visible before one is delivered"
            );
            assert!(t.try_complete(forged), "the submitted op must remain completable");
        }
    });
}

/// Completion-queue invariant #3: a full submit → complete → reap drain by
/// two concurrent workers over a shared table neither deadlocks nor leaks a
/// slot, and retired generations stay inert — stale tickets read complete
/// but can never re-complete a recycled slot (the ABA guard behind
/// [`bh_common::Reactor::forget`]).
#[test]
fn optable_drains_without_deadlock_or_slot_leak() {
    loom::model(|| {
        let t = Arc::new(OpTable::with_capacity(2));
        let t1 = Arc::clone(&t);
        let worker = thread::spawn(move || {
            let tk = (0..2)
                .find_map(|s| t1.try_submit(s))
                .expect("two slots, two workers: a free slot must exist");
            assert!(t1.try_complete(tk));
            assert!(t1.reap(tk));
            tk
        });
        let mine = (0..2)
            .find_map(|s| t.try_submit(s))
            .expect("two slots, two workers: a free slot must exist");
        assert!(t.try_complete(mine));
        assert!(t.reap(mine));
        let theirs = worker.join().unwrap();

        // Retired generations: stale handles read complete, cannot re-fire.
        for stale in [mine, theirs] {
            assert!(t.is_complete(stale), "reaped generation must read complete");
            assert!(!t.try_complete(stale), "stale ticket must not re-complete");
        }
        // No slot leaked: both are claimable again at a fresh generation.
        let a = t.try_submit(0).expect("slot 0 must be reusable after the drain");
        let b = t.try_submit(1).expect("slot 1 must be reusable after the drain");
        assert!(!t.is_complete(a) && !t.is_complete(b));
    });
}

/// Satellite carry-over from ROADMAP: the batched executor's segment-major
/// scheduler composed — workers steal segments through a `StealingCursor`
/// and publish per-segment best distances into one `SharedBound`. Over any
/// interleaving: the segment set partitions exactly (no segment scanned
/// twice or dropped), and the bound settles on the global minimum — i.e.
/// batched scheduling cannot lose the exactness of the per-query result.
#[test]
fn segment_major_scheduler_partitions_work_and_settles_min() {
    loom::model(|| {
        // "Best distance" each segment would contribute; min is segment 1.
        const SEG_BEST: [f32; 3] = [4.0, 1.0, 2.5];
        let cursor = Arc::new(StealingCursor::new());
        let bound = Arc::new(SharedBound::new());

        let c1 = Arc::clone(&cursor);
        let b1 = Arc::clone(&bound);
        let worker = thread::spawn(move || {
            let mut scanned = Vec::new();
            while let Some(seg) = c1.claim(SEG_BEST.len()) {
                // Segment-major inner loop: prune on the shared bound, then
                // publish this segment's best. Pruning may skip work but
                // never a segment claim.
                if SEG_BEST[seg] <= b1.get() {
                    b1.update(SEG_BEST[seg]);
                } else {
                    b1.record_skips(1);
                }
                scanned.push(seg);
            }
            scanned
        });

        let mut scanned = Vec::new();
        while let Some(seg) = cursor.claim(SEG_BEST.len()) {
            if SEG_BEST[seg] <= bound.get() {
                bound.update(SEG_BEST[seg]);
            } else {
                bound.record_skips(1);
            }
            scanned.push(seg);
        }
        let theirs = worker.join().unwrap();

        let mut all = scanned;
        all.extend(theirs);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2], "segments must partition exactly");
        // The minimum is always published: a bound that would prune segment
        // 1's best (1.0) can only exist if 1.0 was already published.
        assert_eq!(bound.get(), 1.0, "scheduler must settle on the global min");
    });
}

/// Lockdep edge-graph publish path (`bh_common::sync::lockgraph`): when two
/// threads race to publish the same acquisition-order edge, exactly one
/// `fetch_or` flips the bit (so exactly one runs the cycle backstop), and
/// the edge is visible to both afterwards; a disjoint edge is never lost.
#[test]
fn lockgraph_publish_is_first_sighting_exactly_once() {
    use bh_common::sync::lockgraph::EdgeGraph;
    loom::model(|| {
        let g = Arc::new(EdgeGraph::new(70)); // edge (1, 65) spans a word
        let g1 = Arc::clone(&g);
        let racer = thread::spawn(move || {
            let won_shared = g1.add_edge(1, 65);
            let won_mine = g1.add_edge(2, 65);
            (won_shared, won_mine)
        });
        let won_here = g.add_edge(1, 65);
        let (won_there, won_disjoint) = racer.join().unwrap();

        assert!(
            won_here ^ won_there,
            "exactly one publisher owns the first sighting of a shared edge"
        );
        assert!(won_disjoint, "a disjoint edge publish is never lost");
        assert!(g.has_edge(1, 65) && g.has_edge(2, 65));
        assert!(!g.has_edge(65, 1), "publication must not smear other bits");
    });
}
