//! Loom-lite models for the workspace's lock-free core.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p bh-common --test loom --release
//! ```
//!
//! Under `--cfg loom`, `SharedBound` and `StealingCursor` swap their std
//! atomics for `bh_common::loom::sync::atomic` wrappers, and `loom::model`
//! exhaustively explores every sequentially-consistent interleaving of the
//! model threads (see `src/loom.rs` for fidelity limits).

#![cfg(loom)]

use bh_common::loom::{self, sync::Arc, thread};
use bh_common::{SharedBound, StealingCursor};

/// DESIGN.md §7 publish rule: whatever interleaving the publishers race
/// through, the bound settles on the minimum of all published thresholds,
/// and an updater immediately observes a bound no worse than its own.
#[test]
fn shared_bound_settles_on_min_of_published() {
    loom::model(|| {
        let b = Arc::new(SharedBound::new());
        let b1 = Arc::clone(&b);
        let b2 = Arc::clone(&b);
        let t1 = thread::spawn(move || {
            b1.update(3.0);
            // Publish/prune contract: after publishing d, no reader (this
            // thread included) can see a bound looser than d.
            assert!(b1.get() <= 3.0);
        });
        let t2 = thread::spawn(move || {
            b2.update(1.0);
            assert!(b2.get() <= 1.0);
        });
        b.update(2.0);
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(b.get(), 1.0, "bound must settle on the min of {{3.0, 1.0, 2.0}}");
    });
}

/// IP/cosine distances are negative; the CAS-min loop compares as floats,
/// so racing negative publishes must still settle on the float minimum
/// (raw-bit ordering would invert it).
#[test]
fn shared_bound_min_is_float_ordered_for_negative_distances() {
    loom::model(|| {
        let b = Arc::new(SharedBound::new());
        let b1 = Arc::clone(&b);
        let t1 = thread::spawn(move || b1.update(-2.0));
        b.update(-0.5);
        t1.join().unwrap();
        assert_eq!(b.get(), -2.0);
    });
}

/// A pruning reader may race the publishers arbitrarily, but the bound it
/// observes only ever tightens: two successive reads are non-increasing.
/// (This is what makes `d > bound` pruning safe to evaluate at any time.)
#[test]
fn shared_bound_is_monotonic_under_concurrent_publish() {
    loom::model(|| {
        let b = Arc::new(SharedBound::new());
        let pb = Arc::clone(&b);
        let ob = Arc::clone(&b);
        let publisher = thread::spawn(move || {
            pb.update(4.0);
            pb.update(1.5);
        });
        let observer = thread::spawn(move || {
            let first = ob.get();
            let second = ob.get();
            assert!(
                second <= first,
                "bound loosened between reads: {first} -> {second}"
            );
        });
        publisher.join().unwrap();
        observer.join().unwrap();
        assert_eq!(b.get(), 1.5);
    });
}

/// The skip counter is observability-only, but its adds must not be lost.
#[test]
fn shared_bound_skip_counter_never_loses_updates() {
    loom::model(|| {
        let b = Arc::new(SharedBound::new());
        let b1 = Arc::clone(&b);
        let t1 = thread::spawn(move || b1.record_skips(2));
        b.record_skips(3);
        t1.join().unwrap();
        assert_eq!(b.skips(), 5);
    });
}

/// The work-stealing invariant behind segment fan-out and compaction: over
/// any interleaving, each index in `0..len` is claimed exactly once, and
/// once exhausted every worker sees `None`.
#[test]
fn stealing_cursor_claims_each_index_exactly_once() {
    loom::model(|| {
        const LEN: usize = 3;
        let c = Arc::new(StealingCursor::new());
        let c1 = Arc::clone(&c);
        let t1 = thread::spawn(move || {
            let mut mine = Vec::new();
            while let Some(i) = c1.claim(LEN) {
                mine.push(i);
            }
            mine
        });
        let mut mine = Vec::new();
        while let Some(i) = c.claim(LEN) {
            mine.push(i);
        }
        let theirs = t1.join().unwrap();
        // Exhaustion is sticky for every worker.
        assert_eq!(c.claim(LEN), None);

        let mut all = mine;
        all.extend(theirs);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2], "indices must partition 0..{LEN}");
    });
}
