//! Integration tests for the lockdep runtime (`bh_common::sync`): a
//! deliberate ABBA deadlock that must panic with both class names instead of
//! hanging, and poison recovery across threads. Runs under normal debug
//! `cargo test` and under `RUSTFLAGS="--cfg lockdep"` (the CI lockdep lane);
//! the deadlock test no-ops when the runtime is compiled out.

#![cfg(not(loom))]

use bh_common::sync::{classes, held_lock_names, lockdep_enabled, Condvar, Mutex};
use bh_common::BhError;
use std::sync::{mpsc, Arc};
use std::thread;

/// Two threads take `TEST_OUTER`/`TEST_INNER` in opposite orders — the
/// classic ABBA deadlock. The inverted thread must panic at its second
/// acquisition (before blocking), naming both classes; the legal-order
/// thread must then complete because `lock()` recovers the poison the
/// panicking thread left behind.
#[test]
fn abba_deadlock_panics_with_both_class_names() {
    if !lockdep_enabled() {
        eprintln!("lockdep runtime compiled out (release without --cfg lockdep); skipping");
        return;
    }
    let outer = Arc::new(Mutex::new(&classes::TEST_OUTER, 0u32));
    let inner = Arc::new(Mutex::new(&classes::TEST_INNER, 0u32));

    // Legal-order thread: holds OUTER before the inverted thread starts, so
    // a real ABBA interleaving is on the table, then waits for the inverted
    // thread's verdict before taking INNER.
    let (holding_outer_tx, holding_outer_rx) = mpsc::channel();
    let (inverted_done_tx, inverted_done_rx) = mpsc::channel::<()>();
    let legal = {
        let outer = Arc::clone(&outer);
        let inner = Arc::clone(&inner);
        thread::spawn(move || {
            let mut o = outer.lock();
            holding_outer_tx.send(()).unwrap();
            inverted_done_rx.recv().unwrap();
            let mut i = inner.lock(); // recovers the inverted thread's poison
            *o += 1;
            *i += 1;
        })
    };
    holding_outer_rx.recv().unwrap();

    // Inverted thread: INNER then OUTER. Without lockdep this blocks on
    // OUTER forever (the legal thread owns it); with lockdep the second
    // acquisition panics deterministically before blocking.
    let err = {
        let outer = Arc::clone(&outer);
        let inner = Arc::clone(&inner);
        thread::spawn(move || {
            let _i = inner.lock();
            let _o = outer.lock();
        })
        .join()
        .expect_err("inverted acquisition must panic, not deadlock")
    };
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("lock-order violation"), "unexpected panic: {msg}");
    assert!(msg.contains("TEST_OUTER"), "panic must name the acquired class: {msg}");
    assert!(msg.contains("TEST_INNER"), "panic must name the held class: {msg}");

    inverted_done_tx.send(()).unwrap();
    legal.join().expect("legal-order thread completes after the inversion");
    assert_eq!(*outer.lock(), 1);
    assert_eq!(*inner.lock(), 1);
    assert!(held_lock_names().is_empty());
}

/// A panic on one thread poisons the lock; every later accessor chooses its
/// poisoning policy — `lock()` recovers, `lock_checked()` reports.
#[test]
fn cross_thread_poison_recovers_and_reports() {
    let m = Arc::new(Mutex::new(&classes::TEST_EXTRA, vec![1u32, 2, 3]));
    {
        let m = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let mut g = m.lock();
            g.push(4);
            panic!("die while holding the lock");
        })
        .join();
    }
    match m.lock_checked() {
        Err(BhError::LockPoisoned(class)) => assert_eq!(class, "TEST_EXTRA"),
        other => panic!("expected LockPoisoned, got {other:?}"),
    }
    // The mutation before the panic is preserved and servable.
    assert_eq!(m.lock().as_slice(), &[1, 2, 3, 4]);
}

/// Condvar waiters survive a producer that panics after notifying: the wait
/// loop re-acquires through the poison and sees the published value.
#[test]
fn condvar_wait_recovers_producer_poison() {
    let pair = Arc::new((Mutex::new(&classes::TEST_EXTRA, 0u32), Condvar::new()));
    let waiter = {
        let pair = Arc::clone(&pair);
        thread::spawn(move || {
            let (m, cv) = &*pair;
            let mut g = m.lock();
            while *g == 0 {
                cv.wait(&mut g);
            }
            *g
        })
    };
    {
        let pair = Arc::clone(&pair);
        let _ = thread::spawn(move || {
            let (m, cv) = &*pair;
            *m.lock() = 7;
            cv.notify_all();
            let _g = m.lock();
            panic!("poison after publishing");
        })
        .join();
    }
    assert_eq!(waiter.join().expect("waiter must not see the panic"), 7);
}
