//! Ranked synchronization primitives with a lockdep-style runtime checker.
//!
//! Every lock in the workspace belongs to a [`LockClass`] — a *named rank*
//! registered in the one in-tree rank table below ([`classes`]). The rule is
//! simple and global: **a thread may only acquire locks in strictly
//! increasing rank order.** Because the relation is a total order, any
//! schedule that obeys it is deadlock-free by construction; any code path
//! that violates it is a latent ABBA deadlock even if today's interleavings
//! never trip it.
//!
//! Two layers enforce the rule:
//!
//! * **Runtime (this module).** [`Mutex`], [`RwLock`] and [`Condvar`] wrap
//!   their `std::sync` counterparts. Under `cfg(debug_assertions)` or
//!   `--cfg lockdep` each acquisition is checked against a thread-local
//!   held-lock stack and recorded in a global acquisition-order edge graph
//!   ([`lockgraph::EdgeGraph`]); a rank inversion or a first-seen cycle
//!   panics immediately with both class names and both acquisition sites —
//!   *before* blocking, so a would-be deadlock becomes a deterministic test
//!   failure instead of a hung build. In release builds the wrappers are
//!   plain newtypes over std with no bookkeeping on the lock/unlock paths.
//! * **Static (`cargo xtask lint`).** Rule 7 (`raw-sync`) forbids raw
//!   `std::sync`/`parking_lot` lock types outside this file, and rule 8
//!   (`lock-order`) rebuilds the class-level acquisition graph from nested
//!   guard scopes across the whole tree and fails on any rank inversion or
//!   cycle — catching orderings that no test happens to execute.
//!
//! Poisoning: the default accessors ([`Mutex::lock`], [`RwLock::read`],
//! [`RwLock::write`]) recover from poison *and clear it* (parking_lot
//! semantics — a panic while holding a lock does not doom every later
//! access), while the `_checked` variants surface poison as
//! [`BhError::LockPoisoned`] for call sites that want to fail the request
//! instead; a checked acquisition only errors in the window between the
//! poisoning panic and the next recovering access.

use crate::error::{BhError, Result};
use std::fmt;
use std::sync::PoisonError;
use std::time::Duration;

/// One row of the rank table: a named lock rank.
///
/// Classes are `static`s (one per *logical* lock, shared by all instances of
/// that lock — e.g. every `LruCache` shard uses `LRU_INNER`). The `id` is a
/// dense index into [`classes::ALL`], used by the edge graph.
#[derive(Debug)]
pub struct LockClass {
    /// Human-readable name, used in panic messages and lint output.
    pub name: &'static str,
    /// Acquisition rank; nested acquisitions must strictly increase.
    pub rank: u16,
    /// Dense index into [`classes::ALL`].
    pub id: u16,
}

/// Declares the workspace rank table: each entry becomes a
/// `pub static NAME: LockClass` in [`classes`] with a sequentially assigned
/// dense `id`, plus a `classes::ALL` slice in declaration order.
macro_rules! lock_rank_table {
    ($($(#[$doc:meta])* $name:ident = $rank:literal,)+) => {
        /// The workspace lock-rank table. **This is the only place ranks are
        /// declared**; `cargo xtask lint` (rule 8) parses this table, so new
        /// locks must be registered here with a rank consistent with every
        /// nesting they participate in.
        pub mod classes {
            use super::LockClass;
            lock_rank_table!(@items 0u16; $($(#[$doc])* $name = $rank,)+);
            /// Every class in declaration order, indexed by [`LockClass::id`].
            pub static ALL: &[&LockClass] = &[$(&$name),+];
        }
    };
    (@items $id:expr; $(#[$doc:meta])* $name:ident = $rank:literal, $($rest:tt)*) => {
        $(#[$doc])*
        pub static $name: LockClass = LockClass {
            name: stringify!($name),
            rank: $rank,
            id: $id,
        };
        lock_rank_table!(@items $id + 1; $($rest)*);
    };
    (@items $id:expr;) => {};
}

lock_rank_table! {
    /// `bh-bench` `CpuPool` slot accounting. Lowest rank: a benchmark
    /// workload may acquire anything while a slot is outstanding, and the
    /// slot's `Drop` re-locks the pool after workload guards are gone.
    BENCH_CPUPOOL = 50,
    /// `Database::tables` registry map; held (read) across whole-table
    /// operations that take every storage lock below.
    DB_TABLES = 100,
    /// `Database::vws` virtual-warehouse registry map.
    DB_VWS = 110,
    /// `PlanCache::map` — plan lookup/store; guards are statement-scoped
    /// but planning may consult storage sketches below.
    PLANCACHE_MAP = 150,
    /// `VirtualWarehouse::workers` membership map.
    VW_WORKERS = 200,
    /// `VirtualWarehouse::ring` consistent-hash ring; held (read) while
    /// recording assignments in `previous_owner`.
    VW_RING = 210,
    /// `VirtualWarehouse::previous_owner` cache-affinity map; acquired
    /// under `VW_RING`.
    VW_PREV_OWNER = 220,
    /// `Worker::warming` in-flight background-warm claim set.
    WORKER_WARMING = 250,
    /// `TableStore::compaction_lock` — serializes compaction passes; held
    /// across segment-map writes, delete-map updates and object-store I/O.
    TABLE_COMPACTION = 300,
    /// `TableStore::segments` metadata map; held (write) across remote
    /// object-store reads during `reload_from_store`.
    TABLE_SEGMENTS = 310,
    /// `TableStore::clusterer` semantic-clusterer slot.
    TABLE_CLUSTERER = 320,
    /// `TableStore::sketch` histogram builder.
    TABLE_SKETCH = 330,
    /// `TableStore::sketch_cache` memoized sketch snapshot.
    TABLE_SKETCH_CACHE = 340,
    /// `DeleteMap::bitmaps` per-segment delete bitmaps.
    DELETE_BITMAPS = 360,
    /// `IndexCache::inflight` single-flight set; held while counting
    /// metrics and waiting on the single-flight condvar.
    IDXCACHE_INFLIGHT = 400,
    /// `IndexCache::pending` prefetch map; held across `get_begin` on the
    /// remote store (object-store + reactor ranks above).
    IDXCACHE_PENDING = 410,
    /// `IndexCache::partial` tiered partial-index map.
    IDXCACHE_PARTIAL = 420,
    /// `LruCache` internals (memory/disk index caches, block caches).
    LRU_INNER = 450,
    /// Object-store blob maps (`InMemoryObjectStore`, disk manifests);
    /// held while charging simulated transfers to the reactor.
    OBJECTSTORE_BLOBS = 500,
    /// `IndexRegistry::factories` index-factory map.
    REGISTRY_FACTORIES = 550,
    /// `cq::Reactor` deadline heap; near the top — completion-queue
    /// bookkeeping may be reached from under any storage lock.
    CQ_INNER = 800,
    /// `MetricsRegistry` counter map. Metrics are leaf locks: counters are
    /// bumped from under nearly every other lock in the system.
    METRICS_COUNTERS = 850,
    /// `MetricsRegistry` gauge map.
    METRICS_GAUGES = 860,
    /// `MetricsRegistry` histogram map.
    METRICS_HISTOGRAMS = 870,
    /// `querylog::Ring` record slots. Near the top: the query log appends
    /// one record at query completion, potentially from under any lock the
    /// statement path still holds.
    QUERYLOG_SLOT = 880,
    /// `QueryLog` slow-query span store (retained traces + policy).
    QUERYLOG_SLOW = 890,
    /// `trace::Ring` span slots. Highest real rank: spans finish (and are
    /// recorded) while arbitrary locks are held.
    TRACE_SLOT = 900,
    /// Test fixture: outer lock of the deliberate-deadlock tests.
    TEST_OUTER = 9000,
    /// Test fixture: inner lock of the deliberate-deadlock tests.
    TEST_INNER = 9010,
    /// Test fixture: spare class for condvar/poison tests.
    TEST_EXTRA = 9020,
}

/// True when the lockdep runtime is compiled in (debug builds or
/// `--cfg lockdep`; disabled under `--cfg loom`, whose model tests drive
/// the graph directly).
pub const fn lockdep_enabled() -> bool {
    cfg!(all(any(debug_assertions, lockdep), not(loom)))
}

/// First-sighting acquisition edges recorded by the lockdep runtime, as
/// `(held, acquired)` class pairs in rank-table order. Empty when the
/// runtime is compiled out (release builds without `--cfg lockdep`). Feeds
/// the `system.lock_classes` introspection table.
pub fn lockdep_edges() -> Vec<(&'static LockClass, &'static LockClass)> {
    #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
    {
        lockdep::edges()
    }
    #[cfg(not(all(any(debug_assertions, lockdep), not(loom))))]
    {
        Vec::new()
    }
}

/// Lock classes held by the current thread, innermost last. Empty when the
/// lockdep runtime is compiled out.
pub fn held_lock_names() -> Vec<&'static str> {
    #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
    {
        lockdep::held_names()
    }
    #[cfg(not(all(any(debug_assertions, lockdep), not(loom))))]
    {
        Vec::new()
    }
}

/// The acquisition-order edge graph: a dense atomic adjacency matrix over
/// lock-class ids. Always compiled (the loom model exercises the publish
/// path); the lockdep runtime feeds the global instance.
pub mod lockgraph {
    #[cfg(loom)]
    use crate::loom::sync::atomic::{AtomicU64, Ordering};
    #[cfg(not(loom))]
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Directed graph over `n` nodes; edge `a -> b` means "a was held while
    /// b was acquired". Rows are bitmask words so publication is a single
    /// `fetch_or` — lock-free, idempotent, and first-sighting-detecting
    /// (the publisher whose `fetch_or` flips the bit owns the new edge and
    /// runs the cycle backstop).
    pub struct EdgeGraph {
        n: usize,
        words_per_row: usize,
        bits: Box<[AtomicU64]>,
    }

    impl EdgeGraph {
        /// An empty graph over `n` nodes.
        pub fn new(n: usize) -> EdgeGraph {
            let words_per_row = n.div_ceil(64);
            let bits = (0..n * words_per_row).map(|_| AtomicU64::new(0)).collect();
            EdgeGraph { n, words_per_row, bits }
        }

        /// Number of nodes.
        pub fn node_count(&self) -> usize {
            self.n
        }

        /// Record `from -> to`; returns `true` iff this call is the first
        /// to publish the edge.
        pub fn add_edge(&self, from: usize, to: usize) -> bool {
            let word = &self.bits[from * self.words_per_row + to / 64];
            let bit = 1u64 << (to % 64);
            word.fetch_or(bit, Ordering::SeqCst) & bit == 0
        }

        /// Is `from -> to` present?
        pub fn has_edge(&self, from: usize, to: usize) -> bool {
            let word = &self.bits[from * self.words_per_row + to / 64];
            word.load(Ordering::SeqCst) & (1u64 << (to % 64)) != 0
        }

        /// A path `from -> ... -> to` (inclusive of both endpoints), if one
        /// exists. `from == to` requires a self-edge.
        pub fn find_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
            if from == to {
                return self.has_edge(from, to).then(|| vec![from, to]);
            }
            let mut parent = vec![usize::MAX; self.n];
            let mut visited = vec![false; self.n];
            visited[from] = true;
            let mut stack = vec![from];
            while let Some(u) = stack.pop() {
                for v in 0..self.n {
                    if !self.has_edge(u, v) || visited[v] {
                        continue;
                    }
                    parent[v] = u;
                    if v == to {
                        let mut path = vec![to];
                        let mut cur = u;
                        while cur != usize::MAX {
                            path.push(cur);
                            cur = parent[cur];
                        }
                        path.reverse();
                        return Some(path);
                    }
                    visited[v] = true;
                    stack.push(v);
                }
            }
            None
        }

        /// After publishing `from -> to`: the cycle it closes (as a node
        /// sequence starting and ending at `to`), if any.
        pub fn cycle_through(&self, from: usize, to: usize) -> Option<Vec<usize>> {
            let mut cycle = self.find_path(to, from)?;
            cycle.push(to);
            Some(cycle)
        }
    }

    impl core::fmt::Debug for EdgeGraph {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.debug_struct("EdgeGraph").field("nodes", &self.n).finish_non_exhaustive()
        }
    }
}

/// The lockdep runtime: thread-local held stack + the global edge graph.
/// Compiled only when checking is on; the wrappers call in before/after
/// every std lock operation.
#[cfg(all(any(debug_assertions, lockdep), not(loom)))]
mod lockdep {
    use super::lockgraph::EdgeGraph;
    use super::{classes, LockClass};
    use std::cell::RefCell;
    use std::panic::Location;
    use std::sync::OnceLock;

    struct Held {
        class: &'static LockClass,
        at: &'static Location<'static>,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    fn graph() -> &'static EdgeGraph {
        static GRAPH: OnceLock<EdgeGraph> = OnceLock::new();
        GRAPH.get_or_init(|| EdgeGraph::new(classes::ALL.len()))
    }

    /// Check + record an acquisition of `class` at `at`. Panics on rank
    /// inversion (including same-class nesting) *before* the caller blocks
    /// on the underlying lock, so ABBA deadlocks fail fast and by name.
    pub(super) fn acquire(class: &'static LockClass, at: &'static Location<'static>) {
        let mut violation: Option<String> = None;
        let mut edges: Vec<u16> = Vec::new();
        // try_with + deferred panic: never unwind while the RefCell borrow
        // is live — the unwind drops other guards, which re-enter release().
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            for h in held.iter() {
                if h.class.rank >= class.rank {
                    violation = Some(format!(
                        "lock-order violation: acquiring lock class '{}' (rank {}) at {} \
                         while holding '{}' (rank {}) acquired at {}; \
                         nested acquisitions must strictly increase in rank \
                         (see bh_common::sync rank table)",
                        class.name, class.rank, at, h.class.name, h.class.rank, h.at,
                    ));
                    return;
                }
                edges.push(h.class.id);
            }
            held.push(Held { class, at });
        });
        if let Some(msg) = violation {
            panic!("{msg}");
        }
        let g = graph();
        for from in edges {
            let (from, to) = (from as usize, class.id as usize);
            if g.add_edge(from, to) {
                // Backstop: the strict-rank check above makes cycles
                // unreachable through this path, but the graph is the
                // ground truth if ranks are ever relaxed.
                if let Some(cycle) = g.cycle_through(from, to) {
                    let names: Vec<&str> =
                        cycle.iter().map(|&i| classes::ALL[i].name).collect();
                    panic!(
                        "lock-order cycle detected: {} (closed by edge {} -> {})",
                        names.join(" -> "),
                        classes::ALL[from].name,
                        classes::ALL[to].name,
                    );
                }
            }
        }
    }

    /// Forget the innermost held entry of `class` (guard drop, condvar
    /// wait, failed checked acquisition).
    pub(super) fn release(class: &'static LockClass) {
        // try_with: guards may drop during thread teardown after the TLS
        // destructor has run.
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|h| h.class.id == class.id) {
                held.remove(pos);
            }
        });
    }

    pub(super) fn held_names() -> Vec<&'static str> {
        HELD.try_with(|held| held.borrow().iter().map(|h| h.class.name).collect())
            .unwrap_or_default()
    }

    pub(super) fn edges() -> Vec<(&'static LockClass, &'static LockClass)> {
        let g = graph();
        let mut out = Vec::new();
        for from in classes::ALL {
            for to in classes::ALL {
                if g.has_edge(from.id as usize, to.id as usize) {
                    out.push((*from, *to));
                }
            }
        }
        out
    }
}

/// A ranked mutex: `std::sync::Mutex` plus a [`LockClass`].
///
/// [`lock`](Mutex::lock) recovers from poison; [`lock_checked`](Mutex::lock_checked)
/// surfaces poison as [`BhError::LockPoisoned`].
pub struct Mutex<T: ?Sized> {
    class: &'static LockClass,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new mutex of the given class.
    pub fn new(class: &'static LockClass, value: T) -> Mutex<T> {
        Mutex { class, inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, recovering the value even if poisoned.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// This lock's class.
    pub fn class(&self) -> &'static LockClass {
        self.class
    }

    /// Lock, recovering from poison. Panics (with both class names) on a
    /// rank inversion when lockdep is on.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
        lockdep::acquire(self.class, std::panic::Location::caller());
        let g = self.inner.lock().unwrap_or_else(|e| {
            self.inner.clear_poison();
            e.into_inner()
        });
        MutexGuard { class: self.class, inner: Some(g) }
    }

    /// Lock, surfacing poison as [`BhError::LockPoisoned`].
    #[track_caller]
    pub fn lock_checked(&self) -> Result<MutexGuard<'_, T>> {
        #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
        lockdep::acquire(self.class, std::panic::Location::caller());
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard { class: self.class, inner: Some(g) }),
            Err(_) => {
                #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
                lockdep::release(self.class);
                Err(BhError::LockPoisoned(self.class.name.to_string()))
            }
        }
    }

    /// Exclusive access without locking (the borrow checker proves
    /// uniqueness); recovers from poison.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("class", &self.class.name).finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]. Wraps the std guard in an `Option` so
/// [`Condvar::wait`] can hand the raw guard to std and re-install it.
pub struct MutexGuard<'a, T: ?Sized> {
    class: &'static LockClass,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> MutexGuard<'_, T> {
    /// The class of the lock this guard holds.
    pub fn lock_class(&self) -> &'static LockClass {
        self.class
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard invariant: lock held outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard invariant: lock held outside Condvar::wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
            lockdep::release(self.class);
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A ranked reader-writer lock: `std::sync::RwLock` plus a [`LockClass`].
/// Read and write acquisitions both count for ordering (a read still
/// participates in ABBA deadlocks through a queued writer).
pub struct RwLock<T: ?Sized> {
    class: &'static LockClass,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new rwlock of the given class.
    pub fn new(class: &'static LockClass, value: T) -> RwLock<T> {
        RwLock { class, inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, recovering the value even if poisoned.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// This lock's class.
    pub fn class(&self) -> &'static LockClass {
        self.class
    }

    /// Shared lock, recovering from poison.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
        lockdep::acquire(self.class, std::panic::Location::caller());
        let g = self.inner.read().unwrap_or_else(|e| {
            self.inner.clear_poison();
            e.into_inner()
        });
        RwLockReadGuard { class: self.class, inner: g }
    }

    /// Exclusive lock, recovering from poison.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
        lockdep::acquire(self.class, std::panic::Location::caller());
        let g = self.inner.write().unwrap_or_else(|e| {
            self.inner.clear_poison();
            e.into_inner()
        });
        RwLockWriteGuard { class: self.class, inner: g }
    }

    /// Shared lock, surfacing poison as [`BhError::LockPoisoned`].
    #[track_caller]
    pub fn read_checked(&self) -> Result<RwLockReadGuard<'_, T>> {
        #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
        lockdep::acquire(self.class, std::panic::Location::caller());
        match self.inner.read() {
            Ok(g) => Ok(RwLockReadGuard { class: self.class, inner: g }),
            Err(_) => {
                #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
                lockdep::release(self.class);
                Err(BhError::LockPoisoned(self.class.name.to_string()))
            }
        }
    }

    /// Exclusive lock, surfacing poison as [`BhError::LockPoisoned`].
    #[track_caller]
    pub fn write_checked(&self) -> Result<RwLockWriteGuard<'_, T>> {
        #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
        lockdep::acquire(self.class, std::panic::Location::caller());
        match self.inner.write() {
            Ok(g) => Ok(RwLockWriteGuard { class: self.class, inner: g }),
            Err(_) => {
                #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
                lockdep::release(self.class);
                Err(BhError::LockPoisoned(self.class.name.to_string()))
            }
        }
    }

    /// Exclusive access without locking; recovers from poison.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").field("class", &self.class.name).finish_non_exhaustive()
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    class: &'static LockClass,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> RwLockReadGuard<'_, T> {
    /// The class of the lock this guard holds.
    pub fn lock_class(&self) -> &'static LockClass {
        self.class
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
        lockdep::release(self.class);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    class: &'static LockClass,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> RwLockWriteGuard<'_, T> {
    /// The class of the lock this guard holds.
    pub fn lock_class(&self) -> &'static LockClass {
        self.class
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
        lockdep::release(self.class);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Condition variable paired with a ranked [`Mutex`]. Waiting releases the
/// mutex in the lockdep bookkeeping and re-checks ordering on wake-up
/// (against whatever else the thread still holds).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Block until notified; the guard is released during the wait and
    /// re-held on return. Recovers from poison.
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let raw = guard.inner.take().expect("guard invariant: wait on a held guard");
        #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
        lockdep::release(guard.class);
        let raw = self.inner.wait(raw).unwrap_or_else(PoisonError::into_inner);
        #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
        lockdep::acquire(guard.class, std::panic::Location::caller());
        guard.inner = Some(raw);
    }

    /// [`wait`](Condvar::wait) with a timeout; returns `true` if the wait
    /// timed out.
    #[track_caller]
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, dur: Duration) -> bool {
        let raw = guard.inner.take().expect("guard invariant: wait on a held guard");
        #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
        lockdep::release(guard.class);
        let (raw, timeout) =
            self.inner.wait_timeout(raw, dur).unwrap_or_else(PoisonError::into_inner);
        #[cfg(all(any(debug_assertions, lockdep), not(loom)))]
        lockdep::acquire(guard.class, std::panic::Location::caller());
        guard.inner = Some(raw);
        timeout.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::lockgraph::EdgeGraph;
    use super::{classes, held_lock_names, lockdep_enabled, Condvar, Mutex, RwLock};
    use crate::error::BhError;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn rank_table_is_strictly_increasing_and_dense() {
        let all = classes::ALL;
        assert!(!all.is_empty());
        for (i, c) in all.iter().enumerate() {
            assert_eq!(c.id as usize, i, "{} has non-dense id", c.name);
        }
        for w in all.windows(2) {
            assert!(
                w[0].rank < w[1].rank,
                "rank table not strictly increasing: {} ({}) >= {} ({})",
                w[0].name,
                w[0].rank,
                w[1].name,
                w[1].rank
            );
        }
    }

    #[test]
    fn ordered_nesting_is_allowed() {
        let outer = Mutex::new(&classes::TEST_OUTER, 1);
        let inner = Mutex::new(&classes::TEST_INNER, 2);
        let a = outer.lock();
        let b = inner.lock();
        assert_eq!(*a + *b, 3);
        if lockdep_enabled() {
            assert_eq!(held_lock_names(), vec!["TEST_OUTER", "TEST_INNER"]);
        }
        drop(b);
        drop(a);
        assert!(held_lock_names().is_empty());
    }

    #[test]
    fn rank_inversion_panics_with_both_class_names() {
        if !lockdep_enabled() {
            return;
        }
        let inner = Arc::new(Mutex::new(&classes::TEST_INNER, ()));
        let outer = Arc::new(Mutex::new(&classes::TEST_OUTER, ()));
        let err = std::thread::spawn(move || {
            let _i = inner.lock();
            let _o = outer.lock(); // rank 9000 under rank 9010: inversion
        })
        .join()
        .expect_err("inversion must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("TEST_OUTER"), "panic names acquired class: {msg}");
        assert!(msg.contains("TEST_INNER"), "panic names held class: {msg}");
        assert!(msg.contains("lock-order violation"), "{msg}");
    }

    #[test]
    fn same_class_nesting_panics() {
        if !lockdep_enabled() {
            return;
        }
        let a = Arc::new(Mutex::new(&classes::TEST_EXTRA, ()));
        let b = Arc::new(Mutex::new(&classes::TEST_EXTRA, ()));
        let err = std::thread::spawn(move || {
            let _a = a.lock();
            let _b = b.lock();
        })
        .join()
        .expect_err("same-class nesting must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("TEST_EXTRA"), "{msg}");
    }

    #[test]
    fn rwlock_read_then_higher_write_is_allowed() {
        let outer = RwLock::new(&classes::TEST_OUTER, 7);
        let inner = RwLock::new(&classes::TEST_INNER, 0);
        let r = outer.read();
        *inner.write() = *r;
        drop(r);
        assert_eq!(*inner.read(), 7);
        assert!(held_lock_names().is_empty());
    }

    #[test]
    fn poisoned_lock_recovers_on_plain_lock() {
        let m = Arc::new(Mutex::new(&classes::TEST_EXTRA, 41));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g = 42;
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the panic above does not doom later access.
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn poisoned_lock_checked_returns_bherror() {
        let m = Arc::new(Mutex::new(&classes::TEST_EXTRA, 0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        match m.lock_checked() {
            Err(BhError::LockPoisoned(name)) => assert_eq!(name, "TEST_EXTRA"),
            other => panic!("expected LockPoisoned, got {other:?}"),
        }
        // ...and the recovering accessor still works afterwards.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn poisoned_rwlock_checked_returns_bherror() {
        let l = Arc::new(RwLock::new(&classes::TEST_EXTRA, 0));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        assert!(matches!(l.read_checked(), Err(BhError::LockPoisoned(_))));
        assert!(matches!(l.write_checked(), Err(BhError::LockPoisoned(_))));
        assert_eq!(*l.read(), 0);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(&classes::TEST_EXTRA, false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
            *g
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
        assert!(held_lock_names().is_empty());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(&classes::TEST_EXTRA, ());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(1)));
        // The guard is usable (re-held) after the timed-out wait.
        drop(g);
        assert!(held_lock_names().is_empty());
    }

    #[test]
    fn edge_graph_add_and_first_sighting() {
        let g = EdgeGraph::new(70); // spans a word boundary
        assert!(!g.has_edge(1, 65));
        assert!(g.add_edge(1, 65), "first publish owns the edge");
        assert!(!g.add_edge(1, 65), "second publish does not");
        assert!(g.has_edge(1, 65));
        assert!(!g.has_edge(65, 1));
    }

    #[test]
    fn edge_graph_reachability_and_cycle() {
        let g = EdgeGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert_eq!(g.find_path(0, 3), Some(vec![0, 1, 2, 3]));
        assert_eq!(g.find_path(3, 0), None);
        assert!(g.cycle_through(2, 3).is_none(), "no cycle yet");
        // Closing edge 3 -> 0 creates 0 -> 1 -> 2 -> 3 -> 0.
        g.add_edge(3, 0);
        let cycle = g.cycle_through(3, 0).expect("cycle now closed");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() >= 3);
    }

    #[test]
    fn edge_graph_self_loop() {
        let g = EdgeGraph::new(3);
        assert!(g.find_path(1, 1).is_none());
        g.add_edge(1, 1);
        assert_eq!(g.find_path(1, 1), Some(vec![1, 1]));
        assert_eq!(g.cycle_through(1, 1), Some(vec![1, 1, 1]));
    }

    #[test]
    fn guard_debug_forwards_to_value() {
        let m = Mutex::new(&classes::TEST_EXTRA, 5u32);
        assert_eq!(format!("{:?}", m.lock()), "5");
        assert!(format!("{m:?}").contains("TEST_EXTRA"));
    }
}
