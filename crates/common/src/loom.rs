//! Loom-lite: an in-tree model checker for the workspace's lock-free paths.
//!
//! The real `loom` crate is the reference tool for this job, but this
//! workspace builds in offline containers with no registry access, so we
//! vendor the small subset we need: exhaustive exploration of all
//! **sequentially-consistent interleavings** of a handful of model threads,
//! with a context-switch point before every atomic operation.
//!
//! The API deliberately mirrors loom's so call sites read identically and a
//! future swap to the real crate is a one-line import change:
//!
//! ```ignore
//! use bh_common::loom;
//!
//! loom::model(|| {
//!     let b = loom::sync::Arc::new(SharedBound::new());
//!     let b2 = b.clone();
//!     let t = loom::thread::spawn(move || b2.update(3.0));
//!     b.update(5.0);
//!     t.join().unwrap();
//!     assert_eq!(b.get(), 3.0);
//! });
//! ```
//!
//! ## How it works
//!
//! Model threads are real OS threads run **cooperatively**: exactly one is
//! active at a time, gated by a mutex + condvar. Before every atomic
//! operation (and at spawn/join edges) the active thread reaches a *choice
//! point* where the scheduler picks which runnable thread goes next,
//! recording the chosen thread and the set of alternatives. [`model`] replays
//! the closure under depth-first search over those choices: after each run it
//! rewinds to the deepest choice point with an untried alternative and forces
//! that branch, until the tree is exhausted. Assertion failures, deadlocks
//! and panics on any interleaving are reported with the usual panic payload.
//!
//! ## Fidelity limits (vs. real loom)
//!
//! * All atomics execute `SeqCst` regardless of the ordering argument: the
//!   checker explores thread *interleavings*, not weak-memory *reorderings*.
//!   It therefore proves algorithmic (CAS-protocol) correctness, while the
//!   CI TSan lane covers ordering races.
//! * `compare_exchange_weak` is modeled as the strong variant (no spurious
//!   failures); every user loop must tolerate strong semantics anyway.
//! * Only atomics yield. Model threads must share mutable state through the
//!   [`sync::atomic`] wrappers (plus `Arc`), which is all our lock-free code
//!   uses.
//!
//! The module is always compiled (so it typechecks in ordinary builds), but
//! the workspace only switches its atomics to these wrappers under
//! `--cfg loom`; see `bound.rs` / `cursor.rs` and `crates/common/tests/loom.rs`.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
// lint: allow(raw-sync) - the model checker's own scheduler cannot run on
// the ranked wrappers it is used to verify (circular instrumentation).
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Iteration cap before the checker gives up. Overridable via the
/// `LOOMLITE_MAX_ITERS` environment variable.
const DEFAULT_MAX_ITERS: usize = 1_000_000;

/// One recorded scheduling decision: which thread ran, out of which
/// candidates (ascending thread ids; `chosen` is always a member).
#[derive(Debug, Clone)]
struct Choice {
    chosen: usize,
    candidates: Vec<usize>,
}

#[derive(Debug)]
struct State {
    /// Per-thread: eligible to be scheduled right now.
    runnable: Vec<bool>,
    /// Per-thread: closure has completed (or was abandoned on abort).
    finished: Vec<bool>,
    /// Per-thread: the thread id it is blocked joining on, if any.
    blocked_on: Vec<Option<usize>>,
    /// The single thread currently allowed to run.
    active: usize,
    /// Decisions taken so far in this run.
    schedule: Vec<Choice>,
    /// Forced prefix of decisions (from the DFS driver).
    preset: Vec<usize>,
    /// Next decision index.
    cursor: usize,
    /// A thread panicked or the model deadlocked: unwind everyone.
    abort: bool,
    /// Every model thread has finished this run.
    all_done: bool,
    /// First panic payload observed (rethrown by [`model`]).
    payload: Option<Box<dyn Any + Send>>,
}

struct Sched {
    state: Mutex<State>,
    cv: Condvar,
}

#[derive(Clone)]
struct Ctx {
    sched: Arc<Sched>,
    tid: usize,
}

thread_local! {
    /// The scheduler this OS thread belongs to, when running inside a model.
    /// `None` outside [`model`] — atomics then behave as plain std atomics,
    /// so `--cfg loom` builds still run ordinary unit tests correctly.
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn current() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Context-switch point: called before every atomic operation.
fn yield_point() {
    if let Some(ctx) = current() {
        ctx.sched.switch(ctx.tid);
    }
}

fn aborted() -> ! {
    panic!("loom-lite: model aborted by a failure on another thread");
}

impl Sched {
    fn new(preset: Vec<usize>) -> Self {
        Sched {
            state: Mutex::new(State {
                runnable: vec![true],
                finished: vec![false],
                blocked_on: vec![None],
                active: 0,
                schedule: Vec::new(),
                preset,
                cursor: 0,
                abort: false,
                all_done: false,
                payload: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // A panicking model thread never holds this lock, but be robust to
        // poisoning anyway: the state stays consistent.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pick and activate the next thread at a choice point. Sets `all_done`
    /// when every thread has finished, aborts on deadlock.
    fn pick_next(&self, st: &mut State) {
        if st.abort {
            self.cv.notify_all();
            return;
        }
        let candidates: Vec<usize> =
            (0..st.runnable.len()).filter(|&t| st.runnable[t]).collect();
        if candidates.is_empty() {
            if st.finished.iter().all(|&f| f) {
                st.all_done = true;
            } else {
                st.abort = true;
                if st.payload.is_none() {
                    st.payload = Some(Box::new(String::from(
                        "loom-lite: deadlock — threads are blocked on join but no \
                         thread is runnable",
                    )));
                }
            }
            self.cv.notify_all();
            return;
        }
        let mut chosen = candidates[0];
        if st.cursor < st.preset.len() {
            let want = st.preset[st.cursor];
            // A forced decision must replay identically; if the closure is
            // nondeterministic the candidate set can diverge — fall back to
            // the smallest runnable thread rather than wedge.
            if candidates.contains(&want) {
                chosen = want;
            }
        }
        st.schedule.push(Choice { chosen, candidates });
        st.cursor += 1;
        st.active = chosen;
        self.cv.notify_all();
    }

    /// Yield from thread `me` and block until it is scheduled again.
    fn switch(&self, me: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            aborted();
        }
        self.pick_next(&mut st);
        while st.active != me && !st.abort {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.abort {
            drop(st);
            aborted();
        }
    }

    /// Register a new model thread; returns its tid. The child starts
    /// runnable but only executes once the scheduler activates it.
    fn register(&self) -> usize {
        let mut st = self.lock();
        let tid = st.runnable.len();
        st.runnable.push(true);
        st.finished.push(false);
        st.blocked_on.push(None);
        tid
    }

    /// Child-thread entry: block until first scheduled. Returns `false` when
    /// the model aborted before this thread ever ran.
    fn wait_for_start(&self, me: usize) -> bool {
        let mut st = self.lock();
        while st.active != me && !st.abort {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        !st.abort
    }

    /// Block thread `me` until `target` finishes.
    fn join_model(&self, me: usize, target: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            aborted();
        }
        if st.finished[target] {
            return;
        }
        st.runnable[me] = false;
        st.blocked_on[me] = Some(target);
        self.pick_next(&mut st);
        while st.active != me && !st.abort {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.abort {
            drop(st);
            aborted();
        }
    }

    /// Thread `tid` completed its closure: wake joiners, hand off.
    fn finish(&self, tid: usize) {
        let mut st = self.lock();
        st.finished[tid] = true;
        st.runnable[tid] = false;
        for t in 0..st.blocked_on.len() {
            if st.blocked_on[t] == Some(tid) {
                st.blocked_on[t] = None;
                st.runnable[t] = true;
            }
        }
        if st.abort {
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut st);
    }

    /// The root closure returned: drive any still-unfinished threads to
    /// completion so the run (and its schedule) is complete.
    fn finish_main(&self) {
        let mut st = self.lock();
        st.finished[0] = true;
        st.runnable[0] = false;
        if st.finished.iter().all(|&f| f) {
            st.all_done = true;
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut st);
        while !st.all_done && !st.abort {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Record a panic payload and unwind every model thread.
    fn abort_with(&self, payload: Box<dyn Any + Send>) {
        let mut st = self.lock();
        st.abort = true;
        if st.payload.is_none() {
            st.payload = Some(payload);
        }
        self.cv.notify_all();
    }
}

/// Exhaustively check `f` under every sequentially-consistent interleaving
/// of its model threads. Panics (with the original payload) if any
/// interleaving fails an assertion, panics, or deadlocks.
///
/// All cross-thread state must be created *inside* the closure and shared
/// via [`sync::Arc`] + [`sync::atomic`] wrappers, exactly as with loom.
pub fn model<F>(f: F)
where
    F: Fn(),
{
    let max_iters = std::env::var("LOOMLITE_MAX_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_MAX_ITERS);
    let mut preset: Vec<usize> = Vec::new();
    let mut iters = 0usize;
    loop {
        iters += 1;
        assert!(
            iters <= max_iters,
            "loom-lite: exceeded {max_iters} interleavings without exhausting the \
             schedule tree; shrink the model or raise LOOMLITE_MAX_ITERS"
        );
        let sched = Arc::new(Sched::new(preset.clone()));
        CURRENT.with(|c| {
            *c.borrow_mut() = Some(Ctx { sched: Arc::clone(&sched), tid: 0 })
        });
        let outcome = catch_unwind(AssertUnwindSafe(&f));
        match outcome {
            Ok(()) => sched.finish_main(),
            Err(p) => sched.abort_with(p),
        }
        CURRENT.with(|c| *c.borrow_mut() = None);
        let (schedule, payload) = {
            let mut st = sched.lock();
            (std::mem::take(&mut st.schedule), st.payload.take())
        };
        if let Some(p) = payload {
            resume_unwind(p);
        }
        // Depth-first: rewind to the deepest choice with an untried (larger)
        // alternative and force it on the next run.
        let mut next_preset = None;
        for i in (0..schedule.len()).rev() {
            let c = &schedule[i];
            if let Some(&alt) = c.candidates.iter().find(|&&t| t > c.chosen) {
                let mut p: Vec<usize> =
                    schedule[..i].iter().map(|ch| ch.chosen).collect();
                p.push(alt);
                next_preset = Some(p);
                break;
            }
        }
        match next_preset {
            Some(p) => preset = p,
            None => break,
        }
    }
}

/// Mirror of `loom::thread`.
pub mod thread {
    use super::{catch_unwind, current, Arc, AssertUnwindSafe, Ctx, Mutex, CURRENT};

    /// Handle to a model thread; `join` blocks at model level (a scheduling
    /// point), then reaps the OS thread.
    pub struct JoinHandle<T> {
        tid: usize,
        result: Arc<Mutex<Option<T>>>,
        os: Option<std::thread::JoinHandle<()>>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish and return its value. Mirrors
        /// `std::thread::JoinHandle::join`; a panicking child aborts the
        /// whole model, so by the time this returns `Err` is impossible —
        /// the `Result` exists for std/loom signature compatibility.
        pub fn join(mut self) -> std::thread::Result<T> {
            let ctx = current()
                .expect("loom-lite: JoinHandle::join called outside model()");
            ctx.sched.join_model(ctx.tid, self.tid);
            if let Some(os) = self.os.take() {
                let _ = os.join();
            }
            let v = self
                .result
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("loom-lite: joined thread finished without a result");
            Ok(v)
        }
    }

    /// Spawn a model thread. Must be called inside [`super::model`].
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let ctx =
            current().expect("loom-lite: thread::spawn called outside model()");
        let sched = Arc::clone(&ctx.sched);
        let tid = sched.register();
        let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let result2 = Arc::clone(&result);
        let sched2 = Arc::clone(&sched);
        let os = std::thread::spawn(move || {
            CURRENT.with(|c| {
                *c.borrow_mut() =
                    Some(Ctx { sched: Arc::clone(&sched2), tid })
            });
            if sched2.wait_for_start(tid) {
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => {
                        *result2.lock().unwrap_or_else(|e| e.into_inner()) =
                            Some(v);
                    }
                    Err(p) => sched2.abort_with(p),
                }
            }
            sched2.finish(tid);
        });
        // Spawning is itself a scheduling point: the child may run first.
        ctx.sched.switch(ctx.tid);
        JoinHandle { tid, result, os: Some(os) }
    }

    /// Explicit scheduling point (no-op outside a model).
    pub fn yield_now() {
        super::yield_point();
    }
}

/// Mirror of `loom::sync`.
pub mod sync {
    pub use std::sync::Arc;

    /// Atomic wrappers that insert a scheduling point before every
    /// operation. All operations execute `SeqCst` (see module docs).
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        macro_rules! atomic_wrapper {
            ($name:ident, $inner:ident, $t:ty) => {
                /// Model-checked stand-in for `std::sync::atomic::`
                #[doc = stringify!($inner)]
                /// — yields to the loom-lite scheduler before each op.
                #[derive(Debug, Default)]
                pub struct $name(std::sync::atomic::$inner);

                impl $name {
                    pub fn new(v: $t) -> Self {
                        Self(std::sync::atomic::$inner::new(v))
                    }

                    pub fn load(&self, _order: Ordering) -> $t {
                        super::super::yield_point();
                        self.0.load(Ordering::SeqCst)
                    }

                    pub fn store(&self, v: $t, _order: Ordering) {
                        super::super::yield_point();
                        self.0.store(v, Ordering::SeqCst)
                    }

                    pub fn swap(&self, v: $t, _order: Ordering) -> $t {
                        super::super::yield_point();
                        self.0.swap(v, Ordering::SeqCst)
                    }

                    pub fn fetch_add(&self, v: $t, _order: Ordering) -> $t {
                        super::super::yield_point();
                        self.0.fetch_add(v, Ordering::SeqCst)
                    }

                    pub fn fetch_sub(&self, v: $t, _order: Ordering) -> $t {
                        super::super::yield_point();
                        self.0.fetch_sub(v, Ordering::SeqCst)
                    }

                    pub fn fetch_or(&self, v: $t, _order: Ordering) -> $t {
                        super::super::yield_point();
                        self.0.fetch_or(v, Ordering::SeqCst)
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $t,
                        new: $t,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$t, $t> {
                        super::super::yield_point();
                        self.0.compare_exchange(
                            current,
                            new,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                    }

                    /// Modeled as the strong variant: no spurious failures.
                    pub fn compare_exchange_weak(
                        &self,
                        current: $t,
                        new: $t,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$t, $t> {
                        self.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        atomic_wrapper!(AtomicU32, AtomicU32, u32);
        atomic_wrapper!(AtomicU64, AtomicU64, u64);
        atomic_wrapper!(AtomicUsize, AtomicUsize, usize);
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    // These tests exercise the checker itself with plain std threads + the
    // wrapper atomics; they run in ordinary `cargo test` (no --cfg loom).

    #[test]
    fn wrappers_work_outside_model() {
        let a = AtomicUsize::new(1);
        assert_eq!(a.load(Ordering::Relaxed), 1);
        a.store(2, Ordering::Relaxed);
        assert_eq!(a.fetch_add(3, Ordering::Relaxed), 2);
        assert_eq!(a.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn model_runs_single_thread_closure_once_per_schedule() {
        let runs = Arc::new(AtomicUsize::new(0));
        let r = runs.clone();
        super::model(move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        // One thread, choice points have a single candidate: exactly 1 run.
        assert_eq!(runs.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn model_explores_both_orders_of_two_writers() {
        // Two threads race to store 1 and 2; across all interleavings both
        // final values must be observed.
        let saw_one = Arc::new(AtomicUsize::new(0));
        let saw_two = Arc::new(AtomicUsize::new(0));
        let (s1, s2) = (saw_one.clone(), saw_two.clone());
        super::model(move || {
            let cell = Arc::new(AtomicUsize::new(0));
            let c1 = cell.clone();
            let c2 = cell.clone();
            let t1 = super::thread::spawn(move || c1.store(1, Ordering::SeqCst));
            let t2 = super::thread::spawn(move || c2.store(2, Ordering::SeqCst));
            t1.join().ok();
            t2.join().ok();
            match cell.load(Ordering::SeqCst) {
                1 => s1.fetch_add(1, Ordering::Relaxed),
                2 => s2.fetch_add(1, Ordering::Relaxed),
                v => unreachable!("impossible final value {v}"),
            };
        });
        assert!(saw_one.load(Ordering::Relaxed) > 0, "never saw store order 2,1");
        assert!(saw_two.load(Ordering::Relaxed) > 0, "never saw store order 1,2");
    }

    #[test]
    fn model_finds_lost_update_bug() {
        // Classic non-atomic increment (load; add; store): with two threads
        // some interleaving loses an update. The checker must find it.
        let caught = std::panic::catch_unwind(|| {
            super::model(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let h: Vec<_> = (0..2)
                    .map(|_| {
                        let n = n.clone();
                        super::thread::spawn(move || {
                            let v = n.load(Ordering::SeqCst);
                            n.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for t in h {
                    t.join().ok();
                }
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(caught.is_err(), "checker failed to find the lost-update race");
    }

    #[test]
    fn model_propagates_child_panic() {
        let caught = std::panic::catch_unwind(|| {
            super::model(|| {
                let t = super::thread::spawn(|| panic!("child boom"));
                t.join().ok();
            });
        });
        let payload = caught.expect_err("child panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("child boom"), "unexpected payload: {msg}");
    }
}
