//! Seeded RNG helpers.
//!
//! Every stochastic component in the workspace (dataset synthesis, k-means
//! initialization, HNSW level assignment, workload sampling) takes an explicit
//! seed so experiments are reproducible run-to-run. This module centralizes
//! RNG construction and seed derivation.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The deterministic RNG used throughout the workspace. ChaCha8 is fast,
/// portable across platforms, and has no word-size-dependent output.
pub type DetRng = ChaCha8Rng;

/// Build a deterministic RNG from a `u64` seed.
pub fn rng(seed: u64) -> DetRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream label, so independent
/// components (e.g. per-segment index builds) get decorrelated streams without
/// coordinating. Uses the SplitMix64 finalizer, which is a bijective mixer.
pub fn derive_seed(parent: u64, label: u64) -> u64 {
    let mut z = parent ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a child RNG directly.
pub fn derived_rng(parent: u64, label: u64) -> DetRng {
    rng(derive_seed(parent, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> = (0..10).map(|_| rng(42).gen()).collect();
        let b: Vec<u32> = (0..10).map(|_| rng(42).gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng(1);
        let mut b = rng(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_seeds_decorrelate_labels() {
        let s1 = derive_seed(7, 0);
        let s2 = derive_seed(7, 1);
        assert_ne!(s1, s2);
        // Derivation is deterministic.
        assert_eq!(derive_seed(7, 0), s1);
    }

    #[test]
    fn derive_is_injective_over_small_labels() {
        let mut seen = std::collections::HashSet::new();
        for label in 0..1000u64 {
            assert!(seen.insert(derive_seed(99, label)), "collision at {label}");
        }
    }
}
