//! Lightweight metrics: named counters and latency histograms.
//!
//! The evaluation harness and several experiments (cache-miss study, read
//! amplification, serving RPC counts) need cheap, thread-safe counters that
//! can be snapshotted. This is a tiny registry — not a general observability
//! stack — sized for exactly that.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (e.g. "which kernel tier is active", "current
/// parallelism"). Unlike [`Counter`] it can be set to any value at any time.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log2 latency histogram (nanosecond resolution, buckets up
/// to ~73 minutes). Lock-free recording.
#[derive(Debug)]
pub struct Histogram {
    // bucket i counts samples with floor(log2(nanos)) == i
    buckets: [AtomicU64; 42],
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, d: Duration) {
        let nanos = d.as_nanos().min(u64::MAX as u128) as u64;
        let idx = (64 - nanos.max(1).leading_zeros() as usize - 1).min(self.buckets.len() - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples.
    pub fn mean(&self) -> Duration {
        let c = self.count();
        if c == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed) / c)
    }

    /// Approximate quantile via bucket upper bounds (`q` in `[0,1]`).
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Duration::from_nanos(1u64 << (i + 1));
            }
        }
        Duration::from_nanos(u64::MAX)
    }
}

/// A named registry of counters and histograms.
///
/// Cloning the registry is cheap (it is an `Arc` internally); all clones share
/// the same metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.inner.counters.read().get(name) {
            return c.clone();
        }
        self.inner
            .counters
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::default()))
            .clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.inner.gauges.read().get(name) {
            return g.clone();
        }
        self.inner
            .gauges
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::default()))
            .clone()
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.inner.histograms.read().get(name) {
            return h.clone();
        }
        self.inner
            .histograms
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::default()))
            .clone()
    }

    /// Current value of a counter (0 if never created).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner.counters.read().get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Current value of a gauge (0 if never created).
    pub fn gauge_value(&self, name: &str) -> u64 {
        self.inner.gauges.read().get(name).map(|g| g.get()).unwrap_or(0)
    }

    /// Snapshot of all counter values, sorted by name.
    pub fn snapshot_counters(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let m = MetricsRegistry::new();
        m.counter("cache.hit").inc();
        m.counter("cache.hit").add(2);
        assert_eq!(m.counter_value("cache.hit"), 3);
        assert_eq!(m.counter_value("cache.miss"), 0);
    }

    #[test]
    fn clones_share_state() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m.counter("x").inc();
        assert_eq!(m2.counter_value("x"), 1);
    }

    #[test]
    fn gauges_overwrite_and_share() {
        let m = MetricsRegistry::new();
        m.gauge("kernel.tier").set(2);
        m.gauge("kernel.tier").set(1);
        assert_eq!(m.gauge_value("kernel.tier"), 1);
        assert_eq!(m.gauge_value("unset"), 0);
    }

    #[test]
    fn histogram_mean_and_quantile() {
        let m = MetricsRegistry::new();
        let h = m.histogram("lat");
        for us in [10u64, 20, 30, 40, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        let mean = h.mean();
        assert!(mean >= Duration::from_micros(200) && mean <= Duration::from_micros(240));
        // p99 bucket must be at least as large as the max sample's bucket lower bound
        assert!(h.quantile(0.99) >= Duration::from_micros(1000));
        assert!(h.quantile(0.5) <= h.quantile(0.99));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn snapshot_is_sorted() {
        let m = MetricsRegistry::new();
        m.counter("b").inc();
        m.counter("a").inc();
        let snap = m.snapshot_counters();
        assert_eq!(snap[0].0, "a");
        assert_eq!(snap[1].0, "b");
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let m = MetricsRegistry::new();
        let mut handles = vec![];
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.counter("n").inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.counter_value("n"), 8000);
    }
}
