//! Lightweight metrics: named counters, gauges and latency histograms.
//!
//! The evaluation harness and several experiments (cache-miss study, read
//! amplification, serving RPC counts) need cheap, thread-safe counters that
//! can be snapshotted. This is a tiny registry — not a general observability
//! stack — sized for exactly that, plus:
//!
//! * label support by name suffixing ([`labeled`] renders
//!   `name{k="v"}` keys that [`MetricsRegistry::render_prometheus`] emits
//!   verbatim as Prometheus labels),
//! * a Prometheus text exposition of every counter/gauge/histogram,
//! * the process-wide [`crate::trace::Tracer`] (reachable from every layer
//!   that already holds the shared registry, so span context needs no extra
//!   plumbing through constructor signatures).
//!
//! Metric naming convention (asserted by tests across the workspace):
//! `<subsystem>.<object>.<event>` in lowercase dot-separated form, e.g.
//! `cache.data.hit`, `remote.get.bytes`, `vw.serving_calls`. Dots become
//! underscores in the Prometheus rendering.

use crate::trace::Tracer;
use crate::sync::{classes, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The central metric-name table: every *literal* counter/gauge/histogram
/// registration in the workspace must use a name from this list (enforced
/// by `cargo xtask lint` rule 9 `metric-names`), so a typo'd dotted name
/// fails the build instead of silently splitting one series into two.
///
/// Dynamically built names (`kernel.tier.<tier>`, `query.cbo.<choice>`,
/// `cache.<space>.{hit,miss}`, `<store-label>.get*`) are outside the rule's
/// reach; their *prefixes* are listed here for documentation only and the
/// lint does not match against them. Keep the list sorted.
pub const NAMES: &[&str] = &[
    "cache.data.bypass",
    "cache.index.disk.hit",
    "cache.index.disk.miss",
    "cache.index.head.fetch",
    "cache.index.head.hit",
    "cache.index.mem.hit",
    "cache.index.mem.miss",
    "cache.index.prefetch",
    "cache.index.prefetch.hit",
    "cache.index.preload",
    "cache.index.remote.fetch",
    "cache.index.singleflight.wait",
    "process.errors",
    "process.peak_rss_bytes",
    "process.queries",
    "process.uptime_seconds",
    "query.adaptive_expansions",
    "query.batch_size",
    "query.bind_ns",
    "query.bound_skips",
    "query.exec_ns",
    "query.executed",
    "query.fanout_batches",
    "query.index_prefetches",
    "query.iterator_visited",
    "query.parallel_segments",
    "query.plan.brute_force",
    "query.plan.filtered_traversal",
    "query.plan.post_filter",
    "query.plan.pre_filter",
    "query.plan_cache_hits",
    "query.plan_ns",
    "query.refined",
    "query.rules_applied",
    "query.segment_ns",
    "query.segments_pruned",
    "query.short_circuit",
    "query.slo",
    "query.snapshot_retries",
    "table.compactions",
    "table.parallel_compact_groups",
    "table.rows_deleted",
    "table.rows_ingested",
    "table.rows_updated",
    "table.segments_created",
    "vw.query_retries",
    "vw.scale_down",
    "vw.scale_up",
    "vw.serving_calls",
    "worker.brute_force",
    "worker.head_search",
    "worker.local_search",
    "worker.rpc_calls",
    "worker.rpc_ns",
    "worker.served_remote",
];

/// Peak resident-set size of this process in bytes, when the platform
/// exposes it (`VmHWM` in `/proc/self/status` on Linux). `None` elsewhere
/// or when the file is unreadable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (e.g. "which kernel tier is active", "current
/// parallelism"). Unlike [`Counter`] it can be set to any value at any time.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log2 latency histogram (nanosecond resolution, buckets up
/// to ~73 minutes). Lock-free recording.
#[derive(Debug)]
pub struct Histogram {
    // bucket i counts samples with floor(log2(nanos)) == i
    buckets: [AtomicU64; 42],
    sum_nanos: AtomicU64,
    count: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, d: Duration) {
        let nanos = d.as_nanos().min(u64::MAX as u128) as u64;
        let idx = (64 - nanos.max(1).leading_zeros() as usize - 1).min(self.buckets.len() - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples.
    pub fn mean(&self) -> Duration {
        let c = self.count();
        if c == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed) / c)
    }

    /// Approximate quantile via bucket upper bounds (`q` in `[0,1]`).
    ///
    /// Bucket `i` covers `[2^i, 2^(i+1) - 1]` nanoseconds; the answer is that
    /// inclusive upper bound, saturated to the largest recorded sample — so a
    /// quantile never exceeds [`Histogram::max`], and running past the last
    /// bucket returns `max()` instead of a nonsense `u64::MAX` duration.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let max = self.max_nanos.load(Ordering::Relaxed);
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                let upper = (1u64 << (i + 1)) - 1;
                return Duration::from_nanos(upper.min(max));
            }
        }
        self.max()
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    /// Convenience 99.9th percentile used by the profile renderer.
    pub fn p999(&self) -> Duration {
        self.quantile(0.999)
    }

    /// Point-in-time copy of the derived statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed)),
            mean: self.mean(),
            p50: self.quantile(0.5),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            p999: self.p999(),
            max: self.max(),
        }
    }
}

/// Derived statistics of one [`Histogram`] at a point in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: Duration,
    pub mean: Duration,
    pub p50: Duration,
    pub p95: Duration,
    pub p99: Duration,
    pub p999: Duration,
    pub max: Duration,
}

/// Build a labeled metric name: `labeled("cache.hit", &[("tier", "mem")])`
/// → `cache.hit{tier="mem"}`. The registry treats the result as an opaque
/// key; [`MetricsRegistry::render_prometheus`] splits it back apart and emits
/// the label set verbatim. Label values are escaped per the Prometheus text
/// format (`\` → `\\`, `"` → `\"`, newline → `\n`).
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Escape a Prometheus label value.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Mangle a metric name (the part before any `{label}` suffix) into the
/// Prometheus name charset `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Split a registry key into (mangled name, label suffix incl. braces).
fn split_labels(key: &str) -> (String, &str) {
    match key.find('{') {
        Some(i) => (prometheus_name(&key[..i]), &key[i..]),
        None => (prometheus_name(key), ""),
    }
}

/// A named registry of counters and histograms.
///
/// Cloning the registry is cheap (it is an `Arc` internally); all clones share
/// the same metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    /// The span recorder every holder of this registry shares. Disabled by
    /// default; `EXPLAIN ANALYZE` (and tests) enable it per query.
    tracer: Tracer,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            counters: RwLock::new(&classes::METRICS_COUNTERS, BTreeMap::new()),
            gauges: RwLock::new(&classes::METRICS_GAUGES, BTreeMap::new()),
            histograms: RwLock::new(&classes::METRICS_HISTOGRAMS, BTreeMap::new()),
            tracer: Tracer::default(),
        }
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.inner.counters.read().get(name) {
            return c.clone();
        }
        self.inner
            .counters
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::default()))
            .clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.inner.gauges.read().get(name) {
            return g.clone();
        }
        self.inner
            .gauges
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::default()))
            .clone()
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.inner.histograms.read().get(name) {
            return h.clone();
        }
        self.inner
            .histograms
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::default()))
            .clone()
    }

    /// Current value of a counter (0 if never created).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner.counters.read().get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Current value of a gauge (0 if never created).
    pub fn gauge_value(&self, name: &str) -> u64 {
        self.inner.gauges.read().get(name).map(|g| g.get()).unwrap_or(0)
    }

    /// Get or create the counter `name{labels}` (see [`labeled`]).
    pub fn counter_with_labels(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.counter(&labeled(name, labels))
    }

    /// Get or create the gauge `name{labels}` (see [`labeled`]).
    pub fn gauge_with_labels(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.gauge(&labeled(name, labels))
    }

    /// Get or create the histogram `name{labels}` (see [`labeled`]).
    pub fn histogram_with_labels(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram(&labeled(name, labels))
    }

    /// The shared span recorder (see [`crate::trace`]). Every clone of this
    /// registry observes the same tracer, so any layer holding the registry
    /// can open spans without extra constructor plumbing.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Sum the current values of every counter whose name matches the
    /// predicate, without cloning any names — the query log uses this for
    /// its per-query cache hit/miss deltas, so it must stay allocation-free.
    pub fn sum_counters(&self, matches: impl Fn(&str) -> bool) -> u64 {
        self.inner
            .counters
            .read()
            .iter()
            .filter(|(k, _)| matches(k))
            .map(|(_, c)| c.get())
            .sum()
    }

    /// Like [`Self::sum_counters`] restricted to names with a common prefix:
    /// a range scan over the sorted map, so the cost is proportional to the
    /// prefix group, not the whole registry. The query log samples cache
    /// hit/miss totals twice per statement through this — a full-registry
    /// scan there is measurable against sub-millisecond queries.
    pub fn sum_counters_prefixed(&self, prefix: &str, suffix: &str) -> u64 {
        use std::ops::Bound;
        self.inner
            .counters
            .read()
            .range::<str, _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .filter(|(k, _)| k.ends_with(suffix))
            .map(|(_, c)| c.get())
            .sum()
    }

    /// Snapshot of all counter values, sorted by name.
    pub fn snapshot_counters(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of all gauge values, sorted by name.
    pub fn snapshot_gauges(&self) -> Vec<(String, u64)> {
        self.inner
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of all histograms' derived statistics, sorted by name.
    pub fn snapshot_histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        self.inner
            .histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Render every metric in the Prometheus text exposition format
    /// (version 0.0.4). Counters and gauges render as their type; histograms
    /// render as summaries (`quantile` labels, `_sum` in seconds, `_count`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            // Labeled series of one metric share a single # TYPE line.
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for (key, value) in self.snapshot_counters() {
            let (name, labels) = split_labels(&key);
            type_line(&mut out, &name, "counter");
            out.push_str(&format!("{name}{labels} {value}\n"));
        }
        for (key, value) in self.snapshot_gauges() {
            let (name, labels) = split_labels(&key);
            type_line(&mut out, &name, "gauge");
            out.push_str(&format!("{name}{labels} {value}\n"));
        }
        for (key, snap) in self.snapshot_histograms() {
            let (name, labels) = split_labels(&key);
            type_line(&mut out, &name, "summary");
            let base = labels.strip_prefix('{').and_then(|l| l.strip_suffix('}'));
            let with = |extra: &str| match base {
                Some(inner) => format!("{{{inner},{extra}}}"),
                None => format!("{{{extra}}}"),
            };
            for (q, d) in [
                ("0.5", snap.p50),
                ("0.95", snap.p95),
                ("0.99", snap.p99),
                ("0.999", snap.p999),
            ] {
                out.push_str(&format!(
                    "{name}{} {}\n",
                    with(&format!("quantile=\"{q}\"")),
                    d.as_secs_f64()
                ));
            }
            out.push_str(&format!("{name}_sum{labels} {}\n", snap.sum.as_secs_f64()));
            out.push_str(&format!("{name}_count{labels} {}\n", snap.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let m = MetricsRegistry::new();
        m.counter("cache.hit").inc();
        m.counter("cache.hit").add(2);
        assert_eq!(m.counter_value("cache.hit"), 3);
        assert_eq!(m.counter_value("cache.miss"), 0);
    }

    #[test]
    fn clones_share_state() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m.counter("x").inc();
        assert_eq!(m2.counter_value("x"), 1);
    }

    #[test]
    fn gauges_overwrite_and_share() {
        let m = MetricsRegistry::new();
        m.gauge("kernel.tier").set(2);
        m.gauge("kernel.tier").set(1);
        assert_eq!(m.gauge_value("kernel.tier"), 1);
        assert_eq!(m.gauge_value("unset"), 0);
    }

    #[test]
    fn histogram_mean_and_quantile() {
        let m = MetricsRegistry::new();
        let h = m.histogram("lat");
        for us in [10u64, 20, 30, 40, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        let mean = h.mean();
        assert!(mean >= Duration::from_micros(200) && mean <= Duration::from_micros(240));
        // p99 bucket must be at least as large as the max sample's bucket lower bound
        assert!(h.quantile(0.99) >= Duration::from_micros(1000));
        assert!(h.quantile(0.5) <= h.quantile(0.99));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn snapshot_is_sorted() {
        let m = MetricsRegistry::new();
        m.counter("b").inc();
        m.counter("a").inc();
        let snap = m.snapshot_counters();
        assert_eq!(snap[0].0, "a");
        assert_eq!(snap[1].0, "b");
    }

    #[test]
    fn prefixed_sum_matches_predicate_sum() {
        let m = MetricsRegistry::new();
        m.counter("cache.block.hit").add(3);
        m.counter("cache.block.miss").add(2);
        m.counter("cache.index.hit").add(5);
        m.counter("cachex.hit").add(7); // sorts after the prefix group
        m.counter("cac.hit").add(11); // sorts before it
        m.counter("query.executed").add(9);
        assert_eq!(m.sum_counters_prefixed("cache.", ".hit"), 8);
        assert_eq!(m.sum_counters_prefixed("cache.", ".miss"), 2);
        assert_eq!(m.sum_counters_prefixed("nomatch.", ".hit"), 0);
        assert_eq!(
            m.sum_counters_prefixed("cache.", ".hit"),
            m.sum_counters(|n| n.starts_with("cache.") && n.ends_with(".hit"))
        );
    }

    #[test]
    fn quantile_saturates_at_max_sample() {
        let h = Histogram::default();
        h.record(Duration::from_nanos(700));
        // 700ns lands in bucket [512, 1023]; the bucket upper bound (1023) is
        // capped at the actual max sample.
        assert_eq!(h.quantile(0.5), Duration::from_nanos(700));
        assert_eq!(h.quantile(1.0), Duration::from_nanos(700));
        assert_eq!(h.max(), Duration::from_nanos(700));
        assert_eq!(h.p999(), Duration::from_nanos(700));
        // Never the old u64::MAX fallthrough, and never above max().
        for q in [0.0, 0.25, 0.5, 0.999, 1.0] {
            assert!(h.quantile(q) <= h.max());
        }
    }

    #[test]
    fn quantile_uses_inclusive_bucket_upper_bound() {
        let h = Histogram::default();
        h.record(Duration::from_nanos(600));
        h.record(Duration::from_nanos(2000));
        // p50 target is the first sample: bucket [512, 1023] → 1023, below
        // the 2000ns max so no saturation applies.
        assert_eq!(h.quantile(0.5), Duration::from_nanos(1023));
        assert_eq!(h.max(), Duration::from_nanos(2000));
    }

    #[test]
    fn histogram_snapshot_is_consistent() {
        let h = Histogram::default();
        for us in [10u64, 20, 30] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, Duration::from_micros(60));
        assert_eq!(s.mean, Duration::from_micros(20));
        assert_eq!(s.max, Duration::from_micros(30));
        assert!(s.p50 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
    }

    #[test]
    fn labeled_builds_and_escapes() {
        assert_eq!(labeled("cache.hit", &[]), "cache.hit");
        assert_eq!(labeled("cache.hit", &[("tier", "mem")]), "cache.hit{tier=\"mem\"}");
        assert_eq!(
            labeled("m", &[("a", "x\"y"), ("b", "p\\q"), ("c", "l1\nl2")]),
            "m{a=\"x\\\"y\",b=\"p\\\\q\",c=\"l1\\nl2\"}"
        );
    }

    #[test]
    fn snapshot_gauges_and_histograms() {
        let m = MetricsRegistry::new();
        m.gauge("g.b").set(2);
        m.gauge("g.a").set(1);
        assert_eq!(m.snapshot_gauges(), vec![("g.a".into(), 1), ("g.b".into(), 2)]);
        m.histogram("h").record(Duration::from_micros(5));
        let hs = m.snapshot_histograms();
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].0, "h");
        assert_eq!(hs[0].1.count, 1);
    }

    #[test]
    fn prometheus_rendering() {
        let m = MetricsRegistry::new();
        m.counter("cache.data.hit").add(3);
        m.counter_with_labels("store.get", &[("label", "remote")]).add(7);
        m.gauge("kernel.tier").set(2);
        m.histogram("query.lat").record(Duration::from_millis(2));
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE cache_data_hit counter\ncache_data_hit 3\n"));
        assert!(text.contains("store_get{label=\"remote\"} 7\n"));
        assert!(text.contains("# TYPE kernel_tier gauge\nkernel_tier 2\n"));
        assert!(text.contains("# TYPE query_lat summary\n"));
        assert!(text.contains("query_lat{quantile=\"0.5\"} 0.002"));
        assert!(text.contains("query_lat_count 1\n"));
        assert!(text.contains("query_lat_sum 0.002\n"));
    }

    #[test]
    fn prometheus_escapes_label_values_and_mangles_names() {
        let m = MetricsRegistry::new();
        m.counter_with_labels("odd-name.9", &[("path", "a\"b\\c\nd")]).inc();
        let text = m.render_prometheus();
        assert!(text.contains("odd_name_9{path=\"a\\\"b\\\\c\\nd\"} 1\n"));
        // Leading digit gets a guard underscore.
        assert_eq!(super::prometheus_name("9lives"), "_9lives");
    }

    #[test]
    fn labeled_series_share_one_type_line() {
        let m = MetricsRegistry::new();
        m.counter_with_labels("rpc", &[("worker", "w1")]).inc();
        m.counter_with_labels("rpc", &[("worker", "w2")]).inc();
        let text = m.render_prometheus();
        assert_eq!(text.matches("# TYPE rpc counter").count(), 1);
        assert!(text.contains("rpc{worker=\"w1\"} 1\n"));
        assert!(text.contains("rpc{worker=\"w2\"} 1\n"));
    }

    #[test]
    fn tracer_is_shared_across_clones() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        assert!(!m.tracer().is_enabled());
        m.tracer().set_enabled(true);
        assert!(m2.tracer().is_enabled());
        {
            let _s = m2.tracer().span("x");
        }
        m.tracer().set_enabled(false);
        assert_eq!(m.tracer().drain().len(), 1);
    }

    #[test]
    fn names_table_is_sorted_unique_and_well_formed() {
        for w in NAMES.windows(2) {
            assert!(w[0] < w[1], "NAMES must be sorted and unique: {:?} >= {:?}", w[0], w[1]);
        }
        for name in NAMES {
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "metric name {name:?} is not lowercase dotted form"
            );
            assert!(!name.starts_with('.') && !name.ends_with('.'), "{name:?}");
        }
    }

    #[test]
    fn sum_counters_matches_predicate() {
        let m = MetricsRegistry::new();
        m.counter("cache.data.hit").add(3);
        m.counter("cache.index.mem.hit").add(2);
        m.counter("cache.index.mem.miss").add(5);
        m.counter("query.executed").add(7);
        assert_eq!(m.sum_counters(|n| n.starts_with("cache.") && n.ends_with(".hit")), 5);
        assert_eq!(m.sum_counters(|n| n.ends_with(".miss")), 5);
        assert_eq!(m.sum_counters(|_| true), 17);
        assert_eq!(m.sum_counters(|_| false), 0);
    }

    #[test]
    fn prometheus_summary_has_p95() {
        let m = MetricsRegistry::new();
        m.histogram("query.lat").record(Duration::from_millis(2));
        let text = m.render_prometheus();
        assert!(text.contains("query_lat{quantile=\"0.95\"}"), "{text}");
        let s = m.histogram("query.lat").snapshot();
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn peak_rss_is_plausible_when_readable() {
        if let Some(rss) = peak_rss_bytes() {
            // A running test binary has at least a few hundred KiB resident.
            assert!(rss > 100 * 1024, "implausible peak RSS {rss}");
        }
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let m = MetricsRegistry::new();
        let mut handles = vec![];
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.counter("n").inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.counter_value("n"), 8000);
    }
}
