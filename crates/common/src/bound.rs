//! Shared top-k pruning bound for batched / fanned-out query execution.
//!
//! Every worker scanning a segment on behalf of the same query holds a
//! reference to one [`SharedBound`]: the smallest *exact* k-th distance any
//! worker has proven so far. A candidate (or a whole distance batch / posting
//! list) whose best possible distance is strictly greater than the bound can
//! never enter the final global top-k, so scans may skip it without changing
//! results.
//!
//! Correctness contract (see DESIGN.md §7):
//!
//! * **Publish only exact thresholds.** A worker may lower the bound only to
//!   a value `t` such that at least `k` rows with *exact* distance `<= t` are
//!   known to exist (e.g. a full local [`crate::TopK`] over exact distances).
//!   Quantized (ADC/SQ) distances are approximations and must never be
//!   published.
//! * **Prune strictly.** Skip a candidate only when `d > bound`. Candidates
//!   with `d == bound` are kept, so among distinct distances the merged
//!   global top-k is unchanged. (With exactly tied distances beyond position
//!   k, which id survives was already heap-order dependent before pruning.)
//!
//! The bound is an `AtomicU32` holding the `f32` bit pattern, updated with a
//! CAS-min loop that compares **as floats** — IP/cosine distances are
//! negative, and negative floats do not order correctly as raw bits.

#[cfg(loom)]
use crate::loom::sync::atomic::{AtomicU32, AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Monotonically decreasing upper bound on one query's k-th nearest distance,
/// shared across fan-out workers. Starts at `+inf` (no pruning).
#[derive(Debug)]
pub struct SharedBound {
    /// `f32` bit pattern of the current bound.
    bits: AtomicU32,
    /// How many candidates were skipped thanks to this bound (observability).
    skips: AtomicU64,
}

impl Default for SharedBound {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedBound {
    pub fn new() -> Self {
        Self { bits: AtomicU32::new(f32::INFINITY.to_bits()), skips: AtomicU64::new(0) }
    }

    /// Current bound. `+inf` until the first publish.
    #[inline]
    pub fn get(&self) -> f32 {
        f32::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Lower the bound to `d` if `d` is smaller than the current value.
    /// `d` must be an exact (non-approximate) k-th distance; NaN is ignored.
    #[inline]
    pub fn update(&self, d: f32) {
        if d.is_nan() {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            if d >= f32::from_bits(cur) {
                return;
            }
            match self.bits.compare_exchange_weak(
                cur,
                d.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Record `n` candidates skipped because they could not beat the bound.
    #[inline]
    pub fn record_skips(&self, n: u64) {
        if n > 0 {
            self.skips.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Total candidates skipped so far.
    pub fn skips(&self) -> u64 {
        self.skips.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_unbounded() {
        let b = SharedBound::new();
        assert_eq!(b.get(), f32::INFINITY);
        assert_eq!(b.skips(), 0);
    }

    #[test]
    fn update_is_monotonic_min() {
        let b = SharedBound::new();
        b.update(5.0);
        assert_eq!(b.get(), 5.0);
        b.update(7.0); // larger: ignored
        assert_eq!(b.get(), 5.0);
        b.update(2.5);
        assert_eq!(b.get(), 2.5);
        b.update(2.5); // equal: no-op
        assert_eq!(b.get(), 2.5);
    }

    #[test]
    fn handles_negative_distances() {
        // Inner-product distances are negated dots, so bounds go negative.
        // Raw-bit comparison would order -1.0 (0xBF80_0000) above 1.0.
        let b = SharedBound::new();
        b.update(1.0);
        b.update(-1.0);
        assert_eq!(b.get(), -1.0);
        b.update(-0.5); // worse than -1.0 for a min
        assert_eq!(b.get(), -1.0);
        b.update(-2.0);
        assert_eq!(b.get(), -2.0);
    }

    #[test]
    fn nan_is_ignored() {
        let b = SharedBound::new();
        b.update(f32::NAN);
        assert_eq!(b.get(), f32::INFINITY);
        b.update(3.0);
        b.update(f32::NAN);
        assert_eq!(b.get(), 3.0);
    }

    #[test]
    fn skip_counter_accumulates() {
        let b = SharedBound::new();
        b.record_skips(0);
        assert_eq!(b.skips(), 0);
        b.record_skips(3);
        b.record_skips(4);
        assert_eq!(b.skips(), 7);
    }

    #[test]
    fn concurrent_updates_settle_on_min() {
        let b = Arc::new(SharedBound::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for i in 0..1000 {
                        b.update((t * 1000 + i) as f32 * 0.01 + 1.0);
                    }
                });
            }
        });
        assert_eq!(b.get(), 1.0);
    }
}
