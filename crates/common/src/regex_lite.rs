//! A small regex engine for predicate evaluation.
//!
//! The LAION-style workload (§V-A) filters caption strings with patterns
//! built from simple tokens ("^[0-9]", literal words, wildcards). This module
//! implements exactly the subset those predicates need — no external regex
//! dependency required:
//!
//! * literal characters,
//! * `.` (any char), `*` / `+` / `?` quantifiers on the previous atom,
//! * character classes `[abc]`, ranges `[a-z0-9]`, negation `[^…]`,
//! * anchors `^` and `$`.
//!
//! Matching is backtracking over the compiled atom list; patterns are
//! unanchored by default (`find anywhere`), like `grep`.

use crate::error::{BhError, Result};

/// A compiled pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Regex {
    atoms: Vec<Quantified>,
    anchored_start: bool,
    anchored_end: bool,
    source: String,
}

#[derive(Debug, Clone, PartialEq)]
struct Quantified {
    atom: Atom,
    quant: Quant,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Quant {
    One,
    ZeroOrOne,
    ZeroOrMore,
    OneOrMore,
}

#[derive(Debug, Clone, PartialEq)]
enum Atom {
    Literal(char),
    Any,
    Class { negated: bool, singles: Vec<char>, ranges: Vec<(char, char)> },
}

impl Atom {
    fn matches(&self, c: char) -> bool {
        match self {
            Atom::Literal(l) => *l == c,
            Atom::Any => true,
            Atom::Class { negated, singles, ranges } => {
                let hit =
                    singles.contains(&c) || ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
                hit != *negated
            }
        }
    }
}

impl Regex {
    /// Compile a pattern.
    pub fn new(pattern: &str) -> Result<Regex> {
        let mut chars = pattern.chars().peekable();
        let mut anchored_start = false;
        let mut atoms: Vec<Quantified> = Vec::new();
        let mut anchored_end = false;

        if chars.peek() == Some(&'^') {
            anchored_start = true;
            chars.next();
        }

        while let Some(c) = chars.next() {
            let atom = match c {
                '$' if chars.peek().is_none() => {
                    anchored_end = true;
                    break;
                }
                '.' => Atom::Any,
                '\\' => {
                    let esc = chars
                        .next()
                        .ok_or_else(|| BhError::Parse("regex: dangling escape".into()))?;
                    match esc {
                        'd' => Atom::Class { negated: false, singles: vec![], ranges: vec![('0', '9')] },
                        'w' => Atom::Class {
                            negated: false,
                            singles: vec!['_'],
                            ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9')],
                        },
                        's' => Atom::Class {
                            negated: false,
                            singles: vec![' ', '\t', '\n', '\r'],
                            ranges: vec![],
                        },
                        other => Atom::Literal(other),
                    }
                }
                '[' => {
                    let mut negated = false;
                    let mut singles = Vec::new();
                    let mut ranges = Vec::new();
                    if chars.peek() == Some(&'^') {
                        negated = true;
                        chars.next();
                    }
                    let mut closed = false;
                    let mut pending: Option<char> = None;
                    while let Some(cc) = chars.next() {
                        if cc == ']' {
                            if let Some(p) = pending.take() {
                                singles.push(p);
                            }
                            closed = true;
                            break;
                        }
                        if cc == '-' && pending.is_some() && chars.peek().is_some_and(|&n| n != ']')
                        {
                            let lo = pending.take().expect("checked");
                            let hi = chars.next().expect("peeked");
                            if lo > hi {
                                return Err(BhError::Parse(format!(
                                    "regex: inverted range {lo}-{hi}"
                                )));
                            }
                            ranges.push((lo, hi));
                        } else {
                            if let Some(p) = pending.take() {
                                singles.push(p);
                            }
                            pending = Some(cc);
                        }
                    }
                    if !closed {
                        return Err(BhError::Parse("regex: unterminated class".into()));
                    }
                    Atom::Class { negated, singles, ranges }
                }
                '*' | '+' | '?' => {
                    return Err(BhError::Parse(format!("regex: dangling quantifier {c}")))
                }
                other => Atom::Literal(other),
            };
            let quant = match chars.peek() {
                Some('*') => {
                    chars.next();
                    Quant::ZeroOrMore
                }
                Some('+') => {
                    chars.next();
                    Quant::OneOrMore
                }
                Some('?') => {
                    chars.next();
                    Quant::ZeroOrOne
                }
                _ => Quant::One,
            };
            atoms.push(Quantified { atom, quant });
        }

        Ok(Regex { atoms, anchored_start, anchored_end, source: pattern.to_string() })
    }

    /// The original pattern text.
    pub fn as_str(&self) -> &str {
        &self.source
    }

    /// Does the pattern match anywhere in `text` (respecting anchors)?
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        if self.anchored_start {
            return self.match_here(&chars, 0, 0);
        }
        (0..=chars.len()).any(|start| self.match_here(&chars, start, 0))
    }

    fn match_here(&self, text: &[char], pos: usize, atom_idx: usize) -> bool {
        if atom_idx == self.atoms.len() {
            return !self.anchored_end || pos == text.len();
        }
        let q = &self.atoms[atom_idx];
        match q.quant {
            Quant::One => {
                pos < text.len()
                    && q.atom.matches(text[pos])
                    && self.match_here(text, pos + 1, atom_idx + 1)
            }
            Quant::ZeroOrOne => {
                if pos < text.len()
                    && q.atom.matches(text[pos])
                    && self.match_here(text, pos + 1, atom_idx + 1)
                {
                    return true;
                }
                self.match_here(text, pos, atom_idx + 1)
            }
            Quant::ZeroOrMore | Quant::OneOrMore => {
                let min = if q.quant == Quant::OneOrMore { 1 } else { 0 };
                // Greedy with backtracking: try the longest run first.
                let mut max_run = 0;
                while pos + max_run < text.len() && q.atom.matches(text[pos + max_run]) {
                    max_run += 1;
                }
                for run in (min..=max_run).rev() {
                    if self.match_here(text, pos + run, atom_idx + 1) {
                        return true;
                    }
                }
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat).unwrap().is_match(text)
    }

    #[test]
    fn literals_match_anywhere_by_default() {
        assert!(m("cat", "a cat sat"));
        assert!(!m("dog", "a cat sat"));
        assert!(m("", "anything"));
    }

    #[test]
    fn anchors() {
        assert!(m("^cat", "cat nap"));
        assert!(!m("^cat", "a cat"));
        assert!(m("nap$", "cat nap"));
        assert!(!m("cat$", "cat nap"));
        assert!(m("^exact$", "exact"));
        assert!(!m("^exact$", "exactly"));
    }

    #[test]
    fn dot_and_quantifiers() {
        assert!(m("c.t", "cut"));
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(m(".*", ""));
    }

    #[test]
    fn classes_and_ranges() {
        assert!(m("^[0-9]", "42 images"));
        assert!(!m("^[0-9]", "no digits first"));
        assert!(m("[a-z]+@[a-z]+", "mail me at foo@bar now"));
        assert!(m("[^aeiou]", "x"));
        assert!(!m("^[^aeiou]$", "a"));
        assert!(m("[abc-]", "a-b")); // trailing dash is literal
    }

    #[test]
    fn escapes() {
        assert!(m("\\d+", "year 2024"));
        assert!(!m("^\\d", "year"));
        assert!(m("\\w+", "hello_world"));
        assert!(m("a\\.b", "a.b"));
        assert!(!m("a\\.b", "axb"));
        assert!(m("\\s", "a b"));
    }

    #[test]
    fn backtracking_star() {
        assert!(m("a.*b", "a xx b yy b"));
        assert!(m("a[0-9]*7", "a1237"));
        assert!(!m("a[0-9]+7", "a7x")); // needs at least one digit before 7
    }

    #[test]
    fn unicode_text_is_handled_per_char() {
        assert!(m("é", "café"));
        assert!(m("^caf.$", "café"));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new("a\\").is_err());
        assert!(Regex::new("[z-a]").is_err());
    }

    #[test]
    fn dollar_in_middle_is_literal() {
        assert!(m("a$b", "a$b"));
    }
}
