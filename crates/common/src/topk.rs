//! Bounded top-k collector.
//!
//! Every search path in BlendHouse — brute-force distance scan, HNSW beam
//! search, IVF probe, partial top-k pushdown, and the final global merge —
//! needs "keep the k smallest (distance, id) pairs seen so far". This module
//! provides a max-heap-based collector whose `threshold()` doubles as the
//! pruning bound for index traversal.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scored candidate. Ordering is by distance **descending** so the
/// `BinaryHeap` acts as a max-heap and `peek` exposes the current worst
/// retained candidate. Ties break on id for determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored<T> {
    /// Distance of the candidate (smaller = better).
    pub distance: f32,
    /// The candidate payload.
    pub item: T,
}

impl<T: PartialEq> Eq for Scored<T> {}

impl<T: PartialEq> PartialOrd for Scored<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: PartialEq> Ord for Scored<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // total_cmp makes NaN sort greatest, i.e. NaN distances are evicted
        // first, which is the safe behaviour for corrupt data.
        self.distance.total_cmp(&other.distance)
    }
}

/// Collects the `k` items with smallest distance.
#[derive(Debug, Clone)]
pub struct TopK<T> {
    k: usize,
    heap: BinaryHeap<Scored<T>>,
}

impl<T: PartialEq + Clone> TopK<T> {
    /// Create a collector retaining the `k` smallest-distance items.
    /// `k == 0` is allowed and collects nothing.
    pub fn new(k: usize) -> Self {
        Self { k, heap: BinaryHeap::with_capacity(k.saturating_add(1)) }
    }

    /// Offer a candidate; returns `true` if it was retained.
    #[inline]
    pub fn push(&mut self, distance: f32, item: T) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(Scored { distance, item });
            return true;
        }
        // Full: replace the current worst if strictly better.
        let worst = self.heap.peek().expect("non-empty").distance;
        if distance.total_cmp(&worst) == Ordering::Less {
            self.heap.pop();
            self.heap.push(Scored { distance, item });
            true
        } else {
            false
        }
    }

    /// Current number of retained items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True once `k` items are retained.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The largest retained distance — the pruning bound. `f32::INFINITY`
    /// until the collector is full, so early candidates always pass.
    #[inline]
    pub fn threshold(&self) -> f32 {
        if self.is_full() {
            self.heap.peek().map(|s| s.distance).unwrap_or(f32::INFINITY)
        } else {
            f32::INFINITY
        }
    }

    /// Consume and return results sorted ascending by distance.
    pub fn into_sorted(self) -> Vec<Scored<T>> {
        let mut v = self.heap.into_vec();
        v.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        v
    }

    /// Merge another collector into this one (used for the global top-k merge
    /// of per-worker partial results).
    pub fn merge(&mut self, other: TopK<T>) {
        for s in other.heap {
            self.push(s.distance, s.item);
        }
    }
}

/// Convenience: exact top-k over an iterator of `(distance, item)` pairs.
pub fn top_k_of<T: PartialEq + Clone>(
    k: usize,
    items: impl IntoIterator<Item = (f32, T)>,
) -> Vec<Scored<T>> {
    let mut tk = TopK::new(k);
    for (d, it) in items {
        tk.push(d, it);
    }
    tk.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn keeps_k_smallest_sorted() {
        let got = top_k_of(3, [(5.0, 'a'), (1.0, 'b'), (4.0, 'c'), (2.0, 'd'), (3.0, 'e')]);
        let ids: Vec<char> = got.iter().map(|s| s.item).collect();
        assert_eq!(ids, vec!['b', 'd', 'e']);
    }

    #[test]
    fn k_zero_collects_nothing() {
        let mut tk = TopK::new(0);
        assert!(!tk.push(1.0, 1u32));
        assert!(tk.is_empty());
        assert_eq!(tk.threshold(), f32::INFINITY);
    }

    #[test]
    fn fewer_items_than_k() {
        let got = top_k_of(10, [(2.0, 1u32), (1.0, 2u32)]);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].item, 2);
    }

    #[test]
    fn threshold_tracks_worst_retained() {
        let mut tk = TopK::new(2);
        assert_eq!(tk.threshold(), f32::INFINITY);
        tk.push(5.0, 0u32);
        assert_eq!(tk.threshold(), f32::INFINITY); // not full yet
        tk.push(3.0, 1u32);
        assert_eq!(tk.threshold(), 5.0);
        tk.push(1.0, 2u32);
        assert_eq!(tk.threshold(), 3.0);
        assert!(!tk.push(4.0, 3u32)); // 4.0 >= threshold 3.0 → rejected
    }

    #[test]
    fn nan_is_evicted_first() {
        let got = top_k_of(2, [(f32::NAN, 0u32), (1.0, 1u32), (2.0, 2u32)]);
        let ids: Vec<u32> = got.iter().map(|s| s.item).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = TopK::new(3);
        let mut b = TopK::new(3);
        for (i, d) in [9.0, 2.0, 7.0].iter().enumerate() {
            a.push(*d, i as u32);
        }
        for (i, d) in [1.0, 8.0, 3.0].iter().enumerate() {
            b.push(*d, 10 + i as u32);
        }
        a.merge(b);
        let ids: Vec<u32> = a.into_sorted().iter().map(|s| s.item).collect();
        assert_eq!(ids, vec![10, 1, 12]);
    }

    /// Full case count natively; a handful under Miri (each case costs
    /// seconds there) and no failure-persistence file I/O.
    fn config() -> ProptestConfig {
        if cfg!(miri) {
            ProptestConfig { cases: 8, failure_persistence: None, ..ProptestConfig::default() }
        } else {
            ProptestConfig::default()
        }
    }

    proptest! {
        #![proptest_config(config())]

        #[test]
        fn prop_matches_sort_oracle(
            k in 0usize..20,
            dists in proptest::collection::vec(0.0f32..1000.0, 0..200),
        ) {
            let items: Vec<(f32, usize)> = dists.iter().copied().zip(0..).collect();
            let got = top_k_of(k, items.clone());
            let mut oracle = items;
            oracle.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            oracle.truncate(k);
            // Distances must match exactly; ids may differ on ties.
            let got_d: Vec<f32> = got.iter().map(|s| s.distance).collect();
            let ora_d: Vec<f32> = oracle.iter().map(|p| p.0).collect();
            prop_assert_eq!(got_d, ora_d);
        }

        #[test]
        fn prop_merge_equals_union(
            k in 1usize..10,
            a in proptest::collection::vec(0.0f32..100.0, 0..50),
            b in proptest::collection::vec(0.0f32..100.0, 0..50),
        ) {
            let mut ta = TopK::new(k);
            for (i, d) in a.iter().enumerate() { ta.push(*d, i); }
            let mut tb = TopK::new(k);
            for (i, d) in b.iter().enumerate() { tb.push(*d, 1000 + i); }
            ta.merge(tb);
            let merged: Vec<f32> = ta.into_sorted().iter().map(|s| s.distance).collect();

            let all: Vec<(f32, usize)> = a.iter().copied().zip(0..)
                .chain(b.iter().copied().zip(1000..)).collect();
            let oracle: Vec<f32> = top_k_of(k, all).iter().map(|s| s.distance).collect();
            prop_assert_eq!(merged, oracle);
        }
    }
}
