//! Compact fixed-capacity bitset.
//!
//! Used in two hot paths:
//!
//! * **Delete bitmaps** (§III-B "Realtime update"): one bit per row of a
//!   segment, set when the row is superseded by a newer version.
//! * **Pre-filter masks** (§III-B "Pre-filter strategy"): the structured scan
//!   produces a bitset of qualifying row offsets, which the ANN bitmap scan
//!   then tests per visited candidate.
//!
//! The representation is a `Vec<u64>` of words; `contains` is a single shift
//! and mask, which is what makes the pre-filter ANN scan's per-record bitmap
//! test (`c_p` in the paper's cost model, Table II) cheap.

use serde::{Deserialize, Serialize};

/// Fixed-capacity bitset over row offsets `0..len`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// An empty (all-zero) bitset with capacity for `len` bits.
    pub fn new(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// A bitset with every bit in `0..len` set.
    pub fn full(len: usize) -> Self {
        let mut b = Self::new(len);
        for w in &mut b.words {
            *w = u64::MAX;
        }
        b.trim_tail();
        b
    }

    /// Build from an iterator of set positions. Positions `>= len` panic.
    pub fn from_positions(len: usize, positions: impl IntoIterator<Item = usize>) -> Self {
        let mut b = Self::new(len);
        for p in positions {
            b.set(p);
        }
        b
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitset addresses zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`. Panics if out of range.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`. Panics if out of range.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Test bit `i`. Out-of-range reads return `false` (tolerant reads let the
    /// ANN bitmap scan probe without bounds bookkeeping).
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_all_clear(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True when every bit in `0..len` is set.
    pub fn is_all_set(&self) -> bool {
        self.count() == self.len
    }

    /// In-place union. Panics on length mismatch.
    pub fn union_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection. Panics on length mismatch.
    pub fn intersect_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self &= !other`). Panics on length mismatch.
    pub fn subtract(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Flip every bit in `0..len`.
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.trim_tail();
    }

    /// Iterate over set positions in ascending order.
    pub fn iter(&self) -> BitsetIter<'_> {
        BitsetIter { bitset: self, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// Approximate heap footprint in bytes (for cache accounting).
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8 + std::mem::size_of::<Self>()
    }

    /// Zero any bits beyond `len` in the last word so `count` stays exact.
    fn trim_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// Ascending iterator over set bit positions.
pub struct BitsetIter<'a> {
    bitset: &'a Bitset,
    word_idx: usize,
    current: u64,
}

impl Iterator for BitsetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitset.words.len() {
                return None;
            }
            self.current = self.bitset.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_clear_contains_roundtrip() {
        let mut b = Bitset::new(130);
        assert!(!b.contains(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.contains(0) && b.contains(63) && b.contains(64) && b.contains(129));
        assert_eq!(b.count(), 4);
        b.clear(64);
        assert!(!b.contains(64));
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let b = Bitset::new(10);
        assert!(!b.contains(10));
        assert!(!b.contains(1000));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        let mut b = Bitset::new(10);
        b.set(10);
    }

    #[test]
    fn full_and_negate() {
        let mut b = Bitset::full(70);
        assert_eq!(b.count(), 70);
        assert!(b.is_all_set());
        b.negate();
        assert_eq!(b.count(), 0);
        assert!(b.is_all_clear());
        b.negate();
        assert_eq!(b.count(), 70); // tail bits beyond 70 must stay clear
    }

    #[test]
    fn empty_bitset() {
        let b = Bitset::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count(), 0);
        assert_eq!(b.iter().count(), 0);
        assert!(Bitset::full(0).is_all_clear());
    }

    #[test]
    fn iter_yields_ascending_positions() {
        let b = Bitset::from_positions(200, [5, 0, 199, 64, 65]);
        let v: Vec<_> = b.iter().collect();
        assert_eq!(v, vec![0, 5, 64, 65, 199]);
    }

    #[test]
    fn set_ops() {
        let mut a = Bitset::from_positions(100, [1, 2, 3]);
        let b = Bitset::from_positions(100, [3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3]);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    /// Full case count natively; a handful under Miri (each case costs
    /// seconds there) and no failure-persistence file I/O.
    fn config() -> ProptestConfig {
        if cfg!(miri) {
            ProptestConfig { cases: 8, failure_persistence: None, ..ProptestConfig::default() }
        } else {
            ProptestConfig::default()
        }
    }

    proptest! {
        #![proptest_config(config())]

        #[test]
        fn prop_from_positions_matches_reference(
            len in 1usize..500,
            picks in proptest::collection::vec(0usize..500, 0..60),
        ) {
            let picks: Vec<usize> = picks.into_iter().filter(|&p| p < len).collect();
            let b = Bitset::from_positions(len, picks.iter().copied());
            let mut sorted: Vec<usize> = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(b.iter().collect::<Vec<_>>(), sorted.clone());
            prop_assert_eq!(b.count(), sorted.len());
            for i in 0..len {
                prop_assert_eq!(b.contains(i), sorted.binary_search(&i).is_ok());
            }
        }

        #[test]
        fn prop_negate_is_involution(len in 1usize..300, picks in proptest::collection::vec(0usize..300, 0..40)) {
            let picks: Vec<usize> = picks.into_iter().filter(|&p| p < len).collect();
            let b = Bitset::from_positions(len, picks);
            let mut n = b.clone();
            n.negate();
            prop_assert_eq!(n.count(), len - b.count());
            n.negate();
            prop_assert_eq!(n, b);
        }

        #[test]
        fn prop_union_count_inclusion_exclusion(
            len in 1usize..300,
            a in proptest::collection::vec(0usize..300, 0..40),
            b in proptest::collection::vec(0usize..300, 0..40),
        ) {
            let a = Bitset::from_positions(len, a.into_iter().filter(|&p| p < len));
            let b2 = Bitset::from_positions(len, b.into_iter().filter(|&p| p < len));
            let mut u = a.clone();
            u.union_with(&b2);
            let mut i = a.clone();
            i.intersect_with(&b2);
            prop_assert_eq!(u.count() + i.count(), a.count() + b2.count());
        }
    }
}
