//! Clocks and latency models for the disaggregated-architecture simulation.
//!
//! The paper's environment (remote shared storage, worker-to-worker RPC,
//! Kubernetes scaling) is simulated in-process. Every simulated I/O or RPC
//! charges a latency through a [`LatencyModel`] against a [`Clock`]:
//!
//! * [`RealClock`] actually sleeps, so wall-clock benchmark measurements
//!   (QPS, latency percentiles) reflect the injected costs — this is what the
//!   benchmark harness uses.
//! * [`VirtualClock`] advances an atomic counter without sleeping, so unit
//!   and integration tests are deterministic and fast while still being able
//!   to assert on *accumulated simulated time*.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of elapsed time that can also "spend" simulated latency.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds elapsed since the clock was created.
    fn now_nanos(&self) -> u64;

    /// Charge `d` of simulated latency (sleep or advance).
    fn advance(&self, d: Duration);

    /// Move the clock forward to an absolute `deadline_nanos` (no-op if the
    /// clock is already past it). Unlike `advance`, concurrent `advance_to`
    /// calls targeting overlapping deadlines cost `max(deadlines)`, not the
    /// sum — this is the primitive the [`crate::cq`] reactor uses to make
    /// simultaneous transfers overlap instead of serializing.
    ///
    /// The default implementation loops `advance` over the remaining gap;
    /// [`VirtualClock`] overrides it with an atomic `fetch_max` and
    /// [`RealClock`] sleeps only the remainder, so neither over-advances
    /// under contention.
    fn advance_to(&self, deadline_nanos: u64) {
        loop {
            let now = self.now_nanos();
            if now >= deadline_nanos {
                return;
            }
            self.advance(Duration::from_nanos(deadline_nanos - now));
        }
    }
}

/// Shared, dynamically-dispatched clock handle.
pub type SharedClock = Arc<dyn Clock>;

/// Wall-clock implementation: `advance` really sleeps.
#[derive(Debug)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// A wall clock anchored at "now".
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }

    /// A shared wall clock handle.
    pub fn shared() -> SharedClock {
        Arc::new(Self::new())
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn advance(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }

    fn advance_to(&self, deadline_nanos: u64) {
        // Sleep only the remainder: concurrent sleepers targeting the same
        // deadline all wake around it instead of stacking their sleeps.
        let now = self.now_nanos();
        if now < deadline_nanos {
            std::thread::sleep(Duration::from_nanos(deadline_nanos - now));
        }
    }
}

/// Wall-clock stopwatch for self-instrumentation (metrics timers, CBO
/// micro-calibration probes).
///
/// This is the **only** sanctioned access to `Instant::now()` outside this
/// module — `xtask lint`'s wall-clock rule (DESIGN.md §8) rejects direct
/// calls elsewhere. Routing measurement through one named type keeps the
/// ambient-time surface greppable and lets the simulation distinguish
/// "measuring ourselves" (fine) from "observing wall time in query logic"
/// (breaks virtual-clock determinism).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    /// Nanoseconds since [`Stopwatch::start`], saturating at `u64::MAX`.
    pub fn elapsed_nanos(&self) -> u64 {
        let n = self.start.elapsed().as_nanos();
        u64::try_from(n).unwrap_or(u64::MAX)
    }

    /// Elapsed time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Deterministic test clock: `advance` bumps a counter, never sleeps.
///
/// Note: with concurrent threads the accumulated time is the *sum* of all
/// charged latencies, which models fully-serialized resources; tests that
/// care about overlap should assert per-operation charges instead.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared virtual clock handle.
    pub fn shared() -> SharedClock {
        Arc::new(Self::new())
    }
}

impl Clock for VirtualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    fn advance_to(&self, deadline_nanos: u64) {
        // Monotonic jump: racing callers cost max(deadlines), never the sum.
        self.nanos.fetch_max(deadline_nanos, Ordering::Relaxed);
    }
}

/// A fixed-cost + per-byte latency model, the standard shape for both object
/// storage (`base` = request latency, `per_byte` = 1/bandwidth) and RPC
/// (`base` = round-trip, `per_byte` = serialization + wire cost).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed cost per operation.
    pub base: Duration,
    /// Additional cost per byte transferred.
    pub per_byte: Duration,
}

impl LatencyModel {
    /// A model that charges nothing — used where a layer should be free
    /// (e.g. in-memory cache hits) or in tests isolating other effects.
    pub const ZERO: LatencyModel =
        LatencyModel { base: Duration::ZERO, per_byte: Duration::ZERO };

    /// A model with a fixed and a per-byte component.
    pub fn new(base: Duration, per_byte: Duration) -> Self {
        Self { base, per_byte }
    }

    /// Fixed-only model.
    pub fn fixed(base: Duration) -> Self {
        Self { base, per_byte: Duration::ZERO }
    }

    /// Convenience constructor from microseconds base and bytes/µs bandwidth.
    /// `bandwidth_bytes_per_us == 0` means infinite bandwidth.
    pub fn from_micros(base_us: u64, bandwidth_bytes_per_us: u64) -> Self {
        let per_byte = if bandwidth_bytes_per_us == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(1_000 / bandwidth_bytes_per_us.max(1))
        };
        Self { base: Duration::from_micros(base_us), per_byte }
    }

    /// Total simulated cost for transferring `bytes`.
    pub fn cost(&self, bytes: usize) -> Duration {
        self.base + self.per_byte.saturating_mul(bytes as u32)
    }

    /// Charge the cost of transferring `bytes` against `clock`.
    pub fn charge(&self, clock: &dyn Clock, bytes: usize) {
        let c = self.cost(bytes);
        if !c.is_zero() {
            clock.advance(c);
        }
    }
}

/// The latency profile of a simulated disaggregated deployment, bundling the
/// three layers the paper distinguishes: remote shared storage, local disk,
/// and worker-to-worker RPC. Defaults approximate the *relative* costs of an
/// S3-like store, NVMe, and intra-cluster RPC, scaled down so benchmarks run
/// in seconds (documented in EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentLatencies {
    /// Shared remote object store (S3-like).
    pub remote_store: LatencyModel,
    /// Worker-local disk cache tier.
    pub local_disk: LatencyModel,
    /// Worker-to-worker RPC.
    pub rpc: LatencyModel,
}

impl DeploymentLatencies {
    /// All-zero profile for logic-only unit tests.
    pub fn zero() -> Self {
        Self {
            remote_store: LatencyModel::ZERO,
            local_disk: LatencyModel::ZERO,
            rpc: LatencyModel::ZERO,
        }
    }

    /// Scaled-down cloud profile used by the benchmark harness:
    /// remote store 2 ms + ~1 GB/s, local disk 80 µs + ~4 GB/s, RPC 200 µs.
    pub fn cloud_scaled() -> Self {
        Self {
            remote_store: LatencyModel::new(
                Duration::from_micros(2_000),
                Duration::from_nanos(1),
            ),
            local_disk: LatencyModel::new(
                Duration::from_micros(80),
                Duration::from_nanos(0),
            ),
            rpc: LatencyModel::fixed(Duration::from_micros(200)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_accumulates() {
        let c = VirtualClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(Duration::from_micros(5));
        c.advance(Duration::from_micros(7));
        assert_eq!(c.now_nanos(), 12_000);
    }

    #[test]
    fn advance_to_is_max_not_sum() {
        let c = VirtualClock::new();
        c.advance_to(50_000);
        assert_eq!(c.now_nanos(), 50_000);
        // Earlier deadline: no-op, never rewinds.
        c.advance_to(20_000);
        assert_eq!(c.now_nanos(), 50_000);
        // Racing threads targeting the same window cost max, not sum.
        let c = std::sync::Arc::new(VirtualClock::new());
        let hs: Vec<_> = (1..=8u64)
            .map(|i| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || c.advance_to(i * 10_000))
            })
            .collect();
        for h in hs {
            let _ = h.join();
        }
        assert_eq!(c.now_nanos(), 80_000);
    }

    #[test]
    fn real_clock_advance_to_sleeps_remainder() {
        let c = RealClock::new();
        let target = c.now_nanos() + 2_000_000;
        c.advance_to(target);
        assert!(c.now_nanos() >= target);
        // Past deadlines return immediately.
        let before = c.now_nanos();
        c.advance_to(before.saturating_sub(1_000_000));
        assert!(c.now_nanos() < before + 1_000_000_000);
    }

    #[test]
    fn real_clock_moves_forward() {
        let c = RealClock::new();
        let a = c.now_nanos();
        c.advance(Duration::from_millis(2));
        let b = c.now_nanos();
        assert!(b >= a + 1_000_000, "expected at least 1ms progress, got {}", b - a);
    }

    #[test]
    fn stopwatch_measures_forward() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed_nanos() >= 1_000_000);
        assert!(sw.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn latency_model_cost_is_linear_in_bytes() {
        let m = LatencyModel::new(Duration::from_micros(100), Duration::from_nanos(2));
        assert_eq!(m.cost(0), Duration::from_micros(100));
        assert_eq!(m.cost(1000), Duration::from_micros(102));
    }

    #[test]
    fn zero_model_charges_nothing() {
        let c = VirtualClock::new();
        LatencyModel::ZERO.charge(&c, 1 << 20);
        assert_eq!(c.now_nanos(), 0);
    }

    #[test]
    fn charge_advances_clock() {
        let c = VirtualClock::new();
        let m = LatencyModel::fixed(Duration::from_micros(10));
        m.charge(&c, 123);
        assert_eq!(c.now_nanos(), 10_000);
    }

    #[test]
    fn deployment_profiles() {
        let z = DeploymentLatencies::zero();
        assert_eq!(z.remote_store.cost(100), Duration::ZERO);
        let s = DeploymentLatencies::cloud_scaled();
        assert!(s.remote_store.cost(0) > s.local_disk.cost(0));
        assert!(s.local_disk.cost(0) < s.rpc.cost(0));
    }
}
