//! Work-stealing task cursor for intra-query fan-out.
//!
//! Parallel segment scans (`query::exec`) and compaction (`storage::table`)
//! fan a task list out to a fixed pool of scoped threads. Rather than
//! pre-partitioning (which straggles when segment costs are skewed), every
//! worker claims the next unclaimed index from one shared [`StealingCursor`]
//! until the list is exhausted.
//!
//! The invariant the loom model (`crates/common/tests/loom.rs`) checks: over
//! any interleaving, each index in `0..len` is claimed by **exactly one**
//! worker, and after exhaustion every worker observes `None`.

#[cfg(loom)]
use crate::loom::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicUsize, Ordering};

/// Shared claim counter over a task list of known length.
///
/// `fetch_add` hands every caller a distinct ticket; tickets past the end of
/// the list report exhaustion. `Relaxed` suffices: claiming an index carries
/// no data dependency — task *contents* are published to the worker threads
/// before they start (via `thread::scope` spawn), not through this counter.
#[derive(Debug, Default)]
pub struct StealingCursor {
    next: AtomicUsize,
}

impl StealingCursor {
    pub fn new() -> Self {
        Self { next: AtomicUsize::new(0) }
    }

    /// Claim the next unclaimed index in `0..len`, or `None` when all `len`
    /// tasks have been handed out.
    #[inline]
    pub fn claim(&self, len: usize) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < len).then_some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hands_out_each_index_once_then_none() {
        let c = StealingCursor::new();
        assert_eq!(c.claim(3), Some(0));
        assert_eq!(c.claim(3), Some(1));
        assert_eq!(c.claim(3), Some(2));
        assert_eq!(c.claim(3), None);
        assert_eq!(c.claim(3), None);
    }

    #[test]
    fn empty_list_is_immediately_exhausted() {
        let c = StealingCursor::new();
        assert_eq!(c.claim(0), None);
    }

    #[test]
    fn concurrent_claims_partition_the_range() {
        let n = 1000;
        let c = StealingCursor::new();
        let mut claimed: Vec<Vec<usize>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let mut mine = Vec::new();
                        while let Some(i) = c.claim(n) {
                            mine.push(i);
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                claimed.push(h.join().expect("worker"));
            }
        });
        let mut all: Vec<usize> = claimed.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}
