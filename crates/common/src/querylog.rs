//! Always-on query log: a bounded lock-free ring of [`QueryLogRecord`]s plus
//! a [`SlowQueryPolicy`]-governed store of full span trees for slow or
//! failed queries.
//!
//! The design mirrors [`crate::trace`]'s ticket ring: an append is one
//! `fetch_add` on an atomic head plus one slot-mutex store (class
//! `QUERYLOG_SLOT`, rank just below `TRACE_SLOT` so the log can be written
//! from under any statement-path lock). The ring keeps the newest
//! `capacity` records and never blocks writers on readers; `snapshot()`
//! clones the live records without consuming them, so `system.query_log`
//! scans are repeatable.
//!
//! Slow-query capture is a second, much smaller store: when a
//! [`SlowQueryPolicy`] is armed the database traces each statement and
//! hands the drained span tree to [`QueryLog::retain_trace`]; the policy
//! keeps the *full* tree (not the rollup) for any query whose wall time
//! exceeds `threshold_nanos` or that ended in an error. Retained traces
//! back the `system.spans` table and the `SYSTEM TRACE EXPORT` statement,
//! which renders them as chrome://tracing JSON ([`QueryLog::export_chrome_trace`]).
//!
//! Timestamps are nanoseconds since the log's origin [`Stopwatch`] — the
//! same self-measurement convention the tracer uses, so span and record
//! timelines are directly comparable when both come from the same process.

use crate::clock::Stopwatch;
use crate::sync::{classes, Mutex};
use crate::trace::{AttrValue, SpanRecord};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Default number of records the ring retains.
pub const DEFAULT_LOG_CAPACITY: usize = 1024;

/// Default number of slow-query traces retained.
pub const DEFAULT_SLOW_CAPACITY: usize = 64;

/// Statement kinds a record can be tagged with; also the label set of the
/// per-kind SLO histograms (`query.slo.<kind>`).
pub const STATEMENT_KINDS: &[&str] =
    &["select", "insert", "create_table", "update", "delete", "explain", "system", "other"];

/// One completed query, as recorded at statement completion from the
/// counter deltas the profiler already computes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryLogRecord {
    /// Monotonic per-process query id (1-based).
    pub query_id: u64,
    /// Statement kind — one of [`STATEMENT_KINDS`].
    pub kind: &'static str,
    /// Normalized SQL: literals folded to `?`, whitespace collapsed,
    /// truncated to [`normalize_sql`]'s cap.
    pub sql: String,
    /// Tenant the statement ran as (`"default"` unless the caller said).
    pub tenant: String,
    /// Session / connection label.
    pub session: String,
    /// Start of execution, nanoseconds since the log's origin.
    pub start_nanos: u64,
    /// End of execution on the same origin; `end_nanos >= start_nanos`.
    pub end_nanos: u64,
    /// Time in the binder (`query.bind_ns` delta).
    pub bind_ns: u64,
    /// Time in the planner (`query.plan_ns` delta).
    pub plan_ns: u64,
    /// Time in the executor proper (`query.exec_ns` delta).
    pub exec_ns: u64,
    /// Summed per-segment scan time (`query.segment_ns` delta); can exceed
    /// `exec_ns` when segments are scanned in parallel.
    pub segment_ns: u64,
    /// Summed simulated-RPC service time (`worker.rpc_ns` delta).
    pub rpc_ns: u64,
    /// Index-iterator rows visited (`query.iterator_visited` delta).
    pub rows_scanned: u64,
    /// Segments skipped by pruning (`query.segments_pruned` delta).
    pub segments_pruned: u64,
    /// Quantized scans skipped via the shared bound (`query.bound_skips`).
    pub bound_skips: u64,
    /// Sum of all `cache.*.hit`-suffixed counter deltas.
    pub cache_hits: u64,
    /// Sum of all `cache.*.miss`-suffixed counter deltas.
    pub cache_misses: u64,
    /// Rows in the result set (0 for DDL/DML, affected count for those).
    pub result_rows: u64,
    /// Chosen physical plan for vector SELECTs (`query.plan.*` counter
    /// deltas): `"brute_force"`, `"pre_filter"`, `"post_filter"` or
    /// `"filtered_traversal"`; empty for statements with no plan choice.
    pub strategy: &'static str,
    /// Error code (the `BhError` variant name) when the statement failed.
    pub error_code: Option<&'static str>,
    /// True when the full span tree was retained for this query.
    pub traced: bool,
}

impl QueryLogRecord {
    /// End-to-end wall time of the statement.
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

/// When to retain a query's full span tree.
///
/// Arming a policy makes the database trace every statement (the capture
/// cost is benchmarked in `BENCH_querylog.json`); the tree is *kept* only
/// for statements the policy selects, so the retained store stays small.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowQueryPolicy {
    /// Retain the tree when wall time strictly exceeds this.
    pub threshold_nanos: u64,
    /// Retain the tree when the statement ends in an error.
    pub capture_errors: bool,
}

impl Default for SlowQueryPolicy {
    /// 50ms threshold, errors captured.
    fn default() -> Self {
        SlowQueryPolicy { threshold_nanos: 50_000_000, capture_errors: true }
    }
}

impl SlowQueryPolicy {
    /// Should this record's span tree be retained?
    pub fn retains(&self, duration_nanos: u64, errored: bool) -> bool {
        duration_nanos > self.threshold_nanos || (self.capture_errors && errored)
    }
}

/// A retained slow-query trace: the record's identity plus its full span
/// tree, ready for `system.spans` scans and chrome://tracing export.
#[derive(Debug, Clone)]
pub struct SlowQueryTrace {
    /// The query this tree belongs to.
    pub query_id: u64,
    /// Normalized SQL of that query.
    pub sql: String,
    /// End-to-end wall time.
    pub duration_nanos: u64,
    /// Error code when retained because the statement failed.
    pub error_code: Option<&'static str>,
    /// The full span tree, in ring order (sorted by start time, id).
    pub spans: Vec<SpanRecord>,
}

/// Fixed-capacity overwrite-oldest record ring (ticket head + slot locks),
/// same shape as `trace::Ring`.
struct Ring {
    head: AtomicU64,
    slots: Vec<Mutex<Option<QueryLogRecord>>>,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let capacity = capacity.max(1);
        Ring {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(&classes::QUERYLOG_SLOT, None)).collect(),
        }
    }

    fn push(&self, record: QueryLogRecord) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = (ticket % self.slots.len() as u64) as usize;
        *self.slots[slot].lock() = Some(record);
    }

    fn snapshot(&self) -> Vec<QueryLogRecord> {
        let mut out: Vec<QueryLogRecord> =
            self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        out.sort_by_key(|r| (r.start_nanos, r.query_id));
        out
    }

    fn clear(&self) {
        for slot in &self.slots {
            *slot.lock() = None;
        }
    }
}

struct SlowStore {
    traces: VecDeque<SlowQueryTrace>,
    capacity: usize,
}

struct Inner {
    enabled: AtomicBool,
    origin: Stopwatch,
    next_id: AtomicU64,
    ring: Ring,
    /// Lock-free mirror of the armed policy so the per-statement "should I
    /// trace" check costs two atomic loads, not a lock.
    capture_armed: AtomicBool,
    threshold_nanos: AtomicU64,
    capture_errors: AtomicBool,
    slow: Mutex<SlowStore>,
}

/// The process query log. Cheap to clone (an [`Arc`] handle); one instance
/// lives in the `Database` and is shared with anything that reports on it.
#[derive(Clone)]
pub struct QueryLog {
    inner: Arc<Inner>,
}

impl Default for QueryLog {
    fn default() -> Self {
        QueryLog::new(DEFAULT_LOG_CAPACITY)
    }
}

impl QueryLog {
    /// A log retaining the newest `capacity` records and
    /// [`DEFAULT_SLOW_CAPACITY`] slow traces. Enabled, slow-query capture
    /// disarmed.
    pub fn new(capacity: usize) -> QueryLog {
        QueryLog::with_capacities(capacity, DEFAULT_SLOW_CAPACITY)
    }

    /// A log with explicit record and slow-trace capacities.
    pub fn with_capacities(capacity: usize, slow_capacity: usize) -> QueryLog {
        QueryLog {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(true),
                origin: Stopwatch::start(),
                next_id: AtomicU64::new(1),
                ring: Ring::new(capacity),
                capture_armed: AtomicBool::new(false),
                threshold_nanos: AtomicU64::new(0),
                capture_errors: AtomicBool::new(false),
                slow: Mutex::new(
                    &classes::QUERYLOG_SLOW,
                    SlowStore { traces: VecDeque::new(), capacity: slow_capacity.max(1) },
                ),
            }),
        }
    }

    /// Turn record appends on or off. Off makes [`QueryLog::observe`] a
    /// single atomic load.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Is the log recording?
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Number of records the ring retains.
    pub fn capacity(&self) -> usize {
        self.inner.ring.slots.len()
    }

    /// Allocate the next query id (1-based, monotonic).
    pub fn next_query_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Nanoseconds since the log's origin; the timebase of
    /// `start_nanos`/`end_nanos`.
    pub fn now_nanos(&self) -> u64 {
        self.inner.origin.elapsed_nanos()
    }

    /// Append one completed-query record (no-op while disabled).
    pub fn observe(&self, record: QueryLogRecord) {
        if !self.is_enabled() {
            return;
        }
        self.inner.ring.push(record);
    }

    /// Clone out the live records, oldest first. Never returns more than
    /// [`QueryLog::capacity`] records.
    pub fn records(&self) -> Vec<QueryLogRecord> {
        self.inner.ring.snapshot()
    }

    /// Total records ever appended (including ones the ring has dropped).
    pub fn total_logged(&self) -> u64 {
        self.inner.ring.head.load(Ordering::Relaxed)
    }

    /// Drop all records and retained traces.
    pub fn clear(&self) {
        self.inner.ring.clear();
        self.inner.slow.lock().traces.clear();
    }

    /// Arm (or, with `None`, disarm) slow-query capture.
    pub fn set_slow_policy(&self, policy: Option<SlowQueryPolicy>) {
        match policy {
            Some(p) => {
                self.inner.threshold_nanos.store(p.threshold_nanos, Ordering::Relaxed);
                self.inner.capture_errors.store(p.capture_errors, Ordering::Relaxed);
                self.inner.capture_armed.store(true, Ordering::Relaxed);
            }
            None => self.inner.capture_armed.store(false, Ordering::Relaxed),
        }
    }

    /// The armed policy, if any.
    pub fn slow_policy(&self) -> Option<SlowQueryPolicy> {
        self.capture_armed().then(|| SlowQueryPolicy {
            threshold_nanos: self.inner.threshold_nanos.load(Ordering::Relaxed),
            capture_errors: self.inner.capture_errors.load(Ordering::Relaxed),
        })
    }

    /// Is slow-query capture armed (i.e. should statements be traced)?
    pub fn capture_armed(&self) -> bool {
        self.inner.capture_armed.load(Ordering::Relaxed) && self.is_enabled()
    }

    /// Does the armed policy retain a tree for this outcome?
    pub fn should_retain(&self, duration_nanos: u64, errored: bool) -> bool {
        self.capture_armed() && self.slow_policy().is_some_and(|p| p.retains(duration_nanos, errored))
    }

    /// Retain one slow-query trace (overwrite-oldest at the store's
    /// capacity).
    pub fn retain_trace(&self, trace: SlowQueryTrace) {
        let mut g = self.inner.slow.lock();
        if g.traces.len() == g.capacity {
            g.traces.pop_front();
        }
        g.traces.push_back(trace);
    }

    /// Clone out the retained traces, oldest first.
    pub fn slow_traces(&self) -> Vec<SlowQueryTrace> {
        self.inner.slow.lock().traces.iter().cloned().collect()
    }

    /// Render every retained trace as chrome://tracing JSON (the
    /// `{"traceEvents": [...]}` object format). Each query becomes one
    /// `pid` whose process name is its normalized SQL; spans become
    /// complete (`"ph": "X"`) events with microsecond timestamps and their
    /// attributes as `args`.
    pub fn export_chrome_trace(&self) -> String {
        let traces = self.slow_traces();
        let mut events = Vec::new();
        for t in &traces {
            let label = match t.error_code {
                Some(code) => format!("query {} [{}] {}", t.query_id, code, t.sql),
                None => format!("query {} {}", t.query_id, t.sql),
            };
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":{}}}}}",
                t.query_id,
                json_string(&label)
            ));
            for s in &t.spans {
                let mut args = String::new();
                for (k, v) in &s.attrs {
                    if !args.is_empty() {
                        args.push(',');
                    }
                    args.push_str(&json_string(k));
                    args.push(':');
                    args.push_str(&attr_json(v));
                }
                events.push(format!(
                    "{{\"name\":{},\"cat\":\"query\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":0,\"id\":{},\"args\":{{{}}}}}",
                    json_string(s.name),
                    micros(s.start_nanos),
                    micros(s.duration_nanos()),
                    t.query_id,
                    s.id.0,
                    args
                ));
            }
        }
        format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}", events.join(","))
    }
}

/// Nanoseconds to the microsecond (fractional) timestamps chrome://tracing
/// expects, with three decimals so nanosecond precision survives.
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

fn attr_json(v: &AttrValue) -> String {
    match v {
        AttrValue::U64(n) => n.to_string(),
        AttrValue::F64(f) if f.is_finite() => format!("{f}"),
        AttrValue::F64(_) => "null".to_string(),
        AttrValue::Str(s) => json_string(s),
        AttrValue::Bool(b) => b.to_string(),
    }
}

/// Minimal JSON string escape (quotes, backslash, control chars).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Cap on normalized-SQL length; longer statements are truncated with `…`.
pub const NORMALIZED_SQL_MAX: usize = 256;

/// Normalize a statement for the log: string and numeric literals fold to
/// `?`, whitespace runs collapse to one space, and the result is truncated
/// to [`NORMALIZED_SQL_MAX`] characters. Folding literals keeps the log
/// bounded (an INSERT with 10k rows normalizes to a few dozen bytes of
/// shape) and groups repeated parameterized queries into one shape.
pub fn normalize_sql(sql: &str) -> String {
    // Sized up front: the output never exceeds the input (folding only
    // shrinks) and is capped near NORMALIZED_SQL_MAX, so one allocation
    // serves the whole pass — this runs on every logged statement.
    let mut out = String::with_capacity(sql.len().min(NORMALIZED_SQL_MAX + 4));
    let mut out_chars = 0usize;
    let mut chars = sql.chars().peekable();
    let mut pending_space = false;
    // Last emitted character — a digit after an identifier character is part
    // of the identifier (`L2Distance`, `x1`), not a numeric literal.
    let mut last_emitted = ' ';
    while let Some(c) = chars.next() {
        if c.is_whitespace() {
            pending_space = !out.is_empty();
            continue;
        }
        if pending_space {
            out.push(' ');
            out_chars += 1;
            pending_space = false;
            last_emitted = ' ';
        }
        match c {
            '\'' => {
                // String literal: consume to the closing quote ('' escapes).
                while let Some(c) = chars.next() {
                    if c == '\'' {
                        if chars.peek() == Some(&'\'') {
                            chars.next();
                        } else {
                            break;
                        }
                    }
                }
                out.push('?');
                last_emitted = '?';
            }
            '0'..='9' if last_emitted.is_ascii_alphanumeric() || last_emitted == '_' => {
                out.push(c);
                last_emitted = c;
            }
            '0'..='9' => {
                // Numeric literal (digits, dot, exponent); a leading sign is
                // left in place — `-3` normalizes to `-?`, which is fine for
                // a shape key.
                let mut prev = c;
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_digit() || n == '.' || n == 'e' || n == 'E' {
                        prev = n;
                        chars.next();
                    } else if (n == '+' || n == '-') && matches!(prev, 'e' | 'E') {
                        prev = n;
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push('?');
                last_emitted = '?';
            }
            c => {
                out.push(c);
                last_emitted = c;
            }
        }
        out_chars += 1;
        if out_chars >= NORMALIZED_SQL_MAX {
            out.push('…');
            break;
        }
    }
    // Collapse runs of `?` separated by commas/spaces: `?, ?, ?` → `?`.
    // Keeps INSERT row lists and array literals one token wide.
    let mut folded = String::with_capacity(out.len());
    let mut i = out.chars().peekable();
    while let Some(c) = i.next() {
        folded.push(c);
        if c == '?' {
            loop {
                let mut ahead = i.clone();
                let mut consumed = 0usize;
                while matches!(ahead.peek(), Some(' ') | Some(',')) {
                    ahead.next();
                    consumed += 1;
                }
                if consumed > 0 && ahead.peek() == Some(&'?') {
                    ahead.next();
                    for _ in 0..=consumed {
                        i.next();
                    }
                } else {
                    break;
                }
            }
        }
    }
    folded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;
    use std::thread;

    fn record(id: u64, start: u64) -> QueryLogRecord {
        QueryLogRecord {
            query_id: id,
            kind: "select",
            sql: format!("q{id}"),
            tenant: "default".into(),
            session: "s".into(),
            start_nanos: start,
            end_nanos: start + 10,
            ..QueryLogRecord::default()
        }
    }

    #[test]
    fn ring_keeps_newest_capacity_records() {
        let log = QueryLog::new(4);
        for i in 0..10 {
            log.observe(record(i, i));
        }
        let records = log.records();
        assert_eq!(records.len(), 4);
        let ids: Vec<u64> = records.iter().map(|r| r.query_id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
        assert_eq!(log.total_logged(), 10);
    }

    #[test]
    fn disabled_log_drops_records() {
        let log = QueryLog::new(4);
        log.set_enabled(false);
        log.observe(record(1, 1));
        assert!(log.records().is_empty());
        assert!(!log.capture_armed());
        log.set_enabled(true);
        log.observe(record(2, 2));
        assert_eq!(log.records().len(), 1);
    }

    #[test]
    fn snapshot_is_not_consuming() {
        let log = QueryLog::new(4);
        log.observe(record(1, 1));
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.records().len(), 1, "snapshot must not drain the ring");
        log.clear();
        assert!(log.records().is_empty());
    }

    #[test]
    fn concurrent_writers_never_exceed_capacity() {
        let log = QueryLog::new(8);
        thread::scope(|s| {
            for t in 0..4 {
                let log = log.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        log.observe(record(t * 1000 + i, i));
                    }
                });
            }
        });
        assert!(log.records().len() <= 8);
        assert_eq!(log.total_logged(), 400);
    }

    #[test]
    fn slow_policy_retains_on_threshold_or_error() {
        let p = SlowQueryPolicy { threshold_nanos: 100, capture_errors: true };
        assert!(!p.retains(100, false), "threshold is strict");
        assert!(p.retains(101, false));
        assert!(p.retains(5, true));
        let no_err = SlowQueryPolicy { threshold_nanos: 100, capture_errors: false };
        assert!(!no_err.retains(5, true));
    }

    #[test]
    fn policy_arming_round_trips() {
        let log = QueryLog::new(4);
        assert!(!log.capture_armed());
        assert_eq!(log.slow_policy(), None);
        let p = SlowQueryPolicy { threshold_nanos: 42, capture_errors: false };
        log.set_slow_policy(Some(p.clone()));
        assert!(log.capture_armed());
        assert_eq!(log.slow_policy(), Some(p));
        assert!(log.should_retain(43, false));
        assert!(!log.should_retain(42, false));
        assert!(!log.should_retain(1, true), "capture_errors off");
        log.set_slow_policy(None);
        assert!(!log.capture_armed());
    }

    #[test]
    fn slow_store_is_bounded() {
        let log = QueryLog::with_capacities(4, 2);
        for i in 0..5 {
            log.retain_trace(SlowQueryTrace {
                query_id: i,
                sql: String::new(),
                duration_nanos: 1,
                error_code: None,
                spans: Vec::new(),
            });
        }
        let traces = log.slow_traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].query_id, 3);
        assert_eq!(traces[1].query_id, 4);
    }

    #[test]
    fn chrome_export_is_valid_shape() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        {
            let mut root = tracer.span("query");
            root.attr("k", 3u64);
            let mut child = tracer.span("exec");
            child.attr("strategy", "flat");
            child.attr("hit", true);
        }
        let spans = tracer.drain();
        let log = QueryLog::new(4);
        log.retain_trace(SlowQueryTrace {
            query_id: 7,
            sql: "SELECT \"x\" FROM t".into(),
            duration_nanos: 123_456,
            error_code: Some("NotFound"),
            spans,
        });
        let json = log.export_chrome_trace();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"M\""), "missing process_name metadata: {json}");
        assert!(json.contains("\"ph\":\"X\""), "missing complete events: {json}");
        assert!(json.contains("\\\"x\\\""), "quotes in SQL must be escaped: {json}");
        assert!(json.contains("\"name\":\"exec\""));
        assert!(json.contains("\"strategy\":\"flat\""));
        assert!(json.contains("\"hit\":true"));
        // Balanced braces/brackets — a cheap structural validity check on
        // top of the exact prefixes asserted above.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn micros_formats_fractional() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1_234), "1.234");
        assert_eq!(micros(1_000_007), "1000.007");
    }

    #[test]
    fn normalize_folds_literals_and_whitespace() {
        assert_eq!(
            normalize_sql("SELECT  id\nFROM docs WHERE label = 'l0' LIMIT 5"),
            "SELECT id FROM docs WHERE label = ? LIMIT ?"
        );
        assert_eq!(
            normalize_sql("INSERT INTO t VALUES (1, 'a', [0.5, 1.5]), (2, 'b', [2.5, 3.5])"),
            "INSERT INTO t VALUES (?, [?]), (?, [?])"
        );
        assert_eq!(normalize_sql("SELECT 1e-3, 'it''s'"), "SELECT ?");
        // Digits inside identifiers are not literals.
        assert_eq!(
            normalize_sql("SELECT L2Distance(emb, [0.5, 9.0]) FROM t1 LIMIT 3"),
            "SELECT L2Distance(emb, [?]) FROM t1 LIMIT ?"
        );
        let long = format!("SELECT {}", "x".repeat(400));
        let normalized = normalize_sql(&long);
        assert!(normalized.chars().count() <= NORMALIZED_SQL_MAX + 1);
        assert!(normalized.ends_with('…'));
    }
}
