//! In-tree tracing: hierarchical spans over a lock-free ring recorder.
//!
//! The profiling layer behind `EXPLAIN ANALYZE` and the per-stage latency
//! numbers in the benches. Design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** Every instrumentation site calls
//!    [`Tracer::span`], which when tracing is off performs exactly one
//!    `Relaxed` atomic load and returns an inert [`Span`] whose methods and
//!    `Drop` are no-ops. Production paths stay traced-but-free.
//! 2. **No new dependencies.** Timestamps come from the sanctioned
//!    [`crate::clock::Stopwatch`] (the only wall-clock access point the
//!    `xtask` lint permits outside `clock` itself); the recorder is a small
//!    in-tree ring, not an external queue crate.
//! 3. **Safe under Miri / high concurrency.** Ring slots are claimed with a
//!    wait-free `fetch_add` ticket and published under an uncontended
//!    per-slot mutex; when the ring wraps, the oldest records are
//!    overwritten (keep-newest), never blocking the recording thread.
//!
//! Span parenting is implicit within a thread (a thread-local span stack) and
//! explicit across threads: fan-out code captures [`Tracer::current`] before
//! spawning and opens child spans with [`Tracer::span_under`].
//!
//! The span taxonomy used by the query path is documented in DESIGN.md §9.

use crate::clock::Stopwatch;
use crate::sync::{classes, Mutex};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of one recorded span. `SpanId::NONE` (0) means "no span" and is
/// used both for roots and for every span recorded while tracing is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span id: parents a root span, never recorded.
    pub const NONE: SpanId = SpanId(0);

    /// Is this the null id?
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// One structured attribute value. Stored, not formatted, so the renderer can
/// align units (bytes, counts) without re-parsing strings.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    U64(u64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v:.3}"),
            AttrValue::Str(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<f32> for AttrValue {
    fn from(v: f32) -> Self {
        AttrValue::F64(v as f64)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// A finished span as drained from the ring.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub id: SpanId,
    pub parent: SpanId,
    /// Static name from the span taxonomy (`"exec"`, `"segment.search"`, …).
    pub name: &'static str,
    /// Nanoseconds since the tracer's origin [`Stopwatch`] started.
    pub start_nanos: u64,
    /// End timestamp on the same origin; `end_nanos >= start_nanos`.
    pub end_nanos: u64,
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Wall time spent inside the span.
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }

    /// First attribute with the given key, if any.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Fixed-capacity overwrite-oldest record buffer.
///
/// `head` hands out monotonically increasing tickets; a record with ticket
/// `t` is published into slot `t % capacity` under that slot's (uncontended
/// in the common case) mutex. When producers outrun the reader the newest
/// records win, which is what a profiler wants: the spans of the query being
/// profiled are the most recent ones.
#[derive(Debug)]
struct Ring {
    head: AtomicU64,
    slots: Vec<Mutex<Option<SpanRecord>>>,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(&classes::TRACE_SLOT, None)).collect(),
        }
    }

    fn push(&self, record: SpanRecord) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = (ticket % self.slots.len() as u64) as usize;
        *self.slots[slot].lock() = Some(record);
    }

    /// Remove and return every record, oldest first (by start timestamp).
    fn drain(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> =
            self.slots.iter().filter_map(|s| s.lock().take()).collect();
        out.sort_by_key(|r| (r.start_nanos, r.id));
        out
    }
}

#[derive(Debug)]
struct TracerInner {
    enabled: AtomicBool,
    /// Time origin shared by every span of this tracer.
    origin: Stopwatch,
    /// Next span id; starts at 1 so `SpanId::NONE` stays unused.
    next_id: AtomicU64,
    ring: Ring,
}

thread_local! {
    /// Stack of open span ids on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Default ring capacity: enough for every span of a large multi-segment
/// batch query with headroom, small enough to stay cache-friendly.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Cheap-to-clone handle to a span recorder. Disabled by default; enabling is
/// per-tracer (e.g. for the duration of one `EXPLAIN ANALYZE`).
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }
}

impl Tracer {
    /// A disabled tracer with the default ring capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// A disabled tracer whose ring holds `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(false),
                origin: Stopwatch::start(),
                next_id: AtomicU64::new(1),
                ring: Ring::new(capacity),
            }),
        }
    }

    /// Turn recording on or off. Spans opened while disabled stay inert even
    /// if the tracer is re-enabled before they drop.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Is recording currently on?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Open a span parented to the innermost open span on this thread (or a
    /// root span if there is none). When disabled this is one atomic load.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        if !self.is_enabled() {
            return Span::disabled();
        }
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
        self.open(name, SpanId(parent))
    }

    /// Open a span under an explicit parent, ignoring this thread's stack for
    /// parenting (but still pushing onto it, so nested spans on this thread
    /// attach here). Used by fan-out tasks: capture [`Tracer::current`] on
    /// the scheduling thread, pass it into the worker closure.
    #[inline]
    pub fn span_under(&self, parent: SpanId, name: &'static str) -> Span {
        if !self.is_enabled() {
            return Span::disabled();
        }
        self.open(name, parent)
    }

    /// The innermost open span on this thread, or `SpanId::NONE`.
    pub fn current(&self) -> SpanId {
        if !self.is_enabled() {
            return SpanId::NONE;
        }
        SpanId(SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0)))
    }

    fn open(&self, name: &'static str, parent: SpanId) -> Span {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        Span(Some(Box::new(ActiveSpan {
            tracer: self.inner.clone(),
            id: SpanId(id),
            parent,
            name,
            start_nanos: self.inner.origin.elapsed_nanos(),
            attrs: Vec::new(),
        })))
    }

    /// Remove and return all finished spans, oldest first. Spans still open
    /// (guards not yet dropped) are not included.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.inner.ring.drain()
    }

    /// Drop all recorded spans.
    pub fn clear(&self) {
        let _ = self.inner.ring.drain();
    }
}

/// Format a nanosecond duration with a human-scale unit.
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

/// Render a drained span tree as indented text lines: the root span first,
/// then its descendants depth-first in start order, each with wall time and
/// `key=value` attributes.
///
/// Same-named sibling groups larger than `aggregate_threshold` collapse into
/// one `name ×N` line carrying total time (and summed `bytes` attributes) —
/// per-block cache probes would otherwise drown the stage tree. Returns no
/// lines when `root` has no record (e.g. it was overwritten in the ring).
pub fn render_spans(
    records: &[SpanRecord],
    root: SpanId,
    aggregate_threshold: usize,
) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(root_rec) = records.iter().find(|r| r.id == root) {
        out.push(format!(
            "{}  {}{}",
            root_rec.name,
            fmt_nanos(root_rec.duration_nanos()),
            fmt_attrs(root_rec)
        ));
        render_subtree(records, root.0, 1, aggregate_threshold, &mut out);
    }
    out
}

fn fmt_attrs(rec: &SpanRecord) -> String {
    let mut s = String::new();
    for (k, v) in &rec.attrs {
        s.push_str(&format!("  {k}={v}"));
    }
    s
}

fn render_subtree(
    records: &[SpanRecord],
    parent: u64,
    depth: usize,
    aggregate_threshold: usize,
    out: &mut Vec<String>,
) {
    let indent = "  ".repeat(depth);
    let children: Vec<&SpanRecord> = records.iter().filter(|r| r.parent.0 == parent).collect();
    // Group same-named siblings, preserving first-start order of the groups.
    let mut order: Vec<&'static str> = Vec::new();
    let mut groups: std::collections::BTreeMap<&'static str, Vec<&SpanRecord>> =
        std::collections::BTreeMap::new();
    for c in &children {
        if !groups.contains_key(c.name) {
            order.push(c.name);
        }
        groups.entry(c.name).or_default().push(c);
    }
    for name in order {
        let group = &groups[name];
        if group.len() > aggregate_threshold {
            let total: u64 = group.iter().map(|r| r.duration_nanos()).sum();
            let bytes: u64 = group
                .iter()
                .filter_map(|r| match r.attr("bytes") {
                    Some(AttrValue::U64(b)) => Some(*b),
                    _ => None,
                })
                .sum();
            let mut line = format!("{indent}{name} ×{}  total {}", group.len(), fmt_nanos(total));
            if bytes > 0 {
                line.push_str(&format!("  bytes={bytes}"));
            }
            out.push(line);
            continue;
        }
        for rec in group {
            out.push(format!(
                "{indent}{}  {}{}",
                rec.name,
                fmt_nanos(rec.duration_nanos()),
                fmt_attrs(rec)
            ));
            render_subtree(records, rec.id.0, depth + 1, aggregate_threshold, out);
        }
    }
}

/// RAII span guard: records itself into the tracer's ring on drop. Inert
/// (every method a no-op) when opened on a disabled tracer.
///
/// The recording state lives behind a `Box` so an inert guard is a single
/// null pointer: constructing and dropping one compiles to a null store and
/// a null check, which is what keeps disabled instrumentation on hot paths
/// (per-block cache probes) near-free without LTO. A recording span pays one
/// heap allocation — noise next to the ring publish it already does.
#[derive(Debug)]
pub struct Span(Option<Box<ActiveSpan>>);

#[derive(Debug)]
struct ActiveSpan {
    tracer: Arc<TracerInner>,
    id: SpanId,
    parent: SpanId,
    name: &'static str,
    start_nanos: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    #[inline]
    fn disabled() -> Span {
        Span(None)
    }

    /// This span's id (`SpanId::NONE` when inert) — pass to
    /// [`Tracer::span_under`] from spawned tasks.
    #[inline]
    pub fn id(&self) -> SpanId {
        match &self.0 {
            Some(a) => a.id,
            None => SpanId::NONE,
        }
    }

    /// Is this a recording span (as opposed to an inert disabled guard)?
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Attach a key=value attribute. No-op when inert.
    #[inline]
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(a) = &mut self.0 {
            a.attrs.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        // Inert guard (disabled tracer): one null check, no work.
        let Some(active) = self.0.take() else { return };
        let active = *active;
        // Pop our id from this thread's stack. Guards normally drop in LIFO
        // order, but search from the end so an out-of-order drop (e.g. a span
        // held across an early return while a sibling is open) cannot
        // corrupt the stack.
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&x| x == active.id.0) {
                stack.remove(pos);
            }
        });
        let end_nanos = active.tracer.origin.elapsed_nanos();
        active.tracer.ring.push(SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            start_nanos: active.start_nanos,
            end_nanos,
            attrs: active.attrs,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        {
            let mut s = t.span("a");
            s.attr("k", 1u64);
            let _inner = t.span("b");
        }
        assert!(!t.is_enabled());
        assert!(t.drain().is_empty());
        assert_eq!(t.current(), SpanId::NONE);
    }

    #[test]
    fn spans_nest_via_thread_stack() {
        let t = Tracer::new();
        t.set_enabled(true);
        let root_id;
        {
            let root = t.span("root");
            root_id = root.id();
            assert_eq!(t.current(), root_id);
            {
                let child = t.span("child");
                let grandchild = t.span("grandchild");
                assert_eq!(t.current(), grandchild.id());
                drop(grandchild);
                assert_eq!(t.current(), child.id());
            }
            assert_eq!(t.current(), root_id);
        }
        let spans = t.drain();
        assert_eq!(spans.len(), 3);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("root").parent, SpanId::NONE);
        assert_eq!(by_name("child").parent, root_id);
        assert_eq!(by_name("grandchild").parent, by_name("child").id);
        // Drained oldest-first by start time: root opened first.
        assert_eq!(spans[0].name, "root");
        for s in &spans {
            assert!(s.end_nanos >= s.start_nanos);
        }
    }

    #[test]
    fn span_under_parents_across_threads() {
        let t = Tracer::new();
        t.set_enabled(true);
        let root = t.span("root");
        let parent_id = root.id();
        std::thread::scope(|scope| {
            for i in 0..4usize {
                let t = t.clone();
                scope.spawn(move || {
                    let mut s = t.span_under(parent_id, "task");
                    s.attr("i", i);
                    // Nested spans on the worker thread attach to the task.
                    let _n = t.span("nested");
                });
            }
        });
        drop(root);
        let spans = t.drain();
        let tasks: Vec<_> = spans.iter().filter(|s| s.name == "task").collect();
        assert_eq!(tasks.len(), 4);
        for task in &tasks {
            assert_eq!(task.parent, parent_id);
            let nested = spans
                .iter()
                .find(|s| s.name == "nested" && s.parent == task.id)
                .expect("each task records its nested child");
            assert!(nested.start_nanos >= task.start_nanos);
        }
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let t = Tracer::with_capacity(4);
        t.set_enabled(true);
        for i in 0..10u64 {
            let mut s = t.span("s");
            s.attr("i", i);
        }
        let spans = t.drain();
        assert_eq!(spans.len(), 4);
        let seen: Vec<u64> = spans
            .iter()
            .map(|s| match s.attr("i") {
                Some(AttrValue::U64(v)) => *v,
                other => panic!("unexpected attr {other:?}"),
            })
            .collect();
        assert_eq!(seen, vec![6, 7, 8, 9], "newest records survive wraparound");
        // Drain empties the ring.
        assert!(t.drain().is_empty());
    }

    #[test]
    fn attrs_round_trip_all_types() {
        let t = Tracer::new();
        t.set_enabled(true);
        {
            let mut s = t.span("a");
            s.attr("u", 7u64);
            s.attr("f", 0.5f64);
            s.attr("s", "text");
            s.attr("b", true);
        }
        let spans = t.drain();
        let s = &spans[0];
        assert_eq!(s.attr("u"), Some(&AttrValue::U64(7)));
        assert_eq!(s.attr("f"), Some(&AttrValue::F64(0.5)));
        assert_eq!(s.attr("s"), Some(&AttrValue::Str("text".into())));
        assert_eq!(s.attr("b"), Some(&AttrValue::Bool(true)));
        assert_eq!(s.attr("missing"), None);
        assert_eq!(format!("{}", AttrValue::U64(7)), "7");
        assert_eq!(format!("{}", AttrValue::Bool(true)), "true");
    }

    #[test]
    fn enable_toggle_is_per_span_open() {
        let t = Tracer::new();
        t.set_enabled(true);
        let live = t.span("live");
        t.set_enabled(false);
        let dead = t.span("dead");
        assert!(!dead.is_recording());
        drop(dead);
        // A span opened while enabled still records after disabling.
        drop(live);
        let spans = t.drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "live");
    }

    #[test]
    fn concurrent_recording_is_safe_and_bounded() {
        let t = Tracer::with_capacity(64);
        t.set_enabled(true);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let t = t.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        let _s = t.span("w");
                    }
                });
            }
        });
        let spans = t.drain();
        assert_eq!(spans.len(), 64, "ring keeps exactly `capacity` newest");
        let mut ids: Vec<u64> = spans.iter().map(|s| s.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 64, "no duplicate records");
    }

    #[test]
    fn fmt_nanos_picks_human_units() {
        assert_eq!(fmt_nanos(850), "850ns");
        assert_eq!(fmt_nanos(1_500), "1.5µs");
        assert_eq!(fmt_nanos(2_500_000), "2.500ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.000s");
    }

    /// Hand-build a record — renderer tests shouldn't depend on real timing.
    fn rec(id: u64, parent: u64, name: &'static str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: SpanId(parent),
            name,
            start_nanos: start,
            end_nanos: end,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn render_spans_indents_by_depth_and_shows_attrs() {
        let mut child = rec(2, 1, "exec", 10, 40);
        child.attrs.push(("rows", AttrValue::U64(5)));
        let records = vec![rec(1, 0, "query", 0, 100), child, rec(3, 2, "segment.search", 12, 30)];
        let lines = render_spans(&records, SpanId(1), 8);
        assert_eq!(lines[0], "query  100ns");
        assert_eq!(lines[1], "  exec  30ns  rows=5");
        assert_eq!(lines[2], "    segment.search  18ns");
    }

    #[test]
    fn render_spans_aggregates_large_sibling_groups() {
        let mut records = vec![rec(1, 0, "query", 0, 100)];
        for i in 0..5u64 {
            let mut r = rec(10 + i, 1, "store.get", i, i + 10);
            r.attrs.push(("bytes", AttrValue::U64(100)));
            records.push(r);
        }
        // Threshold 3: the five store.get spans collapse; two exec spans don't.
        records.push(rec(20, 1, "exec", 50, 60));
        records.push(rec(21, 1, "exec", 60, 70));
        let lines = render_spans(&records, SpanId(1), 3);
        assert_eq!(lines[1], "  store.get ×5  total 50ns  bytes=500");
        assert_eq!(lines[2], "  exec  10ns");
        assert_eq!(lines[3], "  exec  10ns");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn render_spans_empty_when_root_missing() {
        let records = vec![rec(2, 1, "orphan", 0, 10)];
        assert!(render_spans(&records, SpanId(1), 8).is_empty());
    }
}
