//! Shared primitives for BlendHouse-rs.
//!
//! This crate holds the small, dependency-light building blocks used by every
//! other crate in the workspace:
//!
//! * [`error`] — the workspace-wide error type.
//! * [`ids`] — strongly-typed identifiers for segments, workers, tables, rows.
//! * [`bitset`] — a compact fixed-size bitset used for delete bitmaps and
//!   pre-filter row masks.
//! * [`topk`] — a bounded max-heap top-k collector used by every search path.
//! * [`bound`] — an atomic shared k-th-distance upper bound that lets
//!   batched/fanned-out scans skip candidates which cannot reach the top-k.
//! * [`cursor`] — the work-stealing claim counter behind intra-query and
//!   compaction fan-out.
//! * [`loom`] — an in-tree model checker (loom-lite) that exhaustively
//!   explores interleavings of the lock-free paths under `--cfg loom`.
//! * [`cq`] — a completion-queue reactor over the shared clock so
//!   simultaneous simulated transfers overlap (cost `max`) instead of
//!   serializing (cost `sum`).
//! * [`clock`] — real and virtual clocks plus latency models, so the
//!   disaggregated-architecture simulation can inject remote-storage and RPC
//!   latencies deterministically in tests and realistically in benchmarks.
//! * [`metrics`] — lightweight counters and histograms for instrumenting cache
//!   hits, RPC calls, and I/O, with a Prometheus text exposition.
//! * [`trace`] — hierarchical spans over a lock-free ring recorder; the
//!   profiling layer behind `EXPLAIN ANALYZE` (near-zero cost when disabled).
//! * [`querylog`] — the always-on query log: a bounded record ring written
//!   once per completed statement, plus slow-query span-tree retention and
//!   chrome://tracing export; the data source of `system.query_log`.
//! * [`rng`] — seeded RNG construction helpers for reproducible experiments.
//! * [`sync`] — ranked `Mutex`/`RwLock`/`Condvar` wrappers with a
//!   lockdep-style runtime checker (debug / `--cfg lockdep`): every lock
//!   carries a `LockClass` from one in-tree rank table, nested acquisitions
//!   must strictly increase in rank, and violations panic with both class
//!   names instead of deadlocking.

pub mod bitset;
pub mod bound;
pub mod clock;
pub mod cq;
pub mod cursor;
pub mod error;
pub mod ids;
pub mod loom;
pub mod metrics;
pub mod querylog;
pub mod regex_lite;
pub mod rng;
pub mod sync;
pub mod topk;
pub mod trace;

pub use bitset::Bitset;
pub use bound::SharedBound;
pub use cursor::StealingCursor;
pub use clock::{
    Clock, DeploymentLatencies, LatencyModel, RealClock, SharedClock, Stopwatch, VirtualClock,
};
pub use cq::{Reactor, Ticket};
pub use error::{BhError, Result};
pub use ids::{RowId, SegmentId, TableId, VwId, WorkerId};
pub use metrics::MetricsRegistry;
pub use querylog::{QueryLog, QueryLogRecord, SlowQueryPolicy, SlowQueryTrace};
pub use topk::TopK;
pub use trace::{AttrValue, Span, SpanId, SpanRecord, Tracer};
