//! Completion-queue reactor for overlapping simulated I/O.
//!
//! Every simulated transfer in the system charges a [`LatencyModel`] cost
//! against the [`SharedClock`]. Charged synchronously (`model.charge`),
//! concurrent transfers *sum* on a [`crate::clock::VirtualClock`] and
//! serialize on a [`crate::clock::RealClock`] — a cold multi-segment scan
//! pays N full blob latencies even though a real object store would stream
//! them in parallel.
//!
//! The reactor replaces the synchronous charge with a submit/complete
//! protocol:
//!
//! 1. [`Reactor::submit`] records an operation with an absolute completion
//!    deadline (`clock.now + cost`) and returns a [`Ticket`]. The caller's
//!    data is already in hand (the simulation reads bytes eagerly); only the
//!    *time* is deferred.
//! 2. [`Reactor::wait`] parks until the clock reaches the ticket's deadline.
//!    The first waiter becomes the **driver**: it pops the earliest pending
//!    deadline, advances the clock to it with [`Clock::advance_to`]
//!    (an idempotent `fetch_max` on the virtual clock), marks that operation
//!    complete, and wakes the other waiters. Deadlines established while the
//!    clock sat at `T` all complete by advancing to `max(deadlines)` — the
//!    transfers overlap instead of summing.
//! 3. [`Reactor::forget`] detaches a ticket nobody will wait on (abandoned
//!    prefetch); the driver reclaims its slot when the deadline passes.
//!
//! Multiple reactors over the same `SharedClock` compose: completion is
//! defined as "the shared clock reached the deadline", so a driver in one
//! reactor advancing the clock also ripens operations in another.
//!
//! A single thread that submits and immediately waits observes exactly the
//! synchronous cost (`advance_to(now + cost)` ≡ `advance(cost)`), which is
//! what keeps reactor-routed execution bit- and time-identical to the
//! blocking path when there is no concurrency to exploit.
//!
//! ## Structure
//!
//! The ticket state machine lives in [`OpTable`], a fixed array of
//! generation-tagged atomic slots (`EMPTY → SUBMITTED → COMPLETED → EMPTY'`)
//! with no locks — this is the part model-checked under `--cfg loom`
//! (exactly-once completion, no completion before submission). The
//! [`Reactor`] wraps it with a deadline min-heap and a Mutex/Condvar driver
//! handoff, which loom-lite cannot model and ordinary tests cover instead.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use crate::sync::{classes, Condvar, Mutex};

use crate::clock::{LatencyModel, SharedClock};

#[cfg(loom)]
use crate::loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};

/// Slot state: no operation; the slot can be claimed by `try_submit`.
const EMPTY: u64 = 0;
/// Slot state: operation submitted, deadline pending.
const SUBMITTED: u64 = 1;
/// Slot state: deadline reached; waiting for the owner to `reap`.
const COMPLETED: u64 = 2;
const STATE_MASK: u64 = 0b11;
const GEN_SHIFT: u32 = 2;

/// Handle to one submitted operation. `Copy` so callers can stash it in
/// pending-fetch maps; the generation tag makes stale handles harmless
/// (operations on a recycled slot simply fail the generation check).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    slot: u32,
    gen: u64,
}

impl Ticket {
    /// Sentinel for a zero-cost or overflow-fallback operation that was
    /// charged synchronously at submit time; `wait` returns immediately.
    const READY: Ticket = Ticket { slot: u32::MAX, gen: 0 };

    fn is_ready_sentinel(&self) -> bool {
        self.slot == u32::MAX
    }

    /// Model-checking-only constructor: forge a handle to a slot and
    /// generation that may never have been submitted, so the loom models can
    /// race a completer against the submitter (`crates/common/tests/loom.rs`).
    #[cfg(loom)]
    pub fn forged(slot: u32, gen: u64) -> Ticket {
        Ticket { slot, gen }
    }
}

/// Lock-free table of generation-tagged operation slots.
///
/// Each slot packs `generation << 2 | state` into one `AtomicU64`. The
/// lifecycle for generation `g` is
/// `(g, EMPTY) → (g, SUBMITTED) → (g, COMPLETED) → (g+1, EMPTY)`,
/// every edge a CAS, so completion is exactly-once and a slot can never be
/// observed completed for a generation that was not submitted. This type is
/// the `--cfg loom` model target; it has no dependency on the clock or any
/// lock.
pub struct OpTable {
    slots: Box<[AtomicU64]>,
}

impl OpTable {
    /// A table with `capacity` slots, all empty at generation 0.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots: Vec<AtomicU64> = (0..capacity.max(1)).map(|_| AtomicU64::new(0)).collect();
        Self { slots: slots.into_boxed_slice() }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Claim `slot` if it is currently empty: `(g, EMPTY) → (g, SUBMITTED)`.
    /// Returns the ticket for generation `g` on success.
    pub fn try_submit(&self, slot: u32) -> Option<Ticket> {
        let a = &self.slots[slot as usize];
        let cur = a.load(Ordering::Acquire);
        if cur & STATE_MASK != EMPTY {
            return None;
        }
        let gen = cur >> GEN_SHIFT;
        let next = (gen << GEN_SHIFT) | SUBMITTED;
        match a.compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => Some(Ticket { slot, gen }),
            Err(_) => None,
        }
    }

    /// Deliver completion for `t`: `(g, SUBMITTED) → (g, COMPLETED)`.
    /// Returns `false` if the ticket was already completed (or never current),
    /// so completion is exactly-once per submission.
    pub fn try_complete(&self, t: Ticket) -> bool {
        let a = &self.slots[t.slot as usize];
        let expect = (t.gen << GEN_SHIFT) | SUBMITTED;
        let next = (t.gen << GEN_SHIFT) | COMPLETED;
        a.compare_exchange(expect, next, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }

    /// Whether `t` has completed. A ticket whose slot has moved to a newer
    /// generation was completed and reaped, so it reports complete.
    pub fn is_complete(&self, t: Ticket) -> bool {
        let cur = self.slots[t.slot as usize].load(Ordering::Acquire);
        let gen = cur >> GEN_SHIFT;
        gen > t.gen || (gen == t.gen && cur & STATE_MASK == COMPLETED)
    }

    /// Release a completed ticket's slot for reuse:
    /// `(g, COMPLETED) → (g+1, EMPTY)`. Returns `false` if `t` was not the
    /// slot's current completed generation (already reaped).
    pub fn reap(&self, t: Ticket) -> bool {
        let a = &self.slots[t.slot as usize];
        let expect = (t.gen << GEN_SHIFT) | COMPLETED;
        let next = (t.gen + 1) << GEN_SHIFT; // state EMPTY
        a.compare_exchange(expect, next, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }
}

impl std::fmt::Debug for OpTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpTable").field("capacity", &self.slots.len()).finish()
    }
}

/// Deadline-ordered pending operations plus the driver-election flag,
/// guarded by the reactor mutex.
struct Inner {
    /// Min-heap of `(deadline_nanos, slot, gen)`.
    heap: BinaryHeap<Reverse<(u64, u32, u64)>>,
    /// Whether some thread is currently advancing the clock. Only one
    /// driver runs at a time; everyone else parks on the condvar.
    driving: bool,
    /// Rotating allocation cursor for slot claims.
    next_slot: u32,
    /// Tickets abandoned via `forget`; the driver reaps them on completion.
    forgotten: HashSet<(u32, u64)>,
}

/// Default number of in-flight operation slots.
const DEFAULT_CAPACITY: usize = 4096;

/// Completion-queue reactor over a [`SharedClock`]. See module docs.
pub struct Reactor {
    clock: SharedClock,
    ops: OpTable,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Reactor {
    /// A reactor over `clock` with the default slot capacity.
    pub fn new(clock: SharedClock) -> Self {
        Self::with_capacity(clock, DEFAULT_CAPACITY)
    }

    /// A reactor over `clock` with `capacity` in-flight slots. Submissions
    /// beyond capacity degrade gracefully to synchronous charges.
    pub fn with_capacity(clock: SharedClock, capacity: usize) -> Self {
        Self {
            clock,
            ops: OpTable::with_capacity(capacity),
            inner: Mutex::new(&classes::CQ_INNER, Inner {
                heap: BinaryHeap::new(),
                driving: false,
                next_slot: 0,
                forgotten: HashSet::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// A shared reactor handle.
    pub fn shared(clock: SharedClock) -> Arc<Self> {
        Arc::new(Self::new(clock))
    }

    /// The clock this reactor advances.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Submit an operation costing `cost` of simulated time; its deadline is
    /// `now + cost`. Zero-cost operations return an already-complete ticket.
    /// If every slot is in flight, the cost is charged synchronously instead
    /// (overlap lost, semantics preserved).
    pub fn submit(&self, cost: Duration) -> Ticket {
        if cost.is_zero() {
            return Ticket::READY;
        }
        let mut g = self.inner.lock();
        let cap = self.ops.capacity() as u32;
        for probe in 0..cap {
            let slot = (g.next_slot.wrapping_add(probe)) % cap;
            if let Some(t) = self.ops.try_submit(slot) {
                g.next_slot = slot.wrapping_add(1) % cap;
                let deadline =
                    self.clock.now_nanos().saturating_add(cost.as_nanos().min(u64::MAX as u128) as u64);
                g.heap.push(Reverse((deadline, t.slot, t.gen)));
                return t;
            }
        }
        drop(g);
        // Table full: fall back to a synchronous charge.
        self.clock.advance(cost);
        Ticket::READY
    }

    /// Submit a transfer of `bytes` priced by `model`.
    pub fn submit_transfer(&self, model: &LatencyModel, bytes: usize) -> Ticket {
        self.submit(model.cost(bytes))
    }

    /// Block until `t`'s deadline has been reached. The calling thread may
    /// be elected driver and advance the shared clock on behalf of everyone.
    pub fn wait(&self, t: Ticket) {
        if t.is_ready_sentinel() {
            return;
        }
        if self.ops.is_complete(t) {
            self.ops.reap(t);
            return;
        }
        let mut g = self.inner.lock();
        loop {
            if self.ops.is_complete(t) {
                drop(g);
                self.ops.reap(t);
                return;
            }
            if !g.driving {
                match g.heap.pop() {
                    Some(Reverse((deadline, slot, gen))) => {
                        g.driving = true;
                        drop(g);
                        self.clock.advance_to(deadline);
                        let done = Ticket { slot, gen };
                        self.ops.try_complete(done);
                        g = self.inner.lock();
                        if g.forgotten.remove(&(slot, gen)) {
                            self.ops.reap(done);
                        }
                        // The advance may have ripened later deadlines too
                        // (another reactor on the same clock, or a batch of
                        // same-instant submissions); complete them all.
                        let now = self.clock.now_nanos();
                        while let Some(&Reverse((dl, s, gn))) = g.heap.peek() {
                            if dl > now {
                                break;
                            }
                            g.heap.pop();
                            let ripe = Ticket { slot: s, gen: gn };
                            self.ops.try_complete(ripe);
                            if g.forgotten.remove(&(s, gn)) {
                                self.ops.reap(ripe);
                            }
                        }
                        g.driving = false;
                        self.cv.notify_all();
                    }
                    None => {
                        // Pending op but empty heap: defensive — complete it
                        // rather than spin (can only happen with a forged
                        // ticket or after external clock advancement raced a
                        // drain).
                        self.ops.try_complete(t);
                    }
                }
            } else {
                // Bounded park: a driver on a RealClock may be sleeping, and
                // on spurious lost-wakeup we re-check rather than hang.
                self.cv.wait_for(&mut g, Duration::from_millis(5));
            }
        }
    }

    /// Detach `t`: nobody will wait on it. Its slot is reclaimed by whichever
    /// driver observes its deadline pass.
    pub fn forget(&self, t: Ticket) {
        if t.is_ready_sentinel() {
            return;
        }
        let mut g = self.inner.lock();
        if self.ops.is_complete(t) {
            drop(g);
            self.ops.reap(t);
        } else {
            g.forgotten.insert((t.slot, t.gen));
        }
    }

    /// Whether `t`'s deadline has already been reached (non-blocking).
    pub fn is_complete(&self, t: Ticket) -> bool {
        t.is_ready_sentinel() || self.ops.is_complete(t)
    }

    /// Synchronous convenience: submit + wait. Single-threaded callers
    /// observe exactly `model.charge(clock, bytes)`.
    pub fn charge(&self, model: &LatencyModel, bytes: usize) {
        let t = self.submit_transfer(model, bytes);
        self.wait(t);
    }
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor").field("capacity", &self.ops.capacity()).finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::clock::{LatencyModel, VirtualClock};

    fn reactor() -> (Arc<Reactor>, SharedClock) {
        let clock: SharedClock = VirtualClock::shared();
        (Reactor::shared(Arc::clone(&clock)), clock)
    }

    #[test]
    fn sequential_charge_matches_blocking_cost() {
        let (r, clock) = reactor();
        let m = LatencyModel::new(Duration::from_micros(100), Duration::from_nanos(1));
        r.charge(&m, 10_000); // 100_000 + 10_000
        r.charge(&m, 10_000);
        assert_eq!(clock.now_nanos(), 220_000);
    }

    #[test]
    fn zero_cost_is_free_and_ready() {
        let (r, clock) = reactor();
        let t = r.submit(Duration::ZERO);
        assert!(r.is_complete(t));
        r.wait(t);
        assert_eq!(clock.now_nanos(), 0);
    }

    #[test]
    fn same_instant_submissions_overlap() {
        let (r, clock) = reactor();
        // Three transfers submitted before any wait: deadlines all measured
        // from t=0, so total simulated time is the max, not the sum.
        let a = r.submit(Duration::from_micros(100));
        let b = r.submit(Duration::from_micros(250));
        let c = r.submit(Duration::from_micros(70));
        r.wait(a);
        r.wait(b);
        r.wait(c);
        assert_eq!(clock.now_nanos(), 250_000);
    }

    #[test]
    fn concurrent_waiters_overlap_across_threads() {
        let (r, clock) = reactor();
        let tickets: Vec<Ticket> =
            (0..8).map(|i| r.submit(Duration::from_micros(100 + i))).collect();
        std::thread::scope(|s| {
            for t in tickets {
                let r = Arc::clone(&r);
                s.spawn(move || r.wait(t));
            }
        });
        assert_eq!(clock.now_nanos(), 107_000);
    }

    #[test]
    fn forgotten_ticket_is_reaped_by_driver() {
        let (r, clock) = reactor();
        let orphan = r.submit(Duration::from_micros(10));
        r.forget(orphan);
        let t = r.submit(Duration::from_micros(50));
        r.wait(t);
        assert_eq!(clock.now_nanos(), 50_000);
        // The orphan's slot must be reusable: submit capacity+1 more ops.
        for _ in 0..=DEFAULT_CAPACITY {
            let t = r.submit(Duration::from_nanos(1));
            r.wait(t);
        }
    }

    #[test]
    fn forget_after_completion_reaps_immediately() {
        let (r, _clock) = reactor();
        let a = r.submit(Duration::from_micros(10));
        let b = r.submit(Duration::from_micros(5));
        r.wait(a); // drives past b's deadline too
        assert!(r.is_complete(b));
        r.forget(b);
        // Slot cycle sanity: everything reusable.
        for _ in 0..=DEFAULT_CAPACITY {
            let t = r.submit(Duration::from_nanos(1));
            r.wait(t);
        }
    }

    #[test]
    fn overflow_falls_back_to_synchronous_charge() {
        let clock: SharedClock = VirtualClock::shared();
        let r = Reactor::with_capacity(Arc::clone(&clock), 2);
        let a = r.submit(Duration::from_micros(1));
        let b = r.submit(Duration::from_micros(2));
        let c = r.submit(Duration::from_micros(3)); // table full: charged now
        assert!(r.is_complete(c));
        assert_eq!(clock.now_nanos(), 3_000);
        r.wait(a);
        r.wait(b);
        // a and b's deadlines (1µs, 2µs) already passed during c's charge.
        assert_eq!(clock.now_nanos(), 3_000);
    }

    #[test]
    fn two_reactors_share_one_clock() {
        let clock: SharedClock = VirtualClock::shared();
        let r1 = Reactor::shared(Arc::clone(&clock));
        let r2 = Reactor::shared(Arc::clone(&clock));
        let a = r1.submit(Duration::from_micros(100));
        let b = r2.submit(Duration::from_micros(60));
        r1.wait(a); // advances the shared clock past b's deadline
        r2.wait(b); // completes without further advancement
        assert_eq!(clock.now_nanos(), 100_000);
    }

    #[test]
    fn optable_lifecycle() {
        let t = OpTable::with_capacity(2);
        let a = t.try_submit(0).unwrap();
        assert!(!t.is_complete(a));
        assert!(t.try_submit(0).is_none(), "occupied slot must refuse");
        assert!(t.try_complete(a));
        assert!(!t.try_complete(a), "completion is exactly-once");
        assert!(t.is_complete(a));
        assert!(t.reap(a));
        assert!(!t.reap(a));
        let a2 = t.try_submit(0).unwrap();
        assert_ne!(a, a2, "generation must advance on reuse");
        assert!(t.is_complete(a), "stale ticket from reaped generation reads complete");
        assert!(!t.is_complete(a2));
    }
}
