//! Workspace-wide error type.
//!
//! All fallible public APIs in BlendHouse-rs return [`Result<T>`]. The error
//! enum is deliberately coarse: each variant corresponds to a subsystem
//! boundary a caller might plausibly branch on, and everything else is carried
//! as a message.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = BhError> = std::result::Result<T, E>;

/// The error type shared by every BlendHouse-rs crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BhError {
    /// Vector dimensionality did not match the index / column definition.
    DimensionMismatch {
        /// Dimensionality the index/column requires.
        expected: usize,
        /// Dimensionality the caller supplied.
        got: usize,
    },
    /// A named entity (table, segment, index, worker) was not found.
    NotFound(String),
    /// An entity with the same name already exists.
    AlreadyExists(String),
    /// SQL text failed to lex or parse; message includes position info.
    Parse(String),
    /// A semantically invalid plan or statement (e.g. ORDER BY distance on a
    /// non-vector column, unknown index type).
    Plan(String),
    /// Invalid argument or configuration value.
    InvalidArgument(String),
    /// Index build / search failure (untrained IVF, corrupt serialized index).
    Index(String),
    /// Storage-layer failure (missing blob, corrupt segment, I/O error text).
    Storage(String),
    /// Simulated or real I/O failure.
    Io(String),
    /// A simulated RPC failed (peer down, timeout).
    Rpc(String),
    /// The target worker is down; the query layer may retry elsewhere.
    WorkerUnavailable(String),
    /// Serialization / deserialization failure.
    Serde(String),
    /// A lock was poisoned by a panic on another thread; the payload names
    /// the lock class (see `bh_common::sync`).
    LockPoisoned(String),
    /// Internal invariant violation — indicates a bug in BlendHouse itself.
    Internal(String),
}

impl BhError {
    /// True if the operation may succeed when retried on another worker or
    /// after topology refresh. Used by query-level retry (§II-E fault
    /// tolerance).
    pub fn is_retryable(&self) -> bool {
        matches!(self, BhError::Rpc(_) | BhError::WorkerUnavailable(_))
    }

    /// Stable machine-readable error code — the variant name in
    /// `SCREAMING_SNAKE_CASE`. Recorded in the query log's `error_code`
    /// column so failures can be grouped without parsing display text.
    pub fn code(&self) -> &'static str {
        match self {
            BhError::DimensionMismatch { .. } => "DIMENSION_MISMATCH",
            BhError::NotFound(_) => "NOT_FOUND",
            BhError::AlreadyExists(_) => "ALREADY_EXISTS",
            BhError::Parse(_) => "PARSE",
            BhError::Plan(_) => "PLAN",
            BhError::InvalidArgument(_) => "INVALID_ARGUMENT",
            BhError::Index(_) => "INDEX",
            BhError::Storage(_) => "STORAGE",
            BhError::Io(_) => "IO",
            BhError::Rpc(_) => "RPC",
            BhError::WorkerUnavailable(_) => "WORKER_UNAVAILABLE",
            BhError::Serde(_) => "SERDE",
            BhError::LockPoisoned(_) => "LOCK_POISONED",
            BhError::Internal(_) => "INTERNAL",
        }
    }
}

impl fmt::Display for BhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BhError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            BhError::NotFound(s) => write!(f, "not found: {s}"),
            BhError::AlreadyExists(s) => write!(f, "already exists: {s}"),
            BhError::Parse(s) => write!(f, "parse error: {s}"),
            BhError::Plan(s) => write!(f, "plan error: {s}"),
            BhError::InvalidArgument(s) => write!(f, "invalid argument: {s}"),
            BhError::Index(s) => write!(f, "index error: {s}"),
            BhError::Storage(s) => write!(f, "storage error: {s}"),
            BhError::Io(s) => write!(f, "io error: {s}"),
            BhError::Rpc(s) => write!(f, "rpc error: {s}"),
            BhError::WorkerUnavailable(s) => write!(f, "worker unavailable: {s}"),
            BhError::Serde(s) => write!(f, "serde error: {s}"),
            BhError::LockPoisoned(s) => write!(f, "lock poisoned: {s}"),
            BhError::Internal(s) => write!(f, "internal error: {s}"),
        }
    }
}

impl std::error::Error for BhError {}

impl From<std::io::Error> for BhError {
    fn from(e: std::io::Error) -> Self {
        BhError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_detail() {
        let e = BhError::DimensionMismatch { expected: 128, got: 64 };
        assert_eq!(e.to_string(), "dimension mismatch: expected 128, got 64");
        let e = BhError::NotFound("table t".into());
        assert!(e.to_string().contains("table t"));
    }

    #[test]
    fn retryable_classification() {
        assert!(BhError::Rpc("down".into()).is_retryable());
        assert!(BhError::WorkerUnavailable("w1".into()).is_retryable());
        assert!(!BhError::Parse("x".into()).is_retryable());
        assert!(!BhError::Storage("x".into()).is_retryable());
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: BhError = io.into();
        assert!(matches!(e, BhError::Io(_)));
    }
}
