//! Strongly-typed identifiers.
//!
//! Segments, workers, tables and rows all have `u64`-backed newtype ids so the
//! compiler rejects cross-kind mixups (e.g. scheduling a `TableId` onto the
//! hash ring). `SegmentId` additionally carries a stable string form used as
//! the consistent-hashing key and the object-store blob name.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an immutable data segment (an LSM "part").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SegmentId(pub u64);

/// Identifier of a compute worker inside a virtual warehouse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkerId(pub u64);

/// Identifier of a virtual warehouse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VwId(pub u64);

/// Identifier of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableId(pub u64);

/// A row address: segment-local row offset. Per-segment vector indexes store
/// row *offsets* rather than primary keys (§III-B), enabling direct
/// bi-directional mapping between vector and non-vector data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowId {
    /// Segment containing the row.
    pub segment: SegmentId,
    /// Row offset inside the segment.
    pub offset: u32,
}

impl SegmentId {
    /// Raw numeric value.
    pub fn raw(self) -> u64 {
        self.0
    }
    /// Stable string key used for consistent hashing and blob naming.
    pub fn key(self) -> String {
        format!("seg-{:016x}", self.0)
    }
}

impl WorkerId {
    /// Raw numeric value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl VwId {
    /// Raw numeric value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl TableId {
    /// Raw numeric value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl RowId {
    /// Address a row by segment and offset.
    pub fn new(segment: SegmentId, offset: u32) -> Self {
        Self { segment, offset }
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.key())
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker-{}", self.0)
    }
}

impl fmt::Display for VwId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vw-{}", self.0)
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table-{}", self.0)
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.segment, self.offset)
    }
}

/// Monotonic id generator, used by the catalog and the storage engine to mint
/// fresh segment / table ids. Thread-safe.
#[derive(Debug, Default)]
pub struct IdGenerator {
    next: std::sync::atomic::AtomicU64,
}

impl IdGenerator {
    /// A generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start issuing ids from `start` (used when reloading a persisted
    /// catalog so new ids do not collide with existing ones).
    pub fn starting_at(start: u64) -> Self {
        Self { next: std::sync::atomic::AtomicU64::new(start) }
    }

    /// Mint the next raw id.
    pub fn next(&self) -> u64 {
        self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Mint a fresh segment id.
    pub fn next_segment(&self) -> SegmentId {
        SegmentId(self.next())
    }

    /// Mint a fresh table id.
    pub fn next_table(&self) -> TableId {
        TableId(self.next())
    }

    /// Mint a fresh worker id.
    pub fn next_worker(&self) -> WorkerId {
        WorkerId(self.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn segment_key_is_stable_and_unique() {
        let a = SegmentId(1).key();
        let b = SegmentId(1).key();
        let c = SegmentId(2).key();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.starts_with("seg-"));
    }

    #[test]
    fn row_id_ordering_is_segment_major() {
        let a = RowId::new(SegmentId(1), 100);
        let b = RowId::new(SegmentId(2), 0);
        assert!(a < b);
    }

    #[test]
    fn generator_is_monotonic_and_unique_across_threads() {
        let g = std::sync::Arc::new(IdGenerator::new());
        let mut handles = vec![];
        for _ in 0..4 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next()).collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for v in h.join().unwrap() {
                assert!(all.insert(v), "duplicate id {v}");
            }
        }
        assert_eq!(all.len(), 4000);
    }

    #[test]
    fn generator_starting_at_skips_reserved_range() {
        let g = IdGenerator::starting_at(100);
        assert_eq!(g.next(), 100);
        assert_eq!(g.next(), 101);
    }
}
