//! `EXPLAIN ANALYZE` rendering: run the query with tracing enabled, then turn
//! the recorded span tree and per-query counter deltas into a text profile.
//!
//! The report has three parts:
//!
//! 1. the **stage tree** — every span recorded under the root `query` span,
//!    indented by depth, with wall time and structured attributes. Hot leaf
//!    spans (per-block cache probes, per-object store reads) collapse into
//!    one `name ×N` aggregate line per stage once they repeat enough;
//! 2. the **kernel tier** the distance kernels dispatched to;
//! 3. the **counter deltas** this query produced (cache hits/misses, remote
//!    bytes, prune counts, …), so the numbers EXPLAIN ANALYZE shows line up
//!    with what `SYSTEM METRICS` exposes cumulatively.
//!
//! Tree layout (grouping, aggregation, units) lives in
//! [`bh_common::trace::render_spans`]; this module only adds the per-query
//! counter diff and kernel-tier lookup.

use bh_cluster::vw::VirtualWarehouse;
use bh_common::trace::render_spans;
use bh_common::{MetricsRegistry, Result};
use bh_query::exec::{QueryEngine, QueryOptions};
use bh_query::result::ResultSet;
use bh_sql::ast::SelectStmt;
use bh_storage::table::TableStore;
use bh_storage::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Counter families worth echoing per query; everything else (global build
/// counters, id generators, …) stays out of the report.
const COUNTER_PREFIXES: &[&str] = &["cache.", "remote.", "query.", "worker.", "vw.", "table."];

/// Same-named siblings collapse into one aggregate line past this count —
/// per-block cache probes would otherwise drown the stage tree.
const AGGREGATE_THRESHOLD: usize = 8;

/// Execute `sel` with tracing enabled and render the profile report.
pub(crate) fn explain_analyze(
    engine: &QueryEngine,
    metrics: &MetricsRegistry,
    table: &Arc<TableStore>,
    vw: &Arc<VirtualWarehouse>,
    opts: &QueryOptions,
    sel: &SelectStmt,
) -> Result<ResultSet> {
    let tracer = metrics.tracer();
    let before: BTreeMap<String, u64> = metrics.snapshot_counters().into_iter().collect();
    let was_enabled = tracer.is_enabled();
    tracer.set_enabled(true);
    if !was_enabled {
        // Start from an empty ring so the report covers only this query.
        tracer.clear();
    }
    let root = tracer.span("query");
    let root_id = root.id();
    let result = engine.execute_select(table, vw, opts, sel);
    drop(root);
    tracer.set_enabled(was_enabled);
    let records = tracer.drain();
    // Propagate the query error only after the tracer state is restored.
    let rows = result?;

    let mut lines = render_spans(&records, root_id, AGGREGATE_THRESHOLD);
    if lines.is_empty() {
        lines.push("(root span lost — ring capacity exceeded?)".into());
    }
    lines.push(format!("result rows: {}", rows.len()));
    if let Some(tier) = kernel_tier(metrics) {
        lines.push(format!("kernel tier: {tier}"));
    }

    let mut deltas: Vec<(String, u64)> = metrics
        .snapshot_counters()
        .into_iter()
        .filter(|(k, _)| COUNTER_PREFIXES.iter().any(|p| k.starts_with(p)))
        .filter_map(|(k, v)| {
            let d = v.saturating_sub(before.get(&k).copied().unwrap_or(0));
            (d > 0).then_some((k, d))
        })
        .collect();
    deltas.sort();
    if !deltas.is_empty() {
        lines.push("counters (this query):".into());
        for (k, d) in deltas {
            lines.push(format!("  {k}: {d}"));
        }
    }

    let mut out = ResultSet::new(vec!["profile".into()]);
    out.rows = lines.into_iter().map(|l| vec![Value::Str(l)]).collect();
    Ok(out)
}

/// Which SIMD tier the distance kernels run on (gauge set at engine start).
fn kernel_tier(metrics: &MetricsRegistry) -> Option<String> {
    metrics
        .snapshot_gauges()
        .into_iter()
        .find(|(k, v)| k.starts_with("kernel.tier.") && *v == 1)
        .map(|(k, _)| k["kernel.tier.".len()..].to_string())
}
