//! `system.*` virtual tables — SQL over live telemetry.
//!
//! ClickHouse/ByteHouse expose their introspection surface as ordinary
//! tables under the `system` database so operators can slice telemetry with
//! the same SELECT grammar they use for data. This module reproduces that:
//! each provider materializes one snapshot of an in-process source (query
//! log ring, metrics registry, slow-query span store, worker caches, segment
//! catalog, lockdep graph) as rows, and a small generic executor applies
//! projection, WHERE, ORDER BY, LIMIT and vector-free aggregates on top.
//!
//! Tables:
//!
//! * `system.query_log` — one row per completed statement (see
//!   [`bh_common::querylog::QueryLogRecord`]).
//! * `system.metrics` — every registered counter/gauge, plus histogram
//!   quantile rows (`<name>.p50_ns` …).
//! * `system.spans` — retained slow-query span trees, one row per span.
//! * `system.caches` — per-worker index/block cache occupancy and hit rates.
//! * `system.segments` — per-segment rows, index kind/tier and residency.
//! * `system.lock_classes` — the PR 8 lock rank table with observed
//!   acquisition-edge counts (edges are empty when lockdep is compiled out).
//!
//! Snapshots are point-in-time copies: a scan never holds a telemetry lock
//! while filtering or sorting, so system queries cannot stall the hot path.

use crate::database::Database;
use bh_common::trace::AttrValue;
use bh_common::{sync as bhsync, BhError, Result};
use bh_query::ResultSet;
use bh_sql::ast::{Expr, SelectItem, SelectStmt};
use bh_storage::schema::TableSchema;
use bh_storage::value::{ColumnType, Value};
use std::collections::BTreeMap;

/// Does `name` address a virtual system table? (Any dotted name under the
/// `system.` database — unknown members fail with `NotFound` in
/// [`execute_system_select`], listing the valid tables.)
pub fn is_system_table(name: &str) -> bool {
    name.starts_with("system.")
}

/// All system table names, for error messages and discovery.
pub const SYSTEM_TABLES: &[&str] = &[
    "system.caches",
    "system.lock_classes",
    "system.metrics",
    "system.query_log",
    "system.segments",
    "system.spans",
];

/// One materialized snapshot of a system table.
struct SystemRows {
    /// `(column name, type)` in declaration order. No vector columns.
    columns: Vec<(&'static str, ColumnType)>,
    rows: Vec<Vec<Value>>,
}

/// Execute a SELECT against a `system.*` table.
pub fn execute_system_select(db: &Database, sel: &SelectStmt) -> Result<ResultSet> {
    let snap = match sel.table.as_str() {
        "system.query_log" => query_log_rows(db),
        "system.metrics" => metrics_rows(db),
        "system.spans" => span_rows(db),
        "system.caches" => cache_rows(db),
        "system.segments" => segment_rows(db),
        "system.lock_classes" => lock_class_rows(),
        other => {
            return Err(BhError::NotFound(format!(
                "system table {other} (available: {})",
                SYSTEM_TABLES.join(", ")
            )))
        }
    };
    scan(&snap, sel)
}

// ---------------------------------------------------------------------------
// Generic scan: WHERE → ORDER BY → LIMIT → projection/aggregation.
// ---------------------------------------------------------------------------

fn scan(snap: &SystemRows, sel: &SelectStmt) -> Result<ResultSet> {
    let schema = synthetic_schema(&sel.table, &snap.columns);
    let col_index: BTreeMap<&str, usize> =
        snap.columns.iter().enumerate().map(|(i, (n, _))| (*n, i)).collect();

    // Filter. Predicates bind against the synthetic schema, so system
    // columns get the same literal coercion rules as data columns.
    let mut kept: Vec<&Vec<Value>> = match &sel.where_clause {
        None => snap.rows.iter().collect(),
        Some(e) => {
            let pred = bh_query::bind::bind_predicate(&schema, e)?;
            let mut out = Vec::new();
            for row in &snap.rows {
                if pred.eval(&row_map(&snap.columns, row))? {
                    out.push(row);
                }
            }
            out
        }
    };

    // Sort. ORDER BY names a column of the table (or a projection alias for
    // one); incomparable pairs (Null vs value) sort last.
    if !sel.order_by.is_empty() {
        let mut keys = Vec::with_capacity(sel.order_by.len());
        for item in &sel.order_by {
            let name = order_column(&item.expr, sel)?;
            let idx = *col_index.get(name.as_str()).ok_or_else(|| {
                BhError::Plan(format!("unknown ORDER BY column {name} in {}", sel.table))
            })?;
            keys.push((idx, item.asc));
        }
        kept.sort_by(|a, b| {
            for &(idx, asc) in &keys {
                let ord = a[idx]
                    .partial_cmp_scalar(&b[idx])
                    .unwrap_or(std::cmp::Ordering::Greater);
                let ord = if asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    if let Some(n) = sel.limit {
        kept.truncate(n as usize);
    }

    // Projection — either plain columns/star, or all-aggregate.
    let aggs = aggregate_projection(sel)?;
    if let Some(aggs) = aggs {
        return aggregate(&snap.columns, &col_index, &kept, &aggs);
    }

    let mut out_cols = Vec::new();
    let mut idxs = Vec::new();
    for item in &sel.projection {
        match item {
            SelectItem::Star => {
                for (i, (n, _)) in snap.columns.iter().enumerate() {
                    out_cols.push((*n).to_string());
                    idxs.push(i);
                }
            }
            SelectItem::Expr { expr: Expr::Column(c), alias } => {
                let idx = *col_index.get(c.as_str()).ok_or_else(|| {
                    BhError::Plan(format!("unknown column {c} in {}", sel.table))
                })?;
                out_cols.push(alias.clone().unwrap_or_else(|| c.clone()));
                idxs.push(idx);
            }
            other => {
                return Err(BhError::Plan(format!(
                    "system tables support column, * and aggregate projections, got {other:?}"
                )))
            }
        }
    }
    let mut rs = ResultSet::new(out_cols);
    for row in kept {
        rs.rows.push(idxs.iter().map(|&i| row[i].clone()).collect());
    }
    Ok(rs)
}

fn synthetic_schema(table: &str, columns: &[(&'static str, ColumnType)]) -> TableSchema {
    let mut s = TableSchema::new(table);
    for (n, ty) in columns {
        s = s.with_column(n, *ty);
    }
    s
}

fn row_map(columns: &[(&'static str, ColumnType)], row: &[Value]) -> BTreeMap<String, Value> {
    columns
        .iter()
        .zip(row.iter())
        .map(|((n, _), v)| ((*n).to_string(), v.clone()))
        .collect()
}

/// Resolve an ORDER BY expression to a source column name. A bare column
/// name wins; otherwise a projection alias for a plain column is accepted.
fn order_column(e: &Expr, sel: &SelectStmt) -> Result<String> {
    let Expr::Column(name) = e else {
        return Err(BhError::Plan(
            "system tables only support ORDER BY <column> [ASC|DESC]".into(),
        ));
    };
    for item in &sel.projection {
        if let SelectItem::Expr { expr: Expr::Column(c), alias: Some(a) } = item {
            if a == name {
                return Ok(c.clone());
            }
        }
    }
    Ok(name.clone())
}

/// One bound aggregate: function + source column (`None` = `count(*)`).
struct AggItem {
    func: AggFunc,
    column: Option<String>,
    out_name: String,
}

#[derive(Clone, Copy, PartialEq)]
enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// If the projection is made of aggregate calls, return them; a mix of
/// aggregates and plain columns is rejected (no GROUP BY in the dialect).
fn aggregate_projection(sel: &SelectStmt) -> Result<Option<Vec<AggItem>>> {
    let mut aggs = Vec::new();
    let mut plain = 0usize;
    for item in &sel.projection {
        if let SelectItem::Expr { expr: Expr::FuncCall { name, args }, alias } = item {
            let func = match name.to_ascii_lowercase().as_str() {
                "count" => AggFunc::Count,
                "sum" => AggFunc::Sum,
                "min" => AggFunc::Min,
                "max" => AggFunc::Max,
                "avg" => AggFunc::Avg,
                _ => {
                    plain += 1;
                    continue;
                }
            };
            let column = match (func, args.as_slice()) {
                (AggFunc::Count, []) => None,
                (_, [Expr::Column(c)]) => Some(c.clone()),
                _ => {
                    return Err(BhError::Plan(format!(
                        "{name} takes a single column argument (or * for count)"
                    )))
                }
            };
            let out_name = alias.clone().unwrap_or_else(|| match &column {
                Some(c) => format!("{}({c})", name.to_ascii_lowercase()),
                None => "count(*)".into(),
            });
            aggs.push(AggItem { func, column, out_name });
        } else {
            plain += 1;
        }
    }
    if aggs.is_empty() {
        return Ok(None);
    }
    if plain > 0 {
        return Err(BhError::Plan(
            "cannot mix aggregate and plain projections without GROUP BY".into(),
        ));
    }
    Ok(Some(aggs))
}

fn aggregate(
    columns: &[(&'static str, ColumnType)],
    col_index: &BTreeMap<&str, usize>,
    rows: &[&Vec<Value>],
    aggs: &[AggItem],
) -> Result<ResultSet> {
    let mut rs = ResultSet::new(aggs.iter().map(|a| a.out_name.clone()).collect());
    let mut out = Vec::with_capacity(aggs.len());
    for agg in aggs {
        let idx = match &agg.column {
            None => None,
            Some(c) => Some(*col_index.get(c.as_str()).ok_or_else(|| {
                BhError::Plan(format!("unknown aggregate column {c}"))
            })?),
        };
        out.push(eval_agg(agg.func, idx.map(|i| (i, columns[i].1)), rows)?);
    }
    rs.rows.push(out);
    Ok(rs)
}

fn eval_agg(
    func: AggFunc,
    col: Option<(usize, ColumnType)>,
    rows: &[&Vec<Value>],
) -> Result<Value> {
    let Some((idx, ty)) = col else {
        // count(*)
        return Ok(Value::UInt64(rows.len() as u64));
    };
    if ty.is_vector() {
        return Err(BhError::Plan("aggregates over vector columns are unsupported".into()));
    }
    let cells = || rows.iter().map(|r| &r[idx]).filter(|v| !v.is_null());
    match func {
        AggFunc::Count => Ok(Value::UInt64(cells().count() as u64)),
        AggFunc::Sum => match ty {
            ColumnType::Float64 => {
                Ok(Value::Float64(cells().filter_map(|v| v.as_f64()).sum()))
            }
            ColumnType::Int64 => {
                let s: i128 = cells()
                    .filter_map(|v| match v {
                        Value::Int64(x) => Some(*x as i128),
                        _ => None,
                    })
                    .sum();
                Ok(Value::Int64(s as i64))
            }
            _ => {
                let s: u128 = cells()
                    .filter_map(|v| match v {
                        Value::UInt64(x) | Value::DateTime(x) => Some(*x as u128),
                        _ => None,
                    })
                    .sum();
                Ok(Value::UInt64(s as u64))
            }
        },
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<&Value> = None;
            for v in cells() {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let ord = v.partial_cmp_scalar(b).unwrap_or(std::cmp::Ordering::Equal);
                        let take = if func == AggFunc::Min {
                            ord == std::cmp::Ordering::Less
                        } else {
                            ord == std::cmp::Ordering::Greater
                        };
                        if take {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.cloned().unwrap_or(Value::Null))
        }
        AggFunc::Avg => {
            let (mut sum, mut n) = (0.0f64, 0u64);
            for v in cells() {
                if let Some(x) = v.as_f64() {
                    sum += x;
                    n += 1;
                }
            }
            Ok(if n == 0 { Value::Null } else { Value::Float64(sum / n as f64) })
        }
    }
}

// ---------------------------------------------------------------------------
// Providers.
// ---------------------------------------------------------------------------

fn query_log_rows(db: &Database) -> SystemRows {
    use ColumnType::{Str, UInt64};
    let columns = vec![
        ("query_id", UInt64),
        ("kind", Str),
        ("sql", Str),
        ("tenant", Str),
        ("session", Str),
        ("start_nanos", UInt64),
        ("end_nanos", UInt64),
        ("duration_ns", UInt64),
        ("bind_ns", UInt64),
        ("plan_ns", UInt64),
        ("exec_ns", UInt64),
        ("segment_ns", UInt64),
        ("rpc_ns", UInt64),
        ("rows_scanned", UInt64),
        ("segments_pruned", UInt64),
        ("bound_skips", UInt64),
        ("cache_hits", UInt64),
        ("cache_misses", UInt64),
        ("result_rows", UInt64),
        ("strategy", Str),
        ("error_code", Str),
        ("traced", UInt64),
    ];
    let rows = db
        .query_log()
        .records()
        .into_iter()
        .map(|r| {
            let duration = r.duration_nanos();
            vec![
                Value::UInt64(r.query_id),
                Value::Str(r.kind.to_string()),
                Value::Str(r.sql),
                Value::Str(r.tenant),
                Value::Str(r.session),
                Value::UInt64(r.start_nanos),
                Value::UInt64(r.end_nanos),
                Value::UInt64(duration),
                Value::UInt64(r.bind_ns),
                Value::UInt64(r.plan_ns),
                Value::UInt64(r.exec_ns),
                Value::UInt64(r.segment_ns),
                Value::UInt64(r.rpc_ns),
                Value::UInt64(r.rows_scanned),
                Value::UInt64(r.segments_pruned),
                Value::UInt64(r.bound_skips),
                Value::UInt64(r.cache_hits),
                Value::UInt64(r.cache_misses),
                Value::UInt64(r.result_rows),
                Value::Str(r.strategy.to_string()),
                Value::Str(r.error_code.unwrap_or("").to_string()),
                Value::UInt64(u64::from(r.traced)),
            ]
        })
        .collect();
    SystemRows { columns, rows }
}

fn metrics_rows(db: &Database) -> SystemRows {
    use ColumnType::{Float64, Str};
    let columns = vec![("name", Str), ("kind", Str), ("value", Float64)];
    let m = db.metrics();
    let mut rows = Vec::new();
    for (name, v) in m.snapshot_counters() {
        rows.push(vec![
            Value::Str(name),
            Value::Str("counter".into()),
            Value::Float64(v as f64),
        ]);
    }
    for (name, v) in m.snapshot_gauges() {
        rows.push(vec![
            Value::Str(name),
            Value::Str("gauge".into()),
            Value::Float64(v as f64),
        ]);
    }
    for (name, snap) in m.snapshot_histograms() {
        let stats: [(&str, f64); 7] = [
            ("count", snap.count as f64),
            ("p50_ns", snap.p50.as_nanos() as f64),
            ("p95_ns", snap.p95.as_nanos() as f64),
            ("p99_ns", snap.p99.as_nanos() as f64),
            ("p999_ns", snap.p999.as_nanos() as f64),
            ("mean_ns", snap.mean.as_nanos() as f64),
            ("max_ns", snap.max.as_nanos() as f64),
        ];
        for (suffix, v) in stats {
            rows.push(vec![
                Value::Str(format!("{name}.{suffix}")),
                Value::Str("histogram".into()),
                Value::Float64(v),
            ]);
        }
    }
    SystemRows { columns, rows }
}

fn span_rows(db: &Database) -> SystemRows {
    use ColumnType::{Str, UInt64};
    let columns = vec![
        ("query_id", UInt64),
        ("sql", Str),
        ("span_id", UInt64),
        ("parent_id", UInt64),
        ("name", Str),
        ("start_nanos", UInt64),
        ("end_nanos", UInt64),
        ("duration_ns", UInt64),
        ("attrs", Str),
    ];
    let mut rows = Vec::new();
    for trace in db.query_log().slow_traces() {
        for span in &trace.spans {
            rows.push(vec![
                Value::UInt64(trace.query_id),
                Value::Str(trace.sql.clone()),
                Value::UInt64(span.id.0),
                Value::UInt64(span.parent.0),
                Value::Str(span.name.to_string()),
                Value::UInt64(span.start_nanos),
                Value::UInt64(span.end_nanos),
                Value::UInt64(span.duration_nanos()),
                Value::Str(render_attrs(&span.attrs)),
            ]);
        }
    }
    SystemRows { columns, rows }
}

fn render_attrs(attrs: &[(&'static str, AttrValue)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(k);
        out.push('=');
        match v {
            AttrValue::U64(x) => out.push_str(&x.to_string()),
            AttrValue::F64(x) => out.push_str(&format!("{x:.3}")),
            AttrValue::Str(s) => out.push_str(s),
            AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out
}

fn cache_rows(db: &Database) -> SystemRows {
    use ColumnType::{Str, UInt64};
    let columns = vec![
        ("vw", Str),
        ("worker", Str),
        ("cache", Str),
        ("used_bytes", UInt64),
        ("capacity_bytes", UInt64),
        ("entries", UInt64),
        ("hits", UInt64),
        ("misses", UInt64),
        ("evictions", UInt64),
    ];
    let mut rows = Vec::new();
    for vw in db.vw_handles() {
        for wid in vw.worker_ids() {
            let Ok(worker) = vw.worker(wid) else { continue };
            let ic = worker.index_cache();
            let (hits, misses, evictions) = ic.memory_stats();
            rows.push(vec![
                Value::Str(vw.name().to_string()),
                Value::Str(wid.to_string()),
                Value::Str("index.mem".into()),
                Value::UInt64(ic.memory_used() as u64),
                Value::UInt64(ic.memory_capacity() as u64),
                Value::UInt64(ic.resident_count() as u64),
                Value::UInt64(hits),
                Value::UInt64(misses),
                Value::UInt64(evictions),
            ]);
            // Head tier: entry count only — heads are pinned outside the
            // LRU, so byte/hit accounting lives in `cache.index.*` counters.
            rows.push(vec![
                Value::Str(vw.name().to_string()),
                Value::Str(wid.to_string()),
                Value::Str("index.head".into()),
                Value::UInt64(0),
                Value::UInt64(0),
                Value::UInt64(ic.head_count() as u64),
                Value::UInt64(0),
                Value::UInt64(0),
                Value::UInt64(0),
            ]);
            for (kind, used, cap, entries, h, mi, ev) in worker.block_cache().space_stats() {
                rows.push(vec![
                    Value::Str(vw.name().to_string()),
                    Value::Str(wid.to_string()),
                    Value::Str(kind.to_string()),
                    Value::UInt64(used as u64),
                    Value::UInt64(cap as u64),
                    Value::UInt64(entries as u64),
                    Value::UInt64(h),
                    Value::UInt64(mi),
                    Value::UInt64(ev),
                ]);
            }
        }
    }
    SystemRows { columns, rows }
}

fn segment_rows(db: &Database) -> SystemRows {
    use ColumnType::{Str, UInt64};
    let columns = vec![
        ("table", Str),
        ("segment_id", UInt64),
        ("rows", UInt64),
        ("deleted_rows", UInt64),
        ("level", UInt64),
        ("index_kind", Str),
        ("index_bytes", UInt64),
        ("index_head_bytes", UInt64),
        ("tiered", UInt64),
        ("resident_workers", UInt64),
        ("head_resident_workers", UInt64),
    ];
    let vws = db.vw_handles();
    let mut rows = Vec::new();
    for tname in db.table_names() {
        let Ok(t) = db.table(&tname) else { continue };
        for meta in t.segments() {
            let (mut resident, mut head_resident) = (0u64, 0u64);
            for vw in &vws {
                for wid in vw.worker_ids() {
                    let Ok(worker) = vw.worker(wid) else { continue };
                    if worker.index_cache().resident(meta.id) {
                        resident += 1;
                    }
                    if worker.index_cache().head_resident(meta.id) {
                        head_resident += 1;
                    }
                }
            }
            rows.push(vec![
                Value::Str(tname.clone()),
                Value::UInt64(meta.id.0),
                Value::UInt64(meta.row_count as u64),
                Value::UInt64(t.delete_map().deleted_count(meta.id) as u64),
                Value::UInt64(u64::from(meta.level)),
                Value::Str(meta.index_kind.map(|k| k.name().to_string()).unwrap_or_default()),
                Value::UInt64(meta.index_bytes),
                Value::UInt64(meta.index_head_bytes),
                Value::UInt64(u64::from(meta.index_head_bytes > 0)),
                Value::UInt64(resident),
                Value::UInt64(head_resident),
            ]);
        }
    }
    SystemRows { columns, rows }
}

fn lock_class_rows() -> SystemRows {
    use ColumnType::{Str, UInt64};
    let columns = vec![
        ("name", Str),
        ("rank", UInt64),
        ("id", UInt64),
        ("edges_out", UInt64),
        ("edges_in", UInt64),
    ];
    let edges = bhsync::lockdep_edges();
    let rows = bhsync::classes::ALL
        .iter()
        .map(|c| {
            let out = edges.iter().filter(|(from, _)| from.id == c.id).count() as u64;
            let inc = edges.iter().filter(|(_, to)| to.id == c.id).count() as u64;
            vec![
                Value::Str(c.name.to_string()),
                Value::UInt64(u64::from(c.rank)),
                Value::UInt64(u64::from(c.id)),
                Value::UInt64(out),
                Value::UInt64(inc),
            ]
        })
        .collect();
    SystemRows { columns, rows }
}
