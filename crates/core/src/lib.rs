//! # blendhouse — the cloud-native generalized vector database
//!
//! The top-level facade tying every subsystem together the way §II's
//! architecture diagram does:
//!
//! * a **catalog** of tables, each backed by an LSM [`bh_storage::TableStore`]
//!   persisting to one shared (simulated) remote object store;
//! * named **virtual warehouses** ([`bh_cluster::VirtualWarehouse`]) of
//!   stateless workers — create separate VWs for reads and writes to get the
//!   paper's read/write isolation;
//! * one **query engine** ([`bh_query::QueryEngine`]) with a shared plan
//!   cache and calibrated cost model;
//! * a SQL front door: [`Database::execute`] runs any statement of the
//!   dialect (Example 1 end to end).
//!
//! ```
//! use blendhouse::{Database, QueryOutput};
//!
//! let db = Database::in_memory();
//! db.execute(
//!     "CREATE TABLE docs (
//!        id UInt64, body String, embedding Array(Float32),
//!        INDEX ann embedding TYPE HNSW('DIM=4')
//!      ) ORDER BY id",
//! ).unwrap();
//! db.execute("INSERT INTO docs VALUES (1, 'hello', [0.0, 0.0, 0.0, 0.0]), \
//!                                     (2, 'world', [1.0, 1.0, 1.0, 1.0])").unwrap();
//! let out = db.execute(
//!     "SELECT id FROM docs ORDER BY L2Distance(embedding, [0.1, 0.0, 0.0, 0.0]) LIMIT 1",
//! ).unwrap();
//! let QueryOutput::Rows(rows) = out else { panic!() };
//! assert_eq!(rows.rows[0][0], blendhouse::Value::UInt64(1));
//! ```

pub mod csv;
pub mod database;
pub mod ddl;
mod profile;
pub mod systbl;

pub use bh_query::{QueryOptions, ResultSet, Strategy};
pub use bh_storage::value::{ColumnType, Value};
pub use database::{Database, DatabaseConfig, QueryOutput};
