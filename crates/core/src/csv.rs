//! CSV ingestion (`INSERT INTO t CSV INFILE '…'`).
//!
//! A small CSV reader sufficient for the paper's bulk-load workloads:
//! comma-separated fields, double-quote quoting with `""` escapes, and
//! embedding cells written as bracketed float lists (`"[0.1, 0.2]"` or
//! unquoted `[0.1;0.2]` with semicolon separators).

use bh_common::{BhError, Result};
use bh_storage::schema::TableSchema;
use bh_storage::value::{ColumnType, Value};

/// Split one CSV line into raw fields (commas inside quotes or brackets do
/// not split).
pub fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut bracket_depth = 0usize;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            '[' if !in_quotes => {
                bracket_depth += 1;
                cur.push(c);
            }
            ']' if !in_quotes => {
                bracket_depth = bracket_depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if !in_quotes && bracket_depth == 0 => {
                fields.push(std::mem::take(&mut cur));
            }
            other => cur.push(other),
        }
    }
    fields.push(cur);
    fields
}

/// Parse one field against a column type.
pub fn parse_field(field: &str, ty: ColumnType, dim_hint: usize) -> Result<Value> {
    let f = field.trim();
    let bad = |what: &str| BhError::Parse(format!("csv field '{f}' is not a valid {what}"));
    Ok(match ty {
        ColumnType::UInt64 => Value::UInt64(f.parse().map_err(|_| bad("UInt64"))?),
        ColumnType::Int64 => Value::Int64(f.parse().map_err(|_| bad("Int64"))?),
        ColumnType::Float64 => Value::Float64(f.parse().map_err(|_| bad("Float64"))?),
        ColumnType::Str => Value::Str(f.to_string()),
        ColumnType::DateTime => {
            // Numeric epoch or "YYYY-MM-DD HH:MM:SS".
            if let Ok(epoch) = f.parse::<u64>() {
                Value::DateTime(epoch)
            } else {
                Value::DateTime(bh_query::bind::parse_datetime(f)?)
            }
        }
        ColumnType::Vector(d) => {
            let inner = f
                .strip_prefix('[')
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(|| bad("vector (expected [a, b, …])"))?;
            let mut v = Vec::new();
            for part in inner.split([',', ';']) {
                let p = part.trim();
                if p.is_empty() {
                    continue;
                }
                v.push(p.parse::<f32>().map_err(|_| bad("vector element"))?);
            }
            let want = if d != 0 { d } else { dim_hint };
            if want != 0 && v.len() != want {
                return Err(BhError::DimensionMismatch { expected: want, got: v.len() });
            }
            Value::Vector(v)
        }
    })
}

/// Parse full CSV text into rows conforming to the schema (column order =
/// schema order). Blank lines are skipped; an optional header line equal to
/// the column names is skipped too.
pub fn parse_csv(schema: &TableSchema, text: &str) -> Result<Vec<Vec<Value>>> {
    let mut rows = Vec::new();
    let header: Vec<&str> = schema.columns.iter().map(|c| c.name.as_str()).collect();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_csv_line(line);
        if lineno == 0 && fields.iter().map(|s| s.trim()).eq(header.iter().copied()) {
            continue; // header row
        }
        if fields.len() != schema.columns.len() {
            return Err(BhError::Parse(format!(
                "csv line {}: {} fields, schema has {} columns",
                lineno + 1,
                fields.len(),
                schema.columns.len()
            )));
        }
        let row: Vec<Value> = fields
            .iter()
            .zip(&schema.columns)
            .map(|(f, def)| {
                let dim_hint = schema.index_on(&def.name).map(|i| i.spec.dim).unwrap_or(0);
                parse_field(f, def.ty, dim_hint)
                    .map_err(|e| BhError::Parse(format!("csv line {}: {e}", lineno + 1)))
            })
            .collect::<Result<_>>()?;
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_vector::{IndexKind, Metric};

    fn schema() -> TableSchema {
        TableSchema::new("t")
            .with_column("id", ColumnType::UInt64)
            .with_column("label", ColumnType::Str)
            .with_column("ts", ColumnType::DateTime)
            .with_column("emb", ColumnType::Vector(3))
            .with_vector_index("i", "emb", IndexKind::Flat, 3, Metric::L2)
    }

    #[test]
    fn split_handles_quotes_and_brackets() {
        assert_eq!(split_csv_line("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_csv_line(r#""a,b",c"#), vec!["a,b", "c"]);
        assert_eq!(split_csv_line(r#""say ""hi""",x"#), vec![r#"say "hi""#, "x"]);
        assert_eq!(split_csv_line("[1.0, 2.0],z"), vec!["[1.0, 2.0]", "z"]);
        assert_eq!(split_csv_line(""), vec![""]);
    }

    #[test]
    fn full_rows_parse() {
        let text = "1,cat,100,[0.1, 0.2, 0.3]\n2,\"a,dog\",2024-01-01 00:00:00,[1;2;3]\n";
        let rows = parse_csv(&schema(), text).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::UInt64(1));
        assert_eq!(rows[1][1], Value::Str("a,dog".into()));
        assert_eq!(rows[0][3], Value::Vector(vec![0.1, 0.2, 0.3]));
        assert_eq!(rows[1][3], Value::Vector(vec![1.0, 2.0, 3.0]));
        // DateTime from string form.
        let Value::DateTime(ts) = rows[1][2] else { panic!() };
        assert!(ts > 1_700_000_000);
    }

    #[test]
    fn header_row_skipped() {
        let text = "id,label,ts,emb\n7,x,0,[1,2,3]\n";
        let rows = parse_csv(&schema(), text).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::UInt64(7));
    }

    #[test]
    fn arity_and_type_errors_carry_line_numbers() {
        let err = parse_csv(&schema(), "1,x,0\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = parse_csv(&schema(), "notanint,x,0,[1,2,3]\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = parse_csv(&schema(), "1,x,0,[1,2]\n").unwrap_err();
        assert!(err.to_string().contains("dimension mismatch"));
    }

    #[test]
    fn blank_lines_skipped() {
        let rows = parse_csv(&schema(), "\n1,x,0,[1,2,3]\n\n").unwrap();
        assert_eq!(rows.len(), 1);
    }
}
