//! The `Database` facade: catalog, virtual warehouses, SQL execution.

use crate::csv::parse_csv;
use crate::ddl::schema_from_ast;
use bh_cluster::vw::{VirtualWarehouse, VwConfig};
use bh_common::ids::IdGenerator;
use bh_common::{
    BhError, DeploymentLatencies, MetricsRegistry, RealClock, Result, SharedClock, VirtualClock,
    VwId,
};
use bh_query::bind::{bind_predicate, literal_to_value};
use bh_query::exec::{QueryEngine, QueryOptions};
use bh_query::result::ResultSet;
use bh_sql::ast::{DeleteStmt, InsertStmt, Statement, UpdateStmt};
use bh_sql::parse_statement;
use bh_storage::objectstore::{InMemoryObjectStore, SharedObjectStore};
use bh_storage::predicate::Predicate;
use bh_storage::table::{TableStore, TableStoreConfig};
use bh_storage::value::Value;
use bh_vector::IndexRegistry;
use bh_common::sync::{classes, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Outcome of one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// SELECT results.
    Rows(ResultSet),
    /// Row count affected by INSERT / UPDATE / DELETE.
    Affected(usize),
    /// DDL acknowledged.
    Created,
}

impl QueryOutput {
    /// Unwrap SELECT rows (panics on DML output — test convenience).
    pub fn rows(self) -> ResultSet {
        match self {
            QueryOutput::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    /// Unwrap a DML row count (panics on row output — test convenience).
    pub fn affected(self) -> usize {
        match self {
            QueryOutput::Affected(n) => n,
            other => panic!("expected affected count, got {other:?}"),
        }
    }
}

/// Construction-time configuration.
#[derive(Debug, Clone)]
pub struct DatabaseConfig {
    /// Latency profile of the simulated deployment.
    pub latencies: DeploymentLatencies,
    /// Use the wall clock (benchmarks) or a virtual clock (tests).
    pub real_time: bool,
    /// Per-table storage tunables.
    pub table: TableStoreConfig,
    /// Virtual-warehouse tunables.
    pub vw: VwConfig,
    /// Workers in the default read VW.
    pub default_workers: usize,
    /// Default query options (can be overridden per statement).
    pub query: QueryOptions,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        Self {
            latencies: DeploymentLatencies::zero(),
            real_time: false,
            table: TableStoreConfig::default(),
            vw: VwConfig::default(),
            default_workers: 2,
            query: QueryOptions::default(),
        }
    }
}

/// A BlendHouse database instance.
pub struct Database {
    cfg: DatabaseConfig,
    remote: SharedObjectStore,
    registry: Arc<IndexRegistry>,
    metrics: MetricsRegistry,
    clock: SharedClock,
    ids: Arc<IdGenerator>,
    tables: RwLock<HashMap<String, Arc<TableStore>>>,
    vws: RwLock<HashMap<String, Arc<VirtualWarehouse>>>,
    engine: QueryEngine,
    next_vw: std::sync::atomic::AtomicU64,
}

impl Database {
    /// Fast, deterministic, zero-latency instance for tests and examples.
    pub fn in_memory() -> Database {
        Database::new(DatabaseConfig::default())
    }

    /// A database with the given simulated-deployment configuration.
    pub fn new(cfg: DatabaseConfig) -> Database {
        let metrics = MetricsRegistry::new();
        let clock: SharedClock =
            if cfg.real_time { RealClock::shared() } else { VirtualClock::shared() };
        let remote: SharedObjectStore = Arc::new(InMemoryObjectStore::new(
            clock.clone(),
            cfg.latencies.remote_store,
            metrics.clone(),
            "remote",
        ));
        let db = Database {
            cfg: cfg.clone(),
            remote,
            registry: Arc::new(IndexRegistry::with_builtins()),
            metrics: metrics.clone(),
            clock,
            ids: Arc::new(IdGenerator::new()),
            tables: RwLock::new(&classes::DB_TABLES, HashMap::new()),
            vws: RwLock::new(&classes::DB_VWS, HashMap::new()),
            engine: QueryEngine::new(metrics),
            next_vw: std::sync::atomic::AtomicU64::new(0),
        };
        db.create_vw("default", cfg.default_workers);
        db
    }

    /// Shared metrics registry (counters across all subsystems).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The query engine (plan cache, cost model).
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// The pluggable index-library registry.
    pub fn registry(&self) -> &Arc<IndexRegistry> {
        &self.registry
    }

    /// The simulated remote shared store all tables persist to.
    pub fn remote_store(&self) -> &SharedObjectStore {
        &self.remote
    }

    /// The database's default per-query options.
    pub fn default_options(&self) -> QueryOptions {
        self.cfg.query.clone()
    }

    // ------------------------------------------------------------------- VWs

    /// Create (or resize) a named virtual warehouse with `workers` workers.
    pub fn create_vw(&self, name: &str, workers: usize) -> Arc<VirtualWarehouse> {
        let vw = Arc::new(VirtualWarehouse::new(
            VwId(self.next_vw.fetch_add(1, std::sync::atomic::Ordering::Relaxed)),
            name,
            VwConfig { rpc: self.cfg.latencies.rpc, ..self.cfg.vw.clone() },
            self.remote.clone(),
            self.registry.clone(),
            self.clock.clone(),
            self.metrics.clone(),
            self.ids.clone(),
        ));
        for _ in 0..workers {
            vw.scale_up(&[]);
        }
        self.vws.write().insert(name.to_string(), vw.clone());
        vw
    }

    /// Look up a virtual warehouse by name.
    pub fn vw(&self, name: &str) -> Result<Arc<VirtualWarehouse>> {
        self.vws
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| BhError::NotFound(format!("virtual warehouse {name}")))
    }

    /// The VW queries run on unless told otherwise.
    pub fn default_vw(&self) -> Arc<VirtualWarehouse> {
        self.vw("default").expect("created at construction")
    }

    // ---------------------------------------------------------------- tables

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<TableStore>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| BhError::NotFound(format!("table {name}")))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Cache-aware preload of a table's indexes into a VW (§II-D).
    pub fn preload(&self, table: &str, vw_name: &str) -> Result<usize> {
        let t = self.table(table)?;
        let vw = self.vw(vw_name)?;
        vw.preload(&t.segments())
    }

    /// Run one compaction pass on a table.
    pub fn compact(&self, table: &str) -> Result<bh_storage::table::CompactionReport> {
        self.table(table)?.compact()
    }

    // ------------------------------------------------------------------- SQL

    /// Execute one statement with the database's default options.
    pub fn execute(&self, sql: &str) -> Result<QueryOutput> {
        let opts = self.default_options();
        self.execute_with(sql, &opts)
    }

    /// Execute one statement with explicit query options (SELECT only; other
    /// statements ignore the options).
    pub fn execute_with(&self, sql: &str, opts: &QueryOptions) -> Result<QueryOutput> {
        match parse_statement(sql)? {
            Statement::CreateTable(ct) => {
                let schema = schema_from_ast(&ct)?;
                let name = schema.name.clone();
                if self.tables.read().contains_key(&name) {
                    return Err(BhError::AlreadyExists(format!("table {name}")));
                }
                let store = TableStore::new(
                    schema,
                    self.remote.clone(),
                    self.registry.clone(),
                    self.cfg.table.clone(),
                    self.ids.clone(),
                    self.metrics.clone(),
                )?;
                self.tables.write().insert(name, Arc::new(store));
                Ok(QueryOutput::Created)
            }
            Statement::Insert(ins) => self.execute_insert(&ins),
            Statement::Select(sel) => {
                let t = self.table(&sel.table)?;
                let vw = self.default_vw();
                let rs = self.engine.execute_select(&t, &vw, opts, &sel)?;
                Ok(QueryOutput::Rows(rs))
            }
            Statement::Update(upd) => self.execute_update(&upd),
            Statement::Delete(del) => self.execute_delete(&del),
            Statement::Explain(sel) => {
                let t = self.table(&sel.table)?;
                let text = self.engine.explain_select(&t, opts, &sel)?;
                let mut rs = ResultSet::new(vec!["plan".into()]);
                rs.rows = text.lines().map(|l| vec![Value::Str(l.to_string())]).collect();
                Ok(QueryOutput::Rows(rs))
            }
            Statement::ExplainAnalyze(sel) => {
                let t = self.table(&sel.table)?;
                let vw = self.default_vw();
                let rs = crate::profile::explain_analyze(
                    &self.engine,
                    &self.metrics,
                    &t,
                    &vw,
                    opts,
                    &sel,
                )?;
                Ok(QueryOutput::Rows(rs))
            }
            Statement::SystemMetrics => {
                let mut rs = ResultSet::new(vec!["metrics".into()]);
                rs.rows = self
                    .metrics_text()
                    .lines()
                    .map(|l| vec![Value::Str(l.to_string())])
                    .collect();
                Ok(QueryOutput::Rows(rs))
            }
        }
    }

    /// Every registered metric in Prometheus text exposition format (what a
    /// `/metrics` HTTP endpoint would serve; also behind `SYSTEM METRICS`).
    pub fn metrics_text(&self) -> String {
        self.metrics.render_prometheus()
    }

    /// Execute a SELECT on a specific VW (read/write separation, isolation
    /// experiments).
    pub fn query_on_vw(
        &self,
        vw_name: &str,
        sql: &str,
        opts: &QueryOptions,
    ) -> Result<ResultSet> {
        let Statement::Select(sel) = parse_statement(sql)? else {
            return Err(BhError::Plan("query_on_vw takes a SELECT".into()));
        };
        let t = self.table(&sel.table)?;
        let vw = self.vw(vw_name)?;
        self.engine.execute_select(&t, &vw, opts, &sel)
    }

    fn execute_insert(&self, ins: &InsertStmt) -> Result<QueryOutput> {
        match ins {
            InsertStmt::Values { table, rows } => {
                let t = self.table(table)?;
                let schema = t.schema();
                let mut typed = Vec::with_capacity(rows.len());
                for lits in rows {
                    if lits.len() != schema.columns.len() {
                        return Err(BhError::InvalidArgument(format!(
                            "INSERT arity {} != {} columns",
                            lits.len(),
                            schema.columns.len()
                        )));
                    }
                    let row: Vec<Value> = lits
                        .iter()
                        .zip(&schema.columns)
                        .map(|(l, def)| {
                            let ty = match def.ty {
                                bh_storage::value::ColumnType::Vector(0) => {
                                    bh_storage::value::ColumnType::Vector(
                                        schema
                                            .index_on(&def.name)
                                            .map(|i| i.spec.dim)
                                            .unwrap_or(0),
                                    )
                                }
                                t => t,
                            };
                            literal_to_value(l, ty)
                        })
                        .collect::<Result<_>>()?;
                    typed.push(row);
                }
                let n = typed.len();
                t.insert_rows(typed)?;
                Ok(QueryOutput::Affected(n))
            }
            InsertStmt::CsvFile { table, path } => {
                let t = self.table(table)?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| BhError::Io(format!("csv file {path}: {e}")))?;
                let rows = parse_csv(t.schema(), &text)?;
                let n = rows.len();
                t.insert_rows(rows)?;
                Ok(QueryOutput::Affected(n))
            }
        }
    }

    fn execute_update(&self, upd: &UpdateStmt) -> Result<QueryOutput> {
        let t = self.table(&upd.table)?;
        let schema = t.schema();
        let predicate = match &upd.where_clause {
            Some(e) => bind_predicate(schema, e)?,
            None => Predicate::True,
        };
        let assignments: Vec<(String, Value)> = upd
            .assignments
            .iter()
            .map(|(col, lit)| {
                let def = schema
                    .column(col)
                    .ok_or_else(|| BhError::NotFound(format!("column {col}")))?;
                Ok((col.clone(), literal_to_value(lit, def.ty)?))
            })
            .collect::<Result<_>>()?;
        Ok(QueryOutput::Affected(t.update_where(&predicate, &assignments)?))
    }

    fn execute_delete(&self, del: &DeleteStmt) -> Result<QueryOutput> {
        let t = self.table(&del.table)?;
        let predicate = match &del.where_clause {
            Some(e) => bind_predicate(t.schema(), e)?,
            None => Predicate::True,
        };
        Ok(QueryOutput::Affected(t.delete_where(&predicate)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn images_db(n: usize) -> Database {
        let db = Database::in_memory();
        db.execute(
            "CREATE TABLE images (
               id UInt64, label String, ts DateTime, emb Array(Float32),
               INDEX ann emb TYPE HNSW('DIM=4')
             ) ORDER BY id PARTITION BY label",
        )
        .unwrap();
        let mut values = Vec::new();
        for i in 0..n {
            let c = (i % 4) as f32 * 5.0;
            values.push(format!(
                "({i}, 'l{}', {}, [{c}, {c}, {c}, {c}])",
                i % 2,
                1000 + i
            ));
        }
        db.execute(&format!("INSERT INTO images VALUES {}", values.join(", "))).unwrap();
        db
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let db = images_db(100);
        let rs = db
            .execute(
                "SELECT id, dist FROM images WHERE label = 'l0' \
                 ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) AS dist LIMIT 5",
            )
            .unwrap()
            .rows();
        assert_eq!(rs.len(), 5);
        for row in &rs.rows {
            let Value::UInt64(id) = row[0] else { panic!() };
            assert_eq!(id % 2, 0, "label filter violated");
            assert_eq!(id % 4, 0, "nearest cluster is i%4==0");
        }
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = images_db(2);
        let err = db
            .execute("CREATE TABLE images (id UInt64)")
            .unwrap_err();
        assert!(matches!(err, BhError::AlreadyExists(_)));
    }

    #[test]
    fn unknown_table_errors() {
        let db = Database::in_memory();
        assert!(db.execute("SELECT * FROM nope LIMIT 1").is_err());
        assert!(db.execute("INSERT INTO nope VALUES (1)").is_err());
    }

    #[test]
    fn update_and_delete_through_sql() {
        let db = images_db(50);
        let n = db
            .execute("UPDATE images SET label = 'special' WHERE id = 7")
            .unwrap()
            .affected();
        assert_eq!(n, 1);
        let rs = db
            .execute("SELECT id FROM images WHERE label = 'special' LIMIT 10")
            .unwrap()
            .rows();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::UInt64(7));

        let deleted = db.execute("DELETE FROM images WHERE id < 10").unwrap().affected();
        assert_eq!(deleted, 10);
        let rs = db.execute("SELECT id FROM images WHERE id < 10 LIMIT 20").unwrap().rows();
        assert!(rs.is_empty());
    }

    #[test]
    fn csv_infile_loads() {
        let db = Database::in_memory();
        db.execute(
            "CREATE TABLE t (id UInt64, label String, emb Array(Float32), \
             INDEX i emb TYPE FLAT('DIM=2'))",
        )
        .unwrap();
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("data.csv");
        std::fs::write(&path, "1,cat,[0.0, 0.0]\n2,dog,[5.0, 5.0]\n").unwrap();
        let n = db
            .execute(&format!("INSERT INTO t CSV INFILE '{}'", path.display()))
            .unwrap()
            .affected();
        assert_eq!(n, 2);
        let rs = db
            .execute("SELECT id FROM t ORDER BY L2Distance(emb, [0.1, 0.1]) LIMIT 1")
            .unwrap()
            .rows();
        assert_eq!(rs.rows[0][0], Value::UInt64(1));
    }

    #[test]
    fn separate_vws_and_preload() {
        let db = images_db(200);
        db.create_vw("read", 3);
        let loaded = db.preload("images", "read").unwrap();
        assert!(loaded > 0);
        let rs = db
            .query_on_vw(
                "read",
                "SELECT id FROM images ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) LIMIT 3",
                &db.default_options(),
            )
            .unwrap();
        assert_eq!(rs.len(), 3);
        // Preloaded: no brute-force fallbacks on that VW's path.
        assert_eq!(db.metrics().counter_value("worker.brute_force"), 0);
    }

    #[test]
    fn compaction_via_facade() {
        let db = images_db(100);
        db.execute("DELETE FROM images WHERE id < 50").unwrap();
        let report = db.compact("images").unwrap();
        assert_eq!(report.rows_dropped, 50);
        let rs = db.execute("SELECT id FROM images LIMIT 200").unwrap().rows();
        assert_eq!(rs.len(), 50);
    }

    #[test]
    fn explain_reports_plan_and_strategy() {
        let db = images_db(200);
        let rs = db
            .execute(
                "EXPLAIN SELECT id FROM images WHERE label = 'l0' \
                 ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) LIMIT 5",
            )
            .unwrap()
            .rows();
        let text: Vec<String> = rs
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Str(s) => s.clone(),
                _ => panic!(),
            })
            .collect();
        let joined = text.join("\n");
        assert!(joined.contains("AnnScan"), "{joined}");
        assert!(joined.contains("strategy:"), "{joined}");
        assert!(joined.contains("cost[brute-force (Plan A)]"), "{joined}");
        assert!(joined.contains("distance-topk-pushdown"), "{joined}");
    }

    #[test]
    fn explain_analyze_profiles_cold_multi_segment_query() {
        // Small segments so the query fans out over several of them, cold
        // caches so the profile shows remote reads.
        let db = Database::new(DatabaseConfig {
            table: TableStoreConfig { segment_max_rows: 64, ..Default::default() },
            ..Default::default()
        });
        db.execute(
            "CREATE TABLE images (
               id UInt64, label String, emb Array(Float32),
               INDEX ann emb TYPE HNSW('DIM=4')
             ) ORDER BY id",
        )
        .unwrap();
        let mut values = Vec::new();
        for i in 0..200 {
            let c = (i % 4) as f32 * 5.0;
            values.push(format!("({i}, 'l{}', [{c}, {c}, {c}, {c}])", i % 2));
        }
        db.execute(&format!("INSERT INTO images VALUES {}", values.join(", "))).unwrap();
        assert!(db.table("images").unwrap().segments().len() > 1, "need multiple segments");

        let rs = db
            .execute(
                "EXPLAIN ANALYZE SELECT id FROM images WHERE label = 'l0' \
                 ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) LIMIT 5",
            )
            .unwrap()
            .rows();
        assert_eq!(rs.columns, vec!["profile".to_string()]);
        let text: String = rs
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Str(s) => s.as_str(),
                _ => panic!(),
            })
            .collect::<Vec<_>>()
            .join("\n");
        // Stage tree with per-stage wall time.
        assert!(text.starts_with("query  "), "{text}");
        for stage in ["bind", "plan", "exec", "exec.vector", "segment.search"] {
            assert!(text.contains(stage), "missing stage {stage} in:\n{text}");
        }
        // Segment scheduling and result accounting.
        assert!(text.contains("segments_total="), "{text}");
        assert!(text.contains("segments_visited="), "{text}");
        assert!(text.contains("result rows: 5"), "{text}");
        assert!(text.contains("kernel tier: "), "{text}");
        // Counter deltas: cold query pays remote reads and cache misses.
        assert!(text.contains("counters (this query):"), "{text}");
        assert!(text.contains("remote.get.bytes:"), "{text}");
        assert!(text.contains("cache.index.mem.miss:"), "{text}");
        // Profiling is transient: tracing is off again afterwards.
        assert!(!db.metrics().tracer().is_enabled());
    }

    #[test]
    fn explain_analyze_does_not_change_results() {
        let db = images_db(200);
        let sql = "SELECT id, dist FROM images WHERE label = 'l0' \
                   ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) AS dist LIMIT 7";
        let before = db.execute(sql).unwrap().rows();
        db.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        let after = db.execute(sql).unwrap().rows();
        assert_eq!(before, after, "profiling a query must not perturb results");
        assert!(db.metrics().tracer().drain().is_empty(), "no spans leak past the profile");
    }

    #[test]
    fn system_metrics_exposes_prometheus_text() {
        let db = images_db(100);
        db.execute(
            "SELECT id FROM images ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) LIMIT 3",
        )
        .unwrap()
        .rows();
        let rs = db.execute("SYSTEM METRICS").unwrap().rows();
        assert_eq!(rs.columns, vec!["metrics".to_string()]);
        let text: String = rs
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Str(s) => s.as_str(),
                _ => panic!(),
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("# TYPE"), "{text}");
        // Dots mangle to underscores in the Prometheus exposition.
        assert!(text.contains("remote_get_bytes"), "{text}");
        assert!(text.contains("kernel_tier_"), "{text}");
        assert_eq!(text, db.metrics_text().trim_end_matches('\n'));
    }

    #[test]
    fn doc_example_runs() {
        // Mirrors the crate-level doc example.
        let db = Database::in_memory();
        db.execute(
            "CREATE TABLE docs (id UInt64, body String, embedding Array(Float32), \
             INDEX ann embedding TYPE HNSW('DIM=4')) ORDER BY id",
        )
        .unwrap();
        db.execute(
            "INSERT INTO docs VALUES (1, 'hello', [0.0, 0.0, 0.0, 0.0]), \
             (2, 'world', [1.0, 1.0, 1.0, 1.0])",
        )
        .unwrap();
        let rows = db
            .execute("SELECT id FROM docs ORDER BY L2Distance(embedding, [0.1, 0.0, 0.0, 0.0]) LIMIT 1")
            .unwrap()
            .rows();
        assert_eq!(rows.rows[0][0], Value::UInt64(1));
    }
}
