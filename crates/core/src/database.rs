//! The `Database` facade: catalog, virtual warehouses, SQL execution.

use crate::csv::parse_csv;
use crate::ddl::schema_from_ast;
use bh_cluster::vw::{VirtualWarehouse, VwConfig};
use bh_common::ids::IdGenerator;
use bh_common::metrics::{self, Counter, Gauge, Histogram};
use bh_common::querylog::{normalize_sql, SlowQueryTrace, STATEMENT_KINDS};
use bh_common::{
    BhError, DeploymentLatencies, MetricsRegistry, QueryLog, QueryLogRecord, RealClock, Result,
    SharedClock, SlowQueryPolicy, VirtualClock, VwId,
};
use bh_query::bind::{bind_predicate, literal_to_value};
use bh_query::exec::{QueryEngine, QueryOptions};
use bh_query::result::ResultSet;
use bh_sql::ast::{DeleteStmt, InsertStmt, Statement, UpdateStmt};
use bh_sql::parse_statement;
use bh_storage::objectstore::{InMemoryObjectStore, SharedObjectStore};
use bh_storage::predicate::Predicate;
use bh_storage::table::{TableStore, TableStoreConfig};
use bh_storage::value::Value;
use bh_vector::IndexRegistry;
use bh_common::sync::{classes, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Outcome of one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// SELECT results.
    Rows(ResultSet),
    /// Row count affected by INSERT / UPDATE / DELETE.
    Affected(usize),
    /// DDL acknowledged.
    Created,
}

impl QueryOutput {
    /// Unwrap SELECT rows (panics on DML output — test convenience).
    pub fn rows(self) -> ResultSet {
        match self {
            QueryOutput::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    /// Unwrap a DML row count (panics on row output — test convenience).
    pub fn affected(self) -> usize {
        match self {
            QueryOutput::Affected(n) => n,
            other => panic!("expected affected count, got {other:?}"),
        }
    }
}

/// Construction-time configuration.
#[derive(Debug, Clone)]
pub struct DatabaseConfig {
    /// Latency profile of the simulated deployment.
    pub latencies: DeploymentLatencies,
    /// Use the wall clock (benchmarks) or a virtual clock (tests).
    pub real_time: bool,
    /// Per-table storage tunables.
    pub table: TableStoreConfig,
    /// Virtual-warehouse tunables.
    pub vw: VwConfig,
    /// Workers in the default read VW.
    pub default_workers: usize,
    /// Default query options (can be overridden per statement).
    pub query: QueryOptions,
    /// Ring capacity of the always-on query log (records retained for
    /// `system.query_log`).
    pub query_log_capacity: usize,
    /// When set, every statement is traced and queries the policy selects
    /// (slow or failed) keep their full span tree for `system.spans` /
    /// `SYSTEM TRACE EXPORT`.
    pub slow_query: Option<SlowQueryPolicy>,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        Self {
            latencies: DeploymentLatencies::zero(),
            real_time: false,
            table: TableStoreConfig::default(),
            vw: VwConfig::default(),
            default_workers: 2,
            query: QueryOptions::default(),
            query_log_capacity: bh_common::querylog::DEFAULT_LOG_CAPACITY,
            slow_query: None,
        }
    }
}

/// Pre-resolved handles of the per-stage counters the query log samples
/// around every statement. Resolving once at construction keeps the per-query
/// cost to atomic loads — no registry lookups on the hot path.
struct StageCounters {
    bind_ns: Arc<Counter>,
    plan_ns: Arc<Counter>,
    exec_ns: Arc<Counter>,
    segment_ns: Arc<Counter>,
    rpc_ns: Arc<Counter>,
    rows_scanned: Arc<Counter>,
    segments_pruned: Arc<Counter>,
    bound_skips: Arc<Counter>,
    plan_brute: Arc<Counter>,
    plan_pre: Arc<Counter>,
    plan_post: Arc<Counter>,
    plan_traversal: Arc<Counter>,
}

/// One point-in-time reading of [`StageCounters`] plus the cache hit/miss
/// sums; a statement's log columns are the after-minus-before deltas.
#[derive(Clone, Copy, Default)]
struct StageSample {
    bind_ns: u64,
    plan_ns: u64,
    exec_ns: u64,
    segment_ns: u64,
    rpc_ns: u64,
    rows_scanned: u64,
    segments_pruned: u64,
    bound_skips: u64,
    cache_hits: u64,
    cache_misses: u64,
    plan_brute: u64,
    plan_pre: u64,
    plan_post: u64,
    plan_traversal: u64,
}

impl StageCounters {
    fn resolve(m: &MetricsRegistry) -> StageCounters {
        StageCounters {
            bind_ns: m.counter("query.bind_ns"),
            plan_ns: m.counter("query.plan_ns"),
            exec_ns: m.counter("query.exec_ns"),
            segment_ns: m.counter("query.segment_ns"),
            rpc_ns: m.counter("worker.rpc_ns"),
            rows_scanned: m.counter("query.iterator_visited"),
            segments_pruned: m.counter("query.segments_pruned"),
            bound_skips: m.counter("query.bound_skips"),
            plan_brute: m.counter("query.plan.brute_force"),
            plan_pre: m.counter("query.plan.pre_filter"),
            plan_post: m.counter("query.plan.post_filter"),
            plan_traversal: m.counter("query.plan.filtered_traversal"),
        }
    }

    fn sample(&self, m: &MetricsRegistry) -> StageSample {
        StageSample {
            bind_ns: self.bind_ns.get(),
            plan_ns: self.plan_ns.get(),
            exec_ns: self.exec_ns.get(),
            segment_ns: self.segment_ns.get(),
            rpc_ns: self.rpc_ns.get(),
            rows_scanned: self.rows_scanned.get(),
            segments_pruned: self.segments_pruned.get(),
            bound_skips: self.bound_skips.get(),
            cache_hits: m.sum_counters_prefixed("cache.", ".hit"),
            cache_misses: m.sum_counters_prefixed("cache.", ".miss"),
            plan_brute: self.plan_brute.get(),
            plan_pre: self.plan_pre.get(),
            plan_post: self.plan_post.get(),
            plan_traversal: self.plan_traversal.get(),
        }
    }
}

/// Identity of an in-flight statement, carried from dispatch to the
/// completion bookkeeping.
struct StatementCtx<'a> {
    query_id: u64,
    kind: &'static str,
    sql: &'a str,
    tenant: &'a str,
    session: &'a str,
    start_nanos: u64,
}

/// Statement kind for the query log and the per-kind SLO histograms.
fn statement_kind(parsed: &Result<Statement>) -> &'static str {
    match parsed {
        Ok(Statement::Select(_)) => "select",
        Ok(Statement::Insert(_)) => "insert",
        Ok(Statement::CreateTable(_)) => "create_table",
        Ok(Statement::Update(_)) => "update",
        Ok(Statement::Delete(_)) => "delete",
        Ok(Statement::Explain(_) | Statement::ExplainAnalyze(_)) => "explain",
        Ok(Statement::SystemMetrics | Statement::SystemTraceExport) => "system",
        Err(_) => "other",
    }
}

fn kind_index(kind: &str) -> usize {
    STATEMENT_KINDS.iter().position(|k| *k == kind).unwrap_or(STATEMENT_KINDS.len() - 1)
}

/// A BlendHouse database instance.
pub struct Database {
    cfg: DatabaseConfig,
    remote: SharedObjectStore,
    registry: Arc<IndexRegistry>,
    metrics: MetricsRegistry,
    clock: SharedClock,
    ids: Arc<IdGenerator>,
    tables: RwLock<HashMap<String, Arc<TableStore>>>,
    vws: RwLock<HashMap<String, Arc<VirtualWarehouse>>>,
    engine: QueryEngine,
    next_vw: std::sync::atomic::AtomicU64,
    querylog: QueryLog,
    stages: StageCounters,
    /// Per-statement-kind latency histograms, indexed like
    /// [`STATEMENT_KINDS`]; rendered as `query.slo{kind="…"}` summaries.
    slo: Vec<Arc<Histogram>>,
    proc_queries: Arc<Counter>,
    proc_errors: Arc<Counter>,
    proc_uptime: Arc<Gauge>,
    proc_rss: Arc<Gauge>,
}

impl Database {
    /// Fast, deterministic, zero-latency instance for tests and examples.
    pub fn in_memory() -> Database {
        Database::new(DatabaseConfig::default())
    }

    /// A database with the given simulated-deployment configuration.
    pub fn new(cfg: DatabaseConfig) -> Database {
        let metrics = MetricsRegistry::new();
        let clock: SharedClock =
            if cfg.real_time { RealClock::shared() } else { VirtualClock::shared() };
        let remote: SharedObjectStore = Arc::new(InMemoryObjectStore::new(
            clock.clone(),
            cfg.latencies.remote_store,
            metrics.clone(),
            "remote",
        ));
        let querylog = QueryLog::new(cfg.query_log_capacity);
        querylog.set_slow_policy(cfg.slow_query.clone());
        // Pre-register the SLO histograms and process self-metrics so
        // `metrics_text()` is non-empty even before the first table exists.
        let slo = STATEMENT_KINDS
            .iter()
            .map(|k| metrics.histogram_with_labels("query.slo", &[("kind", k)]))
            .collect();
        let proc_uptime = metrics.gauge("process.uptime_seconds");
        let proc_rss = metrics.gauge("process.peak_rss_bytes");
        if let Some(rss) = metrics::peak_rss_bytes() {
            proc_rss.set(rss);
        }
        let db = Database {
            cfg: cfg.clone(),
            remote,
            registry: Arc::new(IndexRegistry::with_builtins()),
            metrics: metrics.clone(),
            clock,
            ids: Arc::new(IdGenerator::new()),
            tables: RwLock::new(&classes::DB_TABLES, HashMap::new()),
            vws: RwLock::new(&classes::DB_VWS, HashMap::new()),
            engine: QueryEngine::new(metrics.clone()),
            next_vw: std::sync::atomic::AtomicU64::new(0),
            querylog,
            stages: StageCounters::resolve(&metrics),
            slo,
            proc_queries: metrics.counter("process.queries"),
            proc_errors: metrics.counter("process.errors"),
            proc_uptime,
            proc_rss,
        };
        db.create_vw("default", cfg.default_workers);
        db
    }

    /// Shared metrics registry (counters across all subsystems).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The always-on query log (`system.query_log`, slow-query traces).
    pub fn query_log(&self) -> &QueryLog {
        &self.querylog
    }

    /// Arm (or disarm, with `None`) slow-query trace capture at runtime.
    pub fn set_slow_query_policy(&self, policy: Option<SlowQueryPolicy>) {
        self.querylog.set_slow_policy(policy);
    }

    /// Every virtual warehouse, sorted by name (system-table providers).
    pub fn vw_handles(&self) -> Vec<Arc<VirtualWarehouse>> {
        let mut vws: Vec<Arc<VirtualWarehouse>> = self.vws.read().values().cloned().collect();
        vws.sort_by(|a, b| a.name().cmp(b.name()));
        vws
    }

    /// The query engine (plan cache, cost model).
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// The pluggable index-library registry.
    pub fn registry(&self) -> &Arc<IndexRegistry> {
        &self.registry
    }

    /// The simulated remote shared store all tables persist to.
    pub fn remote_store(&self) -> &SharedObjectStore {
        &self.remote
    }

    /// The database's default per-query options.
    pub fn default_options(&self) -> QueryOptions {
        self.cfg.query.clone()
    }

    // ------------------------------------------------------------------- VWs

    /// Create (or resize) a named virtual warehouse with `workers` workers.
    pub fn create_vw(&self, name: &str, workers: usize) -> Arc<VirtualWarehouse> {
        let vw = Arc::new(VirtualWarehouse::new(
            VwId(self.next_vw.fetch_add(1, std::sync::atomic::Ordering::Relaxed)),
            name,
            VwConfig { rpc: self.cfg.latencies.rpc, ..self.cfg.vw.clone() },
            self.remote.clone(),
            self.registry.clone(),
            self.clock.clone(),
            self.metrics.clone(),
            self.ids.clone(),
        ));
        for _ in 0..workers {
            vw.scale_up(&[]);
        }
        self.vws.write().insert(name.to_string(), vw.clone());
        vw
    }

    /// Look up a virtual warehouse by name.
    pub fn vw(&self, name: &str) -> Result<Arc<VirtualWarehouse>> {
        self.vws
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| BhError::NotFound(format!("virtual warehouse {name}")))
    }

    /// The VW queries run on unless told otherwise.
    pub fn default_vw(&self) -> Arc<VirtualWarehouse> {
        self.vw("default").expect("created at construction")
    }

    // ---------------------------------------------------------------- tables

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<TableStore>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| BhError::NotFound(format!("table {name}")))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Cache-aware preload of a table's indexes into a VW (§II-D).
    pub fn preload(&self, table: &str, vw_name: &str) -> Result<usize> {
        let t = self.table(table)?;
        let vw = self.vw(vw_name)?;
        vw.preload(&t.segments())
    }

    /// Run one compaction pass on a table.
    pub fn compact(&self, table: &str) -> Result<bh_storage::table::CompactionReport> {
        self.table(table)?.compact()
    }

    // ------------------------------------------------------------------- SQL

    /// Execute one statement with the database's default options.
    pub fn execute(&self, sql: &str) -> Result<QueryOutput> {
        let opts = self.default_options();
        self.execute_with(sql, &opts)
    }

    /// Execute one statement with explicit query options (SELECT only; other
    /// statements ignore the options).
    pub fn execute_with(&self, sql: &str, opts: &QueryOptions) -> Result<QueryOutput> {
        self.execute_session(sql, opts, "default", "default")
    }

    /// Execute one statement on behalf of a named tenant/session pair. The
    /// labels flow into `system.query_log`; execution is otherwise identical
    /// to [`Database::execute_with`].
    ///
    /// Every statement leaves exactly one query-log record (parse failures
    /// log as kind `other` with an error code). When a slow-query policy is
    /// armed, the statement is traced and the span tree is retained only if
    /// the policy selects it.
    pub fn execute_session(
        &self,
        sql: &str,
        opts: &QueryOptions,
        tenant: &str,
        session: &str,
    ) -> Result<QueryOutput> {
        let parsed = parse_statement(sql);
        let ctx = StatementCtx {
            query_id: self.querylog.next_query_id(),
            kind: statement_kind(&parsed),
            sql,
            tenant,
            session,
            start_nanos: self.querylog.now_nanos(),
        };
        let before = self.stages.sample(&self.metrics);
        // Arm per-statement tracing only when nothing else owns the tracer:
        // EXPLAIN ANALYZE drives it itself, and a concurrent captured query
        // keeps its enablement until it drains.
        let capture = self.querylog.capture_armed()
            && !self.metrics.tracer().is_enabled()
            && !matches!(parsed, Ok(Statement::ExplainAnalyze(_) | Statement::SystemMetrics));
        if capture {
            let tracer = self.metrics.tracer();
            tracer.clear();
            tracer.set_enabled(true);
        }

        // SYSTEM METRICS renders the registry itself, so its bookkeeping
        // must land *before* dispatch — otherwise the rendered text would
        // lag the registry by one query and could never equal a subsequent
        // `metrics_text()` call. It also refreshes the process gauges.
        if matches!(parsed, Ok(Statement::SystemMetrics)) {
            if let Some(rss) = metrics::peak_rss_bytes() {
                self.proc_rss.set(rss);
            }
            self.finish_statement(&ctx, &before, false, 0, None);
            return self.dispatch(Statement::SystemMetrics, opts);
        }

        let result = match parsed {
            Ok(stmt) => self.dispatch(stmt, opts),
            Err(e) => Err(e),
        };
        let (result_rows, error) = match &result {
            Ok(QueryOutput::Rows(rs)) => (rs.len() as u64, None),
            Ok(QueryOutput::Affected(n)) => (*n as u64, None),
            Ok(QueryOutput::Created) => (0, None),
            Err(e) => (0, Some(e.code())),
        };
        self.finish_statement(&ctx, &before, capture, result_rows, error);
        result
    }

    /// Completion bookkeeping for one statement: SLO histogram, process
    /// counters, slow-trace retention, and the query-log record itself.
    fn finish_statement(
        &self,
        ctx: &StatementCtx<'_>,
        before: &StageSample,
        capture: bool,
        result_rows: u64,
        error: Option<&'static str>,
    ) {
        let end_nanos = self.querylog.now_nanos();
        let duration = end_nanos.saturating_sub(ctx.start_nanos);
        self.slo[kind_index(ctx.kind)].record(Duration::from_nanos(duration));
        self.proc_queries.inc();
        if error.is_some() {
            self.proc_errors.inc();
        }
        self.proc_uptime.set(end_nanos / 1_000_000_000);

        let log_on = self.querylog.is_enabled();
        // Normalized once and shared between the slow trace and the record —
        // normalization is the most expensive step of the logging hot path.
        let sql = if log_on || capture { normalize_sql(ctx.sql) } else { String::new() };
        let mut traced = false;
        if capture {
            let tracer = self.metrics.tracer();
            tracer.set_enabled(false);
            let spans = tracer.drain();
            if log_on && self.querylog.should_retain(duration, error.is_some()) {
                traced = true;
                self.querylog.retain_trace(SlowQueryTrace {
                    query_id: ctx.query_id,
                    sql: sql.clone(),
                    duration_nanos: duration,
                    error_code: error,
                    spans,
                });
            }
        }
        if !log_on {
            return;
        }
        let after = self.stages.sample(&self.metrics);
        // A vector SELECT bumps exactly one `query.plan.*` counter; the
        // biggest delta names the chosen plan (batch/concurrent noise can
        // only misattribute between concurrent statements, never invent one).
        let strategy = [
            ("brute_force", after.plan_brute - before.plan_brute),
            ("pre_filter", after.plan_pre - before.plan_pre),
            ("post_filter", after.plan_post - before.plan_post),
            ("filtered_traversal", after.plan_traversal - before.plan_traversal),
        ]
        .into_iter()
        .filter(|&(_, d)| d > 0)
        .max_by_key(|&(_, d)| d)
        .map(|(name, _)| name)
        .unwrap_or("");
        self.querylog.observe(QueryLogRecord {
            query_id: ctx.query_id,
            kind: ctx.kind,
            sql,
            tenant: ctx.tenant.to_string(),
            session: ctx.session.to_string(),
            start_nanos: ctx.start_nanos,
            end_nanos,
            bind_ns: after.bind_ns - before.bind_ns,
            plan_ns: after.plan_ns - before.plan_ns,
            exec_ns: after.exec_ns - before.exec_ns,
            segment_ns: after.segment_ns - before.segment_ns,
            rpc_ns: after.rpc_ns - before.rpc_ns,
            rows_scanned: after.rows_scanned - before.rows_scanned,
            segments_pruned: after.segments_pruned - before.segments_pruned,
            bound_skips: after.bound_skips - before.bound_skips,
            cache_hits: after.cache_hits - before.cache_hits,
            cache_misses: after.cache_misses - before.cache_misses,
            result_rows,
            error_code: error,
            traced,
            strategy,
        });
    }

    /// Execute one parsed statement (no logging — `execute_session` wraps).
    fn dispatch(&self, stmt: Statement, opts: &QueryOptions) -> Result<QueryOutput> {
        match stmt {
            Statement::CreateTable(ct) => {
                let schema = schema_from_ast(&ct)?;
                let name = schema.name.clone();
                if self.tables.read().contains_key(&name) {
                    return Err(BhError::AlreadyExists(format!("table {name}")));
                }
                let store = TableStore::new(
                    schema,
                    self.remote.clone(),
                    self.registry.clone(),
                    self.cfg.table.clone(),
                    self.ids.clone(),
                    self.metrics.clone(),
                )?;
                self.tables.write().insert(name, Arc::new(store));
                Ok(QueryOutput::Created)
            }
            Statement::Insert(ins) => self.execute_insert(&ins),
            Statement::Select(sel) => {
                if crate::systbl::is_system_table(&sel.table) {
                    return crate::systbl::execute_system_select(self, &sel)
                        .map(QueryOutput::Rows);
                }
                let t = self.table(&sel.table)?;
                let vw = self.default_vw();
                let rs = self.engine.execute_select(&t, &vw, opts, &sel)?;
                Ok(QueryOutput::Rows(rs))
            }
            Statement::Update(upd) => self.execute_update(&upd),
            Statement::Delete(del) => self.execute_delete(&del),
            Statement::Explain(sel) => {
                let t = self.table(&sel.table)?;
                let text = self.engine.explain_select(&t, opts, &sel)?;
                let mut rs = ResultSet::new(vec!["plan".into()]);
                rs.rows = text.lines().map(|l| vec![Value::Str(l.to_string())]).collect();
                Ok(QueryOutput::Rows(rs))
            }
            Statement::ExplainAnalyze(sel) => {
                let t = self.table(&sel.table)?;
                let vw = self.default_vw();
                let rs = crate::profile::explain_analyze(
                    &self.engine,
                    &self.metrics,
                    &t,
                    &vw,
                    opts,
                    &sel,
                )?;
                Ok(QueryOutput::Rows(rs))
            }
            Statement::SystemMetrics => {
                let mut rs = ResultSet::new(vec!["metrics".into()]);
                rs.rows = self
                    .metrics_text()
                    .lines()
                    .map(|l| vec![Value::Str(l.to_string())])
                    .collect();
                Ok(QueryOutput::Rows(rs))
            }
            Statement::SystemTraceExport => {
                let mut rs = ResultSet::new(vec!["trace".into()]);
                rs.rows.push(vec![Value::Str(self.querylog.export_chrome_trace())]);
                Ok(QueryOutput::Rows(rs))
            }
        }
    }

    /// Every registered metric in Prometheus text exposition format (what a
    /// `/metrics` HTTP endpoint would serve; also behind `SYSTEM METRICS`).
    pub fn metrics_text(&self) -> String {
        self.metrics.render_prometheus()
    }

    /// Execute a SELECT on a specific VW (read/write separation, isolation
    /// experiments).
    pub fn query_on_vw(
        &self,
        vw_name: &str,
        sql: &str,
        opts: &QueryOptions,
    ) -> Result<ResultSet> {
        let Statement::Select(sel) = parse_statement(sql)? else {
            return Err(BhError::Plan("query_on_vw takes a SELECT".into()));
        };
        if crate::systbl::is_system_table(&sel.table) {
            // System tables are VW-independent; this path skips the query
            // log (it exists for isolation experiments, not the front door).
            return crate::systbl::execute_system_select(self, &sel);
        }
        let t = self.table(&sel.table)?;
        let vw = self.vw(vw_name)?;
        self.engine.execute_select(&t, &vw, opts, &sel)
    }

    fn execute_insert(&self, ins: &InsertStmt) -> Result<QueryOutput> {
        match ins {
            InsertStmt::Values { table, rows } => {
                let t = self.table(table)?;
                let schema = t.schema();
                let mut typed = Vec::with_capacity(rows.len());
                for lits in rows {
                    if lits.len() != schema.columns.len() {
                        return Err(BhError::InvalidArgument(format!(
                            "INSERT arity {} != {} columns",
                            lits.len(),
                            schema.columns.len()
                        )));
                    }
                    let row: Vec<Value> = lits
                        .iter()
                        .zip(&schema.columns)
                        .map(|(l, def)| {
                            let ty = match def.ty {
                                bh_storage::value::ColumnType::Vector(0) => {
                                    bh_storage::value::ColumnType::Vector(
                                        schema
                                            .index_on(&def.name)
                                            .map(|i| i.spec.dim)
                                            .unwrap_or(0),
                                    )
                                }
                                t => t,
                            };
                            literal_to_value(l, ty)
                        })
                        .collect::<Result<_>>()?;
                    typed.push(row);
                }
                let n = typed.len();
                t.insert_rows(typed)?;
                Ok(QueryOutput::Affected(n))
            }
            InsertStmt::CsvFile { table, path } => {
                let t = self.table(table)?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| BhError::Io(format!("csv file {path}: {e}")))?;
                let rows = parse_csv(t.schema(), &text)?;
                let n = rows.len();
                t.insert_rows(rows)?;
                Ok(QueryOutput::Affected(n))
            }
        }
    }

    fn execute_update(&self, upd: &UpdateStmt) -> Result<QueryOutput> {
        let t = self.table(&upd.table)?;
        let schema = t.schema();
        let predicate = match &upd.where_clause {
            Some(e) => bind_predicate(schema, e)?,
            None => Predicate::True,
        };
        let assignments: Vec<(String, Value)> = upd
            .assignments
            .iter()
            .map(|(col, lit)| {
                let def = schema
                    .column(col)
                    .ok_or_else(|| BhError::NotFound(format!("column {col}")))?;
                Ok((col.clone(), literal_to_value(lit, def.ty)?))
            })
            .collect::<Result<_>>()?;
        Ok(QueryOutput::Affected(t.update_where(&predicate, &assignments)?))
    }

    fn execute_delete(&self, del: &DeleteStmt) -> Result<QueryOutput> {
        let t = self.table(&del.table)?;
        let predicate = match &del.where_clause {
            Some(e) => bind_predicate(t.schema(), e)?,
            None => Predicate::True,
        };
        Ok(QueryOutput::Affected(t.delete_where(&predicate)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn images_db(n: usize) -> Database {
        let db = Database::in_memory();
        db.execute(
            "CREATE TABLE images (
               id UInt64, label String, ts DateTime, emb Array(Float32),
               INDEX ann emb TYPE HNSW('DIM=4')
             ) ORDER BY id PARTITION BY label",
        )
        .unwrap();
        let mut values = Vec::new();
        for i in 0..n {
            let c = (i % 4) as f32 * 5.0;
            values.push(format!(
                "({i}, 'l{}', {}, [{c}, {c}, {c}, {c}])",
                i % 2,
                1000 + i
            ));
        }
        db.execute(&format!("INSERT INTO images VALUES {}", values.join(", "))).unwrap();
        db
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let db = images_db(100);
        let rs = db
            .execute(
                "SELECT id, dist FROM images WHERE label = 'l0' \
                 ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) AS dist LIMIT 5",
            )
            .unwrap()
            .rows();
        assert_eq!(rs.len(), 5);
        for row in &rs.rows {
            let Value::UInt64(id) = row[0] else { panic!() };
            assert_eq!(id % 2, 0, "label filter violated");
            assert_eq!(id % 4, 0, "nearest cluster is i%4==0");
        }
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = images_db(2);
        let err = db
            .execute("CREATE TABLE images (id UInt64)")
            .unwrap_err();
        assert!(matches!(err, BhError::AlreadyExists(_)));
    }

    #[test]
    fn unknown_table_errors() {
        let db = Database::in_memory();
        assert!(db.execute("SELECT * FROM nope LIMIT 1").is_err());
        assert!(db.execute("INSERT INTO nope VALUES (1)").is_err());
    }

    #[test]
    fn update_and_delete_through_sql() {
        let db = images_db(50);
        let n = db
            .execute("UPDATE images SET label = 'special' WHERE id = 7")
            .unwrap()
            .affected();
        assert_eq!(n, 1);
        let rs = db
            .execute("SELECT id FROM images WHERE label = 'special' LIMIT 10")
            .unwrap()
            .rows();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::UInt64(7));

        let deleted = db.execute("DELETE FROM images WHERE id < 10").unwrap().affected();
        assert_eq!(deleted, 10);
        let rs = db.execute("SELECT id FROM images WHERE id < 10 LIMIT 20").unwrap().rows();
        assert!(rs.is_empty());
    }

    #[test]
    fn csv_infile_loads() {
        let db = Database::in_memory();
        db.execute(
            "CREATE TABLE t (id UInt64, label String, emb Array(Float32), \
             INDEX i emb TYPE FLAT('DIM=2'))",
        )
        .unwrap();
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("data.csv");
        std::fs::write(&path, "1,cat,[0.0, 0.0]\n2,dog,[5.0, 5.0]\n").unwrap();
        let n = db
            .execute(&format!("INSERT INTO t CSV INFILE '{}'", path.display()))
            .unwrap()
            .affected();
        assert_eq!(n, 2);
        let rs = db
            .execute("SELECT id FROM t ORDER BY L2Distance(emb, [0.1, 0.1]) LIMIT 1")
            .unwrap()
            .rows();
        assert_eq!(rs.rows[0][0], Value::UInt64(1));
    }

    #[test]
    fn separate_vws_and_preload() {
        let db = images_db(200);
        db.create_vw("read", 3);
        let loaded = db.preload("images", "read").unwrap();
        assert!(loaded > 0);
        let rs = db
            .query_on_vw(
                "read",
                "SELECT id FROM images ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) LIMIT 3",
                &db.default_options(),
            )
            .unwrap();
        assert_eq!(rs.len(), 3);
        // Preloaded: no brute-force fallbacks on that VW's path.
        assert_eq!(db.metrics().counter_value("worker.brute_force"), 0);
    }

    #[test]
    fn compaction_via_facade() {
        let db = images_db(100);
        db.execute("DELETE FROM images WHERE id < 50").unwrap();
        let report = db.compact("images").unwrap();
        assert_eq!(report.rows_dropped, 50);
        let rs = db.execute("SELECT id FROM images LIMIT 200").unwrap().rows();
        assert_eq!(rs.len(), 50);
    }

    #[test]
    fn explain_reports_plan_and_strategy() {
        let db = images_db(200);
        let rs = db
            .execute(
                "EXPLAIN SELECT id FROM images WHERE label = 'l0' \
                 ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) LIMIT 5",
            )
            .unwrap()
            .rows();
        let text: Vec<String> = rs
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Str(s) => s.clone(),
                _ => panic!(),
            })
            .collect();
        let joined = text.join("\n");
        assert!(joined.contains("AnnScan"), "{joined}");
        assert!(joined.contains("strategy:"), "{joined}");
        assert!(joined.contains("cost[brute-force (Plan A)]"), "{joined}");
        assert!(joined.contains("distance-topk-pushdown"), "{joined}");
    }

    #[test]
    fn explain_analyze_profiles_cold_multi_segment_query() {
        // Small segments so the query fans out over several of them, cold
        // caches so the profile shows remote reads.
        let db = Database::new(DatabaseConfig {
            table: TableStoreConfig { segment_max_rows: 64, ..Default::default() },
            ..Default::default()
        });
        db.execute(
            "CREATE TABLE images (
               id UInt64, label String, emb Array(Float32),
               INDEX ann emb TYPE HNSW('DIM=4')
             ) ORDER BY id",
        )
        .unwrap();
        let mut values = Vec::new();
        for i in 0..200 {
            let c = (i % 4) as f32 * 5.0;
            values.push(format!("({i}, 'l{}', [{c}, {c}, {c}, {c}])", i % 2));
        }
        db.execute(&format!("INSERT INTO images VALUES {}", values.join(", "))).unwrap();
        assert!(db.table("images").unwrap().segments().len() > 1, "need multiple segments");

        let rs = db
            .execute(
                "EXPLAIN ANALYZE SELECT id FROM images WHERE label = 'l0' \
                 ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) LIMIT 5",
            )
            .unwrap()
            .rows();
        assert_eq!(rs.columns, vec!["profile".to_string()]);
        let text: String = rs
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Str(s) => s.as_str(),
                _ => panic!(),
            })
            .collect::<Vec<_>>()
            .join("\n");
        // Stage tree with per-stage wall time.
        assert!(text.starts_with("query  "), "{text}");
        for stage in ["bind", "plan", "exec", "exec.vector", "segment.search"] {
            assert!(text.contains(stage), "missing stage {stage} in:\n{text}");
        }
        // Segment scheduling and result accounting.
        assert!(text.contains("segments_total="), "{text}");
        assert!(text.contains("segments_visited="), "{text}");
        assert!(text.contains("result rows: 5"), "{text}");
        assert!(text.contains("kernel tier: "), "{text}");
        // Counter deltas: cold query pays remote reads and cache misses.
        assert!(text.contains("counters (this query):"), "{text}");
        assert!(text.contains("remote.get.bytes:"), "{text}");
        assert!(text.contains("cache.index.mem.miss:"), "{text}");
        // Profiling is transient: tracing is off again afterwards.
        assert!(!db.metrics().tracer().is_enabled());
    }

    #[test]
    fn explain_analyze_does_not_change_results() {
        let db = images_db(200);
        let sql = "SELECT id, dist FROM images WHERE label = 'l0' \
                   ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) AS dist LIMIT 7";
        let before = db.execute(sql).unwrap().rows();
        db.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        let after = db.execute(sql).unwrap().rows();
        assert_eq!(before, after, "profiling a query must not perturb results");
        assert!(db.metrics().tracer().drain().is_empty(), "no spans leak past the profile");
    }

    #[test]
    fn system_metrics_exposes_prometheus_text() {
        let db = images_db(100);
        db.execute(
            "SELECT id FROM images ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) LIMIT 3",
        )
        .unwrap()
        .rows();
        let rs = db.execute("SYSTEM METRICS").unwrap().rows();
        assert_eq!(rs.columns, vec!["metrics".to_string()]);
        let text: String = rs
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Str(s) => s.as_str(),
                _ => panic!(),
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("# TYPE"), "{text}");
        // Dots mangle to underscores in the Prometheus exposition.
        assert!(text.contains("remote_get_bytes"), "{text}");
        assert!(text.contains("kernel_tier_"), "{text}");
        assert_eq!(text, db.metrics_text().trim_end_matches('\n'));
    }

    #[test]
    fn doc_example_runs() {
        // Mirrors the crate-level doc example.
        let db = Database::in_memory();
        db.execute(
            "CREATE TABLE docs (id UInt64, body String, embedding Array(Float32), \
             INDEX ann embedding TYPE HNSW('DIM=4')) ORDER BY id",
        )
        .unwrap();
        db.execute(
            "INSERT INTO docs VALUES (1, 'hello', [0.0, 0.0, 0.0, 0.0]), \
             (2, 'world', [1.0, 1.0, 1.0, 1.0])",
        )
        .unwrap();
        let rows = db
            .execute("SELECT id FROM docs ORDER BY L2Distance(embedding, [0.1, 0.0, 0.0, 0.0]) LIMIT 1")
            .unwrap()
            .rows();
        assert_eq!(rows.rows[0][0], Value::UInt64(1));
    }

    // ------------------------------------------------------------ PR 9 tests

    fn cell_u64(rs: &ResultSet, row: usize, col: &str) -> u64 {
        let idx = rs.column_index(col).unwrap_or_else(|| panic!("no column {col}"));
        match &rs.rows[row][idx] {
            Value::UInt64(v) => *v,
            other => panic!("{col}: expected UInt64, got {other:?}"),
        }
    }

    fn cell_str<'a>(rs: &'a ResultSet, row: usize, col: &str) -> &'a str {
        let idx = rs.column_index(col).unwrap_or_else(|| panic!("no column {col}"));
        match &rs.rows[row][idx] {
            Value::Str(s) => s.as_str(),
            other => panic!("{col}: expected Str, got {other:?}"),
        }
    }

    #[test]
    fn query_log_records_every_statement_with_stage_latencies() {
        let db = images_db(100);
        db.execute("SELECT id FROM images ORDER BY L2Distance(emb, [0.0,0.0,0.0,0.0]) LIMIT 3")
            .unwrap();
        // A failing statement must log too, with its error code.
        assert!(db.execute("SELECT id FROM missing_table").is_err());

        // The acceptance query: slowest five statements with stage columns.
        let rs = db
            .execute("SELECT * FROM system.query_log ORDER BY duration_ns DESC LIMIT 5")
            .unwrap()
            .rows();
        assert!(rs.len() >= 3, "create+insert+select+error logged, got {}", rs.len());
        assert!(rs.len() <= 5);
        for col in ["query_id", "kind", "sql", "tenant", "duration_ns", "bind_ns", "plan_ns",
                    "exec_ns", "segment_ns", "rpc_ns", "rows_scanned", "cache_hits",
                    "result_rows", "strategy", "error_code"] {
            assert!(rs.column_index(col).is_some(), "missing column {col}");
        }
        // Sorted by duration, descending.
        for w in 0..rs.len() - 1 {
            assert!(cell_u64(&rs, w, "duration_ns") >= cell_u64(&rs, w + 1, "duration_ns"));
        }

        // The vector SELECT saw bind+plan+exec work and its literal was
        // normalized away.
        let all = db
            .execute("SELECT * FROM system.query_log WHERE kind = 'select' ORDER BY query_id ASC")
            .unwrap()
            .rows();
        let vector_row = (0..all.len())
            .find(|&i| cell_str(&all, i, "sql").contains("L2Distance(emb"))
            .expect("vector select logged");
        assert!(cell_u64(&all, vector_row, "bind_ns") > 0);
        assert!(cell_u64(&all, vector_row, "plan_ns") > 0);
        assert!(cell_u64(&all, vector_row, "exec_ns") > 0);
        assert!(cell_u64(&all, vector_row, "result_rows") == 3);
        assert!(!cell_str(&all, vector_row, "sql").contains("0.0"), "literals folded");
        // The vector SELECT logged its chosen physical plan.
        assert!(
            ["brute_force", "pre_filter", "post_filter", "filtered_traversal"]
                .contains(&cell_str(&all, vector_row, "strategy")),
            "unexpected strategy {:?}",
            cell_str(&all, vector_row, "strategy")
        );

        // The failed statement carries the BhError code.
        let errs = db
            .execute("SELECT error_code, kind FROM system.query_log WHERE error_code = 'NOT_FOUND'")
            .unwrap()
            .rows();
        assert_eq!(errs.len(), 1);
        assert_eq!(cell_str(&errs, 0, "kind"), "select");
    }

    #[test]
    fn execute_session_labels_tenant_and_session() {
        let db = images_db(20);
        let opts = db.default_options();
        db.execute_session("SELECT id FROM images LIMIT 1", &opts, "acme", "conn-7").unwrap();
        let rs = db
            .execute("SELECT tenant, session FROM system.query_log WHERE tenant = 'acme'")
            .unwrap()
            .rows();
        assert_eq!(rs.len(), 1);
        assert_eq!(cell_str(&rs, 0, "session"), "conn-7");
    }

    #[test]
    fn slow_query_capture_retains_span_tree_and_exports_chrome_json() {
        let db = images_db(200);
        // Threshold 0 retains every statement from here on.
        db.set_slow_query_policy(Some(bh_common::SlowQueryPolicy {
            threshold_nanos: 0,
            capture_errors: true,
        }));
        db.execute("SELECT id FROM images ORDER BY L2Distance(emb, [0.0,0.0,0.0,0.0]) LIMIT 3")
            .unwrap();
        // Capture must leave the shared tracer disabled and drained.
        assert!(!db.metrics().tracer().is_enabled());
        assert!(db.metrics().tracer().drain().is_empty());

        let traces = db.query_log().slow_traces();
        let slow = traces
            .iter()
            .find(|t| t.sql.contains("L2Distance(emb"))
            .expect("vector select retained");
        assert!(!slow.spans.is_empty(), "span tree retained");
        let qid = slow.query_id;

        // The tree is queryable through system.spans…
        let rs = db
            .execute(&format!(
                "SELECT name, duration_ns FROM system.spans WHERE query_id = {qid}"
            ))
            .unwrap()
            .rows();
        assert_eq!(rs.len(), slow.spans.len());

        // …and the log row is flagged as traced.
        let flagged = db
            .execute(&format!("SELECT traced FROM system.query_log WHERE query_id = {qid}"))
            .unwrap()
            .rows();
        assert_eq!(cell_u64(&flagged, 0, "traced"), 1);

        // SYSTEM TRACE EXPORT renders chrome://tracing JSON: balanced
        // structure, the complete-event phase, and this query's pid.
        let out = db.execute("SYSTEM TRACE EXPORT").unwrap().rows();
        let json = cell_str(&out, 0, "trace");
        assert_json_balanced(json);
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains(&format!("\"pid\":{qid},")), "{json}");
    }

    /// Cheap structural JSON check: quotes and brackets balance. (The full
    /// serializer is unit-tested in `bh_common::querylog`.)
    fn assert_json_balanced(s: &str) {
        let (mut depth, mut in_str, mut escape) = (0i64, false, false);
        for c in s.chars() {
            if in_str {
                match (escape, c) {
                    (true, _) => escape = false,
                    (false, '\\') => escape = true,
                    (false, '"') => in_str = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced close in {s}");
        }
        assert_eq!(depth, 0, "unbalanced JSON: {s}");
        assert!(!in_str, "unterminated string in {s}");
    }

    #[test]
    fn error_statements_can_be_captured_by_policy() {
        let db = Database::in_memory();
        db.set_slow_query_policy(Some(bh_common::SlowQueryPolicy {
            threshold_nanos: u64::MAX,
            capture_errors: true,
        }));
        assert!(db.execute("SELECT x FROM nope").is_err());
        let traces = db.query_log().slow_traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].error_code, Some("NOT_FOUND"));
        assert!(!db.metrics().tracer().is_enabled());
    }

    #[test]
    fn system_metrics_table_supports_filters_and_aggregates() {
        let db = images_db(50);
        db.execute("SELECT id FROM images LIMIT 1").unwrap();
        let rs = db
            .execute("SELECT name, value FROM system.metrics WHERE name = 'query.executed'")
            .unwrap()
            .rows();
        assert_eq!(rs.len(), 1);
        let Value::Float64(v) = rs.rows[0][1] else { panic!() };
        assert!(v >= 1.0);

        let count = db
            .execute("SELECT count(*) FROM system.metrics")
            .unwrap()
            .rows();
        let Value::UInt64(n) = count.rows[0][0] else { panic!() };
        assert!(n > 20, "registry has many metrics, got {n}");

        // Vector-free aggregates over the query log.
        let agg = db
            .execute(
                "SELECT count(*) AS n, sum(result_rows) AS rows, max(duration_ns) AS slowest \
                 FROM system.query_log",
            )
            .unwrap()
            .rows();
        assert_eq!(agg.columns, vec!["n", "rows", "slowest"]);
        let Value::UInt64(n) = agg.rows[0][0] else { panic!() };
        assert!(n >= 3);
    }

    #[test]
    fn system_caches_segments_and_lock_classes_scan() {
        let db = images_db(300);
        db.execute("SELECT id FROM images ORDER BY L2Distance(emb, [0.0,0.0,0.0,0.0]) LIMIT 3")
            .unwrap();

        let caches = db.execute("SELECT * FROM system.caches").unwrap().rows();
        // default VW has 2 workers × (index.mem, index.head, block.meta, block.data).
        assert_eq!(caches.len(), 8);
        assert!(caches.rows.iter().any(|r| matches!(&r[3], Value::UInt64(u) if *u > 0)
            || matches!(&r[6], Value::UInt64(h) if *h > 0)));

        let segs = db
            .execute("SELECT * FROM system.segments WHERE rows > 0 ORDER BY segment_id ASC")
            .unwrap()
            .rows();
        assert!(!segs.is_empty());
        assert_eq!(cell_str(&segs, 0, "table"), "images");
        assert!(cell_u64(&segs, 0, "index_bytes") > 0);
        // After the search, at least one segment index is resident somewhere.
        assert!((0..segs.len()).any(|i| cell_u64(&segs, i, "resident_workers") > 0));

        let locks = db
            .execute("SELECT name, rank FROM system.lock_classes ORDER BY rank ASC")
            .unwrap()
            .rows();
        assert!(locks.len() > 10);
        for w in 0..locks.len() - 1 {
            assert!(cell_u64(&locks, w, "rank") <= cell_u64(&locks, w + 1, "rank"));
        }
        // Debug builds track acquisition edges; this suite runs under
        // debug_assertions, and by now locks have nested at least once.
        #[cfg(debug_assertions)]
        {
            let edges = db
                .execute("SELECT sum(edges_out) FROM system.lock_classes")
                .unwrap()
                .rows();
            let Value::UInt64(total) = edges.rows[0][0] else { panic!() };
            assert!(total > 0, "lockdep graph observed no edges");
        }
    }

    #[test]
    fn unknown_system_table_lists_alternatives() {
        let db = Database::in_memory();
        let err = db.execute("SELECT * FROM system.nope").unwrap_err();
        assert!(err.to_string().contains("system.query_log"), "{err}");
    }

    #[test]
    fn process_metrics_present_before_first_table() {
        let db = Database::in_memory();
        let text = db.metrics_text();
        assert!(text.contains("process_uptime_seconds"), "{text}");
        assert!(text.contains("process_queries"), "{text}");
        assert!(text.contains("query_slo"), "{text}");
        db.execute("SYSTEM METRICS").unwrap();
        assert_eq!(db.metrics().counter_value("process.queries"), 1);
    }

    #[test]
    fn query_log_can_be_disabled() {
        let db = images_db(10);
        let logged = db.query_log().total_logged();
        db.query_log().set_enabled(false);
        db.execute("SELECT id FROM images LIMIT 1").unwrap();
        assert_eq!(db.query_log().total_logged(), logged);
        db.query_log().set_enabled(true);
        db.execute("SELECT id FROM images LIMIT 1").unwrap();
        assert_eq!(db.query_log().total_logged(), logged + 1);
    }

    #[test]
    fn slo_histograms_split_by_statement_kind() {
        let db = images_db(10);
        db.execute("SELECT id FROM images LIMIT 1").unwrap();
        let rs = db
            .execute(
                "SELECT name FROM system.metrics \
                 WHERE name = 'query.slo{kind=\"select\"}.p95_ns'",
            )
            .unwrap()
            .rows();
        assert_eq!(rs.len(), 1, "per-kind SLO histogram registered");
        let text = db.metrics_text();
        assert!(text.contains("quantile=\"0.95\""), "{text}");
    }
}
