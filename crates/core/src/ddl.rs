//! DDL translation: `CREATE TABLE` AST → storage schema + index specs.

use bh_common::{BhError, Result};
use bh_sql::ast::CreateTable;
use bh_storage::schema::{TableSchema, VectorIndexDef};
use bh_storage::value::ColumnType;
use bh_vector::{IndexKind, IndexSpec, Metric};

/// Convert a parsed `CREATE TABLE` into a validated [`TableSchema`].
pub fn schema_from_ast(ct: &CreateTable) -> Result<TableSchema> {
    let mut schema = TableSchema::new(&ct.name);
    for (name, ty_text) in &ct.columns {
        let ty = ColumnType::parse(ty_text)?;
        schema.columns.push(bh_storage::schema::ColumnDef::new(name, ty));
    }
    schema.order_by = ct.order_by.clone();
    // Partition expressions: the storage engine partitions on the underlying
    // column; a wrapping function (e.g. toYYYYMMDD) coarsens the key in real
    // ByteHouse but preserves the same pruning semantics on exact values.
    schema.partition_by = ct.partition_by.iter().map(|p| p.column.clone()).collect();
    if let Some((col, buckets)) = &ct.cluster_by {
        schema.cluster_by =
            Some(bh_storage::schema::ClusterBy { column: col.clone(), buckets: *buckets });
    }

    for idx in &ct.indexes {
        let kind = IndexKind::parse(&idx.index_type)?;
        let mut params = std::collections::BTreeMap::new();
        for p in &idx.params {
            let (k, v) = p.split_once('=').ok_or_else(|| {
                BhError::Parse(format!("index parameter '{p}' is not KEY=VALUE"))
            })?;
            params.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
        let dim: usize = params
            .get("dim")
            .ok_or_else(|| {
                BhError::InvalidArgument(format!("index {} needs a 'DIM=n' parameter", idx.name))
            })?
            .parse()
            .map_err(|_| BhError::InvalidArgument("DIM must be an integer".into()))?;
        let metric = match params.get("metric") {
            Some(m) => Metric::parse(m)?,
            None => Metric::L2,
        };
        let mut spec = IndexSpec::new(kind, dim, metric);
        for (k, v) in &params {
            if k != "dim" && k != "metric" {
                spec = spec.with_param(k, v.clone());
            }
        }
        // Pin the vector column's dimension from the index declaration.
        if let Some(cd) = schema.columns.iter_mut().find(|c| c.name == idx.column) {
            if cd.ty == ColumnType::Vector(0) {
                cd.ty = ColumnType::Vector(dim);
            }
        }
        schema.indexes.push(VectorIndexDef {
            name: idx.name.clone(),
            column: idx.column.clone(),
            spec,
        });
    }

    schema.validate()?;
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_sql::{parse_statement, Statement};

    fn schema_of(sql: &str) -> Result<TableSchema> {
        let Statement::CreateTable(ct) = parse_statement(sql)? else { panic!("not create") };
        schema_from_ast(&ct)
    }

    #[test]
    fn example1_translates_fully() {
        let s = schema_of(
            "CREATE TABLE images (
               id UInt64, label String, published_time DateTime,
               embedding Array(Float32),
               INDEX ann_idx embedding TYPE HNSW('DIM=8', 'M=8', 'METRIC=COSINE')
             )
             ORDER BY published_time
             PARTITION BY (toYYYYMMDD(published_time), label)
             CLUSTER BY embedding INTO 16 BUCKETS",
        )
        .unwrap();
        assert_eq!(s.name, "images");
        assert_eq!(s.column("embedding").unwrap().ty, ColumnType::Vector(8));
        assert_eq!(s.partition_by, vec!["published_time".to_string(), "label".to_string()]);
        assert_eq!(s.cluster_by.as_ref().unwrap().buckets, 16);
        let idx = &s.indexes[0];
        assert_eq!(idx.spec.kind, IndexKind::Hnsw);
        assert_eq!(idx.spec.dim, 8);
        assert_eq!(idx.spec.metric, Metric::Cosine);
        assert_eq!(idx.spec.param_usize("m", 0).unwrap(), 8);
    }

    #[test]
    fn missing_dim_rejected() {
        let err = schema_of(
            "CREATE TABLE t (v Array(Float32), INDEX i v TYPE HNSW)",
        )
        .unwrap_err();
        assert!(err.to_string().contains("DIM"));
    }

    #[test]
    fn bad_param_format_rejected() {
        assert!(schema_of("CREATE TABLE t (v Array(Float32), INDEX i v TYPE HNSW('DIM'))")
            .is_err());
    }

    #[test]
    fn unknown_index_type_rejected() {
        assert!(schema_of(
            "CREATE TABLE t (v Array(Float32), INDEX i v TYPE LSH('DIM=4'))"
        )
        .is_err());
    }

    #[test]
    fn every_index_kind_parses() {
        for kind in ["FLAT", "HNSW", "HNSWSQ", "IVFFLAT", "IVFPQ", "IVFPQFS", "DISKANN"] {
            let s = schema_of(&format!(
                "CREATE TABLE t (v Array(Float32), INDEX i v TYPE {kind}('DIM=8'))"
            ))
            .unwrap();
            assert_eq!(s.indexes[0].spec.dim, 8, "{kind}");
        }
    }

    #[test]
    fn schema_validation_still_applies() {
        // Index on a scalar column must fail through validate().
        assert!(schema_of(
            "CREATE TABLE t (a UInt64, INDEX i a TYPE HNSW('DIM=4'))"
        )
        .is_err());
    }
}
