//! Multi-probe consistent hashing (Fig. 3; Appleton & O'Reilly).
//!
//! Plain consistent hashing needs many virtual nodes per worker to balance
//! load. Multi-probe hashing instead places **one** point per worker and
//! hashes each key `k` times; the probe that lands closest (clockwise) to a
//! worker wins. Balance improves with the probe count at zero extra ring
//! space, and — the property BlendHouse scaling relies on — adding or
//! removing a worker only moves the keys whose winning probe pointed at it.

use bh_common::WorkerId;
use std::collections::BTreeMap;

/// FNV-1a 64-bit hash — stable across platforms and runs, which matters
/// because segment→worker maps must agree between scheduler and preload.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // FNV's avalanche is weak for short, similar strings (worker names);
    // finish with the SplitMix64 mixer so ring points spread uniformly.
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

fn probe_hash(key: &str, probe: u32) -> u64 {
    let mut buf = Vec::with_capacity(key.len() + 4);
    buf.extend_from_slice(key.as_bytes());
    buf.extend_from_slice(&probe.to_le_bytes());
    fnv1a(&buf)
}

fn worker_point(w: WorkerId) -> u64 {
    fnv1a(format!("worker-{}", w.raw()).as_bytes())
}

/// The ring: one point per worker, `probes` hash probes per key.
#[derive(Debug, Clone)]
pub struct MultiProbeRing {
    points: BTreeMap<u64, WorkerId>,
    probes: u32,
}

impl MultiProbeRing {
    /// `probes` ≥ 1; the paper-cited default of 21 probes gives ~1.05 peak
    /// load ratio.
    pub fn new(probes: u32) -> Self {
        Self { points: BTreeMap::new(), probes: probes.max(1) }
    }

    /// Place a worker on the ring.
    pub fn add_worker(&mut self, w: WorkerId) {
        self.points.insert(worker_point(w), w);
    }

    /// Remove a worker from the ring.
    pub fn remove_worker(&mut self, w: WorkerId) {
        self.points.remove(&worker_point(w));
    }

    /// Is the worker on the ring?
    pub fn contains(&self, w: WorkerId) -> bool {
        self.points.contains_key(&worker_point(w))
    }

    /// Number of workers on the ring.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no workers are registered.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All registered workers.
    pub fn workers(&self) -> Vec<WorkerId> {
        self.points.values().copied().collect()
    }

    /// Clockwise distance from `h` to the next worker point, plus that worker.
    fn clockwise_next(&self, h: u64) -> Option<(u64, WorkerId)> {
        let next = self.points.range(h..).next().or_else(|| self.points.iter().next())?;
        let dist = next.0.wrapping_sub(h);
        Some((dist, *next.1))
    }

    /// Assign a key: the probe with the smallest clockwise distance wins.
    pub fn assign(&self, key: &str) -> Option<WorkerId> {
        let mut best: Option<(u64, WorkerId)> = None;
        for p in 0..self.probes {
            let h = probe_hash(key, p);
            if let Some((dist, w)) = self.clockwise_next(h) {
                if best.map(|(bd, _)| dist < bd).unwrap_or(true) {
                    best = Some((dist, w));
                }
            }
        }
        best.map(|(_, w)| w)
    }

    /// Bulk assignment of keys to workers.
    pub fn assign_all<'a>(
        &self,
        keys: impl IntoIterator<Item = &'a str>,
    ) -> BTreeMap<WorkerId, Vec<String>> {
        let mut out: BTreeMap<WorkerId, Vec<String>> = BTreeMap::new();
        for k in keys {
            if let Some(w) = self.assign(k) {
                out.entry(w).or_default().push(k.to_string());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ring(n: usize, probes: u32) -> MultiProbeRing {
        let mut r = MultiProbeRing::new(probes);
        for i in 0..n {
            r.add_worker(WorkerId(i as u64));
        }
        r
    }

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("seg-{i:016x}")).collect()
    }

    #[test]
    fn empty_ring_assigns_nothing() {
        let r = MultiProbeRing::new(21);
        assert_eq!(r.assign("k"), None);
        assert!(r.is_empty());
    }

    #[test]
    fn single_worker_gets_everything() {
        let r = ring(1, 21);
        for k in keys(50) {
            assert_eq!(r.assign(&k), Some(WorkerId(0)));
        }
    }

    #[test]
    fn assignment_is_deterministic() {
        let r1 = ring(5, 21);
        let r2 = ring(5, 21);
        for k in keys(100) {
            assert_eq!(r1.assign(&k), r2.assign(&k));
        }
    }

    #[test]
    fn multi_probe_balances_better_than_single_probe() {
        let imbalance = |probes: u32| {
            let r = ring(8, probes);
            let mut counts = vec![0usize; 8];
            for k in keys(4000) {
                counts[r.assign(&k).unwrap().raw() as usize] += 1;
            }
            let max = *counts.iter().max().unwrap() as f64;
            max / (4000.0 / 8.0)
        };
        let single = imbalance(1);
        let multi = imbalance(21);
        assert!(
            multi < single,
            "21 probes ({multi:.2}) should beat 1 probe ({single:.2}) peak/mean"
        );
        assert!(multi < 1.45, "multi-probe peak/mean too high: {multi:.2}");
    }

    #[test]
    fn adding_worker_moves_bounded_fraction() {
        let r_before = ring(8, 21);
        let mut r_after = r_before.clone();
        r_after.add_worker(WorkerId(8));
        let ks = keys(4000);
        let moved = ks
            .iter()
            .filter(|k| r_before.assign(k) != r_after.assign(k))
            .count();
        let frac = moved as f64 / ks.len() as f64;
        // Ideal is 1/9 ≈ 0.111; allow generous slack for hash variance.
        assert!(frac < 0.25, "scale-up moved {frac:.3} of keys");
        assert!(frac > 0.0, "scale-up must move something");
        // Every moved key moved TO the new worker, never between old ones.
        for k in &ks {
            if r_before.assign(k) != r_after.assign(k) {
                assert_eq!(r_after.assign(k), Some(WorkerId(8)));
            }
        }
    }

    #[test]
    fn removing_worker_only_moves_its_keys() {
        let r_before = ring(8, 21);
        let mut r_after = r_before.clone();
        r_after.remove_worker(WorkerId(3));
        for k in keys(2000) {
            let before = r_before.assign(&k).unwrap();
            let after = r_after.assign(&k).unwrap();
            if before != WorkerId(3) {
                assert_eq!(before, after, "key {k} moved though its worker stayed");
            } else {
                assert_ne!(after, WorkerId(3));
            }
        }
    }

    #[test]
    fn assign_all_partitions_keys() {
        let r = ring(4, 21);
        let ks = keys(100);
        let groups = r.assign_all(ks.iter().map(|s| s.as_str()));
        let total: usize = groups.values().map(|v| v.len()).sum();
        assert_eq!(total, 100);
        assert!(groups.len() >= 2, "keys should spread across workers");
    }

    #[test]
    fn membership_queries() {
        let mut r = ring(2, 3);
        assert!(r.contains(WorkerId(0)));
        assert!(!r.contains(WorkerId(9)));
        r.remove_worker(WorkerId(0));
        assert!(!r.contains(WorkerId(0)));
        assert_eq!(r.len(), 1);
        assert_eq!(r.workers(), vec![WorkerId(1)]);
    }

    proptest! {
        #[test]
        fn prop_scale_up_never_reshuffles_between_old_workers(
            n_workers in 2usize..12,
            n_keys in 1usize..200,
            seed in 0u64..1000,
        ) {
            let r_before = ring(n_workers, 21);
            let mut r_after = r_before.clone();
            let new_worker = WorkerId(1000 + seed);
            r_after.add_worker(new_worker);
            for i in 0..n_keys {
                let k = format!("key-{seed}-{i}");
                let b = r_before.assign(&k).unwrap();
                let a = r_after.assign(&k).unwrap();
                prop_assert!(a == b || a == new_worker);
            }
        }

        #[test]
        fn prop_assignment_total(
            n_workers in 1usize..10,
            n_keys in 0usize..100,
        ) {
            let r = ring(n_workers, 7);
            let ks: Vec<String> = (0..n_keys).map(|i| format!("k{i}")).collect();
            let groups = r.assign_all(ks.iter().map(|s| s.as_str()));
            prop_assert_eq!(groups.values().map(|v| v.len()).sum::<usize>(), n_keys);
        }
    }
}
