//! # bh-cluster — the disaggregated compute layer
//!
//! Simulates the paper's virtual-warehouse architecture in-process while
//! preserving every behaviour the evaluation measures:
//!
//! * [`hashring`] — multi-probe consistent hashing (Fig. 3) for
//!   scaling-friendly segment→worker allocation.
//! * [`worker`] — stateless compute workers, each owning a hierarchical
//!   vector-index cache and a split-space block cache; on an index cache miss
//!   a worker falls back to brute-force distance computation over the raw
//!   vector column (§II-D).
//! * [`vw`] — virtual warehouses: worker membership, scaling (with the
//!   previous-assignment map that powers **vector search serving**, Fig. 4),
//!   query-level retry on worker failure (§II-E), and cache-aware preload.
//! * [`scheduler`] — segment selection with scalar (zone-map/partition) and
//!   semantic (centroid-distance) pruning, including the runtime-adaptive
//!   reserve list (§IV-B).
//!
//! RPC between workers is a function call plus an injected latency charge;
//! worker failure is a flag that makes its operations return
//! [`bh_common::BhError::WorkerUnavailable`].

pub mod hashring;
pub mod scheduler;
pub mod vw;
pub mod worker;

pub use hashring::MultiProbeRing;
pub use scheduler::{PruneConfig, SegmentSelection};
pub use vw::{VirtualWarehouse, VwConfig};
pub use worker::{SegmentQuery, Worker, WorkerConfig};
