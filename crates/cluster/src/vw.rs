//! Virtual warehouses: membership, scaling, serving, retry, preload.
//!
//! A VW is a set of workers plus a multi-probe hash ring mapping segments to
//! workers. The behaviours reproduced from the paper:
//!
//! * **Scaling-friendly allocation** (§II-D): adding/removing workers moves
//!   only the minimal key range; `previous_owner` remembers where each
//!   reassigned segment lived *before* the last topology change.
//! * **Vector search serving** (Fig. 4): when the assigned worker misses its
//!   index cache, the VW calls the previous owner's search RPC (latency
//!   charged) instead of falling back to brute force, and warms the new
//!   owner in the background.
//! * **Query-level retry** (§II-E): a dead worker's task is retried on the
//!   topology with the worker removed.
//! * **Cache-aware preload** (§II-D): new indexes are pushed to the workers
//!   the ring assigns them to.

use crate::hashring::MultiProbeRing;
use crate::worker::{SegmentQuery, Worker, WorkerConfig};
use bh_common::ids::IdGenerator;
use bh_common::{
    BhError, Bitset, LatencyModel, MetricsRegistry, Result, SharedClock, VwId, WorkerId,
};
use bh_storage::objectstore::ObjectStore;
use bh_storage::segment::SegmentMeta;
use bh_storage::table::TableStore;
use bh_vector::{IndexRegistry, Neighbor, SearchParams};
use bh_common::sync::{classes, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// VW-level configuration.
#[derive(Debug, Clone)]
pub struct VwConfig {
    /// Hash probes per segment key (multi-probe consistent hashing).
    pub probes: u32,
    /// Enable vector search serving on cache miss.
    pub serving_enabled: bool,
    /// RPC latency model for worker-to-worker serving calls.
    pub rpc: LatencyModel,
    /// Warm the new owner's cache synchronously after a miss (deterministic
    /// tests) instead of in a background thread (benchmarks).
    pub synchronous_warm: bool,
    /// Configuration for workers this VW creates.
    pub worker: WorkerConfig,
}

impl Default for VwConfig {
    fn default() -> Self {
        Self {
            probes: 21,
            serving_enabled: true,
            rpc: LatencyModel::ZERO,
            synchronous_warm: true,
            worker: WorkerConfig::default(),
        }
    }
}

/// A virtual warehouse.
pub struct VirtualWarehouse {
    id: VwId,
    name: String,
    cfg: VwConfig,
    remote: Arc<dyn ObjectStore>,
    registry: Arc<IndexRegistry>,
    clock: SharedClock,
    metrics: MetricsRegistry,
    ids: Arc<IdGenerator>,
    workers: RwLock<BTreeMap<WorkerId, Arc<Worker>>>,
    ring: RwLock<MultiProbeRing>,
    /// Segment key → owner before the most recent topology change.
    previous_owner: RwLock<HashMap<String, WorkerId>>,
}

impl VirtualWarehouse {
    /// An empty warehouse (add workers with [`Self::scale_up`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: VwId,
        name: &str,
        cfg: VwConfig,
        remote: Arc<dyn ObjectStore>,
        registry: Arc<IndexRegistry>,
        clock: SharedClock,
        metrics: MetricsRegistry,
        ids: Arc<IdGenerator>,
    ) -> Self {
        let probes = cfg.probes;
        Self {
            id,
            name: name.to_string(),
            cfg,
            remote,
            registry,
            clock,
            metrics,
            ids,
            workers: RwLock::new(&classes::VW_WORKERS, BTreeMap::new()),
            ring: RwLock::new(&classes::VW_RING, MultiProbeRing::new(probes)),
            previous_owner: RwLock::new(&classes::VW_PREV_OWNER, HashMap::new()),
        }
    }

    /// This warehouse's id.
    pub fn id(&self) -> VwId {
        self.id
    }

    /// This warehouse's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of live workers.
    pub fn worker_count(&self) -> usize {
        self.workers.read().len()
    }

    /// Shared metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Ids of all member workers.
    pub fn worker_ids(&self) -> Vec<WorkerId> {
        self.workers.read().keys().copied().collect()
    }

    /// Look up a member worker.
    pub fn worker(&self, id: WorkerId) -> Result<Arc<Worker>> {
        self.workers
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| BhError::NotFound(format!("{id} in {}", self.name)))
    }

    /// Record the current assignment of `known_segments` as the "previous"
    /// topology, then apply a membership change. Serving consults this map.
    fn remember_assignment(&self, known_segments: &[Arc<SegmentMeta>]) {
        let ring = self.ring.read();
        let mut prev = self.previous_owner.write();
        for meta in known_segments {
            if let Some(w) = ring.assign(&meta.id.key()) {
                prev.insert(meta.id.key(), w);
            }
        }
    }

    /// Add a worker (scale up). `known_segments` lets the VW remember the
    /// pre-scaling owners for serving.
    pub fn scale_up(&self, known_segments: &[Arc<SegmentMeta>]) -> WorkerId {
        self.remember_assignment(known_segments);
        let wid = self.ids.next_worker();
        let w = Arc::new(Worker::new(
            wid,
            self.cfg.worker.clone(),
            self.remote.clone(),
            None,
            self.registry.clone(),
            self.clock.clone(),
            self.metrics.clone(),
        ));
        self.workers.write().insert(wid, w);
        self.ring.write().add_worker(wid);
        self.metrics.counter("vw.scale_up").inc();
        wid
    }

    /// Remove a worker (scale down or failure eviction).
    pub fn scale_down(&self, wid: WorkerId, known_segments: &[Arc<SegmentMeta>]) -> Result<()> {
        self.remember_assignment(known_segments);
        self.workers
            .write()
            .remove(&wid)
            .ok_or_else(|| BhError::NotFound(format!("{wid} in {}", self.name)))?;
        self.ring.write().remove_worker(wid);
        self.metrics.counter("vw.scale_down").inc();
        Ok(())
    }

    /// Current owner of a segment.
    pub fn owner_of(&self, meta: &SegmentMeta) -> Result<(WorkerId, Arc<Worker>)> {
        let wid = self
            .ring
            .read()
            .assign(&meta.id.key())
            .ok_or_else(|| BhError::WorkerUnavailable(format!("{} has no workers", self.name)))?;
        Ok((wid, self.worker(wid)?))
    }

    /// Pre-scaling owner of a segment, if recorded and still a member.
    fn previous_owner_of(&self, meta: &SegmentMeta) -> Option<Arc<Worker>> {
        let wid = *self.previous_owner.read().get(&meta.id.key())?;
        self.workers.read().get(&wid).cloned()
    }

    /// Group segments by their assigned worker.
    pub fn assign(&self, metas: &[Arc<SegmentMeta>]) -> BTreeMap<WorkerId, Vec<Arc<SegmentMeta>>> {
        let ring = self.ring.read();
        let mut out: BTreeMap<WorkerId, Vec<Arc<SegmentMeta>>> = BTreeMap::new();
        for meta in metas {
            if let Some(w) = ring.assign(&meta.id.key()) {
                out.entry(w).or_default().push(meta.clone());
            }
        }
        out
    }

    /// Cache-aware preload: push each segment's index to its assigned worker
    /// (same hash as the query scheduler, §II-D). Returns loaded count.
    pub fn preload(&self, metas: &[Arc<SegmentMeta>]) -> Result<usize> {
        let mut n = 0;
        for (wid, segs) in self.assign(metas) {
            let w = self.worker(wid)?;
            n += w.preload(segs.iter().map(|m| m.as_ref()))?;
        }
        Ok(n)
    }

    /// Start fetching a segment's index blob on its assigned worker without
    /// blocking, so the transfer overlaps with whatever runs before that
    /// segment's search. No-op (false) when the segment is already resident
    /// or the remote store cannot defer transfers.
    pub fn prefetch_index(&self, meta: &Arc<SegmentMeta>) -> Result<bool> {
        let (_, target) = self.owner_of(meta)?;
        target.index_cache().prefetch(meta)
    }

    /// One segment's ANN search with serving + retry (the VW data path).
    pub fn search_segment(
        &self,
        table: &TableStore,
        meta: &Arc<SegmentMeta>,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>> {
        self.search_segment_bounded(table, meta, query, k, params, filter, None)
    }

    /// [`Self::search_segment`] with an optional shared pruning bound for
    /// batched execution (DESIGN.md §7).
    #[allow(clippy::too_many_arguments)]
    pub fn search_segment_bounded(
        &self,
        table: &TableStore,
        meta: &Arc<SegmentMeta>,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
        bound: Option<&bh_common::SharedBound>,
    ) -> Result<Vec<Neighbor>> {
        match self.search_segment_once(table, meta, query, k, params, filter, bound) {
            Ok(r) => Ok(r),
            Err(e) if e.is_retryable() => {
                // Query-level retry (§II-E): evict the dead worker from the
                // ring and run against the new topology.
                self.metrics.counter("vw.query_retries").inc();
                if let Ok((wid, w)) = self.owner_of(meta) {
                    if !w.is_alive() {
                        let _ = self.scale_down(wid, &[meta.clone()]);
                    }
                }
                self.search_segment_once(table, meta, query, k, params, filter, bound)
            }
            Err(e) => Err(e),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn search_segment_once(
        &self,
        table: &TableStore,
        meta: &Arc<SegmentMeta>,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
        bound: Option<&bh_common::SharedBound>,
    ) -> Result<Vec<Neighbor>> {
        let (_, target) = self.owner_of(meta)?;
        if target.index_resident(meta) || meta.index_kind.is_none() {
            return target.search_segment_bounded(table, meta, query, k, params, filter, bound);
        }
        // Cache miss on the assigned worker.
        if self.cfg.serving_enabled {
            if let Some(prev) = self.previous_owner_of(meta) {
                if prev.is_alive() && prev.index_resident(meta) {
                    // Serving call: charge RPC latency, search on the peer,
                    // and warm the new owner so the miss is transient.
                    let mut span = self.metrics.tracer().span("serving");
                    span.attr("segment", meta.id.raw());
                    span.attr("bytes", query.len() * 4);
                    // Overlap-capable charge: with a reactor-backed worker
                    // the wire time runs concurrently with the peer's search.
                    let pending = target.charge_rpc_begin(&self.cfg.rpc, query.len() * 4);
                    self.metrics.counter("vw.serving_calls").inc();
                    let result = prev.serve_remote_search_batch(
                        meta,
                        &[SegmentQuery { query, k, filter, bound }],
                        params,
                    );
                    if let Some((reactor, ticket)) = pending {
                        reactor.wait(ticket);
                    }
                    let mut result = result?;
                    self.warm(target.clone(), meta.clone());
                    return Ok(result.pop().unwrap_or_default());
                }
            }
        }
        // No serving possible: brute force now, warm for the future.
        let result = target.search_segment_bounded(table, meta, query, k, params, filter, bound)?;
        self.warm(target, meta.clone());
        Ok(result)
    }

    /// A whole batch of queries against one segment: the routing decision is
    /// made once and, when the serving path is taken, the batch ships as one
    /// RPC (one latency charge for the combined payload) to the previous
    /// owner instead of B round-trips — the multi-node scatter path of
    /// batched execution.
    pub fn search_segment_batch(
        &self,
        table: &TableStore,
        meta: &Arc<SegmentMeta>,
        queries: &[SegmentQuery<'_>],
        params: &SearchParams,
    ) -> Result<Vec<Vec<Neighbor>>> {
        match self.search_segment_batch_once(table, meta, queries, params) {
            Ok(r) => Ok(r),
            Err(e) if e.is_retryable() => {
                self.metrics.counter("vw.query_retries").inc();
                if let Ok((wid, w)) = self.owner_of(meta) {
                    if !w.is_alive() {
                        let _ = self.scale_down(wid, &[meta.clone()]);
                    }
                }
                self.search_segment_batch_once(table, meta, queries, params)
            }
            Err(e) => Err(e),
        }
    }

    fn search_segment_batch_once(
        &self,
        table: &TableStore,
        meta: &Arc<SegmentMeta>,
        queries: &[SegmentQuery<'_>],
        params: &SearchParams,
    ) -> Result<Vec<Vec<Neighbor>>> {
        let (_, target) = self.owner_of(meta)?;
        if target.index_resident(meta) || meta.index_kind.is_none() {
            return target.search_segment_batch(table, meta, queries, params);
        }
        if self.cfg.serving_enabled {
            if let Some(prev) = self.previous_owner_of(meta) {
                if prev.is_alive() && prev.index_resident(meta) {
                    let bytes: usize = queries.iter().map(|q| q.query.len() * 4).sum();
                    let mut span = self.metrics.tracer().span("serving");
                    span.attr("segment", meta.id.raw());
                    span.attr("queries", queries.len());
                    span.attr("bytes", bytes);
                    let pending = target.charge_rpc_begin(&self.cfg.rpc, bytes);
                    self.metrics.counter("vw.serving_calls").inc();
                    let result = prev.serve_remote_search_batch(meta, queries, params);
                    if let Some((reactor, ticket)) = pending {
                        reactor.wait(ticket);
                    }
                    let result = result?;
                    self.warm(target.clone(), meta.clone());
                    return Ok(result);
                }
            }
        }
        // Cold with no serving peer: fall back to the per-query path so the
        // synchronous warm after the first miss upgrades the rest of the
        // batch to the index, exactly like a sequential loop would.
        queries
            .iter()
            .map(|q| {
                self.search_segment_once(table, meta, q.query, q.k, params, q.filter, q.bound)
            })
            .collect()
    }

    fn warm(&self, worker: Arc<Worker>, meta: Arc<SegmentMeta>) {
        if self.cfg.synchronous_warm {
            let _ = worker.warm_index(&meta);
            return;
        }
        // Deduplicate: under load many queries miss on the same segment
        // before the first warm completes; only one loader should run.
        if !worker.try_begin_warm(meta.id) {
            return;
        }
        std::thread::spawn(move || {
            let _ = worker.warm_index(&meta);
            worker.end_warm(meta.id);
        });
    }

    /// Kill a worker in place (fault injection; stays in the ring until a
    /// retry evicts it, like a real undetected failure).
    pub fn inject_failure(&self, wid: WorkerId) -> Result<()> {
        self.worker(wid)?.kill();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_common::VirtualClock;
    use bh_storage::objectstore::InMemoryObjectStore;
    use bh_storage::schema::TableSchema;
    use bh_storage::table::TableStoreConfig;
    use bh_storage::value::{ColumnType, Value};
    use bh_vector::IndexKind;
    use std::time::Duration;

    fn table(n: usize, seg_rows: usize) -> Arc<TableStore> {
        let schema = TableSchema::new("t")
            .with_column("id", ColumnType::UInt64)
            .with_column("emb", ColumnType::Vector(4))
            .with_vector_index("i", "emb", IndexKind::Hnsw, 4, bh_vector::Metric::L2);
        let ts = TableStore::new(
            schema,
            InMemoryObjectStore::for_tests(),
            Arc::new(IndexRegistry::with_builtins()),
            TableStoreConfig { segment_max_rows: seg_rows, ..Default::default() },
            Arc::new(IdGenerator::new()),
            MetricsRegistry::new(),
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::UInt64(i as u64), Value::Vector(vec![i as f32; 4])])
            .collect();
        ts.insert_rows(rows).unwrap();
        Arc::new(ts)
    }

    fn vw(table: &TableStore, cfg: VwConfig, n_workers: usize) -> VirtualWarehouse {
        let v = VirtualWarehouse::new(
            VwId(0),
            "test-vw",
            cfg,
            table.remote_store().clone(),
            table.registry().clone(),
            VirtualClock::shared(),
            table.metrics().clone(),
            Arc::new(IdGenerator::starting_at(100)),
        );
        for _ in 0..n_workers {
            v.scale_up(&[]);
        }
        v
    }

    #[test]
    fn assignment_covers_all_segments() {
        let t = table(500, 50);
        let v = vw(&t, VwConfig::default(), 3);
        let metas = t.segments();
        assert_eq!(metas.len(), 10);
        let groups = v.assign(&metas);
        let total: usize = groups.values().map(|g| g.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(v.worker_count(), 3);
    }

    #[test]
    fn preload_places_indexes_on_assigned_workers() {
        let t = table(400, 50);
        let v = vw(&t, VwConfig::default(), 2);
        let metas = t.segments();
        assert_eq!(v.preload(&metas).unwrap(), metas.len());
        // Every segment is resident exactly on its assigned worker.
        for (wid, segs) in v.assign(&metas) {
            let w = v.worker(wid).unwrap();
            for meta in segs {
                assert!(w.index_resident(&meta));
            }
        }
    }

    #[test]
    fn search_uses_local_index_after_preload() {
        let t = table(300, 300);
        let v = vw(&t, VwConfig::default(), 2);
        let metas = t.segments();
        v.preload(&metas).unwrap();
        let got = v
            .search_segment(&t, &metas[0], &[7.0; 4], 3, &SearchParams::default(), None)
            .unwrap();
        assert_eq!(got[0].id, 7);
        assert_eq!(t.metrics().counter_value("worker.local_search"), 1);
        assert_eq!(t.metrics().counter_value("worker.brute_force"), 0);
    }

    #[test]
    fn serving_answers_from_previous_owner_on_scale_up() {
        let t = table(300, 300);
        let clock = VirtualClock::shared();
        let v = VirtualWarehouse::new(
            VwId(0),
            "vw",
            VwConfig {
                rpc: LatencyModel::fixed(Duration::from_micros(200)),
                ..Default::default()
            },
            t.remote_store().clone(),
            t.registry().clone(),
            clock.clone(),
            t.metrics().clone(),
            Arc::new(IdGenerator::starting_at(100)),
        );
        v.scale_up(&[]);
        let metas = t.segments();
        v.preload(&metas).unwrap();
        let meta = metas[0].clone();
        let (old_owner, _) = v.owner_of(&meta).unwrap();

        // Scale up until the segment moves to a new worker.
        let mut moved = false;
        for _ in 0..20 {
            v.scale_up(&metas);
            let (now_owner, w) = v.owner_of(&meta).unwrap();
            if now_owner != old_owner && !w.index_resident(&meta) {
                moved = true;
                break;
            }
        }
        assert!(moved, "segment never moved after 20 scale-ups");

        let before_serving = t.metrics().counter_value("vw.serving_calls");
        let before_bf = t.metrics().counter_value("worker.brute_force");
        let got = v
            .search_segment(&t, &meta, &[5.0; 4], 2, &SearchParams::default(), None)
            .unwrap();
        assert_eq!(got[0].id, 5);
        assert_eq!(t.metrics().counter_value("vw.serving_calls"), before_serving + 1);
        assert_eq!(
            t.metrics().counter_value("worker.brute_force"),
            before_bf,
            "serving must avoid brute force"
        );
        assert!(clock.now_nanos() >= 200_000, "rpc latency charged");
        // Synchronous warm: the new owner is now resident; next search local.
        let (_, w) = v.owner_of(&meta).unwrap();
        assert!(w.index_resident(&meta));
    }

    #[test]
    fn batched_serving_ships_one_rpc_for_the_whole_batch() {
        let t = table(300, 300);
        let clock = VirtualClock::shared();
        let v = VirtualWarehouse::new(
            VwId(0),
            "vw",
            VwConfig {
                rpc: LatencyModel::fixed(Duration::from_micros(200)),
                ..Default::default()
            },
            t.remote_store().clone(),
            t.registry().clone(),
            clock.clone(),
            t.metrics().clone(),
            Arc::new(IdGenerator::starting_at(100)),
        );
        v.scale_up(&[]);
        let metas = t.segments();
        v.preload(&metas).unwrap();
        let meta = metas[0].clone();
        let (old_owner, _) = v.owner_of(&meta).unwrap();
        let mut moved = false;
        for _ in 0..20 {
            v.scale_up(&metas);
            let (now_owner, w) = v.owner_of(&meta).unwrap();
            if now_owner != old_owner && !w.index_resident(&meta) {
                moved = true;
                break;
            }
        }
        assert!(moved, "segment never moved after 20 scale-ups");

        let before_serving = t.metrics().counter_value("vw.serving_calls");
        let q5 = [5.0f32; 4];
        let q7 = [7.0f32; 4];
        let q9 = [9.0f32; 4];
        let queries = [
            SegmentQuery { query: &q5, k: 2, filter: None, bound: None },
            SegmentQuery { query: &q7, k: 2, filter: None, bound: None },
            SegmentQuery { query: &q9, k: 2, filter: None, bound: None },
        ];
        let got = v
            .search_segment_batch(&t, &meta, &queries, &SearchParams::default())
            .unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0][0].id, 5);
        assert_eq!(got[1][0].id, 7);
        assert_eq!(got[2][0].id, 9);
        // One serving RPC covered all three queries.
        assert_eq!(t.metrics().counter_value("vw.serving_calls"), before_serving + 1);
        // Synchronous warm: the batch leaves the new owner resident.
        let (_, w) = v.owner_of(&meta).unwrap();
        assert!(w.index_resident(&meta));
    }

    #[test]
    fn overlapped_serving_hides_rpc_behind_peer_compute() {
        // With a reactor-backed target worker, the serving RPC's wire time
        // runs concurrently with the previous owner's search compute:
        // simulated cost is max(rpc, compute), not the sum.
        let run = |overlap: bool| -> u64 {
            let t = table(300, 300);
            let clock = VirtualClock::shared();
            let v = VirtualWarehouse::new(
                VwId(0),
                "vw",
                VwConfig {
                    rpc: LatencyModel::fixed(Duration::from_micros(200)),
                    worker: WorkerConfig {
                        overlap,
                        compute_per_segment: LatencyModel::fixed(Duration::from_micros(300)),
                        ..Default::default()
                    },
                    ..Default::default()
                },
                t.remote_store().clone(),
                t.registry().clone(),
                clock.clone(),
                t.metrics().clone(),
                Arc::new(IdGenerator::starting_at(100)),
            );
            v.scale_up(&[]);
            let metas = t.segments();
            v.preload(&metas).unwrap();
            let meta = metas[0].clone();
            let (old_owner, _) = v.owner_of(&meta).unwrap();
            let mut moved = false;
            for _ in 0..20 {
                v.scale_up(&metas);
                let (now_owner, w) = v.owner_of(&meta).unwrap();
                if now_owner != old_owner && !w.index_resident(&meta) {
                    moved = true;
                    break;
                }
            }
            assert!(moved, "segment never moved after 20 scale-ups");
            let t0 = clock.now_nanos();
            v.search_segment(&t, &meta, &[5.0; 4], 2, &SearchParams::default(), None).unwrap();
            clock.now_nanos() - t0
        };
        assert_eq!(run(false), 500_000, "blocking: rpc then compute");
        assert_eq!(run(true), 300_000, "overlapped: max(rpc, compute)");
    }

    #[test]
    fn prefetch_index_noop_on_resident_or_non_deferred() {
        let t = table(300, 300);
        let v = vw(&t, VwConfig::default(), 2);
        let metas = t.segments();
        // for_tests store has no reactor → prefetch declines.
        assert!(!v.prefetch_index(&metas[0]).unwrap());
        v.preload(&metas).unwrap();
        assert!(!v.prefetch_index(&metas[0]).unwrap());
    }

    #[test]
    fn batched_search_on_resident_owner_stays_local() {
        let t = table(300, 300);
        let v = vw(&t, VwConfig::default(), 2);
        let metas = t.segments();
        v.preload(&metas).unwrap();
        let q3 = [3.0f32; 4];
        let q8 = [8.0f32; 4];
        let queries = [
            SegmentQuery { query: &q3, k: 1, filter: None, bound: None },
            SegmentQuery { query: &q8, k: 1, filter: None, bound: None },
        ];
        let got = v
            .search_segment_batch(&t, &metas[0], &queries, &SearchParams::default())
            .unwrap();
        assert_eq!(got[0][0].id, 3);
        assert_eq!(got[1][0].id, 8);
        assert_eq!(t.metrics().counter_value("vw.serving_calls"), 0);
        assert_eq!(t.metrics().counter_value("worker.brute_force"), 0);
    }

    #[test]
    fn serving_disabled_falls_back_to_brute_force() {
        let t = table(300, 300);
        let v = vw(
            &t,
            VwConfig { serving_enabled: false, ..Default::default() },
            1,
        );
        let metas = t.segments();
        v.preload(&metas).unwrap();
        let meta = metas[0].clone();
        // Force a move.
        for _ in 0..20 {
            v.scale_up(&metas);
            let (_, w) = v.owner_of(&meta).unwrap();
            if !w.index_resident(&meta) {
                break;
            }
        }
        let (_, w) = v.owner_of(&meta).unwrap();
        if !w.index_resident(&meta) {
            let before = t.metrics().counter_value("worker.brute_force");
            v.search_segment(&t, &meta, &[1.0; 4], 1, &SearchParams::default(), None).unwrap();
            assert_eq!(t.metrics().counter_value("worker.brute_force"), before + 1);
        }
    }

    #[test]
    fn failed_worker_triggers_query_retry() {
        let t = table(200, 200);
        let v = vw(&t, VwConfig::default(), 3);
        let metas = t.segments();
        v.preload(&metas).unwrap();
        let meta = metas[0].clone();
        let (owner, _) = v.owner_of(&meta).unwrap();
        v.inject_failure(owner).unwrap();
        // The query still succeeds via retry on the shrunken topology.
        let got = v
            .search_segment(&t, &meta, &[3.0; 4], 1, &SearchParams::default(), None)
            .unwrap();
        assert_eq!(got[0].id, 3);
        assert_eq!(t.metrics().counter_value("vw.query_retries"), 1);
        assert_eq!(v.worker_count(), 2, "dead worker evicted");
        let (new_owner, _) = v.owner_of(&meta).unwrap();
        assert_ne!(new_owner, owner);
    }

    #[test]
    fn all_workers_dead_errors_out() {
        let t = table(100, 100);
        let v = vw(&t, VwConfig::default(), 1);
        let metas = t.segments();
        let (owner, _) = v.owner_of(&metas[0]).unwrap();
        v.inject_failure(owner).unwrap();
        let err = v
            .search_segment(&t, &metas[0], &[0.0; 4], 1, &SearchParams::default(), None)
            .unwrap_err();
        assert!(matches!(err, BhError::WorkerUnavailable(_)));
    }

    #[test]
    fn scale_down_redistributes() {
        let t = table(400, 40);
        let v = vw(&t, VwConfig::default(), 3);
        let metas = t.segments();
        let before = v.assign(&metas);
        let victim = *before.keys().next().unwrap();
        v.scale_down(victim, &metas).unwrap();
        let after = v.assign(&metas);
        assert!(!after.contains_key(&victim));
        let total: usize = after.values().map(|g| g.len()).sum();
        assert_eq!(total, metas.len());
        // Segments not owned by the victim stayed put.
        for (wid, segs) in &before {
            if *wid == victim {
                continue;
            }
            for meta in segs {
                let still = after.get(wid).map(|g| g.iter().any(|m| m.id == meta.id));
                assert_eq!(still, Some(true), "segment moved though its worker stayed");
            }
        }
    }
}
