//! Scheduling-time segment selection with scalar and semantic pruning
//! (§II-C "Plan scheduling", §IV-B).
//!
//! Given a hybrid query's predicate and query vector, the scheduler
//!
//! 1. **scalar-prunes**: drops segments whose per-column min/max (which, for
//!    partition-key columns, pin the partition value) cannot satisfy the
//!    predicate;
//! 2. **semantic-prunes**: ranks the survivors by the distance between the
//!    query vector and each segment's centroid, scheduling only the nearest
//!    fraction and keeping the rest as an ordered **reserve** list;
//! 3. supports **adaptive runtime adjustment**: when the executor comes up
//!    short of `k` results it pulls the next reserve segments instead of
//!    failing or re-planning.

use bh_storage::predicate::Predicate;
use bh_storage::segment::SegmentMeta;
use bh_vector::distance::l2_sq;
use std::sync::Arc;

/// Pruning configuration.
#[derive(Debug, Clone, Copy)]
pub struct PruneConfig {
    /// Apply scalar min/max pruning.
    pub scalar: bool,
    /// Fraction of (scalar-surviving) segments to schedule by centroid
    /// proximity; `1.0` disables semantic pruning.
    pub semantic_fraction: f64,
    /// Schedule at least this many segments regardless of fraction.
    pub min_segments: usize,
}

impl Default for PruneConfig {
    fn default() -> Self {
        Self { scalar: true, semantic_fraction: 1.0, min_segments: 1 }
    }
}

impl PruneConfig {
    /// No pruning at all (the "random partitioning" baseline of Fig. 16).
    pub fn none() -> Self {
        Self { scalar: false, semantic_fraction: 1.0, min_segments: 1 }
    }

    /// Set the semantic scheduling fraction.
    pub fn with_semantic(mut self, fraction: f64) -> Self {
        self.semantic_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Scalar pruning only (the default).
    pub fn scalar_only() -> Self {
        Self::default()
    }
}

/// The scheduler's output: segments to run now, plus an ordered reserve for
/// adaptive expansion.
#[derive(Debug, Clone)]
pub struct SegmentSelection {
    /// Segments to execute now.
    pub scheduled: Vec<Arc<SegmentMeta>>,
    /// Next-best segments, nearest-centroid first.
    pub reserve: Vec<Arc<SegmentMeta>>,
    /// Segments eliminated by scalar pruning (for accounting).
    pub scalar_pruned: usize,
}

impl SegmentSelection {
    /// Pull up to `n` more segments from the reserve (adaptive adjustment).
    pub fn expand(&mut self, n: usize) -> Vec<Arc<SegmentMeta>> {
        let take = n.min(self.reserve.len());
        let extra: Vec<_> = self.reserve.drain(..take).collect();
        self.scheduled.extend(extra.iter().cloned());
        extra
    }

    /// True when no reserve segments remain.
    pub fn exhausted(&self) -> bool {
        self.reserve.is_empty()
    }

    /// Scheduled plus reserve segment count.
    pub fn total_candidates(&self) -> usize {
        self.scheduled.len() + self.reserve.len()
    }
}

/// Select the segments a hybrid query must visit.
pub fn select_segments(
    segments: &[Arc<SegmentMeta>],
    predicate: &Predicate,
    query_vector: Option<&[f32]>,
    cfg: &PruneConfig,
) -> SegmentSelection {
    // Scalar pruning.
    let mut survivors: Vec<Arc<SegmentMeta>> = Vec::with_capacity(segments.len());
    let mut scalar_pruned = 0;
    for meta in segments {
        if !cfg.scalar || predicate.may_match_stats(&meta.column_stats) {
            survivors.push(meta.clone());
        } else {
            scalar_pruned += 1;
        }
    }

    // Semantic ranking + cut.
    if let Some(q) = query_vector {
        survivors.sort_by(|a, b| {
            let da = a.centroid.as_deref().map(|c| l2_sq(q, c)).unwrap_or(f32::INFINITY);
            let db = b.centroid.as_deref().map(|c| l2_sq(q, c)).unwrap_or(f32::INFINITY);
            da.total_cmp(&db)
        });
    }
    let cut = if query_vector.is_some() && cfg.semantic_fraction < 1.0 {
        ((survivors.len() as f64 * cfg.semantic_fraction).ceil() as usize)
            .clamp(cfg.min_segments.min(survivors.len()), survivors.len())
    } else {
        survivors.len()
    };
    let reserve = survivors.split_off(cut);
    SegmentSelection { scheduled: survivors, reserve, scalar_pruned }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_common::SegmentId;
    use bh_storage::stats::ColumnStats;
    use bh_storage::value::Value;
    use std::collections::BTreeMap;

    fn meta(id: u64, label: &str, centroid: Vec<f32>) -> Arc<SegmentMeta> {
        let mut stats = BTreeMap::new();
        let mut st = ColumnStats::default();
        st.observe(&Value::Str(label.into()));
        stats.insert("label".to_string(), st);
        Arc::new(SegmentMeta {
            id: SegmentId(id),
            table: "t".into(),
            row_count: 100,
            level: 0,
            partition_key: vec![Value::Str(label.into())],
            cluster_bucket: None,
            centroid: Some(centroid),
            column_stats: stats,
            index_kind: None,
            index_bytes: 0,
            index_head_bytes: 0,
        })
    }

    fn fleet() -> Vec<Arc<SegmentMeta>> {
        vec![
            meta(0, "animal", vec![0.0, 0.0]),
            meta(1, "animal", vec![10.0, 10.0]),
            meta(2, "plant", vec![0.0, 0.0]),
            meta(3, "plant", vec![20.0, 20.0]),
        ]
    }

    #[test]
    fn scalar_pruning_drops_wrong_partitions() {
        let segs = fleet();
        let p = Predicate::eq("label", Value::Str("animal".into()));
        let sel = select_segments(&segs, &p, None, &PruneConfig::default());
        assert_eq!(sel.scheduled.len(), 2);
        assert_eq!(sel.scalar_pruned, 2);
        for m in &sel.scheduled {
            assert_eq!(m.partition_key[0], Value::Str("animal".into()));
        }
    }

    #[test]
    fn no_pruning_schedules_everything() {
        let segs = fleet();
        let p = Predicate::eq("label", Value::Str("animal".into()));
        let sel = select_segments(&segs, &p, None, &PruneConfig::none());
        assert_eq!(sel.scheduled.len(), 4);
        assert_eq!(sel.scalar_pruned, 0);
    }

    #[test]
    fn semantic_pruning_schedules_nearest_centroids() {
        let segs = fleet();
        let q = vec![0.5, 0.5];
        let cfg = PruneConfig::default().with_semantic(0.5);
        let sel = select_segments(&segs, &Predicate::True, Some(&q), &cfg);
        assert_eq!(sel.scheduled.len(), 2);
        let ids: Vec<u64> = sel.scheduled.iter().map(|m| m.id.raw()).collect();
        assert!(ids.contains(&0) && ids.contains(&2), "nearest centroids win: {ids:?}");
        assert_eq!(sel.reserve.len(), 2);
        // Reserve is ordered by distance too.
        assert_eq!(sel.reserve[0].id.raw(), 1);
    }

    #[test]
    fn combined_pruning_composes() {
        let segs = fleet();
        let q = vec![0.0, 0.0];
        let p = Predicate::eq("label", Value::Str("plant".into()));
        let cfg = PruneConfig::default().with_semantic(0.5);
        let sel = select_segments(&segs, &p, Some(&q), &cfg);
        assert_eq!(sel.scalar_pruned, 2);
        assert_eq!(sel.scheduled.len(), 1);
        assert_eq!(sel.scheduled[0].id.raw(), 2);
        assert_eq!(sel.reserve.len(), 1);
    }

    #[test]
    fn adaptive_expand_pulls_from_reserve() {
        let segs = fleet();
        let q = vec![0.0, 0.0];
        let cfg = PruneConfig::default().with_semantic(0.25);
        let mut sel = select_segments(&segs, &Predicate::True, Some(&q), &cfg);
        assert_eq!(sel.scheduled.len(), 1);
        assert_eq!(sel.total_candidates(), 4);
        let extra = sel.expand(2);
        assert_eq!(extra.len(), 2);
        assert_eq!(sel.scheduled.len(), 3);
        assert!(!sel.exhausted());
        let last = sel.expand(10);
        assert_eq!(last.len(), 1);
        assert!(sel.exhausted());
        assert_eq!(sel.total_candidates(), 4);
    }

    #[test]
    fn min_segments_floor_respected() {
        let segs = fleet();
        let q = vec![0.0, 0.0];
        let cfg = PruneConfig { scalar: true, semantic_fraction: 0.01, min_segments: 2 };
        let sel = select_segments(&segs, &Predicate::True, Some(&q), &cfg);
        assert_eq!(sel.scheduled.len(), 2);
    }

    #[test]
    fn segments_without_centroid_rank_last() {
        let mut segs = fleet();
        let mut no_centroid = (*meta(9, "animal", vec![])).clone();
        no_centroid.centroid = None;
        segs.push(Arc::new(no_centroid));
        let q = vec![0.0, 0.0];
        let cfg = PruneConfig::default().with_semantic(0.8);
        let sel = select_segments(&segs, &Predicate::True, Some(&q), &cfg);
        // 5 segments, fraction 0.8 → 4 scheduled, and the centroid-less
        // segment must be the one left in the reserve tail.
        assert_eq!(sel.reserve.len(), 1);
        assert_eq!(sel.reserve.last().unwrap().id.raw(), 9);
    }

    #[test]
    fn empty_input() {
        let sel = select_segments(&[], &Predicate::True, None, &PruneConfig::default());
        assert!(sel.scheduled.is_empty());
        assert!(sel.exhausted());
    }
}
