//! Compute workers.
//!
//! A worker is stateless with respect to data: everything it holds is cache.
//! Per the paper's design each worker owns
//!
//! * a hierarchical **vector-index cache** (memory → optional local disk →
//!   remote store, §II-D), and
//! * a split-space **block cache** for scalar column blocks (§IV-C).
//!
//! `search_segment` is the per-segment ANN task: local index search when the
//! index is memory-resident, otherwise (unless the caller routed the request
//! through vector search serving) a brute-force fallback over the raw vector
//! column. `serve_remote_search` is the RPC-exposed entry other workers call
//! during scaling — it only answers from the local memory cache.

use bh_common::{
    BhError, Bitset, LatencyModel, MetricsRegistry, Result, SharedBound, SharedClock, Stopwatch,
    WorkerId,
};
use bh_storage::cache::{BlockCache, BlockKind, IndexCache};
use bh_storage::column::ColumnData;
use bh_storage::objectstore::ObjectStore;
use bh_storage::predicate::Predicate;
use bh_storage::segment::SegmentMeta;
use bh_storage::table::TableStore;
use bh_vector::distance::Metric;
use bh_vector::{IndexRegistry, Neighbor, SearchParams};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Sizing and behaviour knobs for one worker.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// In-memory vector-index cache capacity.
    pub index_mem_bytes: usize,
    /// Block-cache metadata-space capacity.
    pub block_meta_bytes: usize,
    /// Block-cache data-space (and decoded-cache) capacity.
    pub block_data_bytes: usize,
    /// Block-cache anti-thrashing row limit (§IV-C).
    pub cache_row_limit: usize,
    /// Use fine-grained (per-block) scalar reads instead of whole columns.
    pub fine_grained_reads: bool,
    /// Simulated per-segment-search service time of one worker core.
    /// Zero by default; the elasticity experiments set it so that capacity —
    /// not the host's core count — bounds throughput, as in a real cluster.
    pub compute_per_segment: bh_common::LatencyModel,
    /// Route this worker's simulated RPC charges through a completion-queue
    /// reactor so callers can overlap the wire time with other work
    /// ([`Worker::charge_rpc_begin`]). Off by default: blocking charges keep
    /// existing latency accounting bit-identical.
    pub overlap: bool,
    /// Serve cold segments from a head-only partial index when the blob is
    /// tiered (v3), instead of brute-forcing while the full index loads.
    /// Off by default so the overlapped path stays byte-identical to the
    /// blocking path (head results are approximate until the body arrives).
    pub tiered_loading: bool,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            index_mem_bytes: 256 << 20,
            block_meta_bytes: 16 << 20,
            block_data_bytes: 128 << 20,
            cache_row_limit: 100_000,
            fine_grained_reads: true,
            compute_per_segment: bh_common::LatencyModel::ZERO,
            overlap: false,
            tiered_loading: false,
        }
    }
}

/// One query of a batched per-segment search request: the unit shipped B at
/// a time through the batch RPC entries so multi-node scatter sends one
/// request per worker instead of B.
#[derive(Clone, Copy)]
pub struct SegmentQuery<'a> {
    /// Query vector.
    pub query: &'a [f32],
    /// Candidates requested (already σ-amplified by the caller if needed).
    pub k: usize,
    /// Row filter (visibility ∧ predicate), if any.
    pub filter: Option<&'a Bitset>,
    /// Shared k-th-distance pruning bound for this query, if batched
    /// execution enabled it.
    pub bound: Option<&'a SharedBound>,
}

/// One compute worker.
pub struct Worker {
    id: WorkerId,
    index_cache: IndexCache,
    block_cache: BlockCache,
    /// Decoded-column cache: the "adaptive in-memory caching" of §IV-C —
    /// hybrid queries re-read the same scalar/vector columns constantly,
    /// and caching the *decoded* form avoids per-query block decode cost.
    column_cache: bh_storage::lru::LruCache<(bh_common::SegmentId, String), Arc<ColumnData>>,
    /// Decoded form of individual blocks (the fine-grained read path's
    /// counterpart of `column_cache`).
    decoded_blocks: bh_storage::lru::LruCache<String, Arc<ColumnData>>,
    alive: AtomicBool,
    /// Segments currently being warmed in the background — deduplicates the
    /// warm storm that would otherwise follow a cache miss under load.
    warming: bh_common::sync::Mutex<std::collections::HashSet<bh_common::SegmentId>>,
    cfg: WorkerConfig,
    metrics: MetricsRegistry,
    clock: SharedClock,
    /// Completion-queue reactor for overlapped RPC charges (`cfg.overlap`).
    reactor: Option<Arc<bh_common::Reactor>>,
}

impl Worker {
    /// A stateless worker over the given store tiers.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: WorkerId,
        cfg: WorkerConfig,
        remote: Arc<dyn ObjectStore>,
        local_disk: Option<Arc<dyn ObjectStore>>,
        registry: Arc<IndexRegistry>,
        clock: SharedClock,
        metrics: MetricsRegistry,
    ) -> Self {
        let index_cache = IndexCache::new(
            cfg.index_mem_bytes,
            local_disk,
            remote,
            registry,
            metrics.clone(),
        );
        let block_cache = BlockCache::new(
            cfg.block_meta_bytes,
            cfg.block_data_bytes,
            cfg.cache_row_limit,
            metrics.clone(),
        );
        let column_cache =
            bh_storage::lru::LruCache::with_metrics(cfg.block_data_bytes, &metrics, "column");
        let decoded_blocks =
            bh_storage::lru::LruCache::with_metrics(cfg.block_data_bytes, &metrics, "decoded");
        let reactor = cfg.overlap.then(|| Arc::new(bh_common::Reactor::new(clock.clone())));
        Self {
            id,
            index_cache,
            block_cache,
            column_cache,
            decoded_blocks,
            alive: AtomicBool::new(true),
            warming: bh_common::sync::Mutex::new(
                &bh_common::sync::classes::WORKER_WARMING,
                std::collections::HashSet::new(),
            ),
            cfg,
            metrics,
            clock,
            reactor,
        }
    }

    /// This worker's id.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// Is the worker answering requests?
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }

    /// Fault injection: the worker stops answering (§II-E).
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Relaxed);
    }

    /// "Failed nodes recover within seconds": restart with cold memory cache.
    pub fn recover(&self) {
        self.index_cache.clear_memory();
        self.alive.store(true, Ordering::Relaxed);
    }

    fn check_alive(&self) -> Result<()> {
        if self.is_alive() {
            Ok(())
        } else {
            Err(BhError::WorkerUnavailable(format!("{}", self.id)))
        }
    }

    /// Is the segment's index resident in this worker's memory cache?
    pub fn index_resident(&self, seg: &SegmentMeta) -> bool {
        self.index_cache.resident(seg.id)
    }

    /// Warm the index cache for a segment (preload / post-miss load).
    pub fn warm_index(&self, seg: &SegmentMeta) -> Result<()> {
        self.check_alive()?;
        self.index_cache.get(seg)?;
        Ok(())
    }

    /// Claim the right to warm a segment in the background; returns false if
    /// a warm for it is already in flight. Callers must pair with
    /// [`Self::end_warm`].
    pub fn try_begin_warm(&self, seg: bh_common::SegmentId) -> bool {
        self.warming.lock().insert(seg)
    }

    /// Release a warm claim taken with [`Self::try_begin_warm`].
    pub fn end_warm(&self, seg: bh_common::SegmentId) {
        self.warming.lock().remove(&seg);
    }

    /// Preload a batch of segments (cache-aware preload, §II-D).
    pub fn preload<'a>(&self, metas: impl IntoIterator<Item = &'a SegmentMeta>) -> Result<usize> {
        self.check_alive()?;
        self.index_cache.preload(metas)
    }

    /// The worker's hierarchical index cache.
    pub fn index_cache(&self) -> &IndexCache {
        &self.index_cache
    }

    /// The worker's column-block cache (introspection: `system.caches`).
    pub fn block_cache(&self) -> &BlockCache {
        &self.block_cache
    }

    /// Per-segment ANN search through this worker's caches.
    ///
    /// `allow_fallback` = false restricts to the memory-resident fast path
    /// (used by the serving RPC); the hierarchy (disk/remote) is still
    /// consulted when `allow_fallback` is true and the index exists.
    pub fn search_segment(
        &self,
        table: &TableStore,
        meta: &SegmentMeta,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>> {
        self.search_segment_bounded(table, meta, query, k, params, filter, None)
    }

    /// [`Self::search_segment`] with an optional shared pruning bound
    /// threaded through to the index scan (batched execution, DESIGN.md §7).
    #[allow(clippy::too_many_arguments)]
    pub fn search_segment_bounded(
        &self,
        table: &TableStore,
        meta: &SegmentMeta,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
        bound: Option<&SharedBound>,
    ) -> Result<Vec<Neighbor>> {
        self.check_alive()?;
        self.cfg.compute_per_segment.charge(self.clock.as_ref(), 0);
        let mut span = self.metrics.tracer().span("worker.search");
        span.attr("segment", meta.id.raw());
        if self.index_cache.resident(meta.id) {
            let idx = self
                .index_cache
                .get(meta)?
                .ok_or_else(|| BhError::Internal("resident index vanished".into()))?;
            self.metrics.counter("worker.local_search").inc();
            span.attr("mode", "local");
            return idx.search_with_bound(query, k, params, filter, bound);
        }
        // Cache miss. With tiered loading enabled, a head-only partial index
        // (upper HNSW layers + entry vectors) serves indexed results after
        // only the head prefix of the blob has arrived; the body keeps
        // streaming in the background.
        if let Some(head) = self.head_handle(meta)? {
            self.metrics.counter("worker.head_search").inc();
            span.attr("mode", "head");
            return head.search_with_bound(query, k, params, filter, bound);
        }
        // Otherwise brute force over the raw vector column (§II-D), so the
        // query is served immediately instead of stalling on index load.
        self.metrics.counter("worker.brute_force").inc();
        span.attr("mode", "brute");
        self.brute_force_segment_bounded(table, meta, query, k, filter, bound)
    }

    /// The head-only partial index for a cold tiered segment, when
    /// `tiered_loading` is on and the head can actually answer searches
    /// (e.g. IVF heads hold no rows → `None` → brute-force fallback).
    fn head_handle(&self, meta: &SegmentMeta) -> Result<Option<Arc<dyn bh_vector::VectorIndex>>> {
        if !self.cfg.tiered_loading {
            return Ok(None);
        }
        Ok(self.index_cache.get_head(meta)?.filter(|h| h.head_servable()))
    }

    /// Batched variant of [`Self::search_segment`]: one aliveness check, one
    /// per-segment compute charge, and one cache traversal cover the whole
    /// query batch. Residency is re-checked per query so a mid-batch warm
    /// upgrades later queries to the index, exactly like a sequential loop.
    pub fn search_segment_batch(
        &self,
        table: &TableStore,
        meta: &SegmentMeta,
        queries: &[SegmentQuery<'_>],
        params: &SearchParams,
    ) -> Result<Vec<Vec<Neighbor>>> {
        self.check_alive()?;
        self.cfg.compute_per_segment.charge(self.clock.as_ref(), 0);
        let mut span = self.metrics.tracer().span("worker.search");
        span.attr("segment", meta.id.raw());
        span.attr("queries", queries.len());
        let mut handle: Option<Arc<dyn bh_vector::VectorIndex>> = None;
        let mut head: Option<Arc<dyn bh_vector::VectorIndex>> = None;
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            if handle.is_none() && self.index_cache.resident(meta.id) {
                handle = self.index_cache.get(meta)?;
            }
            match &handle {
                Some(idx) => {
                    self.metrics.counter("worker.local_search").inc();
                    out.push(idx.search_with_bound(q.query, q.k, params, q.filter, q.bound)?);
                }
                None => {
                    if head.is_none() {
                        head = self.head_handle(meta)?;
                    }
                    match &head {
                        Some(h) => {
                            self.metrics.counter("worker.head_search").inc();
                            out.push(h.search_with_bound(
                                q.query, q.k, params, q.filter, q.bound,
                            )?);
                        }
                        None => {
                            self.metrics.counter("worker.brute_force").inc();
                            out.push(self.brute_force_inner(
                                table, meta, q.query, q.k, q.filter, q.bound,
                            )?);
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Search a pre-pinned index handle on behalf of this worker. The caller
    /// already paid the cache traversal and per-segment compute charge when
    /// it pinned the handle (once per batch), so only aliveness and the
    /// search itself remain.
    pub fn search_pinned(
        &self,
        idx: &Arc<dyn bh_vector::VectorIndex>,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
        bound: Option<&SharedBound>,
    ) -> Result<Vec<Neighbor>> {
        self.check_alive()?;
        self.metrics.counter("worker.local_search").inc();
        idx.search_with_bound(query, k, params, filter, bound)
    }

    /// Serving RPC entry (Fig. 4): answer only from the memory cache; callers
    /// charge the RPC latency themselves.
    pub fn serve_remote_search(
        &self,
        meta: &SegmentMeta,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>> {
        let mut out = self.serve_remote_search_batch(
            meta,
            &[SegmentQuery { query, k, filter, bound: None }],
            params,
        )?;
        Ok(out.pop().unwrap_or_default())
    }

    /// Batched serving RPC: a whole batch's worth of sub-queries against one
    /// segment arrives as a single request — one aliveness check, one compute
    /// charge, one residency check, one handle fetch — instead of B
    /// round-trips. Callers charge the (single) RPC latency themselves.
    pub fn serve_remote_search_batch(
        &self,
        meta: &SegmentMeta,
        queries: &[SegmentQuery<'_>],
        params: &SearchParams,
    ) -> Result<Vec<Vec<Neighbor>>> {
        let t = Stopwatch::start();
        let r = self.serve_remote_search_batch_timed(meta, queries, params);
        // `worker.rpc_ns` sums serving-RPC service time; the query log
        // reports its per-query delta as the RPC stage.
        self.metrics.counter("worker.rpc_ns").add(t.elapsed_nanos());
        r
    }

    fn serve_remote_search_batch_timed(
        &self,
        meta: &SegmentMeta,
        queries: &[SegmentQuery<'_>],
        params: &SearchParams,
    ) -> Result<Vec<Vec<Neighbor>>> {
        self.check_alive()?;
        self.cfg.compute_per_segment.charge(self.clock.as_ref(), 0);
        let mut span = self.metrics.tracer().span("rpc.serve");
        span.attr("segment", meta.id.raw());
        span.attr("queries", queries.len());
        if !self.index_cache.resident(meta.id) {
            span.attr("resident", false);
            return Err(BhError::Rpc(format!(
                "{}: segment {} not resident for serving",
                self.id, meta.id
            )));
        }
        let idx = self
            .index_cache
            .get(meta)?
            .ok_or_else(|| BhError::Internal("resident index vanished".into()))?;
        self.metrics.counter("worker.served_remote").add(queries.len() as u64);
        queries
            .iter()
            .map(|q| idx.search_with_bound(q.query, q.k, params, q.filter, q.bound))
            .collect()
    }

    /// Fetch the segment's index through the cache hierarchy (used by the
    /// post-filter executor, which drives the index iterator itself). Counts
    /// as one per-segment task for the compute-service-time model.
    pub fn index_handle(
        &self,
        meta: &SegmentMeta,
    ) -> Result<Option<Arc<dyn bh_vector::VectorIndex>>> {
        self.check_alive()?;
        self.cfg.compute_per_segment.charge(self.clock.as_ref(), 0);
        self.index_cache.get(meta)
    }

    /// Exact distance scan over the raw vector column.
    pub fn brute_force_segment(
        &self,
        table: &TableStore,
        meta: &SegmentMeta,
        query: &[f32],
        k: usize,
        filter: Option<&Bitset>,
    ) -> Result<Vec<Neighbor>> {
        self.brute_force_segment_bounded(table, meta, query, k, filter, None)
    }

    /// [`Self::brute_force_segment`] with an optional shared pruning bound:
    /// brute-force distances are exact, so rows beaten by the bound are
    /// skipped and the local k-th distance is published back.
    pub fn brute_force_segment_bounded(
        &self,
        table: &TableStore,
        meta: &SegmentMeta,
        query: &[f32],
        k: usize,
        filter: Option<&Bitset>,
        bound: Option<&SharedBound>,
    ) -> Result<Vec<Neighbor>> {
        self.check_alive()?;
        self.cfg.compute_per_segment.charge(self.clock.as_ref(), 0);
        self.brute_force_inner(table, meta, query, k, filter, bound)
    }

    /// Scan body shared by the charged entry points and the batch path
    /// (which pays the aliveness check and compute charge once per batch).
    fn brute_force_inner(
        &self,
        table: &TableStore,
        meta: &SegmentMeta,
        query: &[f32],
        k: usize,
        filter: Option<&Bitset>,
        bound: Option<&SharedBound>,
    ) -> Result<Vec<Neighbor>> {
        let idx_def = table
            .schema()
            .indexes
            .first()
            .ok_or_else(|| BhError::Plan("table has no vector column/index".into()))?;
        let metric = idx_def.spec.metric;
        let mut tk = bh_common::TopK::new(k);
        let mut skipped = 0u64;
        // Plan A's cost is s·n·c_d: with a selective filter, fetch only the
        // qualifying vectors (block-granular) instead of the whole column —
        // the "skip rows via primary keys/indices" behaviour of §II-C.
        let selective = filter
            .filter(|f| self.cfg.fine_grained_reads && f.count() * 4 < meta.row_count);
        if let Some(f) = selective {
            let offsets: Vec<u32> = f.iter().map(|o| o as u32).collect();
            let cells = self.read_cells(table, meta, &idx_def.column, &offsets)?;
            for (o, cell) in offsets.iter().zip(cells) {
                let v = cell
                    .as_vector()
                    .ok_or_else(|| BhError::Internal("vector column expected".into()))?
                    .to_vec();
                if query.len() != v.len() {
                    return Err(BhError::DimensionMismatch {
                        expected: v.len(),
                        got: query.len(),
                    });
                }
                let d = metric.distance(query, &v);
                if let Some(b) = bound {
                    if d > b.get() {
                        skipped += 1;
                        continue;
                    }
                }
                if tk.push(d, *o as u64) && tk.is_full() {
                    if let Some(b) = bound {
                        b.update(tk.threshold());
                    }
                }
            }
            if let Some(b) = bound {
                b.record_skips(skipped);
            }
            return Ok(tk
                .into_sorted()
                .into_iter()
                .map(|s| Neighbor::new(s.item, s.distance))
                .collect());
        }
        let col = self.read_column(table, meta, &idx_def.column, meta.row_count)?;
        let (data, dim) = col
            .vector_data()
            .ok_or_else(|| BhError::Internal("vector column expected".into()))?;
        if query.len() != dim {
            return Err(BhError::DimensionMismatch { expected: dim, got: query.len() });
        }
        match filter {
            Some(f) => {
                for row in 0..meta.row_count {
                    if !f.contains(row) {
                        continue;
                    }
                    let d = metric.distance(query, &data[row * dim..(row + 1) * dim]);
                    if let Some(b) = bound {
                        if d > b.get() {
                            skipped += 1;
                            continue;
                        }
                    }
                    if tk.push(d, row as u64) && tk.is_full() {
                        if let Some(b) = bound {
                            b.update(tk.threshold());
                        }
                    }
                }
            }
            None => {
                // Unfiltered brute force: batched kernel over the contiguous
                // column, in blocks that keep the distance output in L1.
                let mut dists = [0.0f32; 256];
                let mut row = 0;
                while row < meta.row_count {
                    let rows = 256.min(meta.row_count - row);
                    let block = &data[row * dim..(row + rows) * dim];
                    bh_vector::distance::distance_batch(
                        metric,
                        query,
                        block,
                        dim,
                        &mut dists[..rows],
                    )?;
                    for (r, &d) in dists[..rows].iter().enumerate() {
                        if let Some(b) = bound {
                            if d > b.get() {
                                skipped += 1;
                                continue;
                            }
                        }
                        if tk.push(d, (row + r) as u64) && tk.is_full() {
                            if let Some(b) = bound {
                                b.update(tk.threshold());
                            }
                        }
                    }
                    row += rows;
                }
            }
        }
        if let Some(b) = bound {
            b.record_skips(skipped);
        }
        Ok(tk.into_sorted().into_iter().map(|s| Neighbor::new(s.item, s.distance)).collect())
    }

    /// Read a full column through the caches. The decoded-column cache is
    /// consulted first; `query_rows` feeds the anti-thrashing bypass
    /// decision (§IV-C row limit) for both cache layers.
    pub fn read_column(
        &self,
        table: &TableStore,
        meta: &SegmentMeta,
        name: &str,
        query_rows: usize,
    ) -> Result<Arc<ColumnData>> {
        self.check_alive()?;
        // The cache itself reports `cache.column.{hit,miss}` to the registry.
        let cache_key = (meta.id, name.to_string());
        if let Some(col) = self.column_cache.get(&cache_key) {
            return Ok(col);
        }
        let def = table
            .schema()
            .column(name)
            .ok_or_else(|| BhError::NotFound(format!("column {name}")))?;
        let ty = match def.ty {
            bh_storage::value::ColumnType::Vector(0) => bh_storage::value::ColumnType::Vector(
                table.schema().index_on(name).map(|i| i.spec.dim).unwrap_or(0),
            ),
            t => t,
        };
        let store = table.remote_store();
        let mut out = ColumnData::empty(ty);
        for b in 0..meta.block_count() {
            let key = meta.block_key(name, b);
            let blob = self.block_cache.get_or_fetch(&key, BlockKind::Data, query_rows, || {
                store.get(&key)
            })?;
            out.extend_from(&ColumnData::decode_block(ty, &blob)?)?;
        }
        let out = Arc::new(out);
        if query_rows <= self.cfg.cache_row_limit {
            self.column_cache.put(cache_key, out.clone(), out.memory_bytes().max(1));
        }
        Ok(out)
    }

    /// Drop all cached decoded columns (compaction invalidation — rare, so
    /// a full clear is simpler than prefix tracking).
    pub fn invalidate_columns(&self) {
        self.column_cache.clear();
        self.decoded_blocks.clear();
    }

    /// Read specific cells of a column. With fine-grained reads enabled only
    /// the covering blocks are fetched — the §IV-C read-amplification
    /// optimization; otherwise the whole column is read.
    pub fn read_cells(
        &self,
        table: &TableStore,
        meta: &SegmentMeta,
        name: &str,
        offsets: &[u32],
    ) -> Result<Vec<bh_storage::value::Value>> {
        self.check_alive()?;
        // A decoded column in cache beats any I/O strategy.
        if let Some(col) = self.column_cache.get(&(meta.id, name.to_string())) {
            return Ok(offsets.iter().map(|&o| col.get(o as usize)).collect());
        }
        if !self.cfg.fine_grained_reads {
            let col = self.read_column(table, meta, name, offsets.len())?;
            return Ok(offsets.iter().map(|&o| col.get(o as usize)).collect());
        }
        let def = table
            .schema()
            .column(name)
            .ok_or_else(|| BhError::NotFound(format!("column {name}")))?;
        let ty = match def.ty {
            bh_storage::value::ColumnType::Vector(0) => bh_storage::value::ColumnType::Vector(
                table.schema().index_on(name).map(|i| i.spec.dim).unwrap_or(0),
            ),
            t => t,
        };
        let store = table.remote_store();
        // Group needed offsets by block, fetch each block once.
        let mut by_block: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        for &o in offsets {
            by_block.entry(ColumnData::block_of(o as usize)).or_default().push(o);
        }
        let mut cells: BTreeMap<u32, bh_storage::value::Value> = BTreeMap::new();
        for (block, offs) in by_block {
            let key = meta.block_key(name, block);
            let part: Arc<ColumnData> = match self.decoded_blocks.get(&key) {
                Some(p) => p,
                None => {
                    let blob = self.block_cache.get_or_fetch(
                        &key,
                        BlockKind::Data,
                        offsets.len(),
                        || store.get(&key),
                    )?;
                    let p = Arc::new(ColumnData::decode_block(ty, &blob)?);
                    if offsets.len() <= self.cfg.cache_row_limit {
                        self.decoded_blocks.put(key.clone(), p.clone(), p.memory_bytes().max(1));
                    }
                    p
                }
            };
            let base = block * bh_storage::column::BLOCK_ROWS;
            for o in offs {
                cells.insert(o, part.get(o as usize - base));
            }
        }
        offsets
            .iter()
            .map(|o| {
                cells.remove(o).ok_or_else(|| {
                    BhError::Internal(format!("cell for offset {o} missing after block reads"))
                })
            })
            .collect()
    }

    /// Evaluate a predicate over a segment, returning the qualifying bitset
    /// (visibility is NOT applied here; the executor composes it).
    pub fn eval_predicate(
        &self,
        table: &TableStore,
        meta: &SegmentMeta,
        predicate: &Predicate,
    ) -> Result<Bitset> {
        self.check_alive()?;
        if matches!(predicate, Predicate::True) {
            return Ok(Bitset::full(meta.row_count));
        }
        let needed = predicate.referenced_columns();
        let mut columns: BTreeMap<String, Arc<ColumnData>> = BTreeMap::new();
        for c in &needed {
            columns.insert(c.clone(), self.read_column(table, meta, c, meta.row_count)?);
        }
        let refs: BTreeMap<String, &ColumnData> =
            columns.iter().map(|(k, v)| (k.clone(), v.as_ref())).collect();
        predicate.eval_bitset(&refs, meta.row_count)
    }

    /// Exact distances for a candidate set — the refine step (`σ·k·c_d`).
    pub fn refine_distances(
        &self,
        table: &TableStore,
        meta: &SegmentMeta,
        query: &[f32],
        metric: Metric,
        candidates: &[Neighbor],
    ) -> Result<Vec<Neighbor>> {
        self.check_alive()?;
        let idx_def = table
            .schema()
            .indexes
            .first()
            .ok_or_else(|| BhError::Plan("no vector column".into()))?;
        let offsets: Vec<u32> = candidates.iter().map(|n| n.id as u32).collect();
        let cells = self.read_cells(table, meta, &idx_def.column, &offsets)?;
        let mut out = Vec::with_capacity(candidates.len());
        for (nb, cell) in candidates.iter().zip(cells) {
            let v = cell
                .as_vector()
                .ok_or_else(|| BhError::Internal("refine on non-vector cell".into()))?
                .to_vec();
            out.push(Neighbor::new(nb.id, metric.distance_checked(query, &v)?));
        }
        out.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        Ok(out)
    }

    /// Charge an RPC round-trip on this worker's clock (callers use this
    /// before invoking a peer's `serve_remote_search`).
    pub fn charge_rpc(&self, model: &LatencyModel, bytes: usize) {
        if let Some((reactor, ticket)) = self.charge_rpc_begin(model, bytes) {
            reactor.wait(ticket);
        }
    }

    /// Start charging an RPC round-trip. With `overlap` enabled the cost is
    /// submitted to this worker's reactor and the returned ticket lets the
    /// caller overlap the wire time with the peer's compute — `wait` the
    /// ticket once the response is needed. Without a reactor the charge
    /// happens synchronously here and `None` is returned (nothing to wait).
    pub fn charge_rpc_begin(
        &self,
        model: &LatencyModel,
        bytes: usize,
    ) -> Option<(Arc<bh_common::Reactor>, bh_common::Ticket)> {
        self.metrics.counter("worker.rpc_calls").inc();
        match &self.reactor {
            Some(r) => Some((r.clone(), r.submit(model.cost(bytes)))),
            None => {
                model.charge(self.clock.as_ref(), bytes);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_common::ids::IdGenerator;
    use bh_common::VirtualClock;
    use bh_storage::objectstore::InMemoryObjectStore;
    use bh_storage::schema::TableSchema;
    use bh_storage::table::{TableStoreConfig, TableStore};
    use bh_storage::value::{ColumnType, Value};
    use bh_vector::IndexKind;

    fn table(n: usize) -> Arc<TableStore> {
        let schema = TableSchema::new("t")
            .with_column("id", ColumnType::UInt64)
            .with_column("label", ColumnType::Str)
            .with_column("emb", ColumnType::Vector(4))
            .with_vector_index("i", "emb", IndexKind::Hnsw, 4, bh_vector::Metric::L2);
        // Share one metrics registry between the store and the table so
        // tests can observe object-store fetch counts.
        let metrics = MetricsRegistry::new();
        let ts = TableStore::new(
            schema,
            Arc::new(InMemoryObjectStore::new(
                VirtualClock::shared(),
                bh_common::LatencyModel::ZERO,
                metrics.clone(),
                "test-store",
            )),
            Arc::new(IndexRegistry::with_builtins()),
            TableStoreConfig { segment_max_rows: 4096, ..Default::default() },
            Arc::new(IdGenerator::new()),
            metrics,
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                vec![
                    Value::UInt64(i as u64),
                    Value::Str(format!("l{}", i % 3)),
                    Value::Vector(vec![i as f32; 4]),
                ]
            })
            .collect();
        ts.insert_rows(rows).unwrap();
        Arc::new(ts)
    }

    fn worker(table: &TableStore, cfg: WorkerConfig) -> Worker {
        Worker::new(
            WorkerId(0),
            cfg,
            table.remote_store().clone(),
            None,
            table.registry().clone(),
            VirtualClock::shared(),
            table.metrics().clone(),
        )
    }

    #[test]
    fn search_fallbacks_to_brute_force_then_uses_index() {
        let t = table(200);
        let w = worker(&t, WorkerConfig::default());
        let meta = t.segments()[0].clone();
        let q = vec![5.0; 4];
        let params = SearchParams::default();

        // Cold: brute force.
        let cold = w.search_segment(&t, &meta, &q, 3, &params, None).unwrap();
        assert_eq!(cold[0].id, 5);
        assert_eq!(t.metrics().counter_value("worker.brute_force"), 1);

        // Warm the cache, then search locally.
        w.warm_index(&meta).unwrap();
        assert!(w.index_resident(&meta));
        let warm = w.search_segment(&t, &meta, &q, 3, &params, None).unwrap();
        assert_eq!(warm[0].id, 5);
        assert_eq!(t.metrics().counter_value("worker.local_search"), 1);
    }

    #[test]
    fn tiered_loading_serves_head_before_body() {
        let t = table(400);
        let w = worker(&t, WorkerConfig { tiered_loading: true, ..Default::default() });
        let meta = t.segments()[0].clone();
        assert!(meta.index_head_bytes > 0, "default config persists tiered blobs");
        let q = vec![5.0; 4];
        let params = SearchParams::default();

        // Cold: served from the head-only partial, not brute force.
        let cold = w.search_segment(&t, &meta, &q, 3, &params, None).unwrap();
        assert!(!cold.is_empty());
        assert_eq!(t.metrics().counter_value("worker.head_search"), 1);
        assert_eq!(t.metrics().counter_value("worker.brute_force"), 0);
        assert!(!w.index_resident(&meta), "head serving is not residency");

        // Once the full index lands, searches upgrade and recall is back.
        w.warm_index(&meta).unwrap();
        let warm = w.search_segment(&t, &meta, &q, 3, &params, None).unwrap();
        assert_eq!(warm[0].id, 5);
        assert_eq!(t.metrics().counter_value("worker.local_search"), 1);
    }

    #[test]
    fn tiered_loading_off_keeps_brute_force_fallback() {
        let t = table(400);
        let w = worker(&t, WorkerConfig::default());
        let meta = t.segments()[0].clone();
        let cold =
            w.search_segment(&t, &meta, &[5.0; 4], 3, &SearchParams::default(), None).unwrap();
        assert_eq!(cold[0].id, 5, "brute force is exact");
        assert_eq!(t.metrics().counter_value("worker.brute_force"), 1);
        assert_eq!(t.metrics().counter_value("worker.head_search"), 0);
    }

    #[test]
    fn overlapped_rpc_charge_matches_blocking_when_sequential() {
        let t = table(50);
        let model = bh_common::LatencyModel::fixed(std::time::Duration::from_micros(100));
        let elapsed = |overlap: bool| {
            let clock = VirtualClock::shared();
            let w = Worker::new(
                WorkerId(0),
                WorkerConfig { overlap, ..Default::default() },
                t.remote_store().clone(),
                None,
                t.registry().clone(),
                clock.clone(),
                MetricsRegistry::new(),
            );
            w.charge_rpc(&model, 10);
            w.charge_rpc(&model, 10);
            clock.now_nanos()
        };
        assert_eq!(elapsed(false), 200_000);
        assert_eq!(elapsed(true), 200_000, "sequential charges are time-identical");
    }

    #[test]
    fn serving_rpc_requires_residency() {
        let t = table(100);
        let w = worker(&t, WorkerConfig::default());
        let meta = t.segments()[0].clone();
        let q = vec![1.0; 4];
        let params = SearchParams::default();
        assert!(matches!(
            w.serve_remote_search(&meta, &q, 2, &params, None),
            Err(BhError::Rpc(_))
        ));
        w.warm_index(&meta).unwrap();
        let got = w.serve_remote_search(&meta, &q, 2, &params, None).unwrap();
        assert_eq!(got[0].id, 1);
        assert_eq!(t.metrics().counter_value("worker.served_remote"), 1);
    }

    #[test]
    fn killed_worker_rejects_everything_and_recovers_cold() {
        let t = table(50);
        let w = worker(&t, WorkerConfig::default());
        let meta = t.segments()[0].clone();
        w.warm_index(&meta).unwrap();
        w.kill();
        assert!(!w.is_alive());
        let q = vec![0.0; 4];
        let params = SearchParams::default();
        let err = w.search_segment(&t, &meta, &q, 1, &params, None).unwrap_err();
        assert!(err.is_retryable());
        assert!(w.warm_index(&meta).is_err());
        w.recover();
        assert!(w.is_alive());
        assert!(!w.index_resident(&meta), "recovered worker starts cold");
    }

    #[test]
    fn read_cells_fine_grained_fetches_fewer_blocks() {
        let t = table(5000); // ~5 blocks of 1024
        let meta = t.segments()[0].clone();
        let offs = vec![0u32, 1, 2]; // single block
        let m_fine = {
            let w = worker(&t, WorkerConfig { fine_grained_reads: true, ..Default::default() });
            let before = t.metrics().counter_value("test-store.get");
            let cells = w.read_cells(&t, &meta, "id", &offs).unwrap();
            assert_eq!(cells[2], Value::UInt64(2));
            t.metrics().counter_value("test-store.get") - before
        };
        let m_coarse = {
            let w = worker(&t, WorkerConfig { fine_grained_reads: false, ..Default::default() });
            let before = t.metrics().counter_value("test-store.get");
            let cells = w.read_cells(&t, &meta, "id", &offs).unwrap();
            assert_eq!(cells[2], Value::UInt64(2));
            t.metrics().counter_value("test-store.get") - before
        };
        assert!(
            m_fine < m_coarse,
            "fine-grained ({m_fine} fetches) must beat coarse ({m_coarse})"
        );
        assert_eq!(m_fine, 1, "3 adjacent cells live in one block");
    }

    #[test]
    fn predicate_eval_and_refine() {
        let t = table(300);
        let w = worker(&t, WorkerConfig::default());
        let meta = t.segments()[0].clone();
        let p = Predicate::eq("label", Value::Str("l0".into()));
        let bits = w.eval_predicate(&t, &meta, &p).unwrap();
        assert_eq!(bits.count(), 100);
        // Filtered brute force returns only l0 rows (offsets ≡ 0 mod 3).
        let got = w.brute_force_segment(&t, &meta, &[4.0; 4], 5, Some(&bits)).unwrap();
        for nb in &got {
            assert_eq!(nb.id % 3, 0);
        }
        // Refine recomputes exact distances in sorted order.
        let refined = w
            .refine_distances(&t, &meta, &[4.0; 4], bh_vector::Metric::L2, &got)
            .unwrap();
        assert_eq!(refined.len(), got.len());
        for w2 in refined.windows(2) {
            assert!(w2[0].distance <= w2[1].distance);
        }
        assert_eq!(refined[0].id, 3, "closest l0 row to [4,4,4,4] is offset 3");
    }

    #[test]
    fn true_predicate_shortcuts_without_reads() {
        let t = table(100);
        let w = worker(&t, WorkerConfig::default());
        let meta = t.segments()[0].clone();
        let before = t.metrics().counter_value("test-store.get");
        let bits = w.eval_predicate(&t, &meta, &Predicate::True).unwrap();
        assert!(bits.is_all_set());
        assert_eq!(t.metrics().counter_value("test-store.get"), before);
    }

    #[test]
    fn block_cache_serves_repeat_reads() {
        let t = table(2000);
        let w = worker(&t, WorkerConfig::default());
        let meta = t.segments()[0].clone();
        w.read_column(&t, &meta, "id", 10).unwrap();
        let before = t.metrics().counter_value("test-store.get");
        w.read_column(&t, &meta, "id", 10).unwrap();
        assert_eq!(
            t.metrics().counter_value("test-store.get"),
            before,
            "second read must be fully cached"
        );
    }
}
