//! `cargo xtask bench-diff` — compare freshly generated benchmark JSON
//! against the committed `BENCH_*.json` files at the workspace root.
//!
//! Benchmark harnesses (e.g. `cargo bench -p bh-bench --bench pq_fastscan`)
//! drop their results into `target/bench-fresh/BENCH_<name>.json` using the
//! same schema as the committed file. This task walks both JSON trees in
//! lockstep and compares every numeric latency field — any key ending in
//! `_ns` or `_ns_per_row` (lower is better) — reporting the relative change.
//! A fresh value more than `threshold` percent *slower* than the committed
//! one is a regression and fails the task.
//!
//! Fields that are derived from latencies (`speedup`, recall, counts) are
//! ignored: they would double-count the underlying numbers. Committed files
//! with no fresh counterpart are skipped with a note (not every harness runs
//! on every machine), as are fresh files with no committed baseline (a new
//! benchmark has nothing to regress against).
//!
//! Like the rest of xtask this is dependency-free: it carries its own
//! minimal JSON reader rather than pulling `serde_json` into the
//! bootstrap path.

use std::fmt;
use std::fs;
use std::path::Path;

/// Default regression gate: fresh latency > committed × (1 + 15%).
pub const DEFAULT_THRESHOLD_PCT: f64 = 15.0;

/// One latency-field comparison between a fresh and a committed file.
pub struct Comparison {
    /// `file :: json.path.to.field` (array elements labelled by their
    /// identifying fields where present).
    pub path: String,
    pub committed: f64,
    pub fresh: f64,
    /// Relative change in percent; positive = slower (for throughput
    /// fields the sign is already inverted so this convention holds).
    pub change_pct: f64,
    pub regressed: bool,
    /// Display unit of the raw values: "ns" for latency, "qps" for
    /// throughput.
    pub unit: &'static str,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.regressed { "REGRESSED" } else { "ok" };
        write!(
            f,
            "{:9} {:+7.1}%  {:>10.1} -> {:>10.1} {}  {}",
            tag, self.change_pct, self.committed, self.fresh, self.unit, self.path
        )
    }
}

/// Compare every `BENCH_*.json` in `fresh_dir` against its committed
/// counterpart directly under `root`. Returns all latency comparisons plus
/// human-readable notes for skipped files.
pub fn diff_benchmarks(
    root: &Path,
    fresh_dir: &Path,
    threshold_pct: f64,
) -> Result<(Vec<Comparison>, Vec<String>), String> {
    let mut comparisons = Vec::new();
    let mut notes = Vec::new();
    if !fresh_dir.is_dir() {
        notes.push(format!(
            "no fresh results: {} does not exist (run a bench harness first)",
            fresh_dir.display()
        ));
        return Ok((comparisons, notes));
    }
    let mut entries: Vec<_> = fs::read_dir(fresh_dir)
        .map_err(|e| format!("read {}: {e}", fresh_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    entries.sort();
    if entries.is_empty() {
        notes.push(format!("no BENCH_*.json files in {}", fresh_dir.display()));
        return Ok((comparisons, notes));
    }
    for fresh_path in entries {
        let name = fresh_path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
        let committed_path = root.join(name);
        if !committed_path.is_file() {
            notes.push(format!("{name}: no committed baseline at workspace root, skipping"));
            continue;
        }
        let committed = load_json(&committed_path)?;
        let fresh = load_json(&fresh_path)?;
        let before = comparisons.len();
        walk(name, &committed, &fresh, threshold_pct, &mut comparisons);
        if comparisons.len() == before {
            notes.push(format!("{name}: no matching latency fields found"));
        }
    }
    Ok((comparisons, notes))
}

fn load_json(path: &Path) -> Result<Json, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Latency fields are minimized; everything else (speedups, recalls, row
/// counts, dates) is ignored.
fn is_latency_key(key: &str) -> bool {
    key.ends_with("_ns") || key.ends_with("_ns_per_row") || key.ends_with("_ns_per_op")
}

/// Throughput fields are maximized: the regression direction inverts
/// (fresh *lower* than committed is the slowdown).
fn is_throughput_key(key: &str) -> bool {
    key.ends_with("_qps")
}

/// Walk committed and fresh trees in lockstep. Objects match by key, arrays
/// by index (benchmark files keep a stable case order); mismatched shapes
/// are silently skipped — the diff only speaks about fields both sides have.
fn walk(path: &str, committed: &Json, fresh: &Json, threshold_pct: f64, out: &mut Vec<Comparison>) {
    match (committed, fresh) {
        (Json::Obj(ck), Json::Obj(fk)) => {
            for (key, cv) in ck {
                if let Some((_, fv)) = fk.iter().find(|(k, _)| k == key) {
                    if let (Json::Num(c), Json::Num(f)) = (cv, fv) {
                        if is_latency_key(key) && *c > 0.0 {
                            let change_pct = (f - c) / c * 100.0;
                            out.push(Comparison {
                                path: format!("{path}.{key}"),
                                committed: *c,
                                fresh: *f,
                                change_pct,
                                regressed: change_pct > threshold_pct,
                                unit: "ns",
                            });
                        } else if is_throughput_key(key) && *f > 0.0 {
                            // Throughput inverts: report the slowdown implied
                            // by the rate change, positive = slower, so one
                            // sign convention covers both field families.
                            let change_pct = (c / f - 1.0) * 100.0;
                            out.push(Comparison {
                                path: format!("{path}.{key}"),
                                committed: *c,
                                fresh: *f,
                                change_pct,
                                regressed: change_pct > threshold_pct,
                                unit: "qps",
                            });
                        }
                    } else {
                        walk(&format!("{path}.{key}"), cv, fv, threshold_pct, out);
                    }
                }
            }
        }
        (Json::Arr(ca), Json::Arr(fa)) => {
            for (i, (cv, fv)) in ca.iter().zip(fa).enumerate() {
                let label = element_label(cv).unwrap_or_else(|| i.to_string());
                walk(&format!("{path}[{label}]"), cv, fv, threshold_pct, out);
            }
        }
        _ => {}
    }
}

/// Human-readable label for an array element: its identifying fields
/// (`kernel`/`name`/`case` plus `dim`) when it is an object that has them.
fn element_label(v: &Json) -> Option<String> {
    let Json::Obj(kv) = v else { return None };
    let get = |want: &str| {
        kv.iter().find(|(k, _)| k == want).map(|(_, v)| match v {
            Json::Str(s) => s.clone(),
            Json::Num(n) => format!("{n}"),
            _ => String::new(),
        })
    };
    let id = get("kernel").or_else(|| get("name")).or_else(|| get("case"))?;
    match get("dim") {
        Some(d) => Some(format!("{id},dim={d}")),
        None => Some(id),
    }
}

// ------------------------------------------------------------- mini JSON

/// Just enough JSON to read the benchmark files.
pub enum Json {
    Null,
    // The diff only reads numbers; the bool value is parsed for
    // completeness but never inspected.
    Bool(#[allow(dead_code)] bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser { b: text.as_bytes(), i: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.b.get(self.i).copied().ok_or_else(|| "unexpected end of JSON".to_string())
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? != c {
            return Err(format!("expected '{}' at byte {}", c as char, self.i));
        }
        self.i += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'n' => self.keyword("null", Json::Null),
            b't' => self.keyword("true", Json::Bool(true)),
            b'f' => self.keyword("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => {
                self.i += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.i += 1,
                        b']' => {
                            self.i += 1;
                            return Ok(Json::Arr(items));
                        }
                        c => return Err(format!("bad array separator '{}'", c as char)),
                    }
                }
            }
            b'{' => {
                self.i += 1;
                let mut kv = Vec::new();
                if self.peek()? == b'}' {
                    self.i += 1;
                    return Ok(Json::Obj(kv));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.eat(b':')?;
                    kv.push((k, self.value()?));
                    match self.peek()? {
                        b',' => self.i += 1,
                        b'}' => {
                            self.i += 1;
                            return Ok(Json::Obj(kv));
                        }
                        c => return Err(format!("bad object separator '{}'", c as char)),
                    }
                }
            }
            _ => {
                self.skip_ws();
                let start = self.i;
                while self.i < self.b.len()
                    && matches!(self.b[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    self.i += 1;
                }
                let lit = std::str::from_utf8(&self.b[start..self.i])
                    .map_err(|e| e.to_string())?;
                lit.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number '{lit}'"))
            }
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.b.get(self.i).ok_or("unterminated string")?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.b.get(self.i).ok_or("unterminated escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.b.get(self.i..self.i + 4).ok_or("short \\u escape")?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad codepoint")?);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                c if c >= 0x80 => {
                    // Copy the full UTF-8 sequence through.
                    let start = self.i - 1;
                    while self.i < self.b.len() && self.b[self.i] & 0xC0 == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?,
                    );
                }
                c => out.push(c as char),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(dir: &Path, name: &str, body: &str) {
        fs::create_dir_all(dir).unwrap();
        fs::write(dir.join(name), body).unwrap();
    }

    fn tmp_root(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("bh-bench-diff-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn flags_regressions_over_threshold_only() {
        let root = tmp_root("flags");
        let fresh = root.join("fresh");
        fixture(
            &root,
            "BENCH_x.json",
            r#"{"cases":[{"kernel":"l2","dim":128,"scalar_ns":100.0,"fast_ns":10.0,"speedup":10.0}]}"#,
        );
        fixture(
            &fresh,
            "BENCH_x.json",
            r#"{"cases":[{"kernel":"l2","dim":128,"scalar_ns":105.0,"fast_ns":20.0,"speedup":5.2}]}"#,
        );
        let (cmp, _) = diff_benchmarks(&root, &fresh, 15.0).unwrap();
        // Two latency fields compared; speedup ignored.
        assert_eq!(cmp.len(), 2);
        let scalar = cmp.iter().find(|c| c.path.contains("scalar_ns")).unwrap();
        let fast = cmp.iter().find(|c| c.path.contains("fast_ns")).unwrap();
        assert!(!scalar.regressed, "+5% is under the 15% gate");
        assert!(fast.regressed, "+100% must regress");
        assert!(fast.path.contains("l2,dim=128"), "path was {}", fast.path);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn throughput_keys_invert_regression_direction() {
        let root = tmp_root("qps");
        let fresh = root.join("fresh");
        fixture(
            &root,
            "BENCH_b.json",
            r#"{"results":[{"batch":8,"sequential_qps":1000.0,"batched_qps":4000.0,"op_ns_per_op":50.0}]}"#,
        );
        fixture(
            &fresh,
            "BENCH_b.json",
            r#"{"results":[{"batch":8,"sequential_qps":1100.0,"batched_qps":2000.0,"op_ns_per_op":80.0}]}"#,
        );
        let (cmp, _) = diff_benchmarks(&root, &fresh, 15.0).unwrap();
        assert_eq!(cmp.len(), 3);
        let seq = cmp.iter().find(|c| c.path.contains("sequential_qps")).unwrap();
        let bat = cmp.iter().find(|c| c.path.contains("batched_qps")).unwrap();
        let op = cmp.iter().find(|c| c.path.contains("op_ns_per_op")).unwrap();
        assert!(!seq.regressed, "faster throughput must not regress");
        assert!(seq.change_pct < 0.0, "sign convention: faster is negative");
        assert!(bat.regressed, "halved throughput must regress");
        assert!((bat.change_pct - 100.0).abs() < 1e-9, "4000->2000 qps is a +100% slowdown");
        assert_eq!(bat.unit, "qps");
        assert!(op.regressed, "_ns_per_op is a latency key; +60% must regress");
        assert_eq!(op.unit, "ns");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_baseline_or_fresh_dir_is_a_note_not_an_error() {
        let root = tmp_root("missing");
        let (cmp, notes) = diff_benchmarks(&root, &root.join("nope"), 15.0).unwrap();
        assert!(cmp.is_empty());
        assert_eq!(notes.len(), 1);
        let fresh = root.join("fresh");
        fixture(&fresh, "BENCH_new.json", r#"{"a_ns": 1.0}"#);
        let (cmp, notes) = diff_benchmarks(&root, &fresh, 15.0).unwrap();
        assert!(cmp.is_empty());
        assert!(notes[0].contains("no committed baseline"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn parser_reads_committed_bench_schema() {
        let v = parse_json(
            r#"{"benchmark":"x","machine":{"cores":1},"rows":[{"dim":64,"scalar_ns":40.8}],"ok":true,"none":null}"#,
        )
        .unwrap();
        let Json::Obj(kv) = v else { panic!("expected object") };
        assert_eq!(kv.len(), 5);
        assert!(matches!(kv.iter().find(|(k, _)| k == "ok"), Some((_, Json::Bool(true)))));
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{\"a\": }").is_err());
    }
}
