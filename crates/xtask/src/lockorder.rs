//! Rule 8: cross-crate lock-order static analysis (`lock-order`).
//!
//! The runtime half of the lock discipline (`bh_common::sync`) panics on the
//! first *executed* rank inversion; this pass finds inversions the test suite
//! never executes. It rebuilds the class-level acquisition graph from source:
//!
//! 1. parse the one in-tree rank table out of `crates/common/src/sync.rs`
//!    (the `lock_rank_table!` invocation — names and ranks);
//! 2. map lock *fields* to classes at their construction sites
//!    (`Mutex::new(&classes::NAME, ..)` / `RwLock::new(&classes::NAME, ..)`);
//! 3. walk every function's code channel tracking which guards are live
//!    (let-bound guards until their block closes or `drop(g)`, temporaries
//!    until the end of their statement) and record an edge `held -> acquired`
//!    for every acquisition nested inside another;
//! 4. merge the edges from all crates into one graph and fail on any edge
//!    that does not strictly increase in rank, plus any cycle.
//!
//! The tracker is deliberately an over-approximation of *syntactic* nesting
//! within one function: it does not follow calls (a callee's locks are its
//! own edges) and it may hold a `let`-bound guard slightly longer than NLL
//! would. It resolves receivers through the per-file field map, so locks it
//! cannot attribute to a class (locals, foreign fields) are skipped rather
//! than guessed. `#[cfg(test)]` regions are exempt — tests seed deliberate
//! inversions to prove the runtime catches them.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::lint::{allow_reason_missing, allowed, sanitize, test_mask, Finding, LineView, Rule};

/// The lock-rank table parsed from `bh_common::sync`.
#[derive(Debug, Default)]
pub struct RankTable {
    ranks: BTreeMap<String, u32>,
}

impl RankTable {
    pub fn rank(&self, class: &str) -> Option<u32> {
        self.ranks.get(class).copied()
    }

    /// Number of classes in the table (test-only diagnostics).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.ranks.len()
    }
}

/// Parse the `lock_rank_table! { NAME = rank, .. }` invocation out of the
/// sync module's source. Returns `None` when no invocation is found (the
/// macro *definition* arms use parentheses and are skipped).
pub fn parse_rank_table(sync_src: &str) -> Option<RankTable> {
    let lines = sanitize(sync_src);
    let mut table = RankTable::default();
    let mut in_body = false;
    for view in &lines {
        let code = view.code.trim();
        if !in_body {
            if let Some(pos) = code.find("lock_rank_table!") {
                let rest = code[pos + "lock_rank_table!".len()..].trim_start();
                if rest.starts_with('{') {
                    in_body = true;
                }
            }
            continue;
        }
        if code.starts_with('}') {
            break;
        }
        let entry = code.trim_end_matches(',');
        if let Some((name, rank)) = entry.split_once('=') {
            let name = name.trim();
            let rank = rank.trim();
            if !name.is_empty()
                && name.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
            {
                if let Ok(r) = rank.parse::<u32>() {
                    table.ranks.insert(name.to_string(), r);
                }
            }
        }
    }
    (!table.ranks.is_empty()).then_some(table)
}

// ------------------------------------------------------------ per-file scan

/// A nested acquisition observed in source: while a guard of `held` was
/// live, a lock of class `acquired` was taken at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    pub held: String,
    pub acquired: String,
    pub file: String,
    pub line: usize,
}

/// Join the code channel into one scannable text with line-start offsets.
fn join_code(lines: &[LineView]) -> (String, Vec<usize>) {
    let mut text = String::new();
    let mut starts = Vec::with_capacity(lines.len());
    for v in lines {
        starts.push(text.len());
        text.push_str(&v.code);
        text.push('\n');
    }
    (text, starts)
}

fn line_of(starts: &[usize], pos: usize) -> usize {
    starts.partition_point(|&s| s <= pos).saturating_sub(1)
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The identifier ending at byte `end` (exclusive), if any.
fn ident_before(text: &str, end: usize) -> Option<&str> {
    let bytes = text.as_bytes();
    let mut s = end;
    while s > 0 && is_ident(bytes[s - 1]) {
        s -= 1;
    }
    (s < end && !bytes[s].is_ascii_digit()).then(|| &text[s..end])
}

/// Map lock-carrying field/variable names to class names for one file, from
/// `Mutex::new(&..classes::NAME, ..)` construction sites. Names bound to two
/// different classes in the same file are dropped as ambiguous.
fn field_classes(
    text: &str,
    starts: &[usize],
    tests: &[bool],
    table: &RankTable,
) -> HashMap<String, String> {
    let bytes = text.as_bytes();
    let mut map: HashMap<String, String> = HashMap::new();
    let mut ambiguous: BTreeSet<String> = BTreeSet::new();
    for ctor in ["Mutex::new(", "RwLock::new("] {
        let mut from = 0usize;
        while let Some(pos) = text[from..].find(ctor) {
            let at = from + pos;
            from = at + ctor.len();
            // `Mutex` must be a whole path segment, not e.g. `MyMutex`.
            if at > 0 && is_ident(bytes[at - 1]) {
                continue;
            }
            if tests[line_of(starts, at)] {
                continue;
            }
            // First argument must be `&<path>::classes::NAME`.
            let mut j = at + ctor.len();
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) != Some(&b'&') {
                continue;
            }
            j += 1;
            let mut segs: Vec<&str> = Vec::new();
            loop {
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                let s = j;
                while j < bytes.len() && is_ident(bytes[j]) {
                    j += 1;
                }
                if j == s {
                    break;
                }
                segs.push(&text[s..j]);
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                if text[j..].starts_with("::") {
                    j += 2;
                } else {
                    break;
                }
            }
            let class = match segs.as_slice() {
                [.., parent, name] if *parent == "classes" => *name,
                _ => continue,
            };
            if table.rank(class).is_none() {
                continue;
            }
            // The name this lock is bound to: walk back over the constructor
            // path (`bh_common::sync::Mutex`), then either `name =` (a let or
            // assignment) or the nearest `field:` going left.
            let mut p = at;
            loop {
                let before = text[..p].trim_end();
                if !before.ends_with("::") {
                    break;
                }
                let upto = text[..before.len() - 2].trim_end();
                match ident_before(upto, upto.len()) {
                    Some(seg) => p = upto.len() - seg.len(),
                    None => break,
                }
            }
            let prefix = text[..p].trim_end();
            let name = if let Some(lhs) = prefix.strip_suffix('=') {
                let lhs = lhs.trim_end();
                ident_before(lhs, lhs.len()).map(str::to_string)
            } else {
                nearest_field_name(prefix)
            };
            let Some(name) = name else { continue };
            match map.get(&name) {
                Some(existing) if existing != class => {
                    ambiguous.insert(name.clone());
                }
                _ => {
                    map.insert(name, class.to_string());
                }
            }
        }
    }
    for name in ambiguous {
        map.remove(&name);
    }
    map
}

/// Nearest `ident:` (single colon) scanning left in `prefix`, bounded to the
/// current statement-ish region. Handles construction sites nested in
/// expressions, e.g. `slots: (0..n).map(|_| Mutex::new(..)).collect()`.
fn nearest_field_name(prefix: &str) -> Option<String> {
    let bytes = prefix.as_bytes();
    let lo = prefix.len().saturating_sub(300);
    let mut i = prefix.len();
    while i > lo {
        i -= 1;
        if bytes[i] == b';' {
            return None;
        }
        if bytes[i] != b':' {
            continue;
        }
        // Skip `::` path separators.
        if i > 0 && bytes[i - 1] == b':' {
            i -= 1;
            continue;
        }
        if prefix[i + 1..].trim_start().starts_with(':') {
            continue;
        }
        let end = prefix[..i].trim_end().len();
        return ident_before(prefix, end).map(str::to_string);
    }
    None
}

/// One live guard on the tracker's stack.
#[derive(Debug)]
struct LiveGuard {
    class: String,
    /// Brace depth at acquisition.
    depth: usize,
    /// Variable the guard is bound to (for `drop(var)`).
    var: Option<String>,
    /// Temporary (statement-scoped) rather than let-bound.
    temp: bool,
}

const ACQ_TOKENS: &[&str] =
    &[".lock_checked()", ".read_checked()", ".write_checked()", ".lock()", ".read()", ".write()"];

/// Scan one file and append its nested-acquisition edges.
#[allow(clippy::too_many_arguments)]
fn scan_file(
    rel: &str,
    lines: &[LineView],
    text: &str,
    starts: &[usize],
    tests: &[bool],
    fields: &HashMap<String, String>,
    edges: &mut BTreeSet<Edge>,
    findings: &mut Vec<Finding>,
) {
    let bytes = text.as_bytes();
    let mut stack: Vec<LiveGuard> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                depth += 1;
                i += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                // Let-bound guards die with their block; temporaries die when
                // their compound statement (`if let`, `match`, closure arg)
                // returns to their depth.
                stack.retain(|g| if g.temp { g.depth < depth } else { g.depth <= depth });
                i += 1;
            }
            b';' => {
                stack.retain(|g| !(g.temp && g.depth >= depth));
                i += 1;
            }
            b'd' if text[i..].starts_with("drop")
                && (i == 0 || !is_ident(bytes[i - 1]))
                && !is_ident(*bytes.get(i + 4).unwrap_or(&b' ')) =>
            {
                // `drop(var)` releases the named guard.
                let mut j = i + 4;
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                if bytes.get(j) == Some(&b'(') {
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    let s = j;
                    while j < bytes.len() && is_ident(bytes[j]) {
                        j += 1;
                    }
                    let var = &text[s..j];
                    if !var.is_empty() {
                        if let Some(at) =
                            stack.iter().rposition(|g| g.var.as_deref() == Some(var))
                        {
                            stack.remove(at);
                        }
                    }
                }
                i += 4;
            }
            b'.' => {
                let Some(tok) = ACQ_TOKENS.iter().find(|t| text[i..].starts_with(**t)) else {
                    i += 1;
                    continue;
                };
                let line = line_of(starts, i);
                if tests[line] {
                    i += tok.len();
                    continue;
                }
                let Some(class) = receiver_class(text, i, fields) else {
                    i += tok.len();
                    continue;
                };
                if allowed(lines, line, "lock-order") {
                    if let Some(at) = allow_reason_missing(lines, line, "lock-order") {
                        findings.push(Finding {
                            file: rel.to_string(),
                            line: at + 1,
                            rule: Rule::EmptyAllowReason,
                            msg: "`lint: allow(lock-order)` must state why this nesting \
                                  cannot deadlock"
                                .into(),
                        });
                    }
                    i += tok.len();
                    continue;
                }
                for held in &stack {
                    edges.insert(Edge {
                        held: held.class.clone(),
                        acquired: class.clone(),
                        file: rel.to_string(),
                        line: line + 1,
                    });
                }
                let (temp, var) = binding_of(text, i, tok.len());
                stack.push(LiveGuard { class, depth, var, temp });
                i += tok.len();
            }
            _ => i += 1,
        }
    }
}

/// Resolve the receiver of an acquisition at `dot` (the `.` of `.lock()`)
/// to a lock class: the trailing identifier of the receiver chain, looked up
/// in the file's field map. `self.slots[i].lock()` resolves through the
/// index expression to `slots`.
fn receiver_class(text: &str, dot: usize, fields: &HashMap<String, String>) -> Option<String> {
    let bytes = text.as_bytes();
    let mut p = dot;
    while p > 0 && bytes[p - 1].is_ascii_whitespace() {
        p -= 1;
    }
    if p > 0 && bytes[p - 1] == b']' {
        let mut depth = 0usize;
        while p > 0 {
            p -= 1;
            match bytes[p] {
                b']' => depth += 1,
                b'[' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    let ident = ident_before(text, p)?;
    fields.get(ident).cloned()
}

/// Classify an acquisition as let-bound (held to end of block) or temporary
/// (held to end of statement), and name its binding when let-bound. A guard
/// is only block-scoped when the acquisition is the *entire* right-hand side
/// of a `let` or assignment — `let g = m.lock();` binds the guard, while
/// `let n = m.lock().len();` binds the length and drops the guard at `;`.
fn binding_of(text: &str, dot: usize, tok_len: usize) -> (bool, Option<String>) {
    let bytes = text.as_bytes();
    let mut j = dot + tok_len;
    if bytes.get(j) == Some(&b'?') {
        j += 1;
    }
    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
        j += 1;
    }
    if bytes.get(j) != Some(&b';') {
        return (true, None);
    }
    // Statement prefix: back to the previous `;`, `{` or `}`.
    let stmt = text[..dot]
        .rfind([';', '{', '}'])
        .map(|s| &text[s + 1..dot])
        .unwrap_or(&text[..dot]);
    let has = |needle: &str| {
        let mut from = 0;
        while let Some(pos) = stmt[from..].find(needle) {
            let at = from + pos;
            let l_ok = at == 0 || !is_ident(stmt.as_bytes()[at - 1]);
            let r_ok = !stmt.as_bytes().get(at + needle.len()).copied().map(is_ident).unwrap_or(false);
            if l_ok && r_ok {
                return Some(at);
            }
            from = at + needle.len();
        }
        None
    };
    // `if let` / `while let` / `match` scrutinee temporaries are statement
    // scoped, not block scoped (and `;` never directly follows them anyway).
    if has("if").is_some() || has("while").is_some() || has("match").is_some() {
        return (true, None);
    }
    if let Some(at) = has("let") {
        let mut rest = stmt[at + 3..].trim_start();
        rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let end = rest.bytes().position(|b| !is_ident(b)).unwrap_or(rest.len());
        if end > 0 {
            return (false, Some(rest[..end].to_string()));
        }
        return (false, None);
    }
    // Plain re-assignment: `g = m.lock();`.
    if let Some(eq) = stmt.find('=') {
        let lhs = stmt[..eq].trim();
        if !lhs.is_empty() && lhs.bytes().all(is_ident) {
            return (false, Some(lhs.to_string()));
        }
    }
    (true, None)
}

// ------------------------------------------------------------------- verdict

/// Run the full analysis over `(rel_path, content)` pairs.
pub fn check(files: &[(String, String)], table: &RankTable) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut edges: BTreeSet<Edge> = BTreeSet::new();
    for (rel, content) in files {
        if rel == "crates/common/src/sync.rs" {
            continue; // the wrappers' own internals have no classes
        }
        let lines = sanitize(content);
        let tests = test_mask(&lines);
        let (text, starts) = join_code(&lines);
        let fields = field_classes(&text, &starts, &tests, table);
        if fields.is_empty() {
            // Receivers resolve through this file's construction sites; with
            // none mapped, no acquisition here can be attributed to a class.
            continue;
        }
        scan_file(rel, &lines, &text, &starts, &tests, &fields, &mut edges, &mut findings);
    }

    // Rank check: every recorded nesting must strictly increase.
    for e in &edges {
        let (Some(rh), Some(ra)) = (table.rank(&e.held), table.rank(&e.acquired)) else {
            continue;
        };
        if e.held == e.acquired {
            findings.push(Finding {
                file: e.file.clone(),
                line: e.line,
                rule: Rule::LockOrder,
                msg: format!(
                    "lock-order inversion: `{}` acquired while a guard of the same class \
                     is already held (self-deadlock)",
                    e.acquired
                ),
            });
        } else if rh >= ra {
            findings.push(Finding {
                file: e.file.clone(),
                line: e.line,
                rule: Rule::LockOrder,
                msg: format!(
                    "lock-order inversion: `{}` (rank {ra}) acquired while `{}` (rank {rh}) \
                     is held; nested acquisitions must strictly increase in rank \
                     (bh_common::sync rank table)",
                    e.acquired, e.held
                ),
            });
        }
    }

    // Cycle check over the merged graph: a backstop that also catches
    // multi-edge cycles assembled from different functions and crates.
    findings.extend(find_cycles(&edges));
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// Report each class-level cycle in the acquisition graph once.
fn find_cycles(edges: &BTreeSet<Edge>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        if e.held != e.acquired {
            adj.entry(e.held.as_str()).or_default().push(e);
        }
    }
    let mut findings = Vec::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for &start in adj.keys() {
        if done.contains(start) {
            continue;
        }
        // DFS looking for a path back to `start`.
        let mut path: Vec<&Edge> = Vec::new();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        if dfs_cycle(start, start, &adj, &mut seen, &mut path) {
            let mut names: Vec<&str> = path.iter().map(|e| e.held.as_str()).collect();
            names.push(start);
            let site = path.last().expect("non-empty cycle path");
            findings.push(Finding {
                file: site.file.clone(),
                line: site.line,
                rule: Rule::LockOrder,
                msg: format!("lock-order cycle: {}", names.join(" -> ")),
            });
            for e in &path {
                done.insert(e.held.as_str());
            }
        }
        done.insert(start);
    }
    findings
}

fn dfs_cycle<'a>(
    at: &'a str,
    target: &str,
    adj: &BTreeMap<&'a str, Vec<&'a Edge>>,
    seen: &mut BTreeSet<&'a str>,
    path: &mut Vec<&'a Edge>,
) -> bool {
    if !seen.insert(at) {
        return false;
    }
    for e in adj.get(at).map(Vec::as_slice).unwrap_or(&[]) {
        path.push(e);
        if e.acquired == target || dfs_cycle(e.acquired.as_str(), target, adj, seen, path) {
            return true;
        }
        path.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    const TABLE_SRC: &str = "
lock_rank_table! {
    /// Catalog of tables.
    DB_TABLES = 100,
    TABLE_COMPACTION = 300,
    TABLE_SEGMENTS = 310,
    METRICS_COUNTERS = 850,
}
";

    fn table() -> RankTable {
        parse_rank_table(TABLE_SRC).expect("fixture table parses")
    }

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<(String, String)> =
            files.iter().map(|(r, c)| (r.to_string(), c.to_string())).collect();
        check(&files, &table())
    }

    #[test]
    fn rank_table_parses_names_and_ranks() {
        let t = table();
        assert_eq!(t.len(), 4);
        assert_eq!(t.rank("TABLE_SEGMENTS"), Some(310));
        assert_eq!(t.rank("DB_TABLES"), Some(100));
        assert_eq!(t.rank("NOPE"), None);
    }

    #[test]
    fn real_rank_table_parses() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("xtask lives at <root>/crates/xtask");
        let src = std::fs::read_to_string(root.join("crates/common/src/sync.rs"))
            .expect("sync.rs readable");
        let t = parse_rank_table(&src).expect("real rank table parses");
        assert!(t.len() >= 20, "expected the full rank table, got {}", t.len());
        assert_eq!(t.rank("TABLE_SEGMENTS"), Some(310));
        assert_eq!(t.rank("IDXCACHE_INFLIGHT"), Some(400));
    }

    const LEGAL: &str = "
struct Db { tables: RwLock<u32>, segments: RwLock<u32> }
impl Db {
    fn new() -> Self {
        Db {
            tables: RwLock::new(&classes::DB_TABLES, 0),
            segments: RwLock::new(&classes::TABLE_SEGMENTS, 0),
        }
    }
    fn ordered(&self) {
        let t = self.tables.read();
        let s = self.segments.write();
        let _ = (t, s);
    }
}
";

    #[test]
    fn rank_increasing_nesting_is_clean() {
        assert!(run(&[("crates/core/src/db.rs", LEGAL)]).is_empty());
    }

    /// The seeded-inversion fixture ISSUE 8 requires: an ABBA pair across two
    /// functions must produce both an inversion finding (naming both classes
    /// and ranks) and a cycle finding.
    #[test]
    fn seeded_abba_inversion_is_caught() {
        let seeded = "
struct Db { tables: RwLock<u32>, segments: RwLock<u32> }
impl Db {
    fn new() -> Self {
        Db {
            tables: RwLock::new(&classes::DB_TABLES, 0),
            segments: RwLock::new(&classes::TABLE_SEGMENTS, 0),
        }
    }
    fn ab(&self) {
        let t = self.tables.read();
        let s = self.segments.write();
        let _ = (t, s);
    }
    fn ba(&self) {
        let s = self.segments.write();
        let t = self.tables.read();
        let _ = (s, t);
    }
}
";
        let findings = run(&[("crates/core/src/db.rs", seeded)]);
        let inversion = findings
            .iter()
            .find(|f| f.msg.contains("inversion"))
            .expect("seeded ABBA must raise an inversion");
        assert_eq!(inversion.rule, Rule::LockOrder);
        assert!(inversion.msg.contains("DB_TABLES"), "{}", inversion.msg);
        assert!(inversion.msg.contains("TABLE_SEGMENTS"), "{}", inversion.msg);
        assert!(inversion.msg.contains("rank 100"), "{}", inversion.msg);
        assert!(inversion.msg.contains("rank 310"), "{}", inversion.msg);
        assert!(
            findings.iter().any(|f| f.msg.contains("cycle")),
            "ABBA edges must also close a cycle: {findings:?}"
        );
    }

    #[test]
    fn cross_file_cycle_is_assembled_from_single_edges() {
        // Each file's nesting is locally plausible; only the merged graph
        // has the A->B (legal) + B->A (inverted) pair.
        let ab = "
struct X { a: Mutex<u32>, b: Mutex<u32> }
impl X {
    fn new() -> Self {
        X { a: Mutex::new(&classes::DB_TABLES, 0), b: Mutex::new(&classes::TABLE_SEGMENTS, 0) }
    }
    fn f(&self) { let g = self.a.lock(); self.b.lock().checked_add(*g); }
}
";
        let ba = "
struct Y { c: Mutex<u32>, d: Mutex<u32> }
impl Y {
    fn new() -> Self {
        Y { c: Mutex::new(&classes::TABLE_SEGMENTS, 0), d: Mutex::new(&classes::DB_TABLES, 0) }
    }
    fn f(&self) { let g = self.c.lock(); self.d.lock().checked_add(*g); }
}
";
        let findings =
            run(&[("crates/storage/src/ab.rs", ab), ("crates/cluster/src/ba.rs", ba)]);
        assert!(findings.iter().any(|f| f.msg.contains("inversion")), "{findings:?}");
        assert!(findings.iter().any(|f| f.msg.contains("cycle")), "{findings:?}");
        // The inversion anchors in the file that takes them in the bad order.
        let inv = findings.iter().find(|f| f.msg.contains("inversion")).unwrap();
        assert_eq!(inv.file, "crates/cluster/src/ba.rs");
    }

    #[test]
    fn same_class_nesting_is_a_self_deadlock() {
        let src = "
struct X { m: Mutex<u32> }
impl X {
    fn new() -> Self { X { m: Mutex::new(&classes::DB_TABLES, 0) } }
    fn f(&self) { let g = self.m.lock(); self.m.lock().checked_add(*g); }
}
";
        let findings = run(&[("crates/core/src/x.rs", src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].msg.contains("self-deadlock"), "{}", findings[0].msg);
    }

    #[test]
    fn temporary_guard_is_released_at_statement_end() {
        let src = "
struct X { a: Mutex<u32>, b: Mutex<u32> }
impl X {
    fn new() -> Self {
        X { a: Mutex::new(&classes::TABLE_SEGMENTS, 0), b: Mutex::new(&classes::DB_TABLES, 0) }
    }
    fn f(&self) {
        let n = self.a.lock().checked_add(1);
        let g = self.b.lock();
        let _ = (n, g);
    }
}
";
        // a's guard is a temporary dropped at `;` — no SEGMENTS->TABLES edge.
        assert!(run(&[("crates/core/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn if_let_scrutinee_guard_does_not_leak_into_following_statements() {
        // The metrics read-then-write shape: the read guard in the `if let`
        // condition is gone by the time the write happens.
        let src = "
struct M { counters: RwLock<u32> }
impl M {
    fn new() -> Self { M { counters: RwLock::new(&classes::METRICS_COUNTERS, 0) } }
    fn f(&self) -> u32 {
        if let Some(c) = self.counters.read().checked_add(1) {
            return c;
        }
        *self.counters.write()
    }
}
";
        assert!(run(&[("crates/common/src/m.rs", src)]).is_empty());
    }

    #[test]
    fn dropped_guard_stops_generating_edges() {
        let src = "
struct X { a: Mutex<u32>, b: Mutex<u32> }
impl X {
    fn new() -> Self {
        X { a: Mutex::new(&classes::TABLE_SEGMENTS, 0), b: Mutex::new(&classes::DB_TABLES, 0) }
    }
    fn f(&self) {
        let g = self.a.lock();
        drop(g);
        let h = self.b.lock();
        let _ = h;
    }
}
";
        assert!(run(&[("crates/core/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn let_bound_guard_holds_across_statements() {
        let src = "
struct X { a: Mutex<u32>, b: Mutex<u32> }
impl X {
    fn new() -> Self {
        X { a: Mutex::new(&classes::TABLE_SEGMENTS, 0), b: Mutex::new(&classes::DB_TABLES, 0) }
    }
    fn f(&self) {
        let g = self.a.lock();
        let h = self.b.lock();
        let _ = (g, h);
    }
}
";
        let findings = run(&[("crates/core/src/x.rs", src)]);
        assert_eq!(findings.iter().filter(|f| f.msg.contains("inversion")).count(), 1);
    }

    #[test]
    fn checked_locks_and_wrapped_chains_resolve() {
        let src = "
struct C { inflight: Mutex<u32>, pending: Mutex<u32> }
impl C {
    fn new() -> Self {
        C {
            inflight: Mutex::new(&classes::DB_TABLES, 0),
            pending: Mutex::new(&classes::TABLE_SEGMENTS, 0),
        }
    }
    fn f(&self) -> Result<(), ()> {
        let g = self.inflight.lock_checked()?;
        self.pending
            .lock_checked()?
            .checked_add(*g);
        Ok(())
    }
    fn inverted(&self) -> Result<(), ()> {
        let g = self.pending.lock_checked()?;
        self.inflight
            .lock_checked()?
            .checked_add(*g);
        Ok(())
    }
}
";
        let findings = run(&[("crates/storage/src/c.rs", src)]);
        assert_eq!(findings.iter().filter(|f| f.msg.contains("inversion")).count(), 1);
    }

    #[test]
    fn test_code_may_seed_inversions() {
        let src = "
struct X { a: Mutex<u32>, b: Mutex<u32> }
impl X {
    fn new() -> Self {
        X { a: Mutex::new(&classes::DB_TABLES, 0), b: Mutex::new(&classes::TABLE_SEGMENTS, 0) }
    }
}
#[cfg(test)]
mod tests {
    #[test]
    fn deliberate_inversion() {
        let x = super::X::new();
        let g = x.b.lock();
        let h = x.a.lock();
        let _ = (g, h);
    }
}
";
        assert!(run(&[("crates/core/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses_with_reason_and_flags_without() {
        let with_reason = "
struct X { a: Mutex<u32>, b: Mutex<u32> }
impl X {
    fn new() -> Self {
        X { a: Mutex::new(&classes::DB_TABLES, 0), b: Mutex::new(&classes::TABLE_SEGMENTS, 0) }
    }
    fn f(&self) {
        let g = self.b.lock();
        // lint: allow(lock-order) - b's owner thread never takes a; proven by the vw model
        let h = self.a.lock();
        let _ = (g, h);
    }
}
";
        assert!(run(&[("crates/core/src/x.rs", with_reason)]).is_empty());
        let bare = with_reason.replace(
            " - b's owner thread never takes a; proven by the vw model",
            "",
        );
        let findings = run(&[("crates/core/src/x.rs", bare.as_str())]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::EmptyAllowReason);
    }

    #[test]
    fn unmapped_receivers_are_skipped() {
        let src = "
struct X { file: std::fs::File }
impl X {
    fn f(&self, buf: &mut Vec<u8>) {
        let r = self.file.read();
        let _ = (r, buf);
    }
}
";
        assert!(run(&[("crates/storage/src/x.rs", src)]).is_empty());
    }
}
