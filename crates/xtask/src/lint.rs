//! Project-specific static analysis over the workspace source tree.
//!
//! Clippy and rustc enforce language-level rules; this pass enforces
//! *project* invariants that keep the BlendHouse simulation deterministic and
//! the `unsafe` surface auditable (DESIGN.md §8):
//!
//! 1. **`unsafe` needs `// SAFETY:`** — every `unsafe` block, fn, impl or
//!    trait must be immediately preceded by a `// SAFETY:` comment (or carry a
//!    `# Safety` doc section, for `unsafe fn`). An unjustified `unsafe` is a
//!    review escape hatch we do not allow.
//! 2. **Wall-clock gate** — no `Instant::now()` / `SystemTime::now()` outside
//!    `bh_common::clock` and `bh_common::trace` (which timestamps spans).
//!    All time flows through [`Clock`]/`Stopwatch` so the
//!    disaggregated-architecture simulation stays virtualizable and tests
//!    deterministic.
//! 3. **Determinism gate** — no ambient randomness (`thread_rng`,
//!    `from_entropy`, `rand::random`, `RandomState::new`) outside
//!    `bh_common::rng`. Every stochastic component takes an explicit seed.
//! 4. **No panics in library paths** — no `.unwrap()` / `.expect(` /
//!    `panic!` / `unreachable!` / `todo!` / `unimplemented!` in non-test code
//!    of `storage`, `query`, `cluster`, `vector`. A query must degrade into a
//!    `BhError`, not take the server down. Provable invariants may be
//!    annotated `// lint: allow(panic) - <reason>` (the reason is mandatory).
//! 5. **No stdout in library crates** — `println!` & friends are reserved for
//!    the bench harness; libraries report through `MetricsRegistry`.
//! 6. **Import-graph hygiene** — a crate is consumed through its public
//!    surface: the root re-exports plus its public-surface modules. Reaching
//!    across crates into an *internal* module couples the consumer to
//!    implementation layout the owning crate never promised and makes
//!    intra-crate refactors breaking changes. Internal today:
//!    `bh_common::loom` (the vendored model checker backing the `--cfg loom`
//!    tests), `bh_vector::{flat, hnsw, ivf, vamana, quant, iterator}` (index
//!    implementations — go through `IndexRegistry`/`VectorIndex`),
//!    `bh_query::{plan, plancache}` and `bh_storage::{partition, delete}`
//!    (planner and maintenance internals re-exported at their crate roots).
//!    By contrast `bh_common::cq` *is* public surface: `Reactor` (submit /
//!    submit_transfer / wait / forget / is_complete / charge), `Ticket`, and
//!    the lock-free `OpTable` are the sanctioned async-I/O completion API
//!    for every crate that overlaps simulated transfers (DESIGN.md §11).
//! 7. **No raw sync primitives** — `std::sync::{Mutex, RwLock, Condvar}`
//!    (guards, `PoisonError`) and any `parking_lot` type are forbidden
//!    outside `bh_common::sync`, the ranked wrappers' home. A raw lock is
//!    invisible to the lockdep runtime and to rule 8, so it re-opens the
//!    deadlock class the sync layer closes (DESIGN.md §12). Escape hatch:
//!    `// lint: allow(raw-sync) - <reason>` (the reason is mandatory).
//! 8. **Lock-order static analysis** — rebuilds the class-level lock
//!    acquisition graph from source (construction sites + nested
//!    `.lock()`/`.read()`/`.write()` scopes) across all crates and fails on
//!    any rank inversion or cycle; see [`crate::lockorder`].
//! 9. **Metric-name registry** — every literal metric registration
//!    (`.counter("…")`, `.gauge("…")`, `.histogram("…")` and their
//!    `_with_labels` forms) in library code must name an entry of
//!    `bh_common::metrics::NAMES`. A typo in a metric name silently forks a
//!    counter nobody reads; the table makes the namespace reviewable and
//!    gives dashboards one source of truth. Dynamically built names
//!    (`format!` tiers, cache labels) are out of the rule's scope, as are
//!    tests and the harness crates.
//!
//! The scanner is a line-oriented lexer, not a full parser: it strips string
//! literals and comments (so `"unsafe"` in an error message is not a
//! finding), tracks `#[cfg(test)]` regions by brace depth, and understands
//! `// lint: allow(...)` suppressions on the offending or preceding line.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which invariant a finding violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `unsafe` without an adjacent `// SAFETY:` / `# Safety` justification.
    UnsafeNeedsSafety,
    /// Ambient wall-clock access outside `bh_common::clock`.
    WallClock,
    /// Ambient randomness outside `bh_common::rng`.
    Nondeterminism,
    /// Panic path in library code of a serving crate.
    PanicInLib,
    /// Stdout/stderr printing in a library crate.
    StdoutInLib,
    /// `// lint: allow(panic)` without a stated invariant.
    EmptyAllowReason,
    /// Cross-crate import of another crate's internal module.
    CrossCrateInternal,
    /// Raw `std::sync`/`parking_lot` lock primitive outside `bh_common::sync`.
    RawSync,
    /// A nested lock acquisition that inverts the rank table, or a cycle in
    /// the cross-crate acquisition graph.
    LockOrder,
    /// A literal metric registration whose name is missing from
    /// `bh_common::metrics::NAMES`.
    MetricNames,
}

impl Rule {
    /// Stable machine-readable rule name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeNeedsSafety => "unsafe-needs-safety",
            Rule::WallClock => "wall-clock",
            Rule::Nondeterminism => "nondeterminism",
            Rule::PanicInLib => "panic-in-lib",
            Rule::StdoutInLib => "stdout-in-lib",
            Rule::EmptyAllowReason => "empty-allow-reason",
            Rule::CrossCrateInternal => "cross-crate-internal",
            Rule::RawSync => "raw-sync",
            Rule::LockOrder => "lock-order",
            Rule::MetricNames => "metric-names",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path (unix separators).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.name(), self.msg)
    }
}

/// Crates whose library code must be panic-free (rule 4).
const PANIC_FREE_CRATES: &[&str] = &["storage", "query", "cluster", "vector"];

/// Crates exempt from the library-hygiene rules 2, 3 and 5: the bench harness
/// measures real wall time and prints reports by design, and xtask is a
/// developer tool.
const HARNESS_CRATES: &[&str] = &["bench", "xtask"];

/// Rule 6: modules that are `pub` for intra-crate layering but are NOT part
/// of the owning crate's cross-crate surface. Everything else reachable from
/// a crate root (its re-exports and remaining public modules — e.g.
/// `bh_common::cq`, `bh_storage::objectstore`, `bh_vector::registry`) is fair
/// game. Promoting a module out of this list is a deliberate API decision
/// made here, in review, not by the first caller that finds it convenient.
const CROSS_CRATE_INTERNAL: &[(&str, &[&str])] = &[
    ("bh_common", &["loom"]),
    ("bh_vector", &["flat", "hnsw", "ivf", "vamana", "quant", "iterator"]),
    ("bh_query", &["plan", "plancache"]),
    ("bh_storage", &["partition", "delete"]),
];

// ------------------------------------------------------------------ scanner

/// One source line split into code and comment channels. String literal
/// contents are blanked in `code`; comment text (line, block and doc
/// comments) is concatenated into `comment`.
#[derive(Debug, Default, Clone)]
pub(crate) struct LineView {
    pub(crate) code: String,
    pub(crate) comment: String,
}

/// Lex `src` into per-line code/comment views. Handles nested block
/// comments, regular/raw/byte string literals, char literals vs lifetimes.
pub(crate) fn sanitize(src: &str) -> Vec<LineView> {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u8),
        Char,
    }

    let chars: Vec<char> = src.chars().collect();
    let mut out: Vec<LineView> = Vec::new();
    let mut cur = LineView::default();
    let mut st = St::Code;
    let mut i = 0usize;

    // True when `chars[at..]` starts a raw string opener (`r"`/`r#"`/`br#"`),
    // returning the number of hashes.
    let raw_open = |at: usize| -> Option<u8> {
        let mut j = at;
        if chars.get(j) == Some(&'b') {
            j += 1;
        }
        if chars.get(j) != Some(&'r') {
            return None;
        }
        j += 1;
        let mut hashes = 0u8;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        (chars.get(j) == Some(&'"')).then_some(hashes)
    };

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            out.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = St::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(1);
                    i += 2;
                } else if (c == 'r' || c == 'b') && raw_open(i).is_some() {
                    let hashes = raw_open(i).unwrap_or(0);
                    // Skip the opener: optional `b`, `r`, hashes, quote.
                    i += usize::from(c == 'b') + 1 + hashes as usize + 1;
                    cur.code.push('"');
                    st = St::RawStr(hashes);
                } else if c == '"' {
                    cur.code.push('"');
                    st = St::Str;
                    i += 1;
                } else if c == '\'' {
                    // Char literal iff escaped or closed within two chars;
                    // otherwise it is a lifetime.
                    let is_char = next == Some('\\')
                        || chars.get(i + 2) == Some(&'\'')
                        || (next == Some('\'')); // empty char literal: invalid but lex it
                    cur.code.push('\'');
                    i += 1;
                    if is_char {
                        st = St::Char;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            St::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            St::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    st = if depth <= 1 { St::Code } else { St::BlockComment(depth - 1) };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    // A line-continuation escape (`\` at end of line) still
                    // ends the physical line — keep the line views aligned
                    // with the raw source.
                    if chars.get(i + 1) == Some(&'\n') {
                        out.push(std::mem::take(&mut cur));
                    } else {
                        cur.code.push(' ');
                    }
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    st = St::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' && (0..hashes as usize).all(|h| chars.get(i + 1 + h) == Some(&'#')) {
                    cur.code.push('"');
                    st = St::Code;
                    i += 1 + hashes as usize;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            St::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    cur.code.push('\'');
                    st = St::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    out.push(cur);
    out
}

/// Mark lines belonging to `#[cfg(test)]` items and `#[test]` functions.
pub(crate) fn test_mask(lines: &[LineView]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        let code = &lines[i].code;
        let is_test_attr = code.contains("#[cfg(test)]")
            || code.contains("#[cfg(all(test")
            || code.contains("#[cfg(any(test")
            || code.contains("#[test]");
        if !is_test_attr {
            i += 1;
            continue;
        }
        // Mask from the attribute through the end of the item's brace block
        // (or through its `;` for brace-less items like `use`).
        let mut depth: i64 = 0;
        let mut started = false;
        let mut j = i;
        'item: while j < lines.len() {
            mask[j] = true;
            for ch in lines[j].code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => depth -= 1,
                    ';' if !started => break 'item,
                    _ => {}
                }
            }
            if started && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// True when `hay` contains `needle` not embedded in a larger identifier.
fn token_present(hay: &str, needle: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut from = 0usize;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let left_ok = at == 0 || !ident(hay[..at].chars().next_back().unwrap_or(' '));
        let right_ok =
            !hay[at + needle.len()..].chars().next().map(ident).unwrap_or(false);
        if left_ok && right_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Candidate lines for an allow annotation: the flagged line itself plus the
/// contiguous block of pure-comment lines directly above it (annotations are
/// prose and may wrap across lines).
fn annotation_lines(lines: &[LineView], idx: usize) -> impl Iterator<Item = usize> + '_ {
    let mut first = idx;
    while first > 0 {
        let prev = &lines[first - 1];
        if prev.code.trim().is_empty() && !prev.comment.trim().is_empty() {
            first -= 1;
        } else {
            break;
        }
    }
    (first..=idx).rev()
}

/// True when this line or the comment block above it carries
/// `// lint: allow(<what>)`.
pub(crate) fn allowed(lines: &[LineView], idx: usize, what: &str) -> bool {
    let marker = format!("lint: allow({what})");
    annotation_lines(lines, idx).any(|at| lines[at].comment.contains(&marker))
}

/// A `// lint: allow(<what>)` annotation must state the invariant that makes
/// the suppression sound. Returns the annotation line if the reason is
/// missing or too thin to mean anything.
pub(crate) fn allow_reason_missing(lines: &[LineView], idx: usize, what: &str) -> Option<usize> {
    let marker = format!("lint: allow({what})");
    for at in annotation_lines(lines, idx) {
        let view = &lines[at];
        if let Some(pos) = view.comment.find(&marker) {
            let reason = view.comment[pos + marker.len()..]
                .trim_start_matches([' ', '-', ':', '—', '–'])
                .trim();
            if reason.chars().filter(|c| c.is_alphanumeric()).count() < 8 {
                return Some(at);
            }
            return None;
        }
    }
    None
}

/// Collect the first path segment of each entry after a `::`, looking
/// through `{...}` groups; consumes (and ignores) the rest of each path.
/// Shared by rules 6 and 7, which both resolve `prefix::{a, b::c}` forms.
fn path_heads(text: &str, mut j: usize, out: &mut Vec<(usize, usize)>) -> usize {
    let bytes = text.as_bytes();
    let skip_ws = |mut j: usize| {
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        j
    };
    j = skip_ws(j);
    if j < bytes.len() && bytes[j] == b'{' {
        j += 1;
        loop {
            j = path_heads(text, j, out);
            j = skip_ws(j);
            match bytes.get(j) {
                Some(b',') => j += 1,
                Some(b'}') => {
                    j += 1;
                    break;
                }
                _ => break,
            }
        }
        return j;
    }
    let start = j;
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    if j > start {
        out.push((start, j));
    }
    // Swallow the remaining `::segment` / `::{...}` / `::*` tail.
    loop {
        let at = skip_ws(j);
        if !text[at..].starts_with("::") {
            break;
        }
        j = skip_ws(at + 2);
        match bytes.get(j) {
            Some(b'{') => {
                let mut depth = 0usize;
                while j < bytes.len() {
                    match bytes[j] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            Some(b'*') => j += 1,
            _ => {
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
            }
        }
    }
    j
}

// ---------------------------------------------- rule 7: raw sync primitives

/// Lock types that must come from `bh_common::sync`, not `std::sync`. The
/// guards and `PoisonError` ride along: naming them means handling raw
/// guards, which only raw locks produce.
const RAW_SYNC_TYPES: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "PoisonError",
];

/// Find `std::sync::<forbidden>` paths — direct (`std::sync::Mutex<T>`) or
/// through import groups (`use std::sync::{Arc, Mutex}`) — in the joined
/// code channel. Returns `(line_idx, type_name)` per hit. `Arc`, `mpsc`,
/// `atomic` and friends pass: only the lock primitives are ranked.
fn raw_sync_reach(lines: &[LineView]) -> Vec<(usize, &'static str)> {
    let mut text = String::new();
    let mut line_starts = Vec::with_capacity(lines.len());
    for v in lines {
        line_starts.push(text.len());
        text.push_str(&v.code);
        text.push('\n');
    }
    let bytes = text.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let line_of = |pos: usize| line_starts.partition_point(|&s| s <= pos).saturating_sub(1);

    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find("std") {
        let at = from + pos;
        from = at + 3;
        // A preceding `::` is fine — `::std::sync::Mutex` is still std's.
        let left_ok = at == 0 || !is_ident(bytes[at - 1]);
        let after = at + 3;
        if !left_ok || !text[after..].starts_with("::") {
            continue;
        }
        let mut j = after + 2;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if !text[j..].starts_with("sync") {
            continue;
        }
        j += 4;
        if !text[j..].starts_with("::") {
            continue;
        }
        let mut segs = Vec::new();
        path_heads(&text, j + 2, &mut segs);
        for (s, e) in segs {
            if let Some(t) = RAW_SYNC_TYPES.iter().find(|t| **t == &text[s..e]) {
                out.push((line_of(s), *t));
            }
        }
    }
    out
}

// ------------------------------------------------- rule 6: import hygiene

/// The external crate name a `crates/<dir>` directory compiles to.
fn crate_token(dir: &str) -> String {
    if dir == "core" { "blendhouse".to_string() } else { format!("bh_{dir}") }
}

/// Scan the file's code channel for cross-crate paths that reach an internal
/// module of another crate. Returns `(line_idx, crate, module)` per hit.
///
/// Unlike the per-line rules this joins the whole code channel first: a
/// rustfmt-wrapped `use bh_vector::{\n    distance,\n    quant::Pq,\n};`
/// names the internal module on a different line than the crate.
fn cross_crate_reach(lines: &[LineView], owner: &str) -> Vec<(usize, &'static str, &'static str)> {
    let mut text = String::new();
    let mut line_starts = Vec::with_capacity(lines.len());
    for v in lines {
        line_starts.push(text.len());
        text.push_str(&v.code);
        text.push('\n');
    }
    let bytes = text.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let skip_ws = |mut j: usize| {
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        j
    };
    let line_of = |pos: usize| line_starts.partition_point(|&s| s <= pos).saturating_sub(1);

    let mut out = Vec::new();
    for (krate, internals) in CROSS_CRATE_INTERNAL {
        if *krate == owner {
            continue;
        }
        let mut from = 0usize;
        while let Some(pos) = text[from..].find(krate) {
            let at = from + pos;
            from = at + krate.len();
            let left_ok = at == 0 || !is_ident(bytes[at - 1]);
            let after = at + krate.len();
            if !left_ok || after >= bytes.len() || is_ident(bytes[after]) {
                continue;
            }
            let j = skip_ws(after);
            if !text[j..].starts_with("::") {
                continue;
            }
            let mut segs = Vec::new();
            path_heads(&text, j + 2, &mut segs);
            for (s, e) in segs {
                if let Some(m) = internals.iter().find(|m| **m == &text[s..e]) {
                    out.push((line_of(s), *krate, *m));
                }
            }
        }
    }
    out
}

// -------------------------------------------------------------------- rules

/// Lint one file. `rel` is the workspace-relative path with `/` separators
/// (e.g. `crates/query/src/exec.rs`); it determines which rules apply.
pub fn lint_file(rel: &str, content: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let parts: Vec<&str> = rel.split('/').collect();
    // Only `crates/<name>/src/**` is library code; tests/, benches/ and
    // examples/ follow test rules (assertions are the point there).
    let crate_name = match parts.as_slice() {
        ["crates", name, "src", ..] => *name,
        _ => return findings,
    };
    let harness = HARNESS_CRATES.contains(&crate_name);

    let lines = sanitize(content);
    let tests = test_mask(&lines);
    let mut push = |line: usize, rule: Rule, msg: String| {
        findings.push(Finding { file: rel.to_string(), line: line + 1, rule, msg });
    };

    for (idx, view) in lines.iter().enumerate() {
        let code = &view.code;

        // Rule 1: unsafe needs SAFETY. Applies everywhere, tests included —
        // UB in a test corrupts the test, not just production.
        if token_present(code, "unsafe") && !has_safety_justification(&lines, idx) {
            push(
                idx,
                Rule::UnsafeNeedsSafety,
                "`unsafe` must be immediately preceded by a `// SAFETY:` comment \
                 (or carry a `# Safety` doc section)"
                    .into(),
            );
        }

        if tests[idx] {
            continue;
        }

        // Rule 2: wall-clock gate. The clock module is where wall time is
        // sanctioned; the trace module timestamps spans (via Stopwatch, but
        // the exemption keeps the rule honest if it ever reads time directly).
        let clock_home =
            rel == "crates/common/src/clock.rs" || rel == "crates/common/src/trace.rs";
        if !harness && !clock_home {
            for tok in ["Instant::now", "SystemTime::now"] {
                if code.contains(tok) && !allowed(&lines, idx, "wall_clock") {
                    push(
                        idx,
                        Rule::WallClock,
                        format!(
                            "`{tok}()` outside bh_common::clock breaks the simulation's \
                             virtual time; use `Clock`/`Stopwatch` from bh_common::clock"
                        ),
                    );
                }
            }
        }

        // Rule 3: determinism gate.
        let rng_home = rel == "crates/common/src/rng.rs";
        if !harness && !rng_home {
            for tok in ["thread_rng", "from_entropy", "rand::random", "RandomState::new"] {
                if code.contains(tok) && !allowed(&lines, idx, "nondeterminism") {
                    push(
                        idx,
                        Rule::Nondeterminism,
                        format!(
                            "`{tok}` introduces unseeded randomness; derive a seeded \
                             RNG via bh_common::rng instead"
                        ),
                    );
                }
            }
        }

        // Rule 4: panic-free serving crates.
        if PANIC_FREE_CRATES.contains(&crate_name) {
            let hit = [".unwrap()", ".expect("]
                .iter()
                .find(|t| code.contains(**t))
                .copied()
                .or_else(|| {
                    ["panic!", "unreachable!", "todo!", "unimplemented!"]
                        .iter()
                        .find(|t| token_present(code, t))
                        .copied()
                });
            if let Some(tok) = hit {
                if allowed(&lines, idx, "panic") {
                    if let Some(at) = allow_reason_missing(&lines, idx, "panic") {
                        push(
                            at,
                            Rule::EmptyAllowReason,
                            "`lint: allow(panic)` must state the invariant that makes \
                             the panic unreachable"
                                .into(),
                        );
                    }
                } else {
                    push(
                        idx,
                        Rule::PanicInLib,
                        format!(
                            "`{tok}` in library code of `{crate_name}`: return a BhError \
                             or annotate `// lint: allow(panic) - <invariant>`"
                        ),
                    );
                }
            }
        }

        // Rule 5: no stdout in libraries.
        if !harness {
            for tok in ["println!", "eprintln!", "print!", "eprint!", "dbg!"] {
                if token_present(code, tok) && !allowed(&lines, idx, "stdout") {
                    push(
                        idx,
                        Rule::StdoutInLib,
                        format!(
                            "`{tok}` in a library crate; report through MetricsRegistry \
                             or return data to the caller"
                        ),
                    );
                }
            }
        }
    }

    // Rule 6: cross-crate imports must stay on the public surface.
    let owner = crate_token(crate_name);
    for (idx, krate, module) in cross_crate_reach(&lines, &owner) {
        if tests[idx] || allowed(&lines, idx, "cross_crate") {
            continue;
        }
        findings.push(Finding {
            file: rel.to_string(),
            line: idx + 1,
            rule: Rule::CrossCrateInternal,
            msg: format!(
                "`{krate}::{module}` is an internal module of `{krate}`; use its \
                 crate-root surface (or promote the module in xtask lint's \
                 CROSS_CRATE_INTERNAL after review)"
            ),
        });
    }

    // Rule 7: raw sync primitives live in one file. Applies to tests too —
    // a deadlock in a test hangs CI just as hard, and only wrapped locks
    // participate in the lockdep runtime that would have caught it.
    if rel != "crates/common/src/sync.rs" {
        let mut raw_hits: Vec<(usize, String)> = raw_sync_reach(&lines)
            .into_iter()
            .map(|(idx, t)| (idx, format!("std::sync::{t}")))
            .collect();
        for (idx, view) in lines.iter().enumerate() {
            if token_present(&view.code, "parking_lot") {
                raw_hits.push((idx, "parking_lot".to_string()));
            }
        }
        raw_hits.sort();
        for (idx, what) in raw_hits {
            if allowed(&lines, idx, "raw-sync") {
                if let Some(at) = allow_reason_missing(&lines, idx, "raw-sync") {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: at + 1,
                        rule: Rule::EmptyAllowReason,
                        msg: "`lint: allow(raw-sync)` must state why bypassing the \
                              ranked sync layer is sound here"
                            .into(),
                    });
                }
                continue;
            }
            findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule: Rule::RawSync,
                msg: format!(
                    "`{what}` outside bh_common::sync is invisible to lockdep; use the \
                     ranked wrappers from bh_common::sync (or annotate \
                     `// lint: allow(raw-sync) - <reason>`)"
                ),
            });
        }
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// An `unsafe` token on `lines[idx]` is justified when a `SAFETY:` comment
/// sits on the same line, or when the contiguous run of comment/attribute
/// lines directly above contains `SAFETY:` or a `# Safety` doc section.
fn has_safety_justification(lines: &[LineView], idx: usize) -> bool {
    let has_marker =
        |v: &LineView| v.comment.contains("SAFETY:") || v.comment.contains("# Safety");
    if has_marker(&lines[idx]) {
        return true;
    }
    let mut at = idx;
    while at > 0 {
        at -= 1;
        let v = &lines[at];
        let code = v.code.trim();
        let is_annotation = code.is_empty() || code.starts_with("#[") || code.starts_with("#![");
        if !is_annotation {
            return false;
        }
        if has_marker(v) {
            return true;
        }
    }
    false
}

// --------------------------------------------------------------------- walk

/// Recursively collect `.rs` files under `dir`, sorted for stable output.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------- rule 9: metric names

/// Path of the canonical metric-name table.
const METRIC_NAMES_FILE: &str = "crates/common/src/metrics.rs";

/// Registration calls whose first argument names a metric.
const METRIC_REGISTRATIONS: &[&str] = &[
    ".counter_with_labels(",
    ".gauge_with_labels(",
    ".histogram_with_labels(",
    ".counter(",
    ".gauge(",
    ".histogram(",
];

/// Extract the string literals of the `pub const NAMES` table from the
/// `bh_common::metrics` source. Returns `None` when the table is missing.
pub(crate) fn parse_metric_names(src: &str) -> Option<Vec<String>> {
    let start = src.find("pub const NAMES")?;
    // Seek past the `=` so the `[` of the type (`&[&str]`) is not mistaken
    // for the opening bracket of the initializer.
    let eq = start + src[start..].find('=')?;
    let open = eq + src[eq..].find('[')?;
    let close = open + src[open..].find(']')?;
    let body = &src[open + 1..close];
    let mut names = Vec::new();
    let mut rest = body;
    while let Some(q) = rest.find('"') {
        let after = &rest[q + 1..];
        let end = after.find('"')?;
        names.push(after[..end].to_string());
        rest = &after[end + 1..];
    }
    Some(names)
}

/// The first argument of a registration call when it is a string literal.
/// `None` means the name is built dynamically — out of the rule's scope.
fn literal_first_arg(raw_after_paren: &str) -> Option<&str> {
    let arg = raw_after_paren.trim_start();
    let inner = arg.strip_prefix('"')?;
    let end = inner.find('"')?;
    Some(&inner[..end])
}

/// Rule 9 over the whole file set: every literal registration must appear in
/// the NAMES table. Tests and harness crates are exempt; dynamic names are
/// skipped (they cannot be checked textually).
pub(crate) fn check_metric_names(sources: &[(String, String)]) -> Vec<Finding> {
    let Some((_, metrics_src)) = sources.iter().find(|(rel, _)| rel == METRIC_NAMES_FILE)
    else {
        return vec![Finding {
            file: METRIC_NAMES_FILE.to_string(),
            line: 1,
            rule: Rule::MetricNames,
            msg: "missing: the metric-name table (bh_common::metrics::NAMES) must \
                  exist for rule 9 (metric-names) to run"
                .into(),
        }];
    };
    let Some(names) = parse_metric_names(metrics_src) else {
        return vec![Finding {
            file: METRIC_NAMES_FILE.to_string(),
            line: 1,
            rule: Rule::MetricNames,
            msg: "no `pub const NAMES` table found; rule 9 (metric-names) cannot run"
                .into(),
        }];
    };

    let mut findings = Vec::new();
    for (rel, content) in sources {
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_name = match parts.as_slice() {
            ["crates", name, "src", ..] => *name,
            _ => continue,
        };
        if HARNESS_CRATES.contains(&crate_name) {
            continue;
        }
        let lines = sanitize(content);
        let tests = test_mask(&lines);
        for (idx, raw) in content.lines().enumerate() {
            if tests.get(idx).copied().unwrap_or(false) {
                continue;
            }
            // The sanitized view gates on real code (not comments or string
            // contents); the literal itself is read from the raw line. The two
            // views can disagree on line count (sanitize folds some forms), so
            // a raw line past the sanitized view is skipped.
            let Some(code) = lines.get(idx).map(|l| l.code.as_str()) else {
                break;
            };
            for pat in METRIC_REGISTRATIONS {
                // The sanitized view (comments stripped, literals blanked)
                // decides whether the line really has a call; the literal is
                // then read from the raw text. Columns may differ between the
                // two (escapes, comments), so matches are re-found in raw.
                if !code.contains(pat) {
                    continue;
                }
                let mut from = 0usize;
                // The six patterns are mutually exclusive (`.counter(` cannot
                // occur inside `.counter_with_labels(`), so each call site
                // matches exactly one.
                while let Some(pos) = raw[from..].find(pat) {
                    let at = from + pos;
                    from = at + pat.len();
                    let Some(name) = raw.get(at + pat.len()..).and_then(literal_first_arg)
                    else {
                        continue; // dynamic name
                    };
                    if !names.iter().any(|n| n == name) {
                        findings.push(Finding {
                            file: rel.clone(),
                            line: idx + 1,
                            rule: Rule::MetricNames,
                            msg: format!(
                                "metric \"{name}\" is not in \
                                 bh_common::metrics::NAMES; add it to the \
                                 table (or fix the typo)"
                            ),
                        });
                    }
                }
            }
        }
    }
    findings
}

/// Lint every `crates/*/src/**/*.rs` under the workspace root.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> =
        fs::read_dir(&crates_dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            rs_files(&src, &mut files)?;
        }
    }
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let content = fs::read_to_string(path)?;
        sources.push((rel, content));
    }
    let mut findings = Vec::new();
    for (rel, content) in &sources {
        findings.extend(lint_file(rel, content));
    }
    // Rule 8: the lock-order graph spans all crates, so it runs over the
    // whole file set at once, keyed by the rank table in bh_common::sync.
    match sources.iter().find(|(rel, _)| rel == "crates/common/src/sync.rs") {
        Some((_, sync_src)) => match crate::lockorder::parse_rank_table(sync_src) {
            Some(table) => findings.extend(crate::lockorder::check(&sources, &table)),
            None => findings.push(Finding {
                file: "crates/common/src/sync.rs".to_string(),
                line: 1,
                rule: Rule::LockOrder,
                msg: "no lock_rank_table! invocation found; rule 8 (lock-order) \
                      cannot run"
                    .into(),
            }),
        },
        None => findings.push(Finding {
            file: "crates/common/src/sync.rs".to_string(),
            line: 1,
            rule: Rule::LockOrder,
            msg: "missing: the ranked sync layer (and its rank table) must exist \
                  for rule 8 (lock-order) to run"
                .into(),
        }),
    }
    // Rule 9: metric registrations are checked against the NAMES table in
    // bh_common::metrics, across the whole file set.
    findings.extend(check_metric_names(&sources));
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// Number of files the workspace walk would visit (for the summary line).
pub fn count_files(root: &Path) -> io::Result<usize> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> =
        fs::read_dir(&crates_dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            rs_files(&src, &mut files)?;
        }
    }
    Ok(files.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(rel: &str, src: &str) -> Vec<Rule> {
        lint_file(rel, src).into_iter().map(|f| f.rule).collect()
    }

    // ---- rule 1: unsafe needs SAFETY ----

    #[test]
    fn bare_unsafe_block_is_caught() {
        let src = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert_eq!(rules("crates/vector/src/x.rs", src), vec![Rule::UnsafeNeedsSafety]);
    }

    #[test]
    fn safety_comment_above_passes() {
        let src = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
        assert!(rules("crates/vector/src/x.rs", src).is_empty());
    }

    #[test]
    fn safety_comment_same_line_passes() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: p valid per contract\n}\n";
        assert!(rules("crates/vector/src/x.rs", src).is_empty());
    }

    #[test]
    fn safety_doc_section_on_unsafe_fn_passes() {
        let src = "/// Reads a byte.\n///\n/// # Safety\n/// `p` must be valid for reads.\n#[inline]\npub unsafe fn f(p: *const u8) -> u8 {\n    // SAFETY: contract forwarded from f's own docs\n    unsafe { *p }\n}\n";
        assert!(rules("crates/vector/src/x.rs", src).is_empty());
    }

    #[test]
    fn comment_separated_by_code_does_not_count() {
        let src = "// SAFETY: stale comment\nfn g() {}\nfn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert_eq!(rules("crates/vector/src/x.rs", src), vec![Rule::UnsafeNeedsSafety]);
    }

    #[test]
    fn unsafe_inside_string_literal_is_ignored() {
        // Regression guard: objectstore.rs rejects "unsafe blob key" paths.
        let src = "fn f(key: &str) -> String {\n    format!(\"unsafe blob key: {key}\")\n}\n";
        assert!(rules("crates/storage/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_in_comment_is_ignored() {
        let src = "// this code is not unsafe at all\nfn f() {}\n";
        assert!(rules("crates/storage/src/x.rs", src).is_empty());
    }

    // ---- rule 2: wall clock ----

    #[test]
    fn instant_now_in_query_is_caught() {
        let src = "fn f() -> u64 {\n    let t = std::time::Instant::now();\n    t.elapsed().as_nanos() as u64\n}\n";
        assert_eq!(rules("crates/query/src/x.rs", src), vec![Rule::WallClock]);
    }

    #[test]
    fn system_time_is_caught() {
        let src = "fn f() {\n    let _ = std::time::SystemTime::now();\n}\n";
        assert_eq!(rules("crates/storage/src/x.rs", src), vec![Rule::WallClock]);
    }

    #[test]
    fn clock_module_is_exempt() {
        let src = "pub fn now() {\n    let _ = std::time::Instant::now();\n}\n";
        assert!(rules("crates/common/src/clock.rs", src).is_empty());
    }

    #[test]
    fn trace_module_is_exempt() {
        let src = "pub fn stamp() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
        assert!(rules("crates/common/src/trace.rs", src).is_empty());
    }

    #[test]
    fn bench_harness_is_exempt() {
        let src = "pub fn t() {\n    let _ = std::time::Instant::now();\n    println!(\"x\");\n}\n";
        assert!(rules("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn instant_in_cfg_test_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let _ = std::time::Instant::now();\n    }\n}\n";
        assert!(rules("crates/query/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_allow_annotation() {
        let src = "fn f() {\n    // lint: allow(wall_clock) - measuring real RPC deadline\n    let _ = std::time::Instant::now();\n}\n";
        assert!(rules("crates/query/src/x.rs", src).is_empty());
    }

    // ---- rule 3: nondeterminism ----

    #[test]
    fn thread_rng_is_caught() {
        let src = "fn f() {\n    let mut r = rand::thread_rng();\n    let _ = &mut r;\n}\n";
        assert_eq!(rules("crates/vector/src/x.rs", src), vec![Rule::Nondeterminism]);
    }

    #[test]
    fn rng_module_is_exempt() {
        let src = "pub fn f() {\n    let _ = rand::thread_rng();\n}\n";
        assert!(rules("crates/common/src/rng.rs", src).is_empty());
    }

    // ---- rule 4: panic-free serving crates ----

    #[test]
    fn unwrap_in_storage_is_caught() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
        assert_eq!(rules("crates/storage/src/x.rs", src), vec![Rule::PanicInLib]);
    }

    #[test]
    fn expect_and_macros_are_caught() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    if false { panic!(\"boom\") }\n    v.expect(\"set\")\n}\n";
        let got = rules("crates/cluster/src/x.rs", src);
        assert_eq!(got, vec![Rule::PanicInLib, Rule::PanicInLib]);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    v.unwrap_or(0) + v.unwrap_or_else(|| 1) + v.unwrap_or_default()\n}\n";
        assert!(rules("crates/storage/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_only_applies_to_serving_crates() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
        assert!(rules("crates/sql/src/x.rs", src).is_empty());
        assert!(rules("crates/common/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_panic_with_reason_passes() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    // lint: allow(panic) - v was populated for every key two lines above\n    v.unwrap()\n}\n";
        assert!(rules("crates/storage/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_panic_wrapped_across_comment_lines_passes() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    // lint: allow(panic) - v was populated for\n    // every key two lines above\n    v.unwrap()\n}\n";
        assert!(rules("crates/storage/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_panic_without_reason_is_caught() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // lint: allow(panic)\n}\n";
        assert_eq!(rules("crates/storage/src/x.rs", src), vec![Rule::EmptyAllowReason]);
    }

    #[test]
    fn unwrap_in_tests_mod_is_fine() {
        let src = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1u32).unwrap();\n    }\n}\n";
        assert!(rules("crates/query/src/x.rs", src).is_empty());
    }

    #[test]
    fn code_after_tests_mod_is_still_linted() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1u32).unwrap(); }\n}\n\nfn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
        assert_eq!(rules("crates/query/src/x.rs", src), vec![Rule::PanicInLib]);
    }

    #[test]
    fn unwrap_in_doc_comment_example_is_fine() {
        let src = "/// Example: `x.unwrap()` panics on None.\nfn f() {}\n";
        assert!(rules("crates/storage/src/x.rs", src).is_empty());
    }

    // ---- rule 5: stdout ----

    #[test]
    fn println_in_library_is_caught() {
        let src = "fn f() {\n    println!(\"hello\");\n}\n";
        assert_eq!(rules("crates/common/src/x.rs", src), vec![Rule::StdoutInLib]);
    }

    #[test]
    fn dbg_is_caught_and_writeln_is_fine() {
        let src = "use std::fmt::Write;\nfn f(out: &mut String) {\n    let _ = writeln!(out, \"x\");\n    dbg!(42);\n}\n";
        assert_eq!(rules("crates/query/src/x.rs", src), vec![Rule::StdoutInLib]);
    }

    // ---- rule 6: cross-crate import hygiene ----

    #[test]
    fn reach_into_internal_module_is_caught() {
        let src = "use bh_common::loom::thread;\nfn f() { thread::spawn(|| {}); }\n";
        assert_eq!(rules("crates/query/src/x.rs", src), vec![Rule::CrossCrateInternal]);
    }

    #[test]
    fn grouped_and_wrapped_imports_are_caught() {
        let src = "use bh_vector::{\n    distance,\n    quant::ProductQuantizer,\n};\nfn f() { let _ = (distance::l2_sq, ProductQuantizer::default); }\n";
        let f = lint_file("crates/storage/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::CrossCrateInternal);
        assert_eq!(f[0].line, 3, "finding anchors on the line naming the module");
    }

    #[test]
    fn inline_path_expression_is_caught() {
        let src = "fn f(v: &[f32]) -> Vec<u32> {\n    bh_vector::hnsw::HnswIndex::probe(v)\n}\n";
        assert_eq!(rules("crates/cluster/src/x.rs", src), vec![Rule::CrossCrateInternal]);
    }

    #[test]
    fn public_surface_modules_pass() {
        let src = "use bh_common::cq::{Reactor, Ticket};\nuse bh_vector::{distance::Metric, registry};\nuse bh_storage::objectstore::InMemoryObjectStore;\nfn f() { let _ = (Reactor::new, registry::IndexRegistry::with_builtins, InMemoryObjectStore::for_tests); }\n";
        assert!(rules("crates/query/src/x.rs", src).is_empty());
    }

    #[test]
    fn owning_crate_may_use_its_own_internals() {
        let src = "use bh_common::loom::sync::Arc;\nfn f() { let _ = Arc::<u32>::new; }\n";
        assert!(rules("crates/common/src/x.rs", src).is_empty());
    }

    #[test]
    fn cross_crate_allow_annotation_and_tests_are_exempt() {
        let allowed = "fn f() {\n    // lint: allow(cross_crate) - loom model shim for the cq harness\n    let _ = bh_common::loom::model;\n}\n";
        assert!(rules("crates/query/src/x.rs", allowed).is_empty());
        let in_tests = "#[cfg(test)]\nmod tests {\n    use bh_query::plan::PhysicalPlan;\n    #[test]\n    fn t() { let _ = std::any::type_name::<PhysicalPlan>(); }\n}\n";
        assert!(rules("crates/storage/src/x.rs", in_tests).is_empty());
    }

    #[test]
    fn internal_module_name_in_string_or_comment_passes() {
        let src = "// docs may mention bh_common::loom::model freely\nfn f() -> &'static str {\n    \"bh_vector::quant::ProductQuantizer\"\n}\n";
        assert!(rules("crates/query/src/x.rs", src).is_empty());
    }

    // ---- rule 7: raw sync primitives ----

    #[test]
    fn raw_std_mutex_is_caught() {
        let src = "use std::sync::Mutex;\nfn f() { let _ = Mutex::new(0u32); }\n";
        assert_eq!(rules("crates/storage/src/x.rs", src), vec![Rule::RawSync]);
    }

    #[test]
    fn raw_sync_in_import_group_is_caught() {
        let src = "use std::sync::{Arc, Mutex, RwLock};\nfn f() {}\n";
        let got = rules("crates/query/src/x.rs", src);
        assert_eq!(got, vec![Rule::RawSync, Rule::RawSync], "Mutex and RwLock, not Arc");
    }

    #[test]
    fn inline_raw_condvar_path_is_caught() {
        let src = "struct S {\n    cv: std::sync::Condvar,\n}\n";
        let f = lint_file("crates/cluster/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::RawSync);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn parking_lot_is_caught() {
        let src = "use parking_lot::RwLock;\nfn f() { let _ = RwLock::new(0u32); }\n";
        let got = rules("crates/vector/src/x.rs", src);
        assert!(got.contains(&Rule::RawSync), "{got:?}");
    }

    #[test]
    fn arc_once_lock_atomics_and_mpsc_pass() {
        let src = "use std::sync::{mpsc, Arc, OnceLock};\nuse std::sync::atomic::{AtomicU64, Ordering};\nfn f() { let _ = (Arc::new(0), OnceLock::<u32>::new(), AtomicU64::new(0)); }\n";
        assert!(rules("crates/common/src/x.rs", src).is_empty());
    }

    #[test]
    fn sync_home_file_is_exempt() {
        let src = "pub struct Mutex<T> { inner: std::sync::Mutex<T> }\n";
        assert!(rules("crates/common/src/sync.rs", src).is_empty());
    }

    #[test]
    fn raw_sync_applies_to_test_code_too() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n    #[test]\n    fn t() { let _ = Mutex::new(0u32); }\n}\n";
        assert_eq!(rules("crates/storage/src/x.rs", src), vec![Rule::RawSync]);
    }

    #[test]
    fn raw_sync_allow_with_reason_passes_without_reason_is_caught() {
        let with = "// lint: allow(raw-sync) - vendored model checker cannot self-instrument\nuse std::sync::{Mutex, Condvar};\nfn f() {}\n";
        assert!(rules("crates/common/src/x.rs", with).is_empty());
        let without = "// lint: allow(raw-sync)\nuse std::sync::Mutex;\nfn f() {}\n";
        assert_eq!(rules("crates/common/src/x.rs", without), vec![Rule::EmptyAllowReason]);
    }

    #[test]
    fn raw_sync_in_string_or_comment_passes() {
        let src = "// std::sync::Mutex is what the wrappers wrap\nfn f() -> &'static str {\n    \"std::sync::Mutex\"\n}\n";
        assert!(rules("crates/query/src/x.rs", src).is_empty());
    }

    // ---- scanner edge cases ----

    #[test]
    fn raw_strings_and_block_comments_are_stripped() {
        let src = "fn f() -> &'static str {\n    /* println!(\"no\") */\n    let s = r#\"panic!(\"not code\") Instant::now()\"#;\n    s\n}\n";
        assert!(rules("crates/query/src/x.rs", src).is_empty());
    }

    #[test]
    fn char_literals_and_lifetimes_lex_correctly() {
        let src = "fn f<'a>(s: &'a str) -> char {\n    let q = '\"';\n    let n = '\\n';\n    let _ = (s, n);\n    q\n}\nfn g(v: Option<u32>) -> u32 { v.unwrap() }\n";
        // The unwrap after the tricky literals must still be found — proves
        // the lexer did not get stuck in a string state.
        assert_eq!(rules("crates/storage/src/x.rs", src), vec![Rule::PanicInLib]);
    }

    #[test]
    fn findings_carry_line_numbers() {
        let src = "fn a() {}\nfn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
        let f = lint_file("crates/storage/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        assert_eq!(f[0].file, "crates/storage/src/x.rs");
    }

    #[test]
    fn non_crate_paths_are_skipped() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
        assert!(rules("crates/storage/tests/x.rs", src).is_empty());
        assert!(rules("examples/src/x.rs", src).is_empty());
    }

    // ---- rule 9: metric names ----

    const NAMES_SRC: &str = "//! metrics\npub const NAMES: &[&str] = &[\n    \
                             \"query.executed\",\n    \"query.slo\",\n];\n";

    fn metric_sources(extra: &str) -> Vec<(String, String)> {
        vec![
            ("crates/common/src/metrics.rs".to_string(), NAMES_SRC.to_string()),
            ("crates/query/src/exec.rs".to_string(), extra.to_string()),
        ]
    }

    #[test]
    fn metric_names_table_parses() {
        let names = parse_metric_names(NAMES_SRC).unwrap();
        assert_eq!(names, vec!["query.executed", "query.slo"]);
        assert!(parse_metric_names("fn f() {}").is_none());
    }

    #[test]
    fn metric_names_catches_seeded_typo() {
        // "query.exeucted" is a transposition of a registered name.
        let src = "fn f(m: &M) { m.counter(\"query.exeucted\").inc(); }\n";
        let f = check_metric_names(&metric_sources(src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::MetricNames);
        assert_eq!(f[0].line, 1);
        assert!(f[0].msg.contains("query.exeucted"), "{}", f[0].msg);
    }

    #[test]
    fn metric_names_accepts_registered_and_labeled() {
        let src = "fn f(m: &M) {\n    m.counter(\"query.executed\").inc();\n    \
                   m.histogram_with_labels(\"query.slo\", &[(\"kind\", k)]);\n}\n";
        assert!(check_metric_names(&metric_sources(src)).is_empty());
    }

    #[test]
    fn metric_names_skips_dynamic_tests_and_comments() {
        let src = "fn f(m: &M, n: &str) {\n    m.counter(n).inc();\n    \
                   m.counter(&format!(\"kernel.tier.{t}\")).inc();\n    \
                   // m.counter(\"not.a.metric\")\n}\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                   m.counter(\"test.only.name\").inc();\n    }\n}\n";
        assert!(check_metric_names(&metric_sources(src)).is_empty());
    }

    #[test]
    fn metric_names_requires_the_table() {
        let f = check_metric_names(&[(
            "crates/query/src/exec.rs".to_string(),
            "fn f() {}".to_string(),
        )]);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("must exist"), "{}", f[0].msg);
        let f = check_metric_names(&[(
            "crates/common/src/metrics.rs".to_string(),
            "fn f() {}".to_string(),
        )]);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("NAMES"), "{}", f[0].msg);
    }

    #[test]
    fn metric_names_exempts_harness_crates() {
        let mut sources = metric_sources("fn f() {}");
        sources.push((
            "crates/bench/src/harness.rs".to_string(),
            "fn f(m: &M) { m.counter(\"bench.only\").inc(); }".to_string(),
        ));
        assert!(check_metric_names(&sources).is_empty());
    }

    // ---- the tree this lint lands in must be clean ----

    #[test]
    fn workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("xtask lives at <root>/crates/xtask");
        let findings = lint_workspace(root).expect("workspace walk");
        for f in &findings {
            eprintln!("{f}");
        }
        assert!(findings.is_empty(), "{} lint findings in workspace", findings.len());
    }
}
