//! Workspace automation tasks (`cargo xtask` pattern).
//!
//! Currently one subcommand:
//!
//! ```text
//! cargo run -p xtask -- lint
//! ```
//!
//! runs the project-specific static analysis described in [`lint`] and
//! DESIGN.md §8, exiting non-zero if any invariant is violated.

mod lint;

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`");
            eprintln!();
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo run -p xtask -- <task>");
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  lint    enforce workspace invariants (SAFETY comments, clock/rng");
    eprintln!("          gates, panic-free serving crates, no stdout in libraries)");
}

/// Workspace root: xtask lives at `<root>/crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let findings = match lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask lint: failed to walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let scanned = lint::count_files(&root).unwrap_or(0);
    if findings.is_empty() {
        eprintln!("xtask lint: {scanned} files clean");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        eprintln!("{f}");
    }
    eprintln!();
    eprintln!(
        "xtask lint: {} finding(s) in {scanned} file(s); see DESIGN.md section 8 \
         for the rules and the `// lint: allow(...)` annotation",
        findings.len()
    );
    ExitCode::FAILURE
}
