//! Workspace automation tasks (`cargo xtask` pattern).
//!
//! Subcommands:
//!
//! ```text
//! cargo run -p xtask -- lint
//! cargo run -p xtask -- bench-diff [--fresh <dir>] [--threshold <pct>]
//! ```
//!
//! `lint` runs the project-specific static analysis described in [`lint`]
//! and DESIGN.md §8, exiting non-zero if any invariant is violated.
//! `bench-diff` compares freshly generated benchmark JSON (default
//! `target/bench-fresh/BENCH_*.json`) against the committed copies at the
//! workspace root and fails on any latency regression beyond the threshold
//! (default 15%); see [`bench_diff`].

mod bench_diff;
mod lint;

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some("bench-diff") => run_bench_diff(&args[1..]),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`");
            eprintln!();
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo run -p xtask -- <task>");
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  lint        enforce workspace invariants (SAFETY comments, clock/rng");
    eprintln!("              gates, panic-free serving crates, no stdout in libraries)");
    eprintln!("  bench-diff  compare fresh BENCH_*.json (--fresh <dir>, default");
    eprintln!("              target/bench-fresh) against committed copies; fail on");
    eprintln!("              latency regressions beyond --threshold <pct> (default 15)");
}

/// Workspace root: xtask lives at `<root>/crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let findings = match lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask lint: failed to walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let scanned = lint::count_files(&root).unwrap_or(0);
    if findings.is_empty() {
        eprintln!("xtask lint: {scanned} files clean");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        eprintln!("{f}");
    }
    eprintln!();
    eprintln!(
        "xtask lint: {} finding(s) in {scanned} file(s); see DESIGN.md section 8 \
         for the rules and the `// lint: allow(...)` annotation",
        findings.len()
    );
    ExitCode::FAILURE
}

fn run_bench_diff(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let mut fresh = root.join("target").join("bench-fresh");
    let mut threshold = bench_diff::DEFAULT_THRESHOLD_PCT;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fresh" => match it.next() {
                Some(dir) => fresh = PathBuf::from(dir),
                None => {
                    eprintln!("xtask bench-diff: --fresh requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--threshold" => match it.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => threshold = t,
                _ => {
                    eprintln!("xtask bench-diff: --threshold requires a positive percentage");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask bench-diff: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let (comparisons, notes) = match bench_diff::diff_benchmarks(&root, &fresh, threshold) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask bench-diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    for note in &notes {
        eprintln!("xtask bench-diff: note: {note}");
    }
    for c in &comparisons {
        eprintln!("{c}");
    }
    let regressions = comparisons.iter().filter(|c| c.regressed).count();
    if regressions > 0 {
        eprintln!();
        eprintln!(
            "xtask bench-diff: {regressions} latency field(s) regressed beyond {threshold}% \
             (of {} compared)",
            comparisons.len()
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "xtask bench-diff: {} latency field(s) within {threshold}% of committed baselines",
        comparisons.len()
    );
    ExitCode::SUCCESS
}
