//! Workspace automation tasks (`cargo xtask` pattern).
//!
//! Subcommands:
//!
//! ```text
//! cargo run -p xtask -- lint [--format text|json|github]
//! cargo run -p xtask -- bench-diff [--fresh <dir>] [--threshold <pct>]
//! ```
//!
//! `lint` runs the project-specific static analysis described in [`lint`]
//! and DESIGN.md §8/§12 (including the cross-crate lock-order pass in
//! [`lockorder`]), exiting non-zero if any invariant is violated.
//! `--format json` emits machine-readable findings on stdout; `--format
//! github` emits GitHub Actions `::error` annotations so findings surface
//! inline on pull requests. `bench-diff` compares freshly generated
//! benchmark JSON (default `target/bench-fresh/BENCH_*.json`) against the
//! committed copies at the workspace root and fails on any latency
//! regression beyond the threshold (default 15%); see [`bench_diff`].

mod bench_diff;
mod lint;
mod lockorder;

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("bench-diff") => run_bench_diff(&args[1..]),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`");
            eprintln!();
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo run -p xtask -- <task>");
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  lint        enforce workspace invariants (SAFETY comments, clock/rng");
    eprintln!("              gates, panic-free serving crates, no stdout in libraries,");
    eprintln!("              ranked-sync-only locking, cross-crate lock-order graph,");
    eprintln!("              metric-name registry);");
    eprintln!("              --format text|json|github selects the output shape");
    eprintln!("  bench-diff  compare fresh BENCH_*.json (--fresh <dir>, default");
    eprintln!("              target/bench-fresh) against committed copies; fail on");
    eprintln!("              latency regressions beyond --threshold <pct> (default 15)");
}

/// Workspace root: xtask lives at `<root>/crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

#[derive(Clone, Copy, PartialEq)]
enum LintFormat {
    Text,
    Json,
    Github,
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut format = LintFormat::Text;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = LintFormat::Text,
                Some("json") => format = LintFormat::Json,
                Some("github") => format = LintFormat::Github,
                other => {
                    eprintln!(
                        "xtask lint: --format requires text, json or github (got {})",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask lint: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = workspace_root();
    let findings = match lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask lint: failed to walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let scanned = lint::count_files(&root).unwrap_or(0);
    match format {
        LintFormat::Json => {
            // Hand-rolled JSON (xtask is dependency-free by design).
            let mut out = String::from("{\n  \"files_scanned\": ");
            out.push_str(&scanned.to_string());
            out.push_str(",\n  \"findings\": [");
            for (i, f) in findings.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n    {\"file\": ");
                out.push_str(&json_string(&f.file));
                out.push_str(", \"line\": ");
                out.push_str(&f.line.to_string());
                out.push_str(", \"rule\": ");
                out.push_str(&json_string(f.rule.name()));
                out.push_str(", \"msg\": ");
                out.push_str(&json_string(&f.msg));
                out.push('}');
            }
            if !findings.is_empty() {
                out.push_str("\n  ");
            }
            out.push_str("]\n}");
            println!("{out}");
        }
        LintFormat::Github => {
            // Workflow-command annotations: GitHub renders these inline on
            // the PR diff when emitted from an Actions step.
            for f in &findings {
                println!(
                    "::error file={},line={},title=xtask lint [{}]::{}",
                    f.file,
                    f.line,
                    f.rule.name(),
                    github_escape(&f.msg)
                );
            }
            eprintln!("xtask lint: {} finding(s) in {scanned} file(s)", findings.len());
        }
        LintFormat::Text => {
            if findings.is_empty() {
                eprintln!("xtask lint: {scanned} files clean");
            } else {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!();
                eprintln!(
                    "xtask lint: {} finding(s) in {scanned} file(s); see DESIGN.md \
                     sections 8 and 12 for the rules and the `// lint: allow(...)` \
                     annotation",
                    findings.len()
                );
            }
        }
    }
    if findings.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE }
}

/// Escape a string into a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Escape a workflow-command message (GitHub's own percent-encoding rules).
fn github_escape(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

fn run_bench_diff(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let mut fresh = root.join("target").join("bench-fresh");
    let mut threshold = bench_diff::DEFAULT_THRESHOLD_PCT;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fresh" => match it.next() {
                Some(dir) => fresh = PathBuf::from(dir),
                None => {
                    eprintln!("xtask bench-diff: --fresh requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--threshold" => match it.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => threshold = t,
                _ => {
                    eprintln!("xtask bench-diff: --threshold requires a positive percentage");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask bench-diff: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let (comparisons, notes) = match bench_diff::diff_benchmarks(&root, &fresh, threshold) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask bench-diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    for note in &notes {
        eprintln!("xtask bench-diff: note: {note}");
    }
    for c in &comparisons {
        eprintln!("{c}");
    }
    let regressions = comparisons.iter().filter(|c| c.regressed).count();
    if regressions > 0 {
        eprintln!();
        eprintln!(
            "xtask bench-diff: {regressions} latency field(s) regressed beyond {threshold}% \
             (of {} compared)",
            comparisons.len()
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "xtask bench-diff: {} latency field(s) within {threshold}% of committed baselines",
        comparisons.len()
    );
    ExitCode::SUCCESS
}
