//! Property test: [`QueryEngine::execute_batch`] is bit-identical to running
//! the same statements through the sequential per-query path, across batch
//! sizes, filters, deletes, and with the shared pruning bound on and off.
//!
//! The table is built once (clustered 4-dim embeddings with a per-row jitter
//! so all distances are distinct — ties are the one documented caveat of
//! bound pruning, see DESIGN.md §7) and warmed up front, so both executions
//! observe the same fully-resident cache state.

use bh_cluster::vw::{VirtualWarehouse, VwConfig};
use bh_common::ids::IdGenerator;
use bh_common::querylog::{QueryLog, QueryLogRecord, SlowQueryPolicy, SlowQueryTrace};
use bh_common::{MetricsRegistry, VirtualClock};
use bh_query::exec::{QueryEngine, QueryOptions};
use bh_query::result::ResultSet;
use bh_query::Strategy as PlanStrategy;
use bh_sql::ast::SelectStmt;
use bh_storage::objectstore::InMemoryObjectStore;
use bh_storage::predicate::Predicate;
use bh_storage::schema::TableSchema;
use bh_storage::table::{TableStore, TableStoreConfig};
use bh_storage::value::{ColumnType, Value};
use bh_vector::{IndexKind, IndexRegistry, Metric};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

struct Fixture {
    table: Arc<TableStore>,
    vw: VirtualWarehouse,
    engine: QueryEngine,
    metrics: MetricsRegistry,
}

/// 600 rows in 5 well-separated clusters across 12 segments, two rows
/// deleted, caches warmed by one full-table query.
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(build_fixture)
}

/// A second, fully independent fixture for the query-log capture test: the
/// capture choreography arms and drains the tracer, which is per-registry
/// global state — sharing it with [`tracing_does_not_change_results`] under
/// the parallel test harness would steal that test's spans.
fn capture_fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(build_fixture)
}

fn build_fixture() -> Fixture {
    {
        let schema = TableSchema::new("t")
            .with_column("id", ColumnType::UInt64)
            .with_column("label", ColumnType::Str)
            .with_column("emb", ColumnType::Vector(4))
            .with_vector_index("i", "emb", IndexKind::Hnsw, 4, Metric::L2);
        let metrics = MetricsRegistry::new();
        let table = TableStore::new(
            schema,
            InMemoryObjectStore::for_tests(),
            Arc::new(IndexRegistry::with_builtins()),
            TableStoreConfig { segment_max_rows: 50, ..Default::default() },
            Arc::new(IdGenerator::new()),
            metrics.clone(),
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..600)
            .map(|i| {
                let c = (i % 5) as f32 * 6.0 + (i as f32) * 1e-4;
                vec![
                    Value::UInt64(i as u64),
                    Value::Str(format!("l{}", i % 2)),
                    Value::Vector(vec![c, c + 0.1, c + 0.2, c - 0.1]),
                ]
            })
            .collect();
        table.insert_rows(rows).unwrap();
        table.delete_where(&Predicate::eq("id", Value::UInt64(0))).unwrap();
        table.delete_where(&Predicate::eq("id", Value::UInt64(45))).unwrap();
        let vw = VirtualWarehouse::new(
            bh_common::VwId(0),
            "q",
            VwConfig::default(),
            table.remote_store().clone(),
            table.registry().clone(),
            VirtualClock::shared(),
            metrics.clone(),
            Arc::new(IdGenerator::starting_at(1000)),
        );
        vw.scale_up(&[]);
        vw.scale_up(&[]);
        let engine = QueryEngine::new(metrics.clone());
        let fix = Fixture { table: Arc::new(table), vw, engine, metrics };
        // Warm every segment so sequential and batched runs start from the
        // same residency state (on-demand warming is order-dependent).
        run_sql(
            &fix,
            &QueryOptions::default(),
            "SELECT id FROM t ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) LIMIT 600",
        );
        fix
    }
}

fn parse(sql: &str) -> SelectStmt {
    match bh_sql::parse_statement(sql).unwrap() {
        bh_sql::Statement::Select(sel) => sel,
        other => panic!("expected SELECT, got {other:?}"),
    }
}

fn run_sql(fix: &Fixture, opts: &QueryOptions, sql: &str) -> ResultSet {
    fix.engine.execute_select(&fix.table, &fix.vw, opts, &parse(sql)).unwrap()
}

/// One random hybrid statement: a cluster-centred top-k with an optional
/// scalar filter, always projecting the distance so comparisons see the
/// merged distances bit-exactly.
fn stmt_strategy() -> impl Strategy<Value = String> {
    (0u32..5, 1usize..=25, 0u32..4).prop_map(|(cluster, k, filter)| {
        let c = cluster as f32 * 6.0;
        let w = match filter {
            0 => String::new(),
            1 => "WHERE label = 'l0' ".into(),
            2 => "WHERE label = 'l1' AND id < 300 ".into(),
            _ => "WHERE id >= 100 ".into(),
        };
        format!(
            "SELECT id, dist FROM t {w}ORDER BY \
             L2Distance(emb, [{c}.0, {:.1}, {:.1}, {:.1}]) AS dist LIMIT {k}",
            c + 0.1,
            c + 0.2,
            c - 0.1,
        )
    })
}

fn batch_strategy() -> impl Strategy<Value = Vec<String>> {
    prop_oneof![Just(1usize), Just(3), Just(17)]
        .prop_flat_map(|n| prop::collection::vec(stmt_strategy(), n))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn execute_batch_is_bit_identical_to_sequential(sqls in batch_strategy()) {
        let fix = fixture();
        let stmts: Vec<SelectStmt> = sqls.iter().map(|s| parse(s)).collect();
        for share_bound in [true, false] {
            let opts = QueryOptions { share_bound, ..Default::default() };
            let sequential: Vec<ResultSet> = sqls.iter().map(|s| run_sql(fix, &opts, s)).collect();
            let batched = fix
                .engine
                .execute_select_batch(&fix.table, &fix.vw, &opts, &stmts)
                .unwrap();
            prop_assert_eq!(batched.len(), sequential.len());
            for (i, (s, b)) in sequential.iter().zip(&batched).enumerate() {
                // Rows carry both ids and f64-widened distances, so this is
                // a bit-identity check on the merged results.
                prop_assert_eq!(
                    &s.rows,
                    &b.rows,
                    "statement {} diverged (share_bound={}): {}",
                    i,
                    share_bound,
                    sqls[i]
                );
            }
        }
    }

    /// Plan D forced across the whole batch: the filter-aware traversal is as
    /// deterministic as the other strategies, so batching (with the shared
    /// pruning bound on and off) must stay bit-identical to sequential runs.
    /// Unfiltered statements degrade to the plain path inside the same arm, so
    /// the mix exercises both the traversal and its fallback.
    #[test]
    fn filtered_traversal_batch_is_bit_identical(sqls in batch_strategy()) {
        let fix = fixture();
        let stmts: Vec<SelectStmt> = sqls.iter().map(|s| parse(s)).collect();
        for share_bound in [true, false] {
            let opts = QueryOptions {
                share_bound,
                forced_strategy: Some(PlanStrategy::FilteredTraversal),
                ..Default::default()
            };
            let sequential: Vec<ResultSet> = sqls.iter().map(|s| run_sql(fix, &opts, s)).collect();
            let batched = fix
                .engine
                .execute_select_batch(&fix.table, &fix.vw, &opts, &stmts)
                .unwrap();
            prop_assert_eq!(batched.len(), sequential.len());
            for (i, (s, b)) in sequential.iter().zip(&batched).enumerate() {
                prop_assert_eq!(
                    &s.rows,
                    &b.rows,
                    "Plan D statement {} diverged (share_bound={}): {}",
                    i,
                    share_bound,
                    sqls[i]
                );
            }
        }
    }

    /// Tracing is observation only: enabling the tracer (what EXPLAIN ANALYZE
    /// does under the hood) must leave both the sequential and the batched
    /// results bit-identical to untraced runs.
    #[test]
    fn tracing_does_not_change_results(sqls in batch_strategy()) {
        let fix = fixture();
        let opts = QueryOptions::default();
        let stmts: Vec<SelectStmt> = sqls.iter().map(|s| parse(s)).collect();
        let tracer = fix.metrics.tracer();

        let plain: Vec<ResultSet> = sqls.iter().map(|s| run_sql(fix, &opts, s)).collect();
        let batched_plain =
            fix.engine.execute_select_batch(&fix.table, &fix.vw, &opts, &stmts).unwrap();

        tracer.set_enabled(true);
        let traced: Vec<ResultSet> = sqls.iter().map(|s| run_sql(fix, &opts, s)).collect();
        let batched_traced =
            fix.engine.execute_select_batch(&fix.table, &fix.vw, &opts, &stmts).unwrap();
        tracer.set_enabled(false);

        prop_assert!(!tracer.drain().is_empty(), "traced runs recorded no spans");
        for (i, (p, t)) in plain.iter().zip(&traced).enumerate() {
            prop_assert_eq!(&p.rows, &t.rows, "statement {} diverged under tracing: {}", i, sqls[i]);
        }
        for (i, (p, t)) in batched_plain.iter().zip(&batched_traced).enumerate() {
            prop_assert_eq!(
                &p.rows,
                &t.rows,
                "batched statement {} diverged under tracing: {}",
                i,
                sqls[i]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The always-on query log plus slow-query capture is observation only.
    /// This models the per-statement choreography `Database::execute_session`
    /// runs around the engine — arm the tracer, execute, drain the spans into
    /// a retained trace, append one record from the counter deltas — and
    /// asserts the results stay bit-identical to plain runs.
    #[test]
    fn query_log_capture_does_not_change_results(sqls in batch_strategy()) {
        let fix = capture_fixture();
        let opts = QueryOptions::default();
        let plain: Vec<ResultSet> = sqls.iter().map(|s| run_sql(fix, &opts, s)).collect();

        let log = QueryLog::with_capacities(64, 64);
        log.set_slow_policy(Some(SlowQueryPolicy { threshold_nanos: 0, capture_errors: true }));
        let tracer = fix.metrics.tracer();
        let exec_ns = fix.metrics.counter("query.exec_ns");
        let visited = fix.metrics.counter("query.iterator_visited");
        let logged: Vec<ResultSet> = sqls
            .iter()
            .map(|s| {
                let query_id = log.next_query_id();
                let start_nanos = log.now_nanos();
                let (e0, v0) = (exec_ns.get(), visited.get());
                tracer.set_enabled(true);
                let rs = run_sql(fix, &opts, s);
                tracer.set_enabled(false);
                let spans = tracer.drain();
                let end_nanos = log.now_nanos();
                let duration = end_nanos.saturating_sub(start_nanos);
                if log.should_retain(duration, false) {
                    log.retain_trace(SlowQueryTrace {
                        query_id,
                        sql: s.clone(),
                        duration_nanos: duration,
                        error_code: None,
                        spans,
                    });
                }
                log.observe(QueryLogRecord {
                    query_id,
                    kind: "select",
                    sql: s.clone(),
                    tenant: "default".into(),
                    session: "default".into(),
                    start_nanos,
                    end_nanos,
                    exec_ns: exec_ns.get() - e0,
                    rows_scanned: visited.get() - v0,
                    result_rows: rs.rows.len() as u64,
                    traced: true,
                    ..Default::default()
                });
                rs
            })
            .collect();

        for (i, (p, l)) in plain.iter().zip(&logged).enumerate() {
            prop_assert_eq!(&p.rows, &l.rows, "statement {} diverged under logging: {}", i, sqls[i]);
        }
        // The choreography leaves the tracer disabled and drained, exactly one
        // record per statement, and (threshold 0) one retained trace each.
        prop_assert!(tracer.drain().is_empty());
        prop_assert_eq!(log.total_logged(), sqls.len() as u64);
        prop_assert_eq!(log.slow_traces().len(), sqls.len());
        for r in log.records() {
            prop_assert!(r.end_nanos >= r.start_nanos);
            prop_assert!(r.traced);
            prop_assert!(r.error_code.is_none());
        }
    }

    /// The record ring is bounded: any number of concurrent writers, any
    /// capacity — the retained set never exceeds the configured capacity and
    /// the total-logged counter still sees every append.
    #[test]
    fn ring_never_exceeds_capacity_under_concurrent_writers(
        cap in 1usize..=32,
        writers in 1usize..=8,
        per_writer in 1usize..=40,
    ) {
        let log = QueryLog::new(cap);
        std::thread::scope(|scope| {
            for w in 0..writers {
                let log = &log;
                scope.spawn(move || {
                    for i in 0..per_writer {
                        log.observe(QueryLogRecord {
                            query_id: log.next_query_id(),
                            kind: "select",
                            sql: format!("q{w}:{i}"),
                            ..Default::default()
                        });
                    }
                });
            }
        });
        let records = log.records();
        prop_assert!(records.len() <= cap, "{} records > capacity {}", records.len(), cap);
        prop_assert_eq!(records.len(), cap.min(writers * per_writer));
        prop_assert_eq!(log.total_logged(), (writers * per_writer) as u64);
        // Every surviving record is one some writer actually appended.
        for r in &records {
            prop_assert!(r.sql.starts_with('q') && r.sql.contains(':'), "corrupt record {:?}", r.sql);
        }
    }
}
