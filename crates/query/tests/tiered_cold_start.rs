//! Cold-start behaviour of tiered partial index loading at the query layer:
//! a brand-new warehouse with `tiered_loading` enabled answers its first
//! query from head-only indexes (entry point + upper HNSW layers, ≤10% of
//! each blob), and once the bodies arrive the results are bit-identical to
//! an always-warm warehouse — partial serving trades nothing permanent.

use bh_cluster::vw::{VirtualWarehouse, VwConfig};
use bh_cluster::worker::WorkerConfig;
use bh_common::ids::IdGenerator;
use bh_common::{LatencyModel, MetricsRegistry, Reactor, SharedClock, VirtualClock, VwId};
use bh_query::exec::{QueryEngine, QueryOptions};
use bh_sql::ast::SelectStmt;
use bh_storage::objectstore::InMemoryObjectStore;
use bh_storage::schema::TableSchema;
use bh_storage::table::{TableStore, TableStoreConfig};
use bh_storage::value::{ColumnType, Value};
use bh_vector::{IndexKind, IndexRegistry, Metric};
use std::sync::Arc;
use std::time::Duration;

fn parse(sql: &str) -> SelectStmt {
    match bh_sql::parse_statement(sql).unwrap() {
        bh_sql::Statement::Select(sel) => sel,
        other => panic!("expected SELECT, got {other:?}"),
    }
}

fn make_vw(
    table: &TableStore,
    clock: &SharedClock,
    metrics: &MetricsRegistry,
    name: &str,
    tiered_loading: bool,
) -> VirtualWarehouse {
    let vw = VirtualWarehouse::new(
        VwId(0),
        name,
        VwConfig {
            worker: WorkerConfig { tiered_loading, ..Default::default() },
            ..Default::default()
        },
        table.remote_store().clone(),
        table.registry().clone(),
        clock.clone(),
        metrics.clone(),
        Arc::new(IdGenerator::starting_at(1000)),
    );
    vw.scale_up(&[]);
    vw
}

#[test]
fn cold_start_serves_from_heads_then_matches_warm_results() {
    // Dim-16 clustered vectors, several segments: large enough that HNSW
    // heads stay a small fraction of each blob.
    let clock: SharedClock = VirtualClock::shared();
    let metrics = MetricsRegistry::new();
    let reactor = Arc::new(Reactor::new(clock.clone()));
    let store = Arc::new(
        InMemoryObjectStore::new(
            clock.clone(),
            LatencyModel::new(Duration::from_micros(100), Duration::from_nanos(10)),
            metrics.clone(),
            "remote",
        )
        .with_reactor(reactor),
    );
    let schema = TableSchema::new("t")
        .with_column("id", ColumnType::UInt64)
        .with_column("emb", ColumnType::Vector(16))
        .with_vector_index("i", "emb", IndexKind::Hnsw, 16, Metric::L2);
    let table = TableStore::new(
        schema,
        store,
        Arc::new(IndexRegistry::with_builtins()),
        TableStoreConfig { segment_max_rows: 200, ..Default::default() },
        Arc::new(IdGenerator::new()),
        metrics.clone(),
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..800)
        .map(|i| {
            let c = (i % 4) as f32 * 10.0 + (i as f32) * 1e-4;
            let mut v = vec![c; 16];
            v[1] += 0.1;
            v[2] += 0.2;
            vec![Value::UInt64(i as u64), Value::Vector(v)]
        })
        .collect();
    table.insert_rows(rows).unwrap();
    let table = Arc::new(table);

    // Acceptance criterion: first indexed result must be reachable after
    // only the head prefix — every persisted blob's head is ≤10% of it.
    let metas = table.segments();
    let indexed = metas.iter().filter(|m| m.index_kind.is_some()).count();
    assert!(indexed >= 4, "expected several indexed segments, got {indexed}");
    for meta in metas.iter().filter(|m| m.index_kind.is_some()) {
        assert!(meta.index_head_bytes > 0, "segment {:?} not tiered", meta.id);
        assert!(
            meta.index_head_bytes * 10 <= meta.index_bytes,
            "head is {} of {} bytes (>10%) for segment {:?}",
            meta.index_head_bytes,
            meta.index_bytes,
            meta.id
        );
    }

    let engine = QueryEngine::new(metrics.clone());
    let opts = QueryOptions::default();
    let stmt = parse(
        "SELECT id, dist FROM t ORDER BY \
         L2Distance(emb, [10.0, 10.1, 10.2, 10.0, 10.0, 10.0, 10.0, 10.0, \
         10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0]) AS dist LIMIT 10",
    );

    // Cold warehouse with tiered loading: the first query is answered by
    // head-only searches, never the brute-force fallback.
    let vw_cold = make_vw(&table, &clock, &metrics, "cold", true);
    let head_before = metrics.counter("worker.head_search").get();
    let brute_before = metrics.counter("worker.brute_force").get();
    let first = engine.execute_select(&table, &vw_cold, &opts, &stmt).unwrap();
    assert!(!first.rows.is_empty(), "cold head-only query returned nothing");
    assert!(
        metrics.counter("worker.head_search").get() > head_before,
        "cold query never used a head-only index"
    );
    assert_eq!(
        metrics.counter("worker.brute_force").get(),
        brute_before,
        "tiered loading should preempt the brute-force fallback"
    );

    // The synchronous warm after the miss pulled the bodies in; the second
    // run must be indistinguishable from a warehouse that was never cold.
    let vw_warm = make_vw(&table, &clock, &metrics, "warm", false);
    vw_warm.preload(&metas).unwrap();
    let after_body = engine.execute_select(&table, &vw_cold, &opts, &stmt).unwrap();
    let always_warm = engine.execute_select(&table, &vw_warm, &opts, &stmt).unwrap();
    assert_eq!(
        after_body.rows, always_warm.rows,
        "recall changed after the index bodies arrived"
    );
}
